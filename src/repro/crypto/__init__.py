"""Cryptographic substrate: Damgård–Jurik with threshold decryption.

This package is the paper's Sec. 3.3.1 building block — a semantically
secure, additively homomorphic encryption scheme with non-interactive
threshold decryption — implemented from scratch on Python integers.

On top of the scheme itself it provides the *batched* evaluation plane the
protocol layers run on: fixed-base precomputation for amortized
encryption (:class:`FastEncryptor` over :class:`FixedBaseTable`), slot
packing of many fixed-point values per plaintext (:class:`PackedCodec`),
and swappable serial / process-pool execution backends
(:mod:`repro.crypto.backend`) with deterministic per-item seeding.

All modular arithmetic routes through the pluggable bigint kernel
(:mod:`repro.crypto.bigint`): pure-python by default, GMP (``gmpy2``) as
an optional, bit-identical fast path selected via the
``REPRO_BIGINT_BACKEND`` env var, the ``bigint_backend`` RunSpec/params
field, or the ``--bigint-backend`` CLI flag.
"""

from . import bigint
from .backend import (
    CryptoBackend,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
)
from .damgard_jurik import (
    FastEncryptor,
    decrypt,
    dlog_1_plus_n,
    encrypt,
    encrypt_batch,
    encrypt_zero_pool,
    generate_keypair,
    homomorphic_add,
    homomorphic_add_batch,
    homomorphic_scalar_mul,
    powers_of_g,
)
from .encoding import FixedPointCodec, PackedCodec, quantize_to_grid
from .numtheory import FixedBaseTable
from .keys import KeyShare, PrivateKey, PublicKey, ThresholdContext
from .serialization import (
    ciphertext_from_bytes,
    ciphertext_to_bytes,
    means_payload_from_bytes,
    means_payload_to_bytes,
    public_key_from_bytes,
    public_key_to_bytes,
)
from .shamir import lagrange_at_zero, reconstruct_at_zero, share_secret
from .threshold import (
    ThresholdKeypair,
    combine_partial_decryptions,
    combine_partial_decryptions_batch,
    generate_threshold_keypair,
    partial_decrypt,
)

__all__ = [
    "bigint",
    "CryptoBackend",
    "FastEncryptor",
    "FixedBaseTable",
    "FixedPointCodec",
    "KeyShare",
    "PackedCodec",
    "quantize_to_grid",
    "PrivateKey",
    "ProcessPoolBackend",
    "PublicKey",
    "SerialBackend",
    "ThresholdContext",
    "ThresholdKeypair",
    "ciphertext_from_bytes",
    "ciphertext_to_bytes",
    "combine_partial_decryptions",
    "combine_partial_decryptions_batch",
    "create_backend",
    "decrypt",
    "dlog_1_plus_n",
    "encrypt",
    "encrypt_batch",
    "encrypt_zero_pool",
    "generate_keypair",
    "generate_threshold_keypair",
    "homomorphic_add",
    "homomorphic_add_batch",
    "homomorphic_scalar_mul",
    "lagrange_at_zero",
    "means_payload_from_bytes",
    "means_payload_to_bytes",
    "partial_decrypt",
    "powers_of_g",
    "public_key_from_bytes",
    "public_key_to_bytes",
    "reconstruct_at_zero",
    "share_secret",
]
