"""Crypto execution backends: batched encryption and partial decryption.

The batched plane funnels every bulk ciphertext operation through a
:class:`CryptoBackend` so the execution strategy is swappable without
touching protocol code:

* :class:`SerialBackend` — the in-process reference implementation;
* :class:`ProcessPoolBackend` — fans batches out over a
  ``ProcessPoolExecutor``, the right tool for the pure-Python big-int
  arithmetic that dominates local costs (it is CPU-bound and releases no
  GIL).

**Determinism.** Reproducibility across backends is a hard requirement
(the protocol seeds everything).  Randomness is therefore *derived per
item, not per worker*: the caller's ``rng`` emits one 128-bit seed per
plaintext **before** dispatch, and each encryption builds its own
``random.Random(seed)`` from that seed.  Worker count, chunking, and
scheduling order then cannot change any ciphertext — the serial and
process-pool backends produce bit-identical batches from the same master
RNG state.  Partial decryption is deterministic to begin with.
(Note the seed derivation caps each randomizer's entropy at 128 bits —
below the raw randomizer space but in line with the short-exponent
security model :class:`FastEncryptor` already assumes.)

Backends are selected by name through :func:`create_backend`, which is the
hook :class:`repro.core.ChiaroscuroParams` plugs into (``crypto_backend``
/ ``backend_workers`` fields).
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor

from . import bigint
from .damgard_jurik import FastEncryptor, encrypt
from .keys import KeyShare, PublicKey, ThresholdContext

__all__ = [
    "CryptoBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "create_backend",
    "derive_item_seeds",
]

_SEED_BITS = 128


def derive_item_seeds(rng: random.Random, count: int) -> list[int]:
    """One 128-bit seed per batch item, drawn from the master RNG in order."""
    return [rng.getrandbits(_SEED_BITS) for _ in range(count)]


def _encrypt_item(
    public: PublicKey,
    encryptor: FastEncryptor | None,
    plaintext: int,
    seed: int,
) -> int:
    """Encrypt one item from its derived seed (shared by all backends)."""
    item_rng = random.Random(seed)
    if encryptor is not None:
        return encryptor.encrypt(plaintext, item_rng)
    return encrypt(public, plaintext, rng=item_rng)


def _partial_decrypt_exponent(context: ThresholdContext, share: KeyShare) -> int:
    """The exponent ``2Δ·d_i`` of one participant's partial decryption."""
    return 2 * context.delta * share.value


# --- process-pool worker side -------------------------------------------
# The (potentially table-backed) encryptor ships once per worker through the
# pool initializer, together with the parent's resolved bigint backend name
# (workers must re-select it — the selection is process-global state, and a
# spec/CLI choice made in the parent would otherwise be invisible to them).
# Chunks then carry only plaintexts and seeds.

_WORKER_ENCRYPTOR: FastEncryptor | None = None


def _init_worker(encryptor: FastEncryptor | None, bigint_backend: str) -> None:
    global _WORKER_ENCRYPTOR
    _WORKER_ENCRYPTOR = encryptor
    bigint.select_backend(bigint_backend)
    if encryptor is not None:
        # Warm the fixed-base table *after* the backend re-selection: the
        # unpickled table has no native-row cache, and building it here —
        # once per worker process — keeps it out of every batch. Without
        # this, the first batch of each worker (and, before tables became
        # backend-aware, *every* batch) paid the full table rebuild.
        encryptor.warm()


def _encrypt_chunk(public: PublicKey, items: list[tuple[int, int]]) -> list[int]:
    return [
        _encrypt_item(public, _WORKER_ENCRYPTOR, plaintext, seed)
        for plaintext, seed in items
    ]


def _pow_chunk(exponent: int, modulus: int, chunk: list[int]) -> list[int]:
    return bigint.powmod_batch(chunk, exponent, modulus)


def _mulmod_chunk(
    modulus: int, chunk: tuple[list[int], list[int]]
) -> list[int]:
    lefts, rights = chunk
    return bigint.mulmod_pairwise(lefts, rights, modulus)


class CryptoBackend:
    """Interface both backends implement (and custom ones may)."""

    name = "abstract"

    def encrypt_batch(
        self, public: PublicKey, plaintexts: list[int], rng: random.Random
    ) -> list[int]:
        raise NotImplementedError

    def partial_decrypt_batch(
        self, context: ThresholdContext, share: KeyShare, ciphertexts: list[int]
    ) -> list[int]:
        raise NotImplementedError

    def pow_batch(
        self, bases: list[int], exponent: int, modulus: int
    ) -> list[int]:
        """``[b**exponent mod modulus]`` with one shared exponent — the
        scalar-multiplication shape of a gossip exchange round (every
        lagging pair side scales its vector by the same ``2^d``)."""
        raise NotImplementedError

    def mulmod_batch(
        self, lefts: list[int], rights: list[int], modulus: int
    ) -> list[int]:
        """Elementwise ``lefts[i]·rights[i] mod modulus`` — the
        homomorphic-add shape of a whole exchange round."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (no-op for in-process backends)."""


class SerialBackend(CryptoBackend):
    """In-process reference backend; optionally table-accelerated."""

    name = "serial"

    def __init__(self, encryptor: FastEncryptor | None = None) -> None:
        self.encryptor = encryptor

    def encrypt_batch(
        self, public: PublicKey, plaintexts: list[int], rng: random.Random
    ) -> list[int]:
        seeds = derive_item_seeds(rng, len(plaintexts))
        return [
            _encrypt_item(public, self.encryptor, m, seed)
            for m, seed in zip(plaintexts, seeds)
        ]

    def partial_decrypt_batch(
        self, context: ThresholdContext, share: KeyShare, ciphertexts: list[int]
    ) -> list[int]:
        exponent = _partial_decrypt_exponent(context, share)
        return bigint.powmod_batch(ciphertexts, exponent, context.public.n_s1)

    def pow_batch(
        self, bases: list[int], exponent: int, modulus: int
    ) -> list[int]:
        return bigint.powmod_batch(bases, exponent, modulus)

    def mulmod_batch(
        self, lefts: list[int], rights: list[int], modulus: int
    ) -> list[int]:
        return bigint.mulmod_pairwise(lefts, rights, modulus)


class ProcessPoolBackend(CryptoBackend):
    """Fan batches out over worker processes.

    The executor is created lazily on first use and recreated after
    :meth:`close`, so one backend object can serve several protocol runs.
    Batches smaller than ``min_batch`` stay in-process — dispatch overhead
    would dwarf the arithmetic.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int = 0,
        encryptor: FastEncryptor | None = None,
        min_batch: int = 8,
    ) -> None:
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.encryptor = encryptor
        self.min_batch = min_batch
        self._executor: ProcessPoolExecutor | None = None
        self._serial = SerialBackend(encryptor)

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(self.encryptor, bigint.active_backend()),
            )
        return self._executor

    def _chunks(self, items: list) -> list[list]:
        per_chunk = max(1, -(-len(items) // (4 * self.max_workers)))
        return [items[i : i + per_chunk] for i in range(0, len(items), per_chunk)]

    def encrypt_batch(
        self, public: PublicKey, plaintexts: list[int], rng: random.Random
    ) -> list[int]:
        # Seeds are derived up front either way, so falling back to the
        # serial path for small batches cannot change the output.
        if len(plaintexts) < self.min_batch:
            return self._serial.encrypt_batch(public, plaintexts, rng)
        seeds = derive_item_seeds(rng, len(plaintexts))
        chunks = self._chunks(list(zip(plaintexts, seeds)))
        out: list[int] = []
        for chunk_result in self._pool().map(
            _encrypt_chunk, [public] * len(chunks), chunks
        ):
            out.extend(chunk_result)
        return out

    def partial_decrypt_batch(
        self, context: ThresholdContext, share: KeyShare, ciphertexts: list[int]
    ) -> list[int]:
        if len(ciphertexts) < self.min_batch:
            return self._serial.partial_decrypt_batch(context, share, ciphertexts)
        exponent = _partial_decrypt_exponent(context, share)
        n_s1 = context.public.n_s1
        chunks = self._chunks(list(ciphertexts))
        out: list[int] = []
        for chunk_result in self._pool().map(
            _pow_chunk, [exponent] * len(chunks), [n_s1] * len(chunks), chunks
        ):
            out.extend(chunk_result)
        return out

    def pow_batch(
        self, bases: list[int], exponent: int, modulus: int
    ) -> list[int]:
        if len(bases) < self.min_batch:
            return self._serial.pow_batch(bases, exponent, modulus)
        chunks = self._chunks(list(bases))
        out: list[int] = []
        for chunk_result in self._pool().map(
            _pow_chunk, [exponent] * len(chunks), [modulus] * len(chunks), chunks
        ):
            out.extend(chunk_result)
        return out

    def mulmod_batch(
        self, lefts: list[int], rights: list[int], modulus: int
    ) -> list[int]:
        # Per-element work is one multiply — far cheaper than a powmod —
        # so sharding only pays beyond a much larger floor (pickling two
        # ciphertexts per element is the dominant dispatch cost).
        if len(lefts) < max(self.min_batch, 512):
            return self._serial.mulmod_batch(lefts, rights, modulus)
        pair_chunks = [
            (chunk, rights[i : i + len(chunk)])
            for chunk, i in self._chunks_with_offsets(list(lefts))
        ]
        out: list[int] = []
        for chunk_result in self._pool().map(
            _mulmod_chunk, [modulus] * len(pair_chunks), pair_chunks
        ):
            out.extend(chunk_result)
        return out

    def _chunks_with_offsets(self, items: list) -> list[tuple[list, int]]:
        per_chunk = max(1, -(-len(items) // (4 * self.max_workers)))
        return [
            (items[i : i + per_chunk], i)
            for i in range(0, len(items), per_chunk)
        ]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def create_backend(
    name: str = "serial",
    workers: int = 0,
    encryptor: FastEncryptor | None = None,
) -> CryptoBackend:
    """Build a backend by name (``"serial"`` or ``"process"``)."""
    if name == "serial":
        return SerialBackend(encryptor)
    if name == "process":
        return ProcessPoolBackend(max_workers=workers, encryptor=encryptor)
    raise ValueError(f"unknown crypto backend {name!r} (use 'serial' or 'process')")
