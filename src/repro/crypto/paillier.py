"""Plain Paillier — the ``s = 1`` special case of Damgård–Jurik.

The paper's experiments use a 1024-bit key with the base scheme; this module
is a convenience façade so callers that never need the generalized
expansion can say ``paillier.encrypt(...)`` and get the familiar
``c = (1+n)^a · r^n mod n²`` behaviour.  All functions delegate to
:mod:`repro.crypto.damgard_jurik` with ``s = 1``; the batched entry points
(:func:`encrypt_batch`, :func:`add_batch`, :func:`fast_encryptor`) expose
the amortized plane at the same facade.  Like the rest of the crypto
plane, every modexp/inverse underneath routes through the pluggable
:mod:`repro.crypto.bigint` kernel, so the facade inherits the gmpy2 fast
path (bit-identically) when that backend is selected.
"""

from __future__ import annotations

import random

from . import damgard_jurik as _dj
from .keys import PrivateKey, PublicKey

__all__ = [
    "generate_keypair",
    "encrypt",
    "encrypt_batch",
    "decrypt",
    "add",
    "add_batch",
    "scalar_mul",
    "fast_encryptor",
]


def generate_keypair(
    key_bits: int, rng: random.Random | None = None, use_fixtures: bool = True
) -> PrivateKey:
    """Generate a Paillier keypair (Damgård–Jurik with ``s = 1``)."""
    return _dj.generate_keypair(key_bits, s=1, rng=rng, use_fixtures=use_fixtures)


def encrypt(
    public: PublicKey,
    plaintext: int,
    rng: random.Random | None = None,
    randomizer: int | None = None,
) -> int:
    """Encrypt ``plaintext`` under the ``s = 1`` scheme."""
    if public.s != 1:
        raise ValueError("paillier facade requires a public key with s = 1")
    return _dj.encrypt(public, plaintext, rng=rng, randomizer=randomizer)


def decrypt(private: PrivateKey, ciphertext: int) -> int:
    """Decrypt a Paillier ciphertext."""
    if private.public.s != 1:
        raise ValueError("paillier facade requires a private key with s = 1")
    return _dj.decrypt(private, ciphertext)


def encrypt_batch(
    public: PublicKey,
    plaintexts: list[int],
    rng: random.Random | None = None,
    encryptor: "_dj.FastEncryptor | None" = None,
) -> list[int]:
    """Encrypt a batch under the ``s = 1`` scheme (amortized if ``encryptor``)."""
    if public.s != 1:
        raise ValueError("paillier facade requires a public key with s = 1")
    return _dj.encrypt_batch(public, plaintexts, rng=rng, encryptor=encryptor)


def fast_encryptor(
    public: PublicKey,
    rng: random.Random,
    exponent_bits: int = 256,
    window_bits: int = 6,
) -> "_dj.FastEncryptor":
    """Build a fixed-base-table encryptor for the ``s = 1`` scheme."""
    if public.s != 1:
        raise ValueError("paillier facade requires a public key with s = 1")
    return _dj.FastEncryptor(
        public, rng, exponent_bits=exponent_bits, window_bits=window_bits
    )


def add(public: PublicKey, c1: int, c2: int) -> int:
    """Homomorphic addition (ciphertext multiplication)."""
    return _dj.homomorphic_add(public, c1, c2)


def add_batch(public: PublicKey, batch1: list[int], batch2: list[int]) -> list[int]:
    """Element-wise homomorphic addition of two batches."""
    return _dj.homomorphic_add_batch(public, batch1, batch2)


def scalar_mul(public: PublicKey, ciphertext: int, scalar: int) -> int:
    """Homomorphic scalar multiplication (ciphertext exponentiation)."""
    return _dj.homomorphic_scalar_mul(public, ciphertext, scalar)
