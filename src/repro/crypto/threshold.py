"""Non-interactive threshold decryption for Damgård–Jurik (Sec. 3.3.1, item 3).

The decryption key is split into ``n_κ`` key-shares so that decrypting
requires at least ``τ`` distinct *partial decryptions*, each computable
independently — exactly the property the epidemic decryption protocol of
Sec. 4.2.3 relies on: participants partially decrypt the (unique, converged)
encrypted means at each gossip exchange and merge their sets of partial
decryptions until ``τ`` distinct key-shares have been applied.

The construction is the standard Shoup-style one from the Damgård–Jurik
paper: with safe primes ``p = 2p' + 1`` and ``q = 2q' + 1``, the secret
exponent ``d`` satisfies ``d ≡ 0 (mod m)`` and ``d ≡ 1 (mod n^s)`` where
``m = p'q'``; it is Shamir-shared over ``Z_{n^s·m}``.  A partial decryption
is ``c_i = c^{2Δd_i}``, and combining ``τ`` of them with integer Lagrange
coefficients yields ``c^{4Δ²d} = (1+n)^{4Δ²·a}``, from which ``a`` is
extracted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from . import bigint
from .damgard_jurik import dlog_1_plus_n
from .keys import KeyShare, PrivateKey, PublicKey, ThresholdContext
from .numtheory import crt_pair, fixture_safe_primes, modinv, random_safe_prime
from .shamir import lagrange_at_zero, share_secret

__all__ = [
    "ThresholdKeypair",
    "generate_threshold_keypair",
    "partial_decrypt",
    "combine_partial_decryptions",
    "combine_partial_decryptions_batch",
]


@dataclass(frozen=True)
class ThresholdKeypair:
    """Everything the dealer produces: public key, context, and all shares.

    In deployment the bootstrap server hands each participant its single
    :class:`KeyShare` (footnote 4 of the paper); the full list exists only
    here, dealer-side.  ``private`` is the equivalent non-threshold key,
    kept for tests and for the centralized cost baseline.
    """

    context: ThresholdContext
    shares: list[KeyShare]
    private: PrivateKey

    @property
    def public(self) -> PublicKey:
        return self.context.public


def generate_threshold_keypair(
    key_bits: int,
    n_shares: int,
    threshold: int,
    s: int = 1,
    rng: random.Random | None = None,
    use_fixtures: bool = True,
) -> ThresholdKeypair:
    """Deal a threshold Damgård–Jurik key: ``n_shares`` shares, any ``threshold`` decrypt."""
    rng = rng or random.Random()  # repro-lint: allow=determinism-rng -- entropy fallback for ad-hoc use; protocol paths inject a seeded rng
    half = key_bits // 2
    if use_fixtures:
        try:
            p, q = fixture_safe_primes(half, count=2)
        except KeyError:
            p = random_safe_prime(half, rng)
            q = random_safe_prime(half, rng)
    else:
        p = random_safe_prime(half, rng)
        q = random_safe_prime(half, rng)
    n = p * q
    public = PublicKey(n=n, s=s)
    m = (p - 1) // 2 * ((q - 1) // 2)
    d = crt_pair(0, m, 1, public.n_s)
    context = ThresholdContext(public=public, n_shares=n_shares, threshold=threshold)
    shares = share_secret(d, public.n_s * m, n_shares, threshold, rng)
    # d ≡ 0 (mod m) also satisfies d·2 ≡ 0 (mod λ = 2m) — for the plain
    # PrivateKey we need d' ≡ 0 (mod λ(n)), d' ≡ 1 (mod n^s).
    lam = 2 * m
    d_plain = crt_pair(0, lam, 1, public.n_s)
    private = PrivateKey(public=public, p=p, q=q, d=d_plain)
    return ThresholdKeypair(context=context, shares=shares, private=private)


def partial_decrypt(context: ThresholdContext, share: KeyShare, ciphertext: int) -> int:
    """One participant's partial decryption ``c_i = c^{2Δ·d_i} mod n^{s+1}``."""
    exponent = 2 * context.delta * share.value
    return bigint.powmod(ciphertext, exponent, context.public.n_s1)


def combine_partial_decryptions(
    context: ThresholdContext, partials: dict[int, int]
) -> int:
    """Combine ``τ`` (or more) partial decryptions into the plaintext.

    ``partials`` maps share index → partial decryption of the *same*
    ciphertext.  Any subset of size ``τ`` suffices; extras are ignored.
    """
    if len(partials) < context.threshold:
        raise ValueError(
            f"need {context.threshold} distinct partial decryptions, "
            f"got {len(partials)}"
        )
    indices = sorted(partials)[: context.threshold]
    coefficients = lagrange_at_zero(indices, context.delta)
    public = context.public
    # One Straus interleaved multi-exponentiation instead of τ independent
    # square-and-multiply passes (negative Lagrange exponents are batch-
    # inverted inside): the squaring chain over the Δ-sized exponents is
    # paid once for the whole combination.
    combined = bigint.multi_powmod(
        [partials[index] for index in indices],
        [2 * coefficients[index] for index in indices],
        public.n_s1,
    )
    # combined == (1+n)^{4Δ²·a}; strip the 4Δ² factor in the exponent group.
    raw = dlog_1_plus_n(public, combined)
    return raw * modinv(4 * context.delta**2, public.n_s) % public.n_s


def combine_partial_decryptions_batch(
    context: ThresholdContext, partials: dict[int, list[int]]
) -> list[int]:
    """Combine the partial decryptions of a whole ciphertext batch at once.

    ``partials`` maps share index → the list of that share's partial
    decryptions, elementwise-aligned across shares (``partials[i][j]`` is
    share ``i`` applied to ciphertext ``j``).  The fusion over the batch:
    Lagrange coefficients are computed **once**; every base whose
    coefficient is negative is inverted across the *entire* batch with a
    single Montgomery batch inversion (:func:`repro.crypto.bigint.
    invert_batch` — one modular inversion total instead of one per
    element); each element then pays exactly one Straus
    :func:`~repro.crypto.bigint.multi_powmod` with non-negative exponents.
    Bit-identical to mapping :func:`combine_partial_decryptions` over the
    batch (pinned by tests), just without the per-element inversions.
    """
    if len(partials) < context.threshold:
        raise ValueError(
            f"need {context.threshold} distinct partial decryptions, "
            f"got {len(partials)}"
        )
    indices = sorted(partials)[: context.threshold]
    lengths = {len(partials[index]) for index in indices}
    if len(lengths) != 1:
        raise ValueError("partial-decryption batches must be equally long")
    (count,) = lengths
    if count == 0:
        return []
    coefficients = lagrange_at_zero(indices, context.delta)
    exponents = [2 * coefficients[index] for index in indices]
    public = context.public
    n_s1 = public.n_s1
    columns = [list(partials[index]) for index in indices]
    negative_rows = [row for row, e in enumerate(exponents) if e < 0]
    if negative_rows:
        flat = [c for row in negative_rows for c in columns[row]]
        inverted = bigint.invert_batch(flat, n_s1)
        for slot, row in enumerate(negative_rows):
            columns[row] = inverted[slot * count : (slot + 1) * count]
        exponents = [abs(e) for e in exponents]
    inv_const = modinv(4 * context.delta**2, public.n_s)
    out: list[int] = []
    for j in range(count):
        combined = bigint.multi_powmod(
            [column[j] for column in columns], exponents, n_s1
        )
        raw = dlog_1_plus_n(public, combined)
        out.append(raw * inv_const % public.n_s)
    return out
