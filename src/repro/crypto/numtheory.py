"""Number-theoretic primitives for the Damgård–Jurik cryptosystem.

Everything here operates on plain Python integers (arbitrary precision),
which is what the paper's Java ``BigInteger`` implementation used.  The
module provides:

* Miller–Rabin probabilistic primality testing,
* random prime and *safe prime* generation (``p = 2q + 1`` with ``q`` prime),
* modular inverse / CRT helpers,
* :class:`FixedBaseTable` — windowed fixed-base modular exponentiation,
  the amortization primitive behind the batched encryption plane (the
  randomizer base is fixed for a whole protocol run, so its power table
  is precomputed once and every randomizer afterwards costs only
  ``ceil(bits/window)`` multiplications instead of a full square-and-
  multiply modexp),
* a fixture table of pre-generated safe primes so that tests and benchmarks
  can build 256-bit to 1024-bit keys instantly (generating 512-bit safe
  primes from scratch in pure Python takes minutes and adds nothing to the
  reproduction -- the paper likewise fixes a single 1024-bit key).
"""

from __future__ import annotations

import random

from . import bigint

__all__ = [
    "FixedBaseTable",
    "is_probable_prime",
    "random_prime",
    "random_safe_prime",
    "fixture_safe_primes",
    "modinv",
    "crt_pair",
    "lcm",
]


class FixedBaseTable:
    """Windowed fixed-base exponentiation: ``base^e mod modulus`` in
    ``ceil(max_exponent_bits / window_bits)`` multiplications.

    The exponent is read in radix ``2^window_bits`` digits; for window ``i``
    and digit ``j`` the table stores ``base^(j · 2^(i·w))``, so an
    exponentiation is a product of one table entry per non-zero digit —
    no squarings at all.  Precomputing the table costs roughly
    ``windows · 2^w`` multiplications, which amortizes after a few dozen
    exponentiations (a protocol run performs thousands: one randomizer per
    ciphertext per iteration).

    ``pow`` raises ``ValueError`` for exponents outside
    ``[0, 2^max_exponent_bits)`` — callers size the table for their
    exponent distribution up front.
    """

    __slots__ = (
        "base",
        "modulus",
        "window_bits",
        "max_exponent_bits",
        "_rows",
        "_native",
    )

    #: Process-wide count of native-row (re)builds — the expensive part of
    #: table construction.  Tests pin that this does not scale with the
    #: number of batches a worker serves (a table is built/warmed once per
    #: process, then reused for every round).
    native_builds: int = 0

    def __init__(
        self,
        base: int,
        modulus: int,
        max_exponent_bits: int,
        window_bits: int = 6,
    ) -> None:
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        if max_exponent_bits < 1:
            raise ValueError("max_exponent_bits must be >= 1")
        if not 1 <= window_bits <= 16:
            raise ValueError("window_bits must be in [1, 16]")
        self.base = base % modulus
        self.modulus = modulus
        self.window_bits = window_bits
        self.max_exponent_bits = max_exponent_bits
        windows = -(-max_exponent_bits // window_bits)  # ceil division
        digits = (1 << window_bits) - 1  # non-zero digits per window
        # Build on the active bigint backend's native representation and
        # keep both forms: plain ints for pickling/serialization, native
        # values as the evaluation cache.
        mod_native = bigint.to_native(modulus)
        rows: list[list[int]] = []
        native_rows: list[list] = []
        b = bigint.to_native(self.base)  # base^(2^(i·w)) for window i
        for _ in range(windows):
            row = [b]
            acc = b
            for _ in range(digits - 1):
                acc = acc * b % mod_native
                row.append(acc)
            native_rows.append(row)
            rows.append([int(v) for v in row])
            # base^(2^((i+1)·w)) = (b^(2^w - 1)) · b = row[-1] · b
            b = row[-1] * b % mod_native
        self._rows = rows
        self._native = (bigint.active_backend(), native_rows, mod_native)
        FixedBaseTable.native_builds += 1

    def _native_rows(self) -> tuple[list[list], object]:
        """The rows/modulus on the *current* backend's native type.

        Rebuilt lazily when the process-global bigint backend changed since
        construction (or after unpickling, which drops the cache).
        """
        backend = bigint.active_backend()
        if self._native is None or self._native[0] != backend:
            self._native = (
                backend,
                [[bigint.to_native(v) for v in row] for row in self._rows],
                bigint.to_native(self.modulus),
            )
            FixedBaseTable.native_builds += 1
        return self._native[1], self._native[2]

    def warm(self) -> "FixedBaseTable":
        """Materialize the native-row cache for the *current* backend now.

        Pool workers call this from their initializer (after re-selecting
        the parent's bigint backend), hoisting the rebuild that unpickling
        otherwise defers into the first batch of every fresh worker.
        """
        self._native_rows()
        return self

    def __getstate__(self) -> dict:
        # The native cache may hold backend-specific types (mpz) and is
        # cheap to rebuild — ship only the plain-int table.
        return {
            "base": self.base,
            "modulus": self.modulus,
            "window_bits": self.window_bits,
            "max_exponent_bits": self.max_exponent_bits,
            "_rows": self._rows,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._native = None

    def pow(self, exponent: int) -> int:
        """Return ``base^exponent mod modulus`` using the precomputed rows."""
        if exponent < 0 or exponent.bit_length() > self.max_exponent_bits:
            raise ValueError(
                f"exponent must be in [0, 2^{self.max_exponent_bits})"
            )
        rows, modulus = self._native_rows()
        mask = (1 << self.window_bits) - 1
        result = 1
        window = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * rows[window][digit - 1] % modulus
            exponent >>= self.window_bits
            window += 1
        return int(result % modulus)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with ``rounds`` witnesses.

    The error probability is at most ``4**-rounds`` for composite ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    rng = rng or random
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = bigint.powmod(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Return a random safe prime ``p = 2q + 1`` with exactly ``bits`` bits.

    Safe primes are what the threshold variant of Damgård–Jurik requires:
    with ``p = 2p' + 1`` and ``q = 2q' + 1``, the secret Shamir modulus is
    ``m = p'q'``.
    """
    if bits < 4:
        raise ValueError("a safe prime needs at least 4 bits")
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if not is_probable_prime(q, rounds=20, rng=rng):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


#: Pre-generated safe primes, keyed by bit length.  Generated offline with
#: Miller–Rabin (40 rounds); see module docstring for why they are embedded.
_SAFE_PRIME_FIXTURES: dict[int, list[int]] = {
    64: [
        14897046672217588199,
        14178776599924588307,
        15393115191447268427,
        10458455445404678879,
    ],
    96: [
        47222442388102515170836202243,
        52774362830454563031515189039,
        63052048229077480577613561203,
        40501624764932308242761781599,
    ],
    128: [
        220424696421893434127799946122096314987,
        267502274774597202767012973212828797343,
        312015602571053440305595457796093131603,
        219573957808944365996801560228304190167,
    ],
    192: [
        5880582777307843120827294707521675229618032528818619991027,
        5183435659490334833677538252601765234946777894394001448439,
        5964218080930234503322231867167178237274689845799549021199,
        6139320963126055734501916747027323957058262864354110080479,
    ],
    256: [
        82505111318128096585133210098176771300954997033852603878852767604005134515347,
        108739848806812124297295309339910808516749669551044951104906414744007422811567,
        67664754409348690685130775322563885554542438739014804579626224568851561366899,
        79673430306924749542037436427271180033053000468781939662773672416414905879787,
    ],
    512: [
        11534223474509878178987097692734071885360564624935332824811404002210801646364897441443711197338884711881052009160475476020935820788307623730764201346047267,
        7927998207352882824249442586803189286311041565802118953489440128849634142062420355273077544646157871902872725897297622145628779732506863906765926562273903,
        8902618841226777744087376015252960596822130929463558165775471057200643476867370673965452079050688822740064711760718600883759533800788613842821598646523739,
        11656412083879556716356238818586996911779792073617729316841015719806471236162925040777059926007461641726332683874769440713171951622638274026554998855224679,
    ],
    1024: [
        172566520780718927005566931585710880089337578227696480607696890652502743361241263182240830426828162270532966250711870154546205372931098797188652127426584609710909450244490412671178574054358952088250258855369066803107800256448243163616092280447618244260182715198635843336861211808552157596387038222975918621619,
        145380619645005229640558065143794950097440559009253440597082340632999731661573996636521820135332413068781392546932029428922968506437747871760044875334172310678622614187067119587378010600309699938473354747218828433455209147870097113396654664834610285578873233848139480940746720704957238369748632273889479506503,
        155297592070212356302711952057147281821703665806060163101546477196320723443014992996071791766240662623222305596630715003662443276680541317940740112566774159676643827071895730457717014072754595344522594118779040813555539893161556648108406607795712287283902195096275840602966000692135297130772353946857523339103,
        116570906493454959233032341422202108218388732780268301905856834774776051703224298991666006445033880552744938445299187543335263653234756814515622519734484961709028505163915790457359056521464713702296209945684451613675081648658672416642654802201184397099565603409554766431712583675687475752830000289341019212499,
    ],
}


def _register_fixtures(table: dict[int, list[int]]) -> None:
    for bits, primes in table.items():
        slot = _SAFE_PRIME_FIXTURES.setdefault(bits, [])
        for p in primes:
            if p not in slot:
                slot.append(p)


def fixture_safe_primes(bits: int, count: int = 2) -> list[int]:
    """Return ``count`` distinct pre-generated safe primes of ``bits`` bits.

    Raises ``KeyError`` if no fixture of that size exists (callers can fall
    back to :func:`random_safe_prime`).
    """
    primes = _SAFE_PRIME_FIXTURES.get(bits, [])
    if len(primes) < count:
        raise KeyError(
            f"no fixture with {count} safe primes of {bits} bits; "
            f"available sizes: {sorted(_SAFE_PRIME_FIXTURES)}"
        )
    return primes[:count]


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m`` (raises if not invertible).

    Routed through the pluggable :mod:`repro.crypto.bigint` kernel, so
    every existing call site inherits the gmpy2 fast path when selected.
    """
    return bigint.invert(a, m)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Solve ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)`` for coprime moduli.

    Used to build the Damgård–Jurik decryption exponent ``d`` with
    ``d ≡ 0 (mod m)`` and ``d ≡ 1 (mod n^s)``.
    """
    g = gcd(m1, m2)
    if g != 1:
        raise ValueError("crt_pair requires coprime moduli")
    inv = modinv(m1 % m2, m2)
    x = r1 + m1 * ((r2 - r1) * inv % m2)
    return x % (m1 * m2)


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (non-negative)."""
    while b:
        a, b = b, a % b
    return abs(a)


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    return a // gcd(a, b) * b
