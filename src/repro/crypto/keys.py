"""Key material containers for the (threshold) Damgård–Jurik cryptosystem.

The paper (Sec. 3.3.1) requires a semantically-secure, additively
homomorphic scheme with *non-interactive threshold decryption*, and names
Damgård–Jurik as its instance.  These dataclasses carry the public key
``χ = (n, g)``, the plain private key (for the centralized baseline and for
tests), and the per-participant key-shares ``κ_i`` used by the epidemic
decryption of Sec. 4.2.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "PublicKey",
    "PrivateKey",
    "KeyShare",
    "ThresholdContext",
]


@dataclass(frozen=True)
class PublicKey:
    """Public encryption key ``χ = (n, g)`` with expansion degree ``s``.

    The plaintext space is ``Z_{n^s}`` and the ciphertext space ``Z*_{n^{s+1}}``.
    ``g`` is fixed to ``1 + n`` (the standard choice, which makes the
    exponentiation ``g^a`` a binomial expansion instead of a modexp).
    """

    n: int
    s: int = 1

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("modulus n must be a product of two primes")
        if self.s < 1:
            raise ValueError("expansion degree s must be >= 1")

    @property
    def g(self) -> int:
        """The generator ``1 + n``."""
        return self.n + 1

    @property
    def n_s(self) -> int:
        """Plaintext modulus ``n^s``."""
        return self.n**self.s

    @property
    def n_s1(self) -> int:
        """Ciphertext modulus ``n^{s+1}``."""
        return self.n ** (self.s + 1)

    @property
    def key_bits(self) -> int:
        """Bit length of the RSA modulus (the paper's "key size")."""
        return self.n.bit_length()

    @property
    def plaintext_bits(self) -> int:
        """Usable plaintext capacity in bits (conservative)."""
        return self.n_s.bit_length() - 1

    @property
    def ciphertext_bytes(self) -> int:
        """Wire size of one ciphertext, as used by the Fig. 5(b) bandwidth model."""
        return (self.n_s1.bit_length() + 7) // 8


@dataclass(frozen=True)
class PrivateKey:
    """Non-threshold private key: the factorization and the CRT exponent ``d``.

    ``d`` satisfies ``d ≡ 0 (mod λ(n))`` and ``d ≡ 1 (mod n^s)`` so that
    ``c^d = (1+n)^a (mod n^{s+1})`` for any ciphertext ``c`` of ``a``.
    """

    public: PublicKey
    p: int
    q: int
    d: int

    @property
    def n(self) -> int:
        return self.public.n


@dataclass(frozen=True)
class KeyShare:
    """One participant's private key-share ``κ_i`` (Table 1).

    ``index`` is the (non-zero) Shamir evaluation point and ``value`` the
    polynomial evaluation ``f(index) mod n^s·m``.  The paper couples each
    share with a *random key-share identifier*; we keep the identifier
    separate (it lives in the gossip layer) so shares stay reusable.
    """

    index: int
    value: int


@dataclass(frozen=True)
class ThresholdContext:
    """Public threshold-decryption parameters shared by all participants.

    ``n_shares`` is the paper's ``n_κ`` and ``threshold`` its ``τ``: at least
    ``τ`` distinct partial decryptions are needed to recover a plaintext.
    ``delta`` is Shoup's ``Δ = n_shares!`` used to clear Lagrange denominators.
    """

    public: PublicKey
    n_shares: int
    threshold: int
    delta: int = field(init=False)

    def __post_init__(self) -> None:
        if not 1 <= self.threshold <= self.n_shares:
            raise ValueError("need 1 <= threshold <= n_shares")
        object.__setattr__(self, "delta", math.factorial(self.n_shares))
