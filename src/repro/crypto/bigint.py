"""Pluggable bigint arithmetic kernel for the crypto plane.

Every hot modular-arithmetic operation in the repository funnels through
this module so the underlying implementation is swappable without touching
protocol code.  Two backends exist:

* ``python`` — CPython's built-in arbitrary-precision integers (the
  default; zero new dependencies, always available);
* ``gmpy2`` — GMP-backed ``mpz`` arithmetic, a *soft* dependency that is
  used only when the package is importable and selected.  GMP's
  subquadratic multiplication and sliding-window ``powmod`` give 3–10×
  on the 1024–2048-bit operands the Damgård–Jurik plane works with.

Both backends are exact integer arithmetic, so every result is
**bit-identical** across them — backend choice is a pure speed knob and
must never change a ciphertext, a decryption, or a protocol trace.

Selection
---------
The active backend is process-global (worker processes of the pool
backend re-select it from the name shipped in their initializer):

* ``REPRO_BIGINT_BACKEND`` environment variable (``auto`` | ``python`` |
  ``gmpy2``), read at import time and whenever ``auto`` is re-resolved;
* :func:`select_backend` — programmatic selection, used by
  ``ChiaroscuroRun`` to apply ``ChiaroscuroParams.bigint_backend`` (the
  RunSpec field) and by the CLI ``--bigint-backend`` flag;
* :func:`use_backend` — a context manager for tests and benchmarks.

``auto`` defers to the environment variable when set, else picks
``gmpy2`` when importable and ``python`` otherwise.  Requesting
``gmpy2`` explicitly when the package is absent raises ``ValueError``
(the soft-dependency boundary is loud, never silent).

Primitives
----------
Beyond :func:`powmod` / :func:`invert`, the kernel exposes the batched
shapes the protocol actually exhibits:

* :func:`powmod_batch` — many bases, one shared exponent/modulus (the
  partial-decryption shape: ``c_i^{2Δd}`` over a whole means vector);
* :func:`invert_batch` — Montgomery's batch-inversion trick: ``n``
  inverses for the price of one inversion plus ``3(n−1)``
  multiplications;
* :func:`multi_powmod` — Straus (interleaved) multi-exponentiation
  ``∏ b_i^{e_i} mod m`` with one shared squaring chain, the threshold
  Lagrange-combination shape;
* :func:`mulmod_pairwise` — elementwise products ``a_i·b_i mod m`` over
  two equally long vectors, the homomorphic-add shape of a whole gossip
  exchange round (every pair's ciphertext vectors merge at once);
* :func:`mulmod_reduce` — a product chain reduced modulo ``m``; part of
  the kernel's public surface for extensions (the built-in hot paths use
  the shapes above, with the fixed-base table running its own native
  accumulation loop).

All entry points accept and return plain Python ``int`` — native types
(``mpz``) never leak to callers, so serialization, hashing and pickling
behaviour is identical whichever backend computed a value.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "BACKEND_ENV",
    "active_backend",
    "available_backends",
    "invert",
    "invert_batch",
    "multi_powmod",
    "mulmod_pairwise",
    "mulmod_reduce",
    "powmod",
    "powmod_batch",
    "resolve_backend",
    "select_backend",
    "to_native",
    "use_backend",
]

#: Environment variable consulted when resolving the ``auto`` backend.
BACKEND_ENV = "REPRO_BIGINT_BACKEND"

try:  # soft dependency: pure-python remains the zero-dependency default
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - exercised on gmpy2-less installs
    _gmpy2 = None


class _PythonBackend:
    """CPython built-in integers — the always-available reference."""

    name = "python"

    @staticmethod
    def to_native(value: int) -> int:
        return int(value)

    # ``pow`` already implements negative exponents (modular inverse) and
    # raises ValueError for non-invertible bases — the contract callers
    # rely on.
    powmod = staticmethod(pow)

    @staticmethod
    def invert(value: int, modulus: int) -> int:
        return pow(value, -1, modulus)


class _Gmpy2Backend:
    """GMP-backed ``mpz`` arithmetic via :mod:`gmpy2` (soft dependency)."""

    name = "gmpy2"

    @staticmethod
    def to_native(value: int):
        return _gmpy2.mpz(value)

    @staticmethod
    def powmod(base: int, exponent: int, modulus: int) -> int:
        try:
            return int(_gmpy2.powmod(base, exponent, modulus))
        except (ValueError, ZeroDivisionError) as exc:
            # Negative exponent of a non-invertible base: match pow()'s
            # error type so both backends fail identically.
            raise ValueError(f"base is not invertible mod {modulus}") from exc

    @staticmethod
    def invert(value: int, modulus: int) -> int:
        try:
            result = int(_gmpy2.invert(value, modulus))
        except ZeroDivisionError as exc:
            raise ValueError(f"base is not invertible mod {modulus}") from exc
        if result == 0 and modulus != 1:
            # gmpy2 < 2.1 signalled "no inverse" with 0 instead of raising.
            raise ValueError(f"base is not invertible mod {modulus}")
        return result


_BACKENDS = {"python": _PythonBackend}
if _gmpy2 is not None:
    _BACKENDS["gmpy2"] = _Gmpy2Backend


def available_backends() -> tuple[str, ...]:
    """Names of the backends importable in this process."""
    return tuple(_BACKENDS)


def resolve_backend(name: str | None = None) -> str:
    """Resolve a requested backend name to a concrete one, without side
    effects.

    ``None``/``""``/``"auto"`` consult :data:`BACKEND_ENV`; an unset (or
    itself-``auto``) variable resolves to ``gmpy2`` when importable, else
    ``python``.  Unknown names, and an explicit ``gmpy2`` request without
    the package, raise ``ValueError``.
    """
    requested = (name or "auto").strip().lower()
    if requested == "auto":
        requested = (os.environ.get(BACKEND_ENV) or "auto").strip().lower()
    if requested == "auto":
        return "gmpy2" if "gmpy2" in _BACKENDS else "python"
    if requested == "python":
        return "python"
    if requested == "gmpy2":
        if "gmpy2" not in _BACKENDS:
            raise ValueError(
                "bigint backend 'gmpy2' requested but the gmpy2 package is "
                "not installed (pure-python is the default; install gmpy2 "
                "for the fast path)"
            )
        return "gmpy2"
    raise ValueError(
        f"unknown bigint backend {requested!r} (use 'auto', 'python' or 'gmpy2')"
    )


def select_backend(name: str | None = None) -> str:
    """Select the process-global backend; returns the concrete name."""
    global _ACTIVE
    _ACTIVE = _BACKENDS[resolve_backend(name)]
    return _ACTIVE.name


def active_backend() -> str:
    """Concrete name of the backend currently in effect."""
    return _ACTIVE.name


@contextmanager
def use_backend(name: str | None) -> Iterator[str]:
    """Temporarily select a backend (tests, benchmarks, comparisons)."""
    previous = _ACTIVE.name
    try:
        yield select_backend(name)
    finally:
        select_backend(previous)


try:
    _ACTIVE = _BACKENDS[resolve_backend("auto")]
except ValueError as _exc:  # bad REPRO_BIGINT_BACKEND: never break imports
    warnings.warn(f"{_exc}; falling back to the python bigint backend")
    _ACTIVE = _PythonBackend


# ------------------------------------------------------------- primitives


def to_native(value: int):
    """The active backend's native integer (``int`` or ``mpz``).

    For building arithmetic-heavy local loops (e.g. the fixed-base table)
    on the fast representation; convert back with ``int()`` before the
    value leaves the crypto layer.
    """
    return _ACTIVE.to_native(value)


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base**exponent mod modulus``; negative exponents use the modular
    inverse (``ValueError`` when it does not exist)."""
    return _ACTIVE.powmod(base, exponent, modulus)


def powmod_batch(bases: Sequence[int], exponent: int, modulus: int) -> list[int]:
    """``[b**exponent mod modulus for b in bases]`` with one shared
    exponent — the partial-decryption shape."""
    backend = _ACTIVE
    if backend is _PythonBackend:
        return [pow(b, exponent, modulus) for b in bases]
    e = _gmpy2.mpz(exponent)
    m = _gmpy2.mpz(modulus)
    try:
        return [int(_gmpy2.powmod(b, e, m)) for b in bases]
    except (ValueError, ZeroDivisionError) as exc:
        # Same normalization as _Gmpy2Backend.powmod: both backends raise
        # ValueError for a negative exponent of a non-invertible base.
        raise ValueError(f"base is not invertible mod {modulus}") from exc


def invert(value: int, modulus: int) -> int:
    """Modular inverse of ``value`` (``ValueError`` if not invertible)."""
    return _ACTIVE.invert(value, modulus)


def invert_batch(values: Sequence[int], modulus: int) -> list[int]:
    """All inverses ``v⁻¹ mod modulus`` via Montgomery's batch trick.

    One modular inversion plus ``3(n−1)`` multiplications instead of ``n``
    inversions: prefix products are accumulated, the full product is
    inverted once, and the individual inverses are peeled off backwards.
    Raises ``ValueError`` if *any* element is non-invertible (the failure
    is detected on the aggregated product, exactly like the one-inversion
    cost profile implies).
    """
    if not values:
        return []
    backend = _ACTIVE
    m = backend.to_native(modulus)
    native = [backend.to_native(v % modulus) for v in values]
    prefix = []
    acc = backend.to_native(1)
    for v in native:
        prefix.append(acc)
        acc = acc * v % m
    acc = backend.invert(acc, modulus)  # raises ValueError when gcd ≠ 1
    acc = backend.to_native(acc)
    out = [0] * len(native)
    for i in range(len(native) - 1, -1, -1):
        out[i] = int(prefix[i] * acc % m)
        acc = acc * native[i] % m
    return out


def mulmod_pairwise(
    lefts: Sequence[int], rights: Sequence[int], modulus: int
) -> list[int]:
    """Elementwise ``lefts[i]·rights[i] mod modulus`` over two vectors.

    The homomorphic-add shape of one vectorized gossip round: every
    scheduled pair merges its whole ciphertext vector in a single batched
    call.  Native conversion happens once per operand (not per operation),
    which is where the gmpy2 backend recovers its per-element overhead.
    """
    if len(lefts) != len(rights):
        raise ValueError("mulmod_pairwise needs equally long vectors")
    backend = _ACTIVE
    if backend is _PythonBackend:
        return [a * b % modulus for a, b in zip(lefts, rights)]
    m = backend.to_native(modulus)
    return [
        int(backend.to_native(a) * backend.to_native(b) % m)
        for a, b in zip(lefts, rights)
    ]


def mulmod_reduce(values: Sequence[int], modulus: int) -> int:
    """The product ``∏ values mod modulus`` (empty product is ``1 % m``)."""
    backend = _ACTIVE
    m = backend.to_native(modulus)
    acc = backend.to_native(1)
    for v in values:
        acc = acc * v % m
    return int(acc % m)


#: Bases per Straus group: each group precomputes ``2^G − 1`` subset
#: products, and every exponent bit costs one lookup-multiply per group.
_STRAUS_GROUP = 4


def multi_powmod(
    bases: Sequence[int], exponents: Sequence[int], modulus: int
) -> int:
    """``∏ bases[i]**exponents[i] mod modulus`` by Straus interleaving.

    One shared squaring chain over the longest exponent replaces the per-
    base square-and-multiply: for ``n`` bases of ``B``-bit exponents the
    cost drops from ``n·B`` squarings to ``B`` squarings plus at most
    ``B·⌈n/4⌉`` table multiplies — the threshold share-combination shape,
    where every partial decryption carries a ``Δ``-sized Lagrange
    exponent.  Negative exponents are handled by batch-inverting the
    affected bases up front (one inversion total, Montgomery trick).
    """
    if len(bases) != len(exponents):
        raise ValueError("multi_powmod needs equally many bases and exponents")
    if modulus < 1:
        raise ValueError("modulus must be >= 1")
    reduced = [b % modulus for b in bases]
    negative = [i for i, e in enumerate(exponents) if e < 0]
    if negative:
        inverted = invert_batch([reduced[i] for i in negative], modulus)
        for slot, i in enumerate(negative):
            reduced[i] = inverted[slot]
        exponents = [abs(e) for e in exponents]
    backend = _ACTIVE
    m = backend.to_native(modulus)
    pairs = [
        (backend.to_native(b), int(e))
        for b, e in zip(reduced, exponents)
        if e != 0
    ]
    if not pairs:
        return 1 % modulus
    one = backend.to_native(1)
    groups = []
    for start in range(0, len(pairs), _STRAUS_GROUP):
        chunk = pairs[start : start + _STRAUS_GROUP]
        table = [one] * (1 << len(chunk))
        for bit, (base, _) in enumerate(chunk):
            step = 1 << bit
            for idx in range(step, step << 1):
                table[idx] = table[idx - step] * base % m
        groups.append((table, [e for _, e in chunk]))
    result = one
    for bit in range(max(e.bit_length() for _, e in pairs) - 1, -1, -1):
        result = result * result % m
        for table, exps in groups:
            idx = 0
            for pos, e in enumerate(exps):
                if (e >> bit) & 1:
                    idx |= 1 << pos
            if idx:
                result = result * table[idx] % m
    return int(result % m)
