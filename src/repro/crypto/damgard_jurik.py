"""The Damgård–Jurik generalized Paillier cryptosystem (Sec. 3.3.1).

Implements the scheme exactly as the paper lists it:

1. public key ``χ = (n, g)`` with ``n`` an RSA modulus and ``g = 1 + n`` in
   ``Z*_{n^{s+1}}``;
2. encryption ``E_χ(a) = g^a · r^{n^s} mod n^{s+1}``;
3. homomorphic addition ``E(a) +_h E(b) = E(a) × E(b)``;
4. scalar multiplication ``E(a)^k = E(k·a)`` (used by the Alg. 2 scaling
   update rule of the EESum protocol);
5. decryption by raising to the CRT exponent ``d`` and extracting the
   discrete log of ``(1+n)^a`` with Damgård–Jurik's recursive algorithm.

Threshold decryption lives in :mod:`repro.crypto.threshold`.
"""

from __future__ import annotations

import math
import random

from .keys import PrivateKey, PublicKey
from .numtheory import (
    crt_pair,
    fixture_safe_primes,
    gcd,
    lcm,
    modinv,
    random_safe_prime,
)

__all__ = [
    "generate_keypair",
    "encrypt",
    "decrypt",
    "homomorphic_add",
    "homomorphic_scalar_mul",
    "encrypt_zero_pool",
    "powers_of_g",
    "dlog_1_plus_n",
]


def generate_keypair(
    key_bits: int,
    s: int = 1,
    rng: random.Random | None = None,
    use_fixtures: bool = True,
) -> PrivateKey:
    """Generate an ``s``-expansion Damgård–Jurik keypair with a ``key_bits`` modulus.

    ``use_fixtures`` pulls pre-generated safe primes (fast, deterministic —
    fine for a reproduction; the paper likewise fixes one 1024-bit key).  Set
    it to ``False`` to generate fresh safe primes with ``rng``.
    """
    rng = rng or random.Random()
    half = key_bits // 2
    if use_fixtures:
        try:
            p, q = fixture_safe_primes(half, count=2)
        except KeyError:
            p = random_safe_prime(half, rng)
            q = random_safe_prime(half, rng)
    else:
        p = random_safe_prime(half, rng)
        q = random_safe_prime(half, rng)
    if p == q:
        raise ValueError("p and q must differ")
    n = p * q
    public = PublicKey(n=n, s=s)
    lam = lcm(p - 1, q - 1)
    if gcd(lam, public.n_s) != 1:
        raise ValueError("lambda(n) and n^s must be coprime (use safe primes)")
    d = crt_pair(0, lam, 1, public.n_s)
    return PrivateKey(public=public, p=p, q=q, d=d)


def powers_of_g(public: PublicKey, a: int) -> int:
    """Compute ``(1+n)^a mod n^{s+1}`` via binomial expansion.

    ``(1+n)^a = Σ_{i=0}^{s} C(a, i)·n^i (mod n^{s+1})`` — only ``s + 1``
    terms survive, making this dramatically cheaper than a modexp and the
    dominant reason Paillier-family encryption is practical on a device.
    """
    n_s1 = public.n_s1
    a %= public.n_s
    result = 1
    binomial = 1  # C(a, i) mod n^{s+1}, built incrementally
    for i in range(1, public.s + 1):
        binomial = binomial * ((a - i + 1) % n_s1) % n_s1
        binomial = binomial * modinv(i, n_s1) % n_s1
        result = (result + binomial * pow(public.n, i, n_s1)) % n_s1
    return result


def encrypt(
    public: PublicKey,
    plaintext: int,
    rng: random.Random | None = None,
    randomizer: int | None = None,
) -> int:
    """Encrypt ``plaintext ∈ Z_{n^s}`` under ``public``.

    ``randomizer`` may be a pre-computed ``r^{n^s} mod n^{s+1}`` value (see
    :func:`encrypt_zero_pool`) so bulk encryption amortizes the modexp.
    """
    if randomizer is None:
        rng = rng or random.Random()
        while True:
            r = rng.randrange(1, public.n)
            if gcd(r, public.n) == 1:
                break
        randomizer = pow(r, public.n_s, public.n_s1)
    return powers_of_g(public, plaintext) * randomizer % public.n_s1


def encrypt_zero_pool(public: PublicKey, count: int, rng: random.Random) -> list[int]:
    """Pre-compute ``count`` fresh randomizers ``r^{n^s} mod n^{s+1}``.

    Each is an encryption of zero; multiplying one into a deterministic
    ``(1+n)^a`` yields a semantically-secure ciphertext.  Devices would do
    this in idle time — the paper's Fig. 5(a) "Encrypt" cost is dominated by
    exactly this modexp.
    """
    pool = []
    for _ in range(count):
        while True:
            r = rng.randrange(1, public.n)
            if gcd(r, public.n) == 1:
                break
        pool.append(pow(r, public.n_s, public.n_s1))
    return pool


def homomorphic_add(public: PublicKey, c1: int, c2: int) -> int:
    """``E(a) +_h E(b) = E(a)·E(b) mod n^{s+1}`` (paper Sec. 3.3.1, item 4)."""
    return c1 * c2 % public.n_s1


def homomorphic_scalar_mul(public: PublicKey, ciphertext: int, scalar: int) -> int:
    """``E(a) ×_h k = E(a)^k = E(k·a)``; negative scalars use the inverse."""
    if scalar < 0:
        ciphertext = modinv(ciphertext, public.n_s1)
        scalar = -scalar
    return pow(ciphertext, scalar, public.n_s1)


def dlog_1_plus_n(public: PublicKey, u: int) -> int:
    """Recover ``a`` from ``u = (1+n)^a mod n^{s+1}`` (Damgård–Jurik's dLog).

    For ``s = 1`` this is the familiar Paillier ``L`` function
    ``(u − 1) / n``; for larger ``s`` it runs the published recursive
    lifting, reconstructing ``a mod n^j`` for ``j = 1..s``.
    """
    n = public.n
    a = 0
    for j in range(1, public.s + 1):
        n_j = n**j
        t1 = (u % n ** (j + 1) - 1) // n  # L(u mod n^{j+1})
        t2 = a
        i = a
        for k in range(2, j + 1):
            i -= 1
            t2 = t2 * i % n_j
            t1 = (t1 - t2 * pow(n, k - 1, n_j) * modinv(math.factorial(k), n_j)) % n_j
        a = t1 % n_j
    return a


def decrypt(private: PrivateKey, ciphertext: int) -> int:
    """Decrypt with the CRT exponent: ``c^d = (1+n)^a``, then extract ``a``."""
    public = private.public
    u = pow(ciphertext, private.d, public.n_s1)
    return dlog_1_plus_n(public, u)
