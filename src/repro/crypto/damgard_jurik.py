"""The Damgård–Jurik generalized Paillier cryptosystem (Sec. 3.3.1).

Implements the scheme exactly as the paper lists it:

1. public key ``χ = (n, g)`` with ``n`` an RSA modulus and ``g = 1 + n`` in
   ``Z*_{n^{s+1}}``;
2. encryption ``E_χ(a) = g^a · r^{n^s} mod n^{s+1}``;
3. homomorphic addition ``E(a) +_h E(b) = E(a) × E(b)``;
4. scalar multiplication ``E(a)^k = E(k·a)`` (used by the Alg. 2 scaling
   update rule of the EESum protocol);
5. decryption by raising to the CRT exponent ``d`` and extracting the
   discrete log of ``(1+n)^a`` with Damgård–Jurik's recursive algorithm.

Threshold decryption lives in :mod:`repro.crypto.threshold`.

Cost profile (what the batched plane exploits):

* ``g^a`` with ``g = 1 + n`` is a binomial expansion — ``s`` multiplications,
  *not* a modexp, so it needs no precomputation table;
* the randomizer ``r^{n^s} mod n^{s+1}`` is the one genuine modexp per
  encryption and dominates the Fig. 5(a) "Encrypt" bar.
  :class:`FastEncryptor` amortizes it with a fixed-base window table over a
  run-fixed base ``h = r₀^{n^s}`` (an encryption of zero): each fresh
  randomizer is ``h^t`` for a short random exponent ``t``, costing
  ``ceil(bits(t)/w)`` multiplications instead of a ``bits(n^s)``-bit
  square-and-multiply.  This is the classic Damgård–Jurik–Nielsen
  precomputation trade: semantic security then additionally rests on the
  hardness of discrete logs with short exponents in the randomizer
  subgroup — a fine trade for a reproduction, and the plain per-ciphertext
  path stays available (``randomizer=None``).
"""

from __future__ import annotations

import math
import random

from . import bigint
from .keys import PrivateKey, PublicKey
from .numtheory import (
    FixedBaseTable,
    crt_pair,
    fixture_safe_primes,
    gcd,
    lcm,
    modinv,
    random_safe_prime,
)

__all__ = [
    "FastEncryptor",
    "generate_keypair",
    "encrypt",
    "encrypt_batch",
    "decrypt",
    "homomorphic_add",
    "homomorphic_add_batch",
    "homomorphic_scalar_mul",
    "encrypt_zero_pool",
    "powers_of_g",
    "dlog_1_plus_n",
]


def generate_keypair(
    key_bits: int,
    s: int = 1,
    rng: random.Random | None = None,
    use_fixtures: bool = True,
) -> PrivateKey:
    """Generate an ``s``-expansion Damgård–Jurik keypair with a ``key_bits`` modulus.

    ``use_fixtures`` pulls pre-generated safe primes (fast, deterministic —
    fine for a reproduction; the paper likewise fixes one 1024-bit key).  Set
    it to ``False`` to generate fresh safe primes with ``rng``.
    """
    rng = rng or random.Random()  # repro-lint: allow=determinism-rng -- entropy fallback for ad-hoc use; protocol paths inject a seeded rng
    half = key_bits // 2
    if use_fixtures:
        try:
            p, q = fixture_safe_primes(half, count=2)
        except KeyError:
            p = random_safe_prime(half, rng)
            q = random_safe_prime(half, rng)
    else:
        p = random_safe_prime(half, rng)
        q = random_safe_prime(half, rng)
    if p == q:
        raise ValueError("p and q must differ")
    n = p * q
    public = PublicKey(n=n, s=s)
    lam = lcm(p - 1, q - 1)
    if gcd(lam, public.n_s) != 1:
        raise ValueError("lambda(n) and n^s must be coprime (use safe primes)")
    d = crt_pair(0, lam, 1, public.n_s)
    return PrivateKey(public=public, p=p, q=q, d=d)


def powers_of_g(public: PublicKey, a: int) -> int:
    """Compute ``(1+n)^a mod n^{s+1}`` via binomial expansion.

    ``(1+n)^a = Σ_{i=0}^{s} C(a, i)·n^i (mod n^{s+1})`` — only ``s + 1``
    terms survive, making this dramatically cheaper than a modexp and the
    dominant reason Paillier-family encryption is practical on a device.
    """
    n_s1 = public.n_s1
    a %= public.n_s
    result = 1
    binomial = 1  # C(a, i) mod n^{s+1}, built incrementally
    for i in range(1, public.s + 1):
        binomial = binomial * ((a - i + 1) % n_s1) % n_s1
        binomial = binomial * modinv(i, n_s1) % n_s1
        result = (result + binomial * bigint.powmod(public.n, i, n_s1)) % n_s1
    return result


def encrypt(
    public: PublicKey,
    plaintext: int,
    rng: random.Random | None = None,
    randomizer: int | None = None,
) -> int:
    """Encrypt ``plaintext ∈ Z_{n^s}`` under ``public``.

    ``randomizer`` may be a pre-computed ``r^{n^s} mod n^{s+1}`` value (see
    :func:`encrypt_zero_pool`) so bulk encryption amortizes the modexp.
    """
    if randomizer is None:
        rng = rng or random.Random()  # repro-lint: allow=determinism-rng -- entropy fallback for ad-hoc use; protocol paths inject a seeded rng
        while True:
            r = rng.randrange(1, public.n)
            if gcd(r, public.n) == 1:
                break
        randomizer = bigint.powmod(r, public.n_s, public.n_s1)
    return powers_of_g(public, plaintext) * randomizer % public.n_s1


def encrypt_zero_pool(public: PublicKey, count: int, rng: random.Random) -> list[int]:
    """Pre-compute ``count`` fresh randomizers ``r^{n^s} mod n^{s+1}``.

    Each is an encryption of zero; multiplying one into a deterministic
    ``(1+n)^a`` yields a semantically-secure ciphertext.  Devices would do
    this in idle time — the paper's Fig. 5(a) "Encrypt" cost is dominated by
    exactly this modexp.
    """
    pool = []
    for _ in range(count):
        while True:
            r = rng.randrange(1, public.n)
            if gcd(r, public.n) == 1:
                break
        pool.append(bigint.powmod(r, public.n_s, public.n_s1))
    return pool


class FastEncryptor:
    """Amortized encryption: fixed-base randomizer powers over ``h = r₀^{n^s}``.

    The base ``h`` is itself a fresh encryption of zero drawn from ``rng`` at
    construction time; every randomizer afterwards is ``h^t`` with ``t`` a
    fresh ``exponent_bits``-bit exponent, evaluated through a precomputed
    :class:`FixedBaseTable` (see the module docstring for the cost model and
    the security trade).  One instance is meant to live for a whole protocol
    run and be shared by every local encryption of that run.

    The object is picklable (it is shipped once to each worker of the
    process-pool backend), and :meth:`randomizer` is deterministic given the
    caller's ``rng`` state — reproducibility across backends relies on that.
    """

    def __init__(
        self,
        public: PublicKey,
        rng: random.Random,
        exponent_bits: int = 256,
        window_bits: int = 6,
    ) -> None:
        if exponent_bits < 64:
            raise ValueError("exponent_bits must be >= 64")
        self.public = public
        self.exponent_bits = exponent_bits
        while True:
            r0 = rng.randrange(1, public.n)
            if gcd(r0, public.n) == 1:
                break
        h = bigint.powmod(r0, public.n_s, public.n_s1)
        self.table = FixedBaseTable(h, public.n_s1, exponent_bits, window_bits)

    def warm(self) -> "FastEncryptor":
        """Build the table's native-row cache for the current bigint backend.

        Unpickling drops the cache (it may hold backend-native ``mpz``
        values); pool workers warm it once from their initializer so no
        per-batch call pays the rebuild.
        """
        self.table.warm()
        return self

    def randomizer(self, rng: random.Random) -> int:
        """A fresh randomizer ``h^t mod n^{s+1}`` (an encryption of zero)."""
        return self.table.pow(rng.getrandbits(self.exponent_bits) | 1)

    def encrypt(self, plaintext: int, rng: random.Random) -> int:
        """Encrypt one plaintext with an amortized randomizer."""
        return encrypt(self.public, plaintext, randomizer=self.randomizer(rng))

    def encrypt_batch(self, plaintexts: list[int], rng: random.Random) -> list[int]:
        """Encrypt a batch, drawing randomizer exponents from ``rng`` in order."""
        return [self.encrypt(m, rng) for m in plaintexts]


def encrypt_batch(
    public: PublicKey,
    plaintexts: list[int],
    rng: random.Random | None = None,
    encryptor: FastEncryptor | None = None,
) -> list[int]:
    """Encrypt a batch of plaintexts, through ``encryptor`` when given.

    Convenience entry point drawing randomness directly from ``rng``.  The
    backends in :mod:`repro.crypto.backend` use a different randomness
    discipline (one derived seed per item, which is what makes them
    bit-identical *to each other* across worker counts) — their output is
    therefore **not** comparable to this function's for the same ``rng``.
    """
    if encryptor is not None:
        rng = rng or random.Random()  # repro-lint: allow=determinism-rng -- entropy fallback for ad-hoc use; protocol paths inject a seeded rng
        return encryptor.encrypt_batch(list(plaintexts), rng)
    return [encrypt(public, m, rng=rng) for m in plaintexts]


def homomorphic_add(public: PublicKey, c1: int, c2: int) -> int:
    """``E(a) +_h E(b) = E(a)·E(b) mod n^{s+1}`` (paper Sec. 3.3.1, item 4)."""
    return c1 * c2 % public.n_s1


def homomorphic_add_batch(
    public: PublicKey, batch1: list[int], batch2: list[int]
) -> list[int]:
    """Element-wise homomorphic addition of two equal-length batches."""
    if len(batch1) != len(batch2):
        raise ValueError("batches must have equal length")
    n_s1 = public.n_s1
    return [a * b % n_s1 for a, b in zip(batch1, batch2)]


def homomorphic_scalar_mul(public: PublicKey, ciphertext: int, scalar: int) -> int:
    """``E(a) ×_h k = E(a)^k = E(k·a)``; negative scalars use the inverse."""
    if scalar < 0:
        ciphertext = modinv(ciphertext, public.n_s1)
        scalar = -scalar
    return bigint.powmod(ciphertext, scalar, public.n_s1)


def dlog_1_plus_n(public: PublicKey, u: int) -> int:
    """Recover ``a`` from ``u = (1+n)^a mod n^{s+1}`` (Damgård–Jurik's dLog).

    For ``s = 1`` this is the familiar Paillier ``L`` function
    ``(u − 1) / n``; for larger ``s`` it runs the published recursive
    lifting, reconstructing ``a mod n^j`` for ``j = 1..s``.
    """
    n = public.n
    a = 0
    for j in range(1, public.s + 1):
        n_j = n**j
        t1 = (u % n ** (j + 1) - 1) // n  # L(u mod n^{j+1})
        t2 = a
        i = a
        for k in range(2, j + 1):
            i -= 1
            t2 = t2 * i % n_j
            t1 = (
                t1 - t2 * bigint.powmod(n, k - 1, n_j) * modinv(math.factorial(k), n_j)
            ) % n_j
        a = t1 % n_j
    return a


def _decrypt_reference(private: PrivateKey, ciphertext: int) -> int:
    """Single full-width modexp — the reference path CRT-split is tested
    against for bit-identical results."""
    public = private.public
    u = bigint.powmod(ciphertext, private.d, public.n_s1)
    return dlog_1_plus_n(public, u)


def decrypt(private: PrivateKey, ciphertext: int) -> int:
    """Decrypt with the CRT exponent: ``c^d = (1+n)^a``, then extract ``a``.

    The modexp is CRT-split: ``n^{s+1} = p^{s+1}·q^{s+1}`` are coprime, so
    ``c^d`` is computed modulo each prime power separately and recombined
    with :func:`crt_pair`.  Within ``Z*_{p^{s+1}}`` (a group of order
    ``p^s·(p−1)``) the exponent reduces to ``d mod p^s·(p−1)``, halving both
    the operand width and the exponent length — the classic ~3–4× RSA/
    Paillier decryption speedup, here applied to the Fig. 5 "Decrypt" bar.
    Bit-identical to :func:`_decrypt_reference` for every valid ciphertext
    (ciphertexts are units mod ``n^{s+1}``, so the order-based exponent
    reduction is sound).
    """
    public = private.public
    s1 = public.s + 1
    p_s1 = private.p**s1
    q_s1 = private.q**s1
    u_p = bigint.powmod(
        ciphertext % p_s1, private.d % (p_s1 // private.p * (private.p - 1)), p_s1
    )
    u_q = bigint.powmod(
        ciphertext % q_s1, private.d % (q_s1 // private.q * (private.q - 1)), q_s1
    )
    u = crt_pair(u_p, p_s1, u_q, q_s1)
    return dlog_1_plus_n(public, u)
