"""Wire serialization for keys, ciphertexts and gossip payloads.

The Fig. 5(b) bandwidth numbers assume a concrete wire format; this module
pins one down so the byte accounting in :mod:`repro.analysis.costs` is
grounded in actual encodable messages rather than bit-length arithmetic:

* ciphertexts are fixed-width big-endian integers of
  ``PublicKey.ciphertext_bytes`` bytes (constant width is what makes the
  format — and the traffic — independent of the plaintext, a small but
  real side-channel concern);
* a means-set payload is a tiny header (k, n, ω, exchange counter) followed
  by the ``k·(n+1)`` ciphertexts — the *scalar-plane* wire format the paper
  costs out in Fig. 5(b).  (The packed plane of
  :class:`repro.crypto.encoding.PackedCodec` moves fewer, denser
  ciphertexts; a wire format for it is not implemented here — this module
  only encodes scalar-plane payloads);
* public keys serialize to ``(n, s)``.
"""

from __future__ import annotations

import struct

from .keys import PublicKey

__all__ = [
    "ciphertext_to_bytes",
    "ciphertext_from_bytes",
    "public_key_to_bytes",
    "public_key_from_bytes",
    "means_payload_to_bytes",
    "means_payload_from_bytes",
]

_HEADER = struct.Struct(">IIQI")  # k, n, omega, exchange counter


def ciphertext_to_bytes(public: PublicKey, ciphertext: int) -> bytes:
    """Fixed-width big-endian encoding of one ciphertext."""
    if not 0 <= ciphertext < public.n_s1:
        raise ValueError("ciphertext out of range for this key")
    return ciphertext.to_bytes(public.ciphertext_bytes, "big")


def ciphertext_from_bytes(public: PublicKey, payload: bytes) -> int:
    """Inverse of :func:`ciphertext_to_bytes` (validates width and range)."""
    if len(payload) != public.ciphertext_bytes:
        raise ValueError(
            f"expected {public.ciphertext_bytes} bytes, got {len(payload)}"
        )
    value = int.from_bytes(payload, "big")
    if value >= public.n_s1:
        raise ValueError("decoded ciphertext out of range")
    return value


def public_key_to_bytes(public: PublicKey) -> bytes:
    """Serialize ``(n, s)``; ``g = n + 1`` is implicit."""
    n_bytes = (public.n.bit_length() + 7) // 8
    return struct.pack(">II", n_bytes, public.s) + public.n.to_bytes(n_bytes, "big")


def public_key_from_bytes(payload: bytes) -> PublicKey:
    """Inverse of :func:`public_key_to_bytes`."""
    n_bytes, s = struct.unpack_from(">II", payload)
    n = int.from_bytes(payload[8 : 8 + n_bytes], "big")
    return PublicKey(n=n, s=s)


def means_payload_to_bytes(
    public: PublicKey,
    ciphertexts: list[int],
    k: int,
    omega: int,
    counter: int,
) -> bytes:
    """Encode one EESum exchange payload (the Diptych means panel).

    ``len(ciphertexts)`` must be ``k·(n+1)`` for some series length n.
    ω is capped at 64 bits in this format — the delayed-division scaling
    keeps it at ``≤ 2^counter`` and practical counters stay ≪ 64.
    """
    if k < 1 or len(ciphertexts) % k != 0:
        raise ValueError("ciphertext count must be a positive multiple of k")
    n_plus_1 = len(ciphertexts) // k
    header = _HEADER.pack(k, n_plus_1 - 1, omega, counter)
    body = b"".join(ciphertext_to_bytes(public, c) for c in ciphertexts)
    return header + body


def means_payload_from_bytes(
    public: PublicKey, payload: bytes
) -> tuple[list[int], int, int, int]:
    """Decode a means payload → (ciphertexts, k, ω, counter)."""
    k, n, omega, counter = _HEADER.unpack_from(payload)
    width = public.ciphertext_bytes
    body = payload[_HEADER.size :]
    expected = k * (n + 1) * width
    if len(body) != expected:
        raise ValueError(f"body length {len(body)} != expected {expected}")
    ciphertexts = [
        ciphertext_from_bytes(public, body[i * width : (i + 1) * width])
        for i in range(k * (n + 1))
    ]
    return ciphertexts, k, omega, counter
