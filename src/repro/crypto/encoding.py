"""Signed fixed-point encoding of real values into ``Z_{n^s}``.

Time-series variables are reals (electricity in [0, 80] kWh, tumor size in
[0, 50] mm) but Paillier-family plaintexts are residues.  We use the usual
fixed-point embedding: ``encode(x) = round(x · 2^fractional_bits) mod n^s``
with negatives wrapped into the upper half of the residue ring.

Two properties matter for Chiaroscuro:

* homomorphic *sums* of encodings are encodings of sums at the same scale,
  so the EESum protocol never changes the scale;
* the Alg. 2 update rule multiplies values by powers of two (the delayed
  division); decoding therefore takes an explicit ``extra_shift`` so callers
  can divide by ``2^{n_e}`` *after* decryption, exactly as the paper requires
  ("any division of encrypted data is delayed until its decryption").
"""

from __future__ import annotations

from dataclasses import dataclass

from .keys import PublicKey

__all__ = ["FixedPointCodec"]


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode/decode reals as fixed-point residues of ``Z_{n^s}``.

    ``fractional_bits`` controls resolution (default 2⁻³² ≈ 2.3e-10);
    ``headroom_bits`` asserts how much magnitude growth (population sums plus
    the EESum 2^{n_e} scaling) the plaintext space must absorb before wrap-
    around — :meth:`check_capacity` enforces it at protocol-setup time.
    """

    public: PublicKey
    fractional_bits: int = 32

    @property
    def scale(self) -> int:
        """Multiplicative fixed-point scale ``2^fractional_bits``."""
        return 1 << self.fractional_bits

    def encode(self, value: float) -> int:
        """Encode a real as a residue; negatives wrap to the upper half."""
        fixed = round(value * self.scale)
        return fixed % self.public.n_s

    def decode(self, residue: int, extra_shift: int = 0) -> float:
        """Decode a residue back to a real.

        ``extra_shift`` is the number of delayed halvings accumulated by the
        EESum update rule (the value is divided by ``2^extra_shift`` on top
        of the fixed-point scale).
        """
        n_s = self.public.n_s
        residue %= n_s
        if residue > n_s // 2:
            residue -= n_s
        return residue / float(self.scale) / float(1 << extra_shift)

    def check_capacity(
        self,
        max_abs_value: float,
        population: int,
        exchanges: int,
    ) -> None:
        """Raise if a population-wide sum scaled by ``2^exchanges`` could wrap.

        The worst-case plaintext magnitude in Chiaroscuro is
        ``population · max_abs_value · 2^fractional_bits · 2^exchanges``
        (all series summed into one cluster, fully scaled by the delayed
        divisions); it must stay below ``n^s / 2`` to keep the signed
        decoding unambiguous.
        """
        bound = (
            int(max_abs_value * self.scale + 1) * population * (1 << exchanges)
        )
        if 2 * bound >= self.public.n_s:
            raise ValueError(
                "plaintext space too small: raise the key size or the "
                "Damgård–Jurik expansion s, or lower fractional_bits "
                f"(needed ~{bound.bit_length()} bits, "
                f"have {self.public.n_s.bit_length() - 1})"
            )
