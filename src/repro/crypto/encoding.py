"""Signed fixed-point encoding of real values into ``Z_{n^s}``.

Time-series variables are reals (electricity in [0, 80] kWh, tumor size in
[0, 50] mm) but Paillier-family plaintexts are residues.  We use the usual
fixed-point embedding: ``encode(x) = round(x · 2^fractional_bits) mod n^s``
with negatives wrapped into the upper half of the residue ring.

Two properties matter for Chiaroscuro:

* homomorphic *sums* of encodings are encodings of sums at the same scale,
  so the EESum protocol never changes the scale;
* the Alg. 2 update rule multiplies values by powers of two (the delayed
  division); decoding therefore takes an explicit ``extra_shift`` so callers
  can divide by ``2^{n_e}`` *after* decryption, exactly as the paper requires
  ("any division of encrypted data is delayed until its decryption").

Value packing (the batched plane)
---------------------------------

A 1024-bit-key plaintext has ~1023 usable bits but a centroid coordinate
sum needs far fewer, so :class:`PackedCodec` packs many coordinates into
one plaintext and one ciphertext carries a whole stripe of the centroid
vector.  **Slot layout** (LSB first)::

    plaintext = Σ_{i=0}^{slots-1}  slot_i · 2^(i · slot_bits)

    slot_i    = f_i + B,   f_i = round(v_i · 2^fractional_bits)  (signed)
    B         = 2^value_bits                  (the per-contribution bias)
    slot_bits = value_bits + 1 + accumulation_bits

Each slot stores its signed fixed-point value *offset by the bias B*, so
slot contents are always non-negative and additions never borrow across
slot boundaries.  Homomorphic sums then work slot-wise: after summing
contributions with (public, integer) coefficients ``c_j`` from ``terms``
biased vectors, slot ``i`` holds

    raw_i = Σ_j c_j · f_{i,j}  +  B · (terms · C),     C = Σ_j c_j,

and :meth:`PackedCodec.unpack` subtracts ``B · bias_multiplier`` with
``bias_multiplier = terms · C`` to recover the exact signed integer sum —
bit-identical to what the scalar plane's residue would decode to.  The
EESum protocols learn ``C`` by carrying one extra *tracker* ciphertext
``E(1)`` through the same pipeline (see :mod:`repro.core.batching`).

``accumulation_bits`` must bound ``log2`` of the worst-case accumulated
coefficient mass ``terms · C_max`` — the caller supplies the exchange-
scaling exponent to :meth:`PackedCodec.plan` (the EESum counter chains
within a gossip cycle, so the protocol layer sizes it from a measured
per-cycle growth model, not from the cycle count alone).  As a backstop,
:meth:`PackedCodec.unpack` re-checks the *actual* accumulated mass (known
exactly at decode time via the tracker) against the slot capacity and
raises instead of returning silently corrupted values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .keys import PublicKey

__all__ = ["FixedPointCodec", "PackedCodec", "quantize_to_grid"]


def quantize_to_grid(values: np.ndarray, fractional_bits: int) -> np.ndarray:
    """Snap reals onto the ``2^{-fractional_bits}`` fixed-point grid.

    Vectorized mirror of ``FixedPointCodec.encode`` followed by ``decode``
    (both use round-half-even): the mock-homomorphic plane quantizes its
    inputs with this function so the numbers it gossips are exactly the
    numbers a real ciphertext of the same value would decode to.
    """
    scale = float(1 << fractional_bits)
    return np.round(np.asarray(values, dtype=float) * scale) / scale


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode/decode reals as fixed-point residues of ``Z_{n^s}``.

    ``fractional_bits`` controls resolution (default 2⁻³² ≈ 2.3e-10).
    The magnitude growth the plaintext space must absorb before wrap-around
    (population sums plus the EESum delayed-division scaling) is checked at
    protocol-setup time by :meth:`check_capacity`.
    """

    public: PublicKey
    fractional_bits: int = 32

    @property
    def scale(self) -> int:
        """Multiplicative fixed-point scale ``2^fractional_bits``."""
        return 1 << self.fractional_bits

    def encode(self, value: float) -> int:
        """Encode a real as a residue; negatives wrap to the upper half."""
        fixed = round(value * self.scale)
        return fixed % self.public.n_s

    def decode(self, residue: int, extra_shift: int = 0) -> float:
        """Decode a residue back to a real.

        ``extra_shift`` is the number of delayed halvings accumulated by the
        EESum update rule (the value is divided by ``2^extra_shift`` on top
        of the fixed-point scale).
        """
        n_s = self.public.n_s
        residue %= n_s
        if residue > n_s // 2:
            residue -= n_s
        return residue / float(self.scale) / float(1 << extra_shift)

    def check_capacity(
        self,
        max_abs_value: float,
        population: int,
        exchanges: int,
    ) -> None:
        """Raise if a population-wide sum scaled by ``2^exchanges`` could wrap.

        The worst-case plaintext magnitude in Chiaroscuro is
        ``population · max_abs_value · 2^fractional_bits · 2^exchanges``
        (all series summed into one cluster, fully scaled by the delayed
        divisions); it must stay below ``n^s / 2`` to keep the signed
        decoding unambiguous.
        """
        bound = (
            int(max_abs_value * self.scale + 1) * population * (1 << exchanges)
        )
        if 2 * bound >= self.public.n_s:
            raise ValueError(
                "plaintext space too small: raise the key size or the "
                "Damgård–Jurik expansion s, or lower fractional_bits "
                f"(needed ~{bound.bit_length()} bits, "
                f"have {self.public.n_s.bit_length() - 1})"
            )


@dataclass(frozen=True)
class PackedCodec:
    """Pack many signed fixed-point slots into one plaintext residue.

    See the module docstring for the slot layout and the overflow model.
    ``value_bits`` bounds a single contribution (``|f| < 2^value_bits``);
    ``accumulation_bits`` bounds the total coefficient mass the slot must
    absorb before unpacking.  Use :meth:`plan` to derive both from protocol
    parameters instead of picking them by hand.
    """

    public: PublicKey
    fractional_bits: int = 32
    value_bits: int = 40
    accumulation_bits: int = 16

    def __post_init__(self) -> None:
        if self.fractional_bits < 0:
            raise ValueError("fractional_bits must be >= 0")
        if self.value_bits <= self.fractional_bits:
            raise ValueError("value_bits must exceed fractional_bits")
        if self.accumulation_bits < 1:
            raise ValueError("accumulation_bits must be >= 1")
        if self.slots < 1:
            raise ValueError(
                f"plaintext space too small to pack even one "
                f"{self.slot_bits}-bit slot (have {self.public.plaintext_bits} "
                "bits): raise the key size or the expansion s, or lower "
                "value_bits/accumulation_bits"
            )

    @property
    def scale(self) -> int:
        """Multiplicative fixed-point scale ``2^fractional_bits``."""
        return 1 << self.fractional_bits

    @property
    def bias(self) -> int:
        """Per-contribution slot offset ``B = 2^value_bits``."""
        return 1 << self.value_bits

    @property
    def slot_bits(self) -> int:
        """Width of one slot: value, sign headroom, and accumulation room."""
        return self.value_bits + 1 + self.accumulation_bits

    @property
    def slots(self) -> int:
        """Number of slots one plaintext carries."""
        return self.public.plaintext_bits // self.slot_bits

    @classmethod
    def plan(
        cls,
        public: PublicKey,
        fractional_bits: int,
        max_abs_value: float,
        population: int,
        exchanges: int,
        terms: int = 2,
        safety_bits: int = 2,
    ) -> "PackedCodec":
        """Size a codec for a protocol run (mirrors ``check_capacity``).

        ``max_abs_value`` bounds a single encoded value, ``population`` the
        number of contributors, ``exchanges`` the worst-case delayed-division
        scaling ``2^exchanges``, and ``terms`` how many biased vectors are
        homomorphically summed before unpacking (means + noise = 2).
        Raises ``ValueError`` when even a single slot cannot fit.
        """
        max_fixed = int(max_abs_value * (1 << fractional_bits) + 1)
        value_bits = max(max_fixed.bit_length() + 1, fractional_bits + 1)
        mass = population * terms * (1 << exchanges)
        accumulation_bits = mass.bit_length() + safety_bits
        return cls(
            public=public,
            fractional_bits=fractional_bits,
            value_bits=value_bits,
            accumulation_bits=accumulation_bits,
        )

    def packed_length(self, count: int) -> int:
        """How many plaintexts carry ``count`` values."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return -(-count // self.slots)

    def encode_fixed(self, value: float) -> int:
        """Signed fixed-point integer for one value (range-checked)."""
        fixed = round(value * self.scale)
        if abs(fixed) >= self.bias:
            raise ValueError(
                f"value {value} exceeds the slot capacity 2^{self.value_bits}"
            )
        return fixed

    def pack(self, values) -> list[int]:
        """Pack reals into plaintext residues, ``slots`` values apiece.

        The last plaintext is padded with implicit zero-value slots (they
        still carry the bias, which :meth:`unpack` never reads back).
        """
        packed: list[int] = []
        slot_bits = self.slot_bits
        bias = self.bias
        current = 0
        filled = 0
        for value in values:
            current |= (self.encode_fixed(float(value)) + bias) << (filled * slot_bits)
            filled += 1
            if filled == self.slots:
                packed.append(current)
                current = 0
                filled = 0
        if filled:
            while filled < self.slots:
                current |= bias << (filled * slot_bits)
                filled += 1
            packed.append(current)
        return packed

    def unpack_integers(
        self, plaintexts: list[int], count: int, bias_multiplier: int = 1
    ) -> list[int]:
        """Recover the exact signed integer content of the first ``count`` slots.

        ``bias_multiplier`` is the total bias mass accumulated per slot:
        ``terms · C`` after a homomorphic sum with coefficient total ``C``
        over ``terms`` biased vectors (1 for a plain round-trip).
        """
        if self.packed_length(count) > len(plaintexts):
            raise ValueError("not enough plaintexts for the requested count")
        # Soundness gate: with |f| < B per contribution and a coefficient
        # mass of ``bias_multiplier``, every slot is < 2B·bias_multiplier.
        # If that bound does not fit the slot, neighbouring slots may have
        # bled into each other and unpacking would be silently wrong.
        if bias_multiplier >= 1 and 2 * self.bias * bias_multiplier > (
            1 << self.slot_bits
        ):
            raise ValueError(
                "accumulated coefficient mass exceeds the packed slot "
                f"capacity (need {(2 * self.bias * bias_multiplier).bit_length()}"
                f" bits, slot has {self.slot_bits}): raise accumulation_bits "
                "or fall back to the scalar plane"
            )
        mask = (1 << self.slot_bits) - 1
        offset = self.bias * bias_multiplier
        out: list[int] = []
        for index, plaintext in enumerate(plaintexts):
            take = min(self.slots, count - index * self.slots)
            if take <= 0:
                break
            for i in range(take):
                raw = (plaintext >> (i * self.slot_bits)) & mask
                out.append(raw - offset)
        return out

    def unpack(
        self,
        plaintexts: list[int],
        count: int,
        bias_multiplier: int = 1,
        extra_shift: int = 0,
    ) -> list[float]:
        """Unpack to reals; ``extra_shift`` divides out delayed halvings."""
        divisor = float(self.scale) * float(1 << extra_shift)
        return [
            fixed / divisor
            for fixed in self.unpack_integers(plaintexts, count, bias_multiplier)
        ]
