"""Shamir secret sharing over ``Z_M`` for the threshold decryption exponent.

In the threshold Damgård–Jurik scheme (Sec. 3.3.1, item 3), the decryption
key is split into ``n_κ`` key-shares such that any ``τ`` of them suffice.
The secret exponent ``d`` is shared with a random polynomial of degree
``τ - 1`` over ``Z_{n^s·m}``; each share is one evaluation point.

Reconstruction in the exponent cannot divide, so combination uses the
integer Lagrange coefficients ``λ^S_{0,i} = Δ·∏_{j≠i} j/(j-i)`` with
``Δ = n_κ!`` (Shoup's trick); :func:`lagrange_at_zero` computes them exactly.
"""

from __future__ import annotations

import random

from .keys import KeyShare

__all__ = ["share_secret", "lagrange_at_zero", "reconstruct_at_zero"]


def share_secret(
    secret: int,
    modulus: int,
    n_shares: int,
    threshold: int,
    rng: random.Random,
) -> list[KeyShare]:
    """Split ``secret`` into ``n_shares`` Shamir shares over ``Z_modulus``.

    Any ``threshold`` shares reconstruct the secret; fewer reveal nothing
    (information-theoretically, over a prime modulus; statistically here,
    which is the standard threshold-Paillier argument).
    """
    if not 1 <= threshold <= n_shares:
        raise ValueError("need 1 <= threshold <= n_shares")
    coefficients = [secret % modulus] + [
        rng.randrange(modulus) for _ in range(threshold - 1)
    ]
    shares = []
    for index in range(1, n_shares + 1):
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * index + coefficient) % modulus
        shares.append(KeyShare(index=index, value=value))
    return shares


def lagrange_at_zero(indices: list[int], delta: int) -> dict[int, int]:
    """Integer Lagrange coefficients ``λ^S_{0,i} = Δ·∏_{j∈S, j≠i} j/(j−i)``.

    With ``Δ = n_κ!`` every coefficient is an exact integer; the division
    below is checked to be exact, which catches misuse (e.g. a wrong Δ).
    """
    coefficients: dict[int, int] = {}
    for i in indices:
        numerator = delta
        denominator = 1
        for j in indices:
            if j == i:
                continue
            numerator *= j
            denominator *= j - i
        quotient, remainder = divmod(numerator, denominator)
        if remainder:
            raise ValueError(
                f"non-integer Lagrange coefficient for index {i}; "
                "delta must be n_shares!"
            )
        coefficients[i] = quotient
    return coefficients


def reconstruct_at_zero(shares: list[KeyShare], delta: int, modulus: int) -> int:
    """Reconstruct ``Δ·secret mod modulus`` from ``shares``.

    This is the *cleartext* counterpart of the in-the-exponent combination
    used by epidemic decryption; it exists mainly to test the sharing.
    """
    indices = [share.index for share in shares]
    if len(set(indices)) != len(indices):
        raise ValueError("duplicate share indices")
    coefficients = lagrange_at_zero(indices, delta)
    total = 0
    for share in shares:
        total = (total + coefficients[share.index] * share.value) % modulus
    return total
