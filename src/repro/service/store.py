"""Durable on-disk job queue: the persistence half of the service.

One service root directory holds everything the server knows::

    <root>/
      feed.ndjson               combined event feed (all jobs, multiplexed)
      jobs/<job_id>/
        job.json                Job record: spec + state + timestamps
        checkpoints/            per-job CheckpointStore directory
        events.ndjson           the job's own RunEvent stream
        result.json             chiaroscuro-run/v1 record (once completed)

States move ``queued → running → completed | failed``; a ``running`` job
found at startup is a crash marker — :meth:`JobStore.recover` re-enqueues
it and the worker resumes from the job's latest checkpoint (bit-identical
on checkpointable planes).

Every ``job.json`` write goes through
:func:`repro.api.checkpoint.atomic_write_text` (pid-unique tmp + fsync +
rename), so a SIGKILL at any instant leaves either the old record or the
new one, never a torn file.  Queue ordering is submit order
(``submitted_at``, then ``job_id``).  Claiming is *not* multi-scheduler
safe: one scheduler process owns a root at a time (the deployment model —
``repro serve`` — matches).
"""

from __future__ import annotations

import json
import pathlib
import time
import uuid
from dataclasses import asdict, dataclass, replace
from typing import Iterable, Mapping

from ..api.checkpoint import atomic_write_text, sweep_stale_tmps
from ..api.spec import RunSpec

__all__ = ["Job", "JobState", "JobStore"]


class JobState:
    """The four job states (plain strings so job.json stays obvious)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"

    ALL = (QUEUED, RUNNING, COMPLETED, FAILED)
    #: States a scheduler still owes work for.
    PENDING = (QUEUED, RUNNING)


@dataclass(frozen=True)
class Job:
    """One submitted experiment: a spec dict plus its lifecycle record."""

    job_id: str
    spec: dict  # RunSpec.to_dict() — normalized at submit time
    state: str = JobState.QUEUED
    name: str = ""  # spec name, for listings
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0  # times a worker picked it up (resumes included)
    error: str = ""  # last failure, one line

    def to_dict(self) -> dict:
        return {"format": "chiaroscuro-job/v1", **asdict(self)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "Job":
        fmt = d.get("format", "chiaroscuro-job/v1")
        if fmt != "chiaroscuro-job/v1":
            raise ValueError(f"unsupported job format {fmt!r}")
        return cls(
            job_id=d["job_id"],
            spec=dict(d["spec"]),
            state=d.get("state", JobState.QUEUED),
            name=d.get("name", ""),
            submitted_at=float(d.get("submitted_at", 0.0)),
            started_at=d.get("started_at"),
            finished_at=d.get("finished_at"),
            attempts=int(d.get("attempts", 0)),
            error=d.get("error", ""),
        )


class JobStore:
    """One service root directory of jobs (see module docstring)."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        # Kill-mid-write hygiene, same contract as CheckpointStore: tmps
        # whose writer pid is dead are leftovers of a crashed server.
        sweep_stale_tmps(self.jobs_dir, "*/*.tmp")

    # ------------------------------------------------------------- layout

    @property
    def feed_path(self) -> pathlib.Path:
        return self.root / "feed.ndjson"

    def job_dir(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / job_id

    def job_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "job.json"

    def checkpoint_dir(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "checkpoints"

    def events_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "events.ndjson"

    def result_path(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "result.json"

    # ------------------------------------------------------------- submit

    def submit(self, spec: RunSpec | Mapping, name: str = "") -> Job:
        """Validate and enqueue one spec; returns the durable job record.

        Accepts a built :class:`RunSpec` or a plain dict (which is run
        through :meth:`RunSpec.from_dict`, so malformed specs are rejected
        at the door, not inside a worker).
        """
        if not isinstance(spec, RunSpec):
            spec = RunSpec.from_dict(spec)
        job = Job(
            job_id=self._new_job_id(name or spec.name),
            spec=spec.to_dict(),
            name=name or spec.name,
            submitted_at=time.time(),
        )
        self.job_dir(job.job_id).mkdir(parents=True)
        self._write(job)
        return job

    def submit_batch(
        self, specs: Iterable[RunSpec | Mapping]
    ) -> list[Job]:
        """Enqueue many specs in order; all-or-nothing validation."""
        built = [
            spec if isinstance(spec, RunSpec) else RunSpec.from_dict(spec)
            for spec in specs
        ]
        return [self.submit(spec) for spec in built]

    def _new_job_id(self, name: str) -> str:
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        token = uuid.uuid4().hex[:6]  # unique across concurrent submitters
        slug = "".join(c if c.isalnum() or c == "-" else "-" for c in name)
        slug = slug.strip("-").lower()[:40]
        return f"{stamp}-{token}" + (f"-{slug}" if slug else "")

    # -------------------------------------------------------------- reads

    def get(self, job_id: str) -> Job:
        path = self.job_path(job_id)
        if not path.exists():
            raise KeyError(f"unknown job {job_id!r} in {self.root}")
        return Job.from_dict(json.loads(path.read_text()))

    def jobs(self) -> list[Job]:
        """All jobs in submit order (``submitted_at``, then id)."""
        out = []
        for entry in sorted(self.jobs_dir.iterdir()):
            path = entry / "job.json"
            if path.exists():
                out.append(Job.from_dict(json.loads(path.read_text())))
        out.sort(key=lambda job: (job.submitted_at, job.job_id))
        return out

    def in_state(self, *states: str) -> list[Job]:
        return [job for job in self.jobs() if job.state in states]

    def jobs_except(self, skip_ids: "set[str] | frozenset[str]") -> list[Job]:
        """Jobs in submit order, skipping ``skip_ids`` without reading
        their records.

        The scheduler's poll-loop primitive: terminal jobs never change
        state, so once observed completed/failed their ``job.json`` need
        not be re-parsed every tick — a long-lived root stays O(active
        jobs) per poll instead of O(all jobs ever submitted).
        """
        out = []
        for entry in sorted(self.jobs_dir.iterdir()):
            if entry.name in skip_ids:
                continue
            path = entry / "job.json"
            if path.exists():
                out.append(Job.from_dict(json.loads(path.read_text())))
        out.sort(key=lambda job: (job.submitted_at, job.job_id))
        return out

    def load_result(self, job_id: str) -> dict | None:
        """The job's ``chiaroscuro-run/v1`` record, once the worker wrote it."""
        path = self.result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------- writes

    def update(self, job_id: str, **changes) -> Job:
        """Read-modify-write the job record atomically (fresh read first)."""
        job = replace(self.get(job_id), **changes)
        self._write(job)
        return job

    def claim(self, job: Job) -> Job:
        """Mark a queued job running (one attempt counted).

        Single-scheduler discipline (see module docstring): the claim is
        atomic against crashes, not against a second scheduler.
        """
        return self.update(
            job.job_id,
            state=JobState.RUNNING,
            started_at=time.time(),
            attempts=job.attempts + 1,
        )

    def claim_next(self) -> Job | None:
        """Pop the oldest queued job and mark it running."""
        for job in self.in_state(JobState.QUEUED):
            return self.claim(job)
        return None

    def recover(self) -> list[Job]:
        """Re-enqueue every job left ``running`` by a crashed server.

        The job's checkpoint directory is kept untouched, so the next
        worker resumes after the last completed iteration — bit-identical
        to an uninterrupted run on checkpointable planes.
        """
        recovered = []
        for job in self.in_state(JobState.RUNNING):
            recovered.append(self.update(job.job_id, state=JobState.QUEUED))
        return recovered

    def _write(self, job: Job) -> None:
        atomic_write_text(
            self.job_path(job.job_id), json.dumps(job.to_dict(), indent=2) + "\n"
        )
