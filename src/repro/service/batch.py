"""Batch helpers: submit many specs and collect their run records.

The sweep pattern every frontend repeats — build N :class:`RunSpec`
variants, run them, collect ``chiaroscuro-run/v1`` records — becomes two
calls: :func:`load_specs` (a spec file may hold one spec object *or* a
JSON array of them) and :func:`run_batch` (submit, drain a scheduler,
return records in submit order).  The examples and the fig. 3(a) churn
bench run their sweeps through exactly this path, so the service gets
exercised by the repo's own workloads, not only by its tests.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Mapping

from ..api.spec import RunSpec
from .scheduler import Scheduler
from .store import JobState, JobStore

__all__ = ["load_specs", "run_batch"]


def load_specs(path: str | pathlib.Path) -> list[RunSpec]:
    """Parse a spec file: one spec object, or a JSON array of specs."""
    payload = json.loads(pathlib.Path(path).read_text())
    if isinstance(payload, list):
        return [RunSpec.from_dict(entry) for entry in payload]
    if isinstance(payload, Mapping):
        return [RunSpec.from_dict(payload)]
    raise ValueError(
        f"{path}: expected a spec object or an array of specs, "
        f"got {type(payload).__name__}"
    )


def run_batch(
    specs: Iterable[RunSpec | Mapping],
    root: str | pathlib.Path,
    max_workers: int = 4,
    poll_interval: float = 0.05,
    timeout: float | None = None,
) -> list[dict]:
    """Submit ``specs``, drain a scheduler over them, return the records.

    Records come back in submit order.  Any failed job raises — a sweep
    with silently missing variants would be worse than no sweep.
    """
    store = JobStore(root)
    jobs = store.submit_batch(specs)
    scheduler = Scheduler(
        store, max_workers=max_workers, poll_interval=poll_interval
    )
    scheduler.recover()
    scheduler.drain(timeout=timeout)
    failed = [
        job for job in store.jobs()
        if job.job_id in {j.job_id for j in jobs}
        and job.state != JobState.COMPLETED
    ]
    if failed:
        details = "; ".join(f"{job.job_id}: {job.error}" for job in failed)
        raise RuntimeError(f"{len(failed)} job(s) did not complete — {details}")
    return [store.load_result(job.job_id) for job in jobs]
