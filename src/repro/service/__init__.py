"""repro.service — the always-on experiment server over ``repro.api``.

PR 3 gave every frontend one declarative substrate: a :class:`RunSpec`
executed by :class:`~repro.api.Experiment`, streaming typed run events
and writing bit-identically-resumable checkpoints.  This package turns
that substrate into a long-lived service, in the spirit of the paper's
own always-on gossip deployment:

* :class:`JobStore` — durable on-disk queue (``queued → running →
  completed/failed``), one directory per job with its own checkpoint
  store, event log and run record;
* :class:`Scheduler` — executes up to ``max_workers`` jobs concurrently,
  one worker *process* per job (the crypto planes parallelize across
  cores, and each job makes its own backend/bigint selection);
* the NDJSON event bus (:mod:`repro.service.bus`) — every job's
  ``RunStarted``/``IterationCompleted``/``CheckpointSaved``/``RunCompleted``
  stream multiplexed to per-job logs and one tailable combined feed;
* crash recovery — any job found ``running`` at startup is re-enqueued
  and resumed from its latest checkpoint, so a SIGKILL-ed server replays
  nothing and loses nothing.

CLI: ``repro serve`` / ``repro submit`` / ``repro jobs`` / ``repro tail``.

Programmatic sweeps go through :func:`run_batch`::

    from repro.service import run_batch
    records = run_batch(specs, root="service-root", max_workers=4)
"""

# NOTE: repro.service.worker is intentionally NOT imported here — it is
# the module workers execute via ``python -m repro.service.worker``, and
# importing it from the package __init__ would trip runpy's
# found-in-sys.modules warning in every spawned worker.
from .batch import load_specs, run_batch
from .bus import EventBus, append_ndjson, next_seq, read_events, tail_events
from .scheduler import Scheduler
from .store import Job, JobState, JobStore

__all__ = [
    "EventBus",
    "Job",
    "JobState",
    "JobStore",
    "Scheduler",
    "append_ndjson",
    "load_specs",
    "next_seq",
    "read_events",
    "run_batch",
    "tail_events",
]
