"""Worker: execute one claimed job in its own process.

The scheduler spawns ``python -m repro.service.worker <root> <job_id>``
per job, so concurrent jobs parallelize across cores (each process makes
its own backend/bigint selection from the spec's params, exactly like an
inline run) and a crashing experiment can never take the server down.

The worker drives :meth:`repro.api.Experiment.run_iter` with the job's
checkpoint directory, publishes every event to the NDJSON bus, writes the
``chiaroscuro-run/v1`` record to ``result.json``, and flips the job to
``completed``/``failed``.  A kill at any point leaves the job ``running``
with its checkpoints intact — the crash marker
:meth:`~repro.service.store.JobStore.recover` turns back into ``queued``,
and the next worker resumes after the last completed iteration
(bit-identical on checkpointable planes; non-checkpointable planes rerun
from scratch, which is deterministic for a seeded spec anyway).
"""

from __future__ import annotations

import json
import sys
import time
import traceback

from ..api import (
    PLANES,
    Experiment,
    RunCompleted,
    RunSpec,
    RunStarted,
    atomic_write_text,
    run_record,
)
from .bus import EventBus
from .store import Job, JobState, JobStore

__all__ = ["execute_job", "main"]


def execute_job(store: JobStore, job: Job) -> int:
    """Run one job to completion (or failure); returns an exit code."""
    bus = EventBus(store, job.job_id)
    result = None
    environment = None
    started = time.perf_counter()
    try:
        # Inside the try: a spec that validated at submit time can still
        # fail here (e.g. a registry divergence) and must fail the *job*,
        # not just the worker process.
        spec = RunSpec.from_dict(job.spec)
        checkpoint_dir = (
            str(store.checkpoint_dir(job.job_id))
            if PLANES.get(spec.plane).supports_checkpoint
            else None
        )
        experiment = Experiment.from_spec(spec)
        for event in experiment.run_iter(
            checkpoint_dir=checkpoint_dir, resume=True
        ):
            bus.publish(event)
            if isinstance(event, RunStarted):
                environment = {
                    "crypto_backend": event.crypto_backend,
                    "bigint_backend": event.bigint_backend,
                    "key_bits": event.key_bits,
                }
            elif isinstance(event, RunCompleted):
                result = event.result
    except Exception as exc:  # noqa: BLE001 - the job fails, not the server
        error = f"{type(exc).__name__}: {exc}"
        store.update(
            job.job_id,
            state=JobState.FAILED,
            finished_at=time.time(),
            error=error,
        )
        bus.publish_record(
            {
                "type": "job_failed",
                "job": job.job_id,
                "ts": round(time.time(), 3),
                "error": error,
            }
        )
        traceback.print_exc(file=sys.stderr)
        return 1

    elapsed = time.perf_counter() - started
    record = run_record(
        spec,
        result,
        timings={"wall_seconds": elapsed},
        environment=environment,
    )
    atomic_write_text(
        store.result_path(job.job_id), json.dumps(record, indent=2) + "\n"
    )
    store.update(job.job_id, state=JobState.COMPLETED, finished_at=time.time())
    bus.publish_record(
        {
            "type": "job_completed",
            "job": job.job_id,
            "ts": round(time.time(), 3),
            "wall_seconds": round(elapsed, 3),
        }
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if len(argv) != 2:
        print("usage: python -m repro.service.worker <root> <job_id>",
              file=sys.stderr)
        return 2
    store = JobStore(argv[0])
    return execute_job(store, store.get(argv[1]))


if __name__ == "__main__":
    raise SystemExit(main())
