"""Scheduler: run queued jobs in worker processes, survive crashes.

The control loop is deliberately small — the durable truth lives in the
:class:`~repro.service.store.JobStore`, so the scheduler only has to

1. **recover** at startup: flip crash-marked ``running`` jobs back to
   ``queued`` (their checkpoints make the re-run a resume);
2. **launch**: claim queued jobs oldest-first and spawn one
   ``repro.service.worker`` process each, up to ``max_workers``;
3. **reap**: when a worker exits without having recorded an outcome
   (killed, OOM, segfault — ``job.json`` still says ``running``), either
   re-enqueue it for another attempt or fail it once ``max_attempts`` is
   exhausted (a hard-crashing spec must not loop forever).

SIGKILL-ing the whole server process group at any instant is therefore
recoverable by construction: nothing in the loop holds state that is not
re-derivable from the store at the next startup.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

from .bus import EventBus
from .store import Job, JobState, JobStore

__all__ = ["Scheduler"]


class Scheduler:
    """Execute a :class:`JobStore`'s queue, ``max_workers`` jobs at a time."""

    def __init__(
        self,
        store: JobStore,
        max_workers: int = 4,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.store = store
        self.max_workers = max_workers
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self._workers: dict[str, subprocess.Popen] = {}
        # Jobs observed in a terminal state: never re-read (see step()).
        self._terminal: set[str] = set()

    # ------------------------------------------------------------ lifecycle

    def recover(self) -> list[Job]:
        """Re-enqueue crash-marked jobs (call once, before scheduling)."""
        return self.store.recover()

    def step(self) -> bool:
        """One reap-and-launch pass; True while any work remains.

        The queue is scanned once per tick, and jobs already observed in
        a terminal state are skipped without re-reading their records (a
        long-lived root accumulates completed jobs; re-parsing immutable
        history every poll would make the idle loop O(all jobs ever)).
        """
        self._reap()
        active = self.store.jobs_except(self._terminal)
        self._terminal.update(
            job.job_id
            for job in active
            if job.state in (JobState.COMPLETED, JobState.FAILED)
        )
        queued = [job for job in active if job.state == JobState.QUEUED]
        for job in queued:
            if len(self._workers) >= self.max_workers:
                break
            claimed = self.store.claim(job)
            self._workers[claimed.job_id] = self._spawn(claimed)
        return bool(self._workers) or bool(queued)

    def drain(self, timeout: float | None = None) -> list[Job]:
        """Run until the queue is empty and every worker has exited.

        Returns the final job records.  Raises ``TimeoutError`` if a
        ``timeout`` (seconds) elapses first — workers are then terminated
        so their jobs recover on the next start.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.step():
            if deadline is not None and time.monotonic() > deadline:
                self.shutdown()
                raise TimeoutError(
                    f"drain exceeded {timeout} s with jobs still pending"
                )
            time.sleep(self.poll_interval)
        return self.store.jobs()

    def run_forever(self) -> None:
        """Serve until interrupted (the ``repro serve`` foreground loop)."""
        try:
            while True:
                self.step()
                time.sleep(self.poll_interval)
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Terminate outstanding workers; their jobs recover on restart."""
        for proc in self._workers.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._workers.values():
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
        self._workers.clear()

    @property
    def active_jobs(self) -> list[str]:
        return sorted(self._workers)

    # ------------------------------------------------------------ internals

    def _reap(self) -> None:
        for job_id, proc in list(self._workers.items()):
            code = proc.poll()
            if code is None:
                continue
            del self._workers[job_id]
            job = self.store.get(job_id)
            if job.state not in (JobState.COMPLETED, JobState.FAILED):
                # The worker died without recording an outcome (signal,
                # interpreter abort).  Its checkpoints are intact, so give
                # the job another attempt unless it keeps crashing.
                if job.attempts >= self.max_attempts:
                    error = (
                        f"worker exited with code {code} "
                        f"({job.attempts} attempts)"
                    )
                    self.store.update(
                        job_id,
                        state=JobState.FAILED,
                        finished_at=time.time(),
                        error=error,
                    )
                    # Terminal marker on the bus too: worker-side failures
                    # publish job_failed themselves, but this worker died
                    # without one — a tailing consumer must still see the
                    # stream end.
                    EventBus(self.store, job_id).publish_record({
                        "type": "job_failed",
                        "job": job_id,
                        "ts": round(time.time(), 3),
                        "error": error,
                    })
                else:
                    self.store.update(job_id, state=JobState.QUEUED)

    def _spawn(self, job: Job) -> subprocess.Popen:
        # Workers must import `repro` regardless of how the server itself
        # was launched, so the package root rides on PYTHONPATH.
        package_root = str(pathlib.Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.worker",
                str(self.store.root),
                job.job_id,
            ],
            env=env,
        )
