"""NDJSON event bus: per-job logs plus one tailable combined feed.

Workers are separate processes, so the bus is the filesystem: each
published event is appended as one newline-terminated JSON object to the
job's own ``events.ndjson`` *and* to the root-level ``feed.ndjson``.
Appends are a single ``os.write`` on an ``O_APPEND`` descriptor — the
POSIX guarantee that concurrent appenders never interleave within a line
is what makes the combined feed safe without any locking.

Readers are tolerant by construction: a SIGKILL can truncate the last
line mid-byte, so :func:`read_events` silently drops undecodable lines
(the job's durable state lives in ``job.json``/checkpoints, never in the
logs).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import TYPE_CHECKING, Callable, Iterator

from ..api.events import RunEvent, event_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import JobStore

__all__ = ["EventBus", "append_ndjson", "next_seq", "read_events", "tail_events"]


def append_ndjson(path: str | pathlib.Path, record: dict) -> None:
    """Append one JSON object as a single atomic ``O_APPEND`` write."""
    data = (json.dumps(record, separators=(",", ":")) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def read_events(path: str | pathlib.Path) -> list[dict]:
    """All decodable records in an NDJSON file (missing file = empty)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, "rb") as fh:
        for line in fh:
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # torn tail from a kill mid-append
    return records


def tail_events(
    path: str | pathlib.Path,
    follow: bool = False,
    poll_interval: float = 0.2,
    should_stop: Callable[[], bool] | None = None,
) -> Iterator[dict]:
    """Yield records from an NDJSON file, optionally following appends.

    With ``follow``, keeps polling for new complete lines until
    ``should_stop()`` turns true (a partial final line is left pending
    until its newline arrives).
    """
    path = pathlib.Path(path)
    offset = 0
    while True:
        if path.exists():
            with open(path, "rb") as fh:
                fh.seek(offset)
                while True:
                    line = fh.readline()
                    if not line.endswith(b"\n"):
                        break  # incomplete tail: re-read next poll
                    offset = fh.tell()
                    try:
                        yield json.loads(line)
                    except ValueError:
                        continue
        if not follow or (should_stop is not None and should_stop()):
            return
        time.sleep(poll_interval)


def next_seq(path: str | pathlib.Path) -> int:
    """The next monotonic ``seq`` for a job log at ``path``.

    Resumes continue the numbering: the successor of the highest ``seq``
    already on disk, or — for logs written before ``seq`` existed — the
    count of complete lines, so old and new records never collide.
    Torn tails and undecodable lines are skipped, consistent with
    :func:`read_events`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return 0
    highest = -1
    lines = 0
    with open(path, "rb") as fh:
        for line in fh:
            if not line.endswith(b"\n"):
                break  # torn tail: its seq was never durably published
            lines += 1
            try:
                record = json.loads(line)
            except ValueError:
                continue
            seq = record.get("seq") if isinstance(record, dict) else None
            if isinstance(seq, int) and not isinstance(seq, bool):
                highest = max(highest, seq)
    return highest + 1 if highest >= 0 else lines


class EventBus:
    """Publish one job's run events to its log and the combined feed.

    Every published record carries a monotonic per-job ``seq`` (resumed
    workers continue where the previous attempt's log ends), giving
    downstream consumers — the warehouse ingester above all — a stable
    dedup key.  Readers that predate ``seq`` simply ignore it.
    """

    def __init__(self, store: "JobStore", job_id: str) -> None:
        self.job_id = job_id
        self.events_path = store.events_path(job_id)
        self.feed_path = store.feed_path
        self._seq = next_seq(self.events_path)

    def publish(self, event: RunEvent) -> dict:
        """Serialize, stamp (job id + seq + wall time), append to both logs."""
        record = event_to_dict(event)
        record["job"] = self.job_id
        record["ts"] = round(time.time(), 3)
        self.publish_record(record)
        return record

    def publish_record(self, record: dict) -> None:
        """Stamp ``seq`` and append (run events and lifecycle markers)."""
        record.setdefault("seq", self._seq)
        self._seq = record["seq"] + 1
        append_ndjson(self.events_path, record)
        append_ndjson(self.feed_path, record)
