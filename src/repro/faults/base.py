"""Fault-plane foundations: the registry, the injector contract, run binding.

The design rule of this package (the fact-extraction vs. rules-engine
separation): fault *injection* is strictly separate from protocol *logic*.
Protocol modules (``gossip``, ``core``) never know a fault exists — the
plane reaches them through exactly two neutral seams in
:class:`~repro.core.protocol.ChiaroscuroRun`:

1. ``engine = plan.wrap_engine(engine, iteration)`` — the per-iteration
   gossip engine is wrapped in a proxy that intercepts the *exchange
   boundary* (message loss, duplication, delay, storms, malformed batches);
2. ``output = plan.observe_output(output, iteration)`` — the decoded
   per-node reports pass through the plane, which injects byzantine
   reports, runs the Sec. 4.4 detection machinery
   (:class:`~repro.core.verification.DecryptionCrossCheck`), and audits
   coalitions.

A fault *class* is a frozen dataclass registered in :data:`FAULTS` under a
string key (the same :class:`~repro.api.registry.Registry` pattern every
other pluggable component uses), so a :class:`~repro.api.spec.RunSpec` can
declare attacks declaratively and the service can sweep attack grids.

Determinism contract: every injector draws from its **own named RNG
stream** (seeded from the run seed, the fault's registry key and its
position in the spec) and never touches engine or protocol RNG — a spec
with an empty ``faults`` block is bit-identical to a run without the fault
plane, and a faulted run is reproducible from its spec alone.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from ..api.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.computation import ComputationOutput
    from .plan import FaultPlan

__all__ = [
    "FAULTS",
    "FaultAbort",
    "FaultInjector",
    "RunBinding",
    "build_fault",
    "fault_rng",
    "register_fault",
]

#: Registry of fault classes: string key → frozen config dataclass.
FAULTS = Registry("fault")


def register_fault(key: str):
    """Decorator: register a frozen fault-config dataclass under ``key``.

    The dataclass must expose ``build(rng) -> FaultInjector``; its
    constructor kwargs are the ``params`` block of the spec entry.
    """
    return FAULTS.register(key)


def build_fault(kind: str, params: dict) -> Any:
    """Instantiate the registered fault config for ``kind`` (validating)."""
    cls = FAULTS.get(kind)
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(f"bad params for fault {kind!r}: {exc}") from None


def fault_rng(seed: int, kind: str, index: int) -> np.random.Generator:
    """The named RNG stream for one injector.

    Keyed by (run seed, registry key, position in the faults block) via a
    seed sequence, so streams are independent of each other, stable across
    processes (no ``PYTHONHASHSEED`` dependence), and never overlap the
    run's own ``seed``/``seed + 1``/``seed + 1000·i`` streams.
    """
    return np.random.default_rng(
        [int(seed) & 0xFFFFFFFF, 0xFA017, index, zlib.crc32(kind.encode())]
    )


class FaultAbort(RuntimeError):
    """A fault was detected that the protocol cannot safely continue past.

    Raised by injectors/detectors inside the fault plane; caught by
    :meth:`repro.api.experiment.Experiment.run_iter`, which turns it into a
    :class:`~repro.api.events.RunAborted` event and a final result with
    reason ``"aborted"`` — a *clean* abort, never a stack trace.
    """

    def __init__(self, fault: str, iteration: int, reason: str) -> None:
        super().__init__(reason)
        self.fault = fault
        self.iteration = iteration
        self.reason = reason


class RunBinding:
    """What the fault plane may know about the run it attacks.

    A deliberately narrow read-only view over
    :class:`~repro.core.protocol.ChiaroscuroRun` — injectors get the
    population facts and (on the object plane) the dealer-side key
    material a compromised coalition would hold, nothing else.
    """

    def __init__(self, run: Any) -> None:
        self.population: int = run.dataset.t
        self.plane: str = run.params.protocol_plane
        self.threshold: int = run.params.tau_count(self.population)
        self.n_noise_shares: int = run.params.noise_share_count(self.population)
        self.seed: int = run.seed
        #: ``ThresholdKeypair`` on the object plane, ``None`` on vectorized —
        #: the mock-homomorphic plane has no key material *in play* to steal
        #: (even when a keypair was handed to the run as a construction
        #: shortcut, no ciphertext there is ever under it).
        self.keypair = run.keypair if self.plane == "object" else None


class FaultInjector:
    """Base class: every hook is a no-op so injectors override only theirs.

    Lifecycle per run: ``bind`` once (after key material exists), then per
    iteration ``begin_iteration``, per gossip cycle ``begin_cycle`` /
    ``transform_pairs`` / exchange-level hooks, and ``observe_output`` once
    the step's decoded reports exist.
    """

    #: registry key, filled by the config's ``build``
    kind: str = ""

    def bind(self, binding: RunBinding, plan: "FaultPlan") -> None:
        """Called once per run, before the first iteration."""

    def begin_iteration(self, iteration: int) -> None:
        """Called at the top of every protocol iteration."""

    # ------------------------------------------------------- exchange level

    def begin_cycle(self, engine: Any, protocols: tuple, iteration: int) -> None:
        """Called before each gossip cycle with the active protocol set."""

    def filter_exchange(
        self, iteration: int, initiator_id: int, contact_id: int
    ) -> str:
        """Object-plane per-exchange verdict: ``deliver``/``drop``/
        ``duplicate``, or ``delay:<cycles>``."""
        return "deliver"

    def transform_pairs(
        self,
        iteration: int,
        left: np.ndarray,
        right: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[np.ndarray, np.ndarray]], list[tuple[int, np.ndarray, np.ndarray]]]:
        """Vectorized per-cycle verdict.

        Returns ``(keep_left, keep_right, extra_batches, delayed)`` where
        ``extra_batches`` are delivered this cycle *in addition* (duplicated
        messages) and ``delayed`` entries are ``(cycles_from_now, l, r)``.
        """
        return left, right, [], []

    def corrupt_object_exchange(
        self, iteration: int, initiator: Any, contact: Any
    ) -> Any:
        """Chance to tamper with node state before delivery (object plane).

        Returns an undo callable (or ``None``); the proxy restores state
        when no active protocol rejected the malformed message, so an
        unnoticed corruption cannot silently persist outside the exchange
        it was injected into.
        """
        return None

    def on_rejected(
        self, iteration: int, node_id: int, plan: "FaultPlan", error: Exception
    ) -> None:
        """A protocol rejected a message this injector corrupted.

        Called by the engine proxy when a delivery carrying this injector's
        corruption raised at the exchange boundary (the corruption has
        already been rolled back) — the injector decides whether that
        detection escalates to a :class:`FaultAbort`.
        """

    # --------------------------------------------------------- report level

    def observe_output(
        self, output: "ComputationOutput", iteration: int, plan: "FaultPlan"
    ) -> "ComputationOutput":
        """Inject into / detect over the decoded per-node reports."""
        return output
