"""repro.faults — the pluggable fault plane (hostile deployments).

Registry-keyed fault classes injectable into live protocol runs through
``RunSpec.faults``, strictly outside protocol logic (see
:mod:`repro.faults.base` for the two neutral seams):

* ``network`` — message loss / duplication / delay at the exchange
  boundary (:class:`~repro.faults.network.NetworkFault`);
* ``byzantine`` — tampered, replayed, malformed or unenrolled
  participants, exercised against the Sec. 4.4 countermeasures
  (:class:`~repro.faults.byzantine.ByzantineFault`);
* ``collusion`` — a coalition controller empirically auditing the
  App. B.3 bounds (:class:`~repro.faults.collusion.CollusionFault`);
* ``churn-storm`` — correlated burst outages generalizing the Sec. 6.1.5
  churn model (:class:`~repro.faults.storm.ChurnStormFault`).

Importing this package registers all built-in fault kinds.
"""

from .base import (
    FAULTS,
    FaultAbort,
    FaultInjector,
    RunBinding,
    build_fault,
    fault_rng,
    register_fault,
)
from .byzantine import ByzantineFault
from .collusion import CollusionFault
from .network import NetworkFault
from .plan import FaultPlan
from .storm import ChurnStormFault

__all__ = [
    "FAULTS",
    "ByzantineFault",
    "ChurnStormFault",
    "CollusionFault",
    "FaultAbort",
    "FaultInjector",
    "FaultPlan",
    "NetworkFault",
    "RunBinding",
    "build_fault",
    "fault_rng",
    "register_fault",
]
