"""Network faults: message loss, duplication and delay at the exchange
boundary.

The paper's epidemic protocols tolerate lossy transports by construction
(push–pull averaging converges under any connected schedule; Sec. 4.2.1's
mass-conservation argument is per *completed* exchange), so these faults
degrade convergence *speed* — the Fig. 3-style quality-vs-messages curve
shifts right — without corrupting mass.  The attack-quality bench
(``benchmarks/bench_fig3_attack_quality.py``) measures exactly that shift.

Verdicts per scheduled exchange, drawn from the injector's named stream:

* ``loss`` — the exchange silently never happens;
* ``delay`` — the exchange completes ``1..max_delay`` cycles late (both
  endpoints apply it then; a delay past the end of the protocol phase
  loses the message);
* ``duplicate`` — the exchange is applied twice in its cycle (EESum
  exchanges are idempotent in mass but not in trajectory, so duplicates
  perturb convergence exactly like a re-sent datagram would).

Loss takes precedence over delay, delay over duplication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import FaultInjector, register_fault

__all__ = ["NetworkFault"]


@register_fault("network")
@dataclass(frozen=True)
class NetworkFault:
    """Per-exchange loss/duplication/delay probabilities."""

    loss: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 3

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1)")
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1 cycle")

    def build(self, rng: np.random.Generator) -> "NetworkInjector":
        return NetworkInjector(self, rng)


class NetworkInjector(FaultInjector):
    """Applies :class:`NetworkFault` verdicts on both planes."""

    def __init__(self, config: NetworkFault, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    # --------------------------------------------------------- object plane

    def filter_exchange(
        self, iteration: int, initiator_id: int, contact_id: int
    ) -> str:
        cfg = self.config
        if cfg.loss and self.rng.random() < cfg.loss:
            return "drop"
        if cfg.delay and self.rng.random() < cfg.delay:
            return f"delay:{int(self.rng.integers(1, cfg.max_delay + 1))}"
        if cfg.duplicate and self.rng.random() < cfg.duplicate:
            return "duplicate"
        return "deliver"

    # ----------------------------------------------------- vectorized plane

    def transform_pairs(self, iteration: int, left, right):
        cfg = self.config
        n = len(left)
        if n == 0:
            return left, right, [], []
        keep = np.ones(n, dtype=bool)
        delayed = []
        extras = []
        if cfg.loss:
            keep &= self.rng.random(n) >= cfg.loss
        if cfg.delay:
            delay_mask = keep & (self.rng.random(n) < cfg.delay)
            if delay_mask.any():
                indices = np.flatnonzero(delay_mask)
                lags = self.rng.integers(
                    1, cfg.max_delay + 1, size=len(indices)
                )
                for lag in np.unique(lags):
                    chosen = indices[lags == lag]
                    delayed.append((int(lag), left[chosen], right[chosen]))
                keep &= ~delay_mask
        if cfg.duplicate:
            dup_mask = keep & (self.rng.random(n) < cfg.duplicate)
            if dup_mask.any():
                extras.append((left[dup_mask], right[dup_mask]))
        return left[keep], right[keep], extras, delayed
