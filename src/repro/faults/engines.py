"""Faulty engine proxies — the exchange-boundary seam of the fault plane.

Each proxy wraps one per-iteration gossip engine and applies the declared
injectors' verdicts *outside* the protocol logic: the engine under the
proxy still draws schedules and mutates node state exactly as before; the
proxy decides which exchanges actually carry a message (loss), carry it
twice (duplication), carry it later (delay), or carry a corrupted batch
(byzantine malformed).

Semantics shared by both planes:

* faults act on *exchanges* — the protocols' atomic message unit (an
  EESum exchange is one push–pull message pair);
* exchange counters count **attempted** sends: a dropped message still
  cost its initiator the send (bandwidth accounting matches a real lossy
  network, where the sender pays whether or not delivery succeeds);
* delayed exchanges are queued per protocol *phase* (identified by the
  protocol set of the cycle call) — a message delayed past the end of its
  phase is lost, because the protocol instance it addressed no longer
  gossips.

Determinism: proxies consume no engine RNG for fault decisions (injectors
own named streams), so wrapping an engine and injecting *nothing* leaves
the run bit-identical — pinned by ``tests/faults/test_bit_identity.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..gossip.engine import GossipEngine, Node
from ..gossip.vectorized_protocol import VectorizedGossipEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import FaultPlan

__all__ = ["FaultyObjectEngine", "FaultyVectorizedEngine"]


class _ExchangeInterceptor:
    """Presented to the inner object engine as its single protocol.

    The engine keeps full ownership of scheduling (churn redraw, shuffle,
    view sampling — all on the engine's own RNG); the interceptor sits at
    the point where the scheduled exchange would deliver and routes it
    through the proxy's verdict machinery with the *real* protocol set.
    """

    def __init__(self, proxy: "FaultyObjectEngine", protocols: tuple) -> None:
        self.proxy = proxy
        self.protocols = protocols

    def setup(self, node: Node, rng) -> None:  # pragma: no cover - unused
        pass

    def exchange(self, initiator: Node, contact: Node, rng) -> None:
        self.proxy._handle_exchange(initiator, contact, rng, self.protocols)


class FaultyObjectEngine:
    """Fault-injecting wrapper over :class:`~repro.gossip.engine.GossipEngine`.

    Every attribute not defined here (``nodes``, ``rng``, ``cycles``,
    ``mean_exchanges_per_node``, ...) delegates to the wrapped engine, so
    the proxy is drop-in for :class:`~repro.core.computation.ComputationStep`.
    """

    def __init__(self, engine: GossipEngine, plan: "FaultPlan", iteration: int) -> None:
        self._engine = engine
        self._plan = plan
        self._iteration = iteration
        self._delayed: list[tuple[int, int, int]] = []  # (due_cycle, init, contact)
        self._phase_key: tuple | None = None

    def __getattr__(self, name: str) -> Any:
        return getattr(self._engine, name)

    def setup(self, *protocols) -> None:
        self._engine.setup(*protocols)

    def run_cycle(self, *protocols) -> int:
        engine, plan = self._engine, self._plan
        phase_key = tuple(id(p) for p in protocols)
        if phase_key != self._phase_key:
            # New protocol phase: messages delayed past their phase are lost.
            self._phase_key = phase_key
            self._delayed.clear()
        for injector in plan.injectors:
            injector.begin_cycle(self, protocols, self._iteration)
        # Flush delayed deliveries that have come due (before the cycle's
        # fresh exchanges, preserving arrival order).
        due = [entry for entry in self._delayed if entry[0] <= engine.cycles]
        self._delayed = [entry for entry in self._delayed if entry[0] > engine.cycles]
        for _, initiator_id, contact_id in due:
            self._deliver(
                engine.nodes[initiator_id], engine.nodes[contact_id],
                engine.rng, protocols,
            )
        interceptor = _ExchangeInterceptor(self, protocols)
        return self._engine.run_cycle(interceptor)

    def run_cycles(self, cycles: int, *protocols) -> int:
        total = 0
        for _ in range(cycles):
            total += self.run_cycle(*protocols)
        return total

    def run_pairing_cycle(self, pairs, *protocols) -> int:
        """Shadow-execution schedules bypass injection (they replay a
        schedule decided elsewhere); faults apply only to live cycles."""
        return self._engine.run_pairing_cycle(pairs, *protocols)

    # ------------------------------------------------------------- internals

    def _handle_exchange(
        self, initiator: Node, contact: Node, rng, protocols: tuple
    ) -> None:
        copies = 1
        delay = 0
        for injector in self._plan.injectors:
            verdict = injector.filter_exchange(
                self._iteration, initiator.node_id, contact.node_id
            )
            if verdict == "deliver":
                continue
            if verdict == "drop":
                return
            if verdict == "duplicate":
                copies += 1
            elif verdict.startswith("delay:"):
                delay = max(delay, int(verdict[6:]))
            else:
                raise ValueError(f"unknown exchange verdict {verdict!r}")
        if delay:
            self._delayed.append(
                (self._engine.cycles + delay, initiator.node_id, contact.node_id)
            )
            return
        for _ in range(copies):
            self._deliver(initiator, contact, rng, protocols)

    def _deliver(
        self, initiator: Node, contact: Node, rng, protocols: tuple
    ) -> None:
        corruptions: list[tuple[Any, Any]] = []  # (injector, undo)
        for injector in self._plan.injectors:
            undo = injector.corrupt_object_exchange(
                self._iteration, initiator, contact
            )
            if undo is not None:
                corruptions.append((injector, undo))
        try:
            for protocol in protocols:
                protocol.exchange(initiator, contact, rng)
        except ValueError as exc:
            if not corruptions:
                raise  # a genuine protocol failure, not our injection
            for injector, undo in reversed(corruptions):
                undo()
            for injector, _ in corruptions:
                injector.on_rejected(
                    self._iteration, initiator.node_id, self._plan, exc
                )
            return  # the malformed message was rejected; nothing delivered
        for _, undo in reversed(corruptions):
            # The corruption went unnoticed by every active protocol this
            # exchange — roll it back so it cannot silently persist beyond
            # the message it was injected into.
            undo()


class FaultyVectorizedEngine:
    """Fault-injecting wrapper over :class:`VectorizedGossipEngine`.

    The vectorized engine realizes one cycle as a disjoint pairing; the
    proxy draws that pairing (consuming the engine's own RNG exactly as an
    unwrapped cycle would), then lets each injector transform it — drop
    pairs (loss/storms), queue pairs for later cycles (delay), replicate
    pairs (duplication) — and executes the surviving batches through the
    engine's ``run_pairing_cycle``.
    """

    def __init__(
        self, engine: VectorizedGossipEngine, plan: "FaultPlan", iteration: int
    ) -> None:
        self._engine = engine
        self._plan = plan
        self._iteration = iteration
        self._delayed: list[tuple[int, np.ndarray, np.ndarray]] = []
        self._phase_key: tuple | None = None

    def __getattr__(self, name: str) -> Any:
        return getattr(self._engine, name)

    def run_cycle(self, *protocols) -> tuple[np.ndarray, np.ndarray]:
        engine, plan = self._engine, self._plan
        phase_key = tuple(id(p) for p in protocols)
        if phase_key != self._phase_key:
            self._phase_key = phase_key
            self._delayed.clear()  # delayed past the phase boundary: lost
        for injector in plan.injectors:
            injector.begin_cycle(self, protocols, self._iteration)
        left, right = engine.draw_pairing()
        extras: list[tuple[np.ndarray, np.ndarray]] = []
        newly_delayed: list[tuple[int, np.ndarray, np.ndarray]] = []
        for injector in plan.injectors:
            left, right, injector_extras, injector_delayed = (
                injector.transform_pairs(self._iteration, left, right)
            )
            extras.extend(injector_extras)
            newly_delayed.extend(injector_delayed)
        total = engine.run_pairing_cycle(left, right, *protocols)
        for extra_left, extra_right in extras:
            total += engine.run_pairing_cycle(extra_left, extra_right, *protocols)
        due = [entry for entry in self._delayed if entry[0] <= engine.cycles]
        self._delayed = [
            entry for entry in self._delayed if entry[0] > engine.cycles
        ] + [
            (engine.cycles + lag, d_left, d_right)
            for lag, d_left, d_right in newly_delayed
        ]
        for _, d_left, d_right in due:
            total += engine.run_pairing_cycle(d_left, d_right, *protocols)
        engine.cycles += 1
        if engine.on_cycle is not None:
            engine.on_cycle(engine.cycles, total)
        return left, right

    def run_cycles(self, cycles: int, *protocols) -> int:
        total = 0
        for _ in range(cycles):
            left, _right = self.run_cycle(*protocols)
            total += len(left)
        return total

    def run_pairing_cycle(self, left, right, *protocols) -> int:
        """Shadow-execution schedules bypass injection (see object proxy)."""
        return self._engine.run_pairing_cycle(left, right, *protocols)

    def draw_pairing(self) -> tuple[np.ndarray, np.ndarray]:
        return self._engine.draw_pairing()
