"""Byzantine participants, exercised against the Sec. 4.4 countermeasures.

Four deviation modes, each targeting a different defensive leg:

* ``tamper`` — byzantine nodes report scaled decrypted results.  Caught by
  :class:`~repro.core.verification.DecryptionCrossCheck` (the epidemic
  cross-check: honest nodes agree up to the benign spread; a scaled report
  sits outside it).  Flagged reports are excluded from the output, so the
  canonical (min-id) trace every honest node acts on stays honest.
* ``replay`` — byzantine nodes re-report the *previous* iteration's
  decryption (a stale-result replay).  Caught the same way from the second
  iteration on: centroids move between iterations, so a replayed report
  deviates from the fresh median.
* ``malformed`` — byzantine nodes emit structurally broken ciphertext
  batches *during gossip*.  On the object plane a truncated EESum vector
  violates the protocol's length contract and the receiving node rejects
  the exchange (the ``exchange-guard`` detector); the corruption is rolled
  back, so an undetected malformed batch cannot persist.  On the
  vectorized plane the poison is a NaN payload, which the epidemic
  averaging spreads — the decryption cross-check then rejects the
  non-finite digests (satellite: explicit NaN/inf rejection) and, once no
  finite reference remains, the run aborts cleanly.
* ``unenrolled`` — byzantine devices never obtained a valid enrolment
  token.  :class:`~repro.core.verification.DeviceRegistry` rejects them at
  bootstrap (``device-registry`` detector) and the population refuses
  their exchanges — they are isolated, not merely flagged.

The detected-or-harmless property pinned by
``tests/properties/test_fault_invariants.py``: after ``observe_output``,
every corrupted report id is either flagged (and excluded) or its report
deviates from the honest reference by at most the configured tolerance —
there is no third outcome where an altered result flows downstream.

Gossip-level *input* poisoning with well-formed ciphertexts (lying about
one's own series) is out of scope by design: the paper assigns that attack
to the trusted-execution leg (hardware), not to the protocol-level
countermeasures modeled here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.verification import DecryptionCrossCheck, DeviceRegistry
# repro-lint: allow=fault-seams -- forging EESum shares requires the real message type, not a seam
from ..gossip.eesum import EESum
from .base import FaultInjector, register_fault

__all__ = ["ByzantineFault"]

_MODES = ("tamper", "replay", "malformed", "unenrolled")

#: Registrar secret for the simulated bootstrap server.  The *simulation*
#: needs a fixed secret so runs are reproducible; a deployment would draw
#: it at bootstrap.
_REGISTRAR_SECRET = b"chiaroscuro-bootstrap-registrar"


@register_fault("byzantine")
@dataclass(frozen=True)
class ByzantineFault:
    """A byzantine subset of the population, deviating in ``mode``.

    The subset is ``nodes`` when given, else ``fraction`` of the population
    drawn from the injector's named stream.  ``scale`` is the relative
    deviation of tampered reports; ``rate`` the per-exchange corruption
    probability for object-plane malformed batches; ``tolerance`` the
    cross-check's relative tolerance (generous enough that the benign
    epidemic spread never false-positives honest nodes).  With
    ``abort_on_detect`` any detection escalates to a clean run abort
    (deployments that prefer halting over excluding).
    """

    fraction: float = 0.0
    nodes: tuple = ()
    mode: str = "tamper"
    scale: float = 0.05
    rate: float = 1.0
    tolerance: float = 1e-2
    abort_on_detect: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self.nodes and self.fraction == 0.0:
            raise ValueError("set a byzantine fraction or explicit nodes")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self.scale == 0.0 and self.mode == "tamper":
            raise ValueError("tamper mode needs a non-zero scale")
        object.__setattr__(self, "nodes", tuple(int(i) for i in self.nodes))

    def build(self, rng: np.random.Generator) -> "ByzantineInjector":
        return ByzantineInjector(self, rng)


class ByzantineInjector(FaultInjector):
    """Live state of one byzantine subset across a run."""

    def __init__(self, config: ByzantineFault, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.checker = DecryptionCrossCheck(
            relative_tolerance=config.tolerance
        )
        self.node_ids: tuple[int, ...] = ()
        self.node_set: frozenset[int] = frozenset()
        self.blocked: frozenset[int] = frozenset()
        self.plane = ""
        self._blocked_array = np.empty(0, dtype=np.int64)
        self._poisoned: set[int] = set()
        self._eesum_active = False
        self._prev_reports: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._rejection_iteration = -1
        self._rejections = 0

    # -------------------------------------------------------------- binding

    def bind(self, binding, plan) -> None:
        cfg = self.config
        population = binding.population
        self.plane = binding.plane
        if cfg.nodes:
            ids = tuple(sorted(set(cfg.nodes)))
            if ids and (ids[0] < 0 or ids[-1] >= population):
                raise ValueError(
                    f"byzantine node ids must be in [0, {population})"
                )
        else:
            count = min(population - 1, max(1, round(cfg.fraction * population)))
            ids = tuple(
                sorted(
                    int(i)
                    for i in self.rng.choice(population, size=count, replace=False)
                )
            )
        self.node_ids = ids
        self.node_set = frozenset(ids)
        if cfg.mode == "unenrolled":
            self._enroll_population(population, plan)

    def _enroll_population(self, population: int, plan) -> None:
        """Bootstrap the authenticated population (Sec. 4.4 leg 1).

        Honest devices present their registrar-issued token; byzantine
        devices present a token issued for a *different* identity (the
        realistic forgery available without the registrar secret).  The
        registry rejects every forgery, and rejected devices are blocked
        from all subsequent exchanges.
        """
        registry = DeviceRegistry(secret=_REGISTRAR_SECRET)
        rejected = []
        for device in range(population):
            if device in self.node_set:
                forged = registry.token_for((device + 1) % population)
                try:
                    registry.enroll(device, forged)
                except PermissionError:
                    rejected.append(device)
            else:
                registry.enroll(device, registry.token_for(device))
        self.blocked = frozenset(rejected)
        self._blocked_array = np.array(sorted(rejected), dtype=np.int64)
        if rejected:
            plan.detected(
                0,
                "byzantine",
                "device-registry",
                rejected[:32],
                {
                    "mode": "unenrolled",
                    "rejected": len(rejected),
                    "enrolled": len(registry.enrolled),
                },
            )

    # ------------------------------------------------------- exchange level

    def begin_cycle(self, engine, protocols: tuple, iteration: int) -> None:
        cfg = self.config
        if cfg.mode != "malformed":
            return
        if self.plane == "object":
            self._eesum_active = any(isinstance(p, EESum) for p in protocols)
            return
        # Vectorized malformed: poison the byzantine rows of each EESum
        # payload once.  Only the value body is poisoned — the appended
        # counter column stays finite, matching a well-formed envelope
        # around a garbage payload (the decode path then surfaces NaN
        # digests for the cross-check to reject rather than crashing on a
        # non-finite counter).
        for protocol in protocols:
            values = getattr(protocol, "values", None)
            if values is None or id(protocol) in self._poisoned:
                continue
            self._poisoned.add(id(protocol))
            rows = [i for i in self.node_ids if i < len(values)]
            if rows and values.shape[1] > 1:
                values[rows, :-1] = np.nan

    def filter_exchange(
        self, iteration: int, initiator_id: int, contact_id: int
    ) -> str:
        if self.blocked and (
            initiator_id in self.blocked or contact_id in self.blocked
        ):
            return "drop"
        return "deliver"

    def transform_pairs(self, iteration: int, left, right):
        if not len(self._blocked_array) or not len(left):
            return left, right, [], []
        keep = ~(
            np.isin(left, self._blocked_array)
            | np.isin(right, self._blocked_array)
        )
        return left[keep], right[keep], [], []

    def corrupt_object_exchange(self, iteration: int, initiator, contact):
        cfg = self.config
        if (
            cfg.mode != "malformed"
            or self.plane != "object"
            or not self._eesum_active
        ):
            return None
        if initiator.node_id in self.node_set:
            sender = initiator
        elif contact.node_id in self.node_set:
            sender = contact
        else:
            return None
        if self.rng.random() >= cfg.rate:
            return None
        state = sender.state.get("eesum")
        if state is None or not state.ciphertexts:
            return None
        removed = state.ciphertexts.pop()  # truncated batch: wrong length

        def undo() -> None:
            state.ciphertexts.append(removed)

        return undo

    def on_rejected(self, iteration: int, node_id: int, plan, error) -> None:
        self._rejections += 1
        if iteration != self._rejection_iteration:
            # One summary event per iteration, not one per rejected message.
            self._rejection_iteration = iteration
            plan.detected(
                iteration,
                "byzantine",
                "exchange-guard",
                (node_id,),
                {
                    "mode": self.config.mode,
                    "error": str(error),
                    "rejections_so_far": self._rejections,
                },
            )
        if self.config.abort_on_detect:
            plan.abort(
                "byzantine",
                iteration,
                f"malformed batch from device {node_id} rejected at the "
                f"exchange boundary: {error}",
            )

    # --------------------------------------------------------- report level

    def observe_output(self, output, iteration: int, plan):
        cfg = self.config
        if not output.sums:
            return output
        corrupt = [i for i in self.node_ids if i in output.sums]
        if cfg.mode == "tamper":
            for i in corrupt:
                output.sums[i] = output.sums[i] * (1.0 + cfg.scale)
                output.counts[i] = output.counts[i] * (1.0 + cfg.scale)
        elif cfg.mode == "replay":
            snapshot = {
                i: (output.sums[i].copy(), output.counts[i].copy())
                for i in corrupt
            }
            for i in corrupt:
                previous = self._prev_reports.get(i)
                if previous is not None:
                    output.sums[i] = previous[0].copy()
                    output.counts[i] = previous[1].copy()
            self._prev_reports = snapshot
        self._cross_check(output, iteration, plan, corrupt)
        return output

    def _cross_check(self, output, iteration: int, plan, corrupt) -> None:
        """The epidemic cross-check (Sec. 4.4 leg 2) over decoded reports."""
        cfg = self.config
        reports = {
            i: np.concatenate(
                [np.ravel(output.sums[i]), np.ravel(output.counts[i])]
            )
            for i in sorted(output.sums)
        }
        # A report of the wrong dimensionality (a replay from an iteration
        # with a different surviving-cluster count) is trivially rejectable
        # before any numeric comparison — drop it so the numeric check runs
        # over a homogeneous batch.
        lengths: dict[int, list[int]] = {}
        for i, vector in reports.items():
            lengths.setdefault(vector.size, []).append(i)
        majority = max(lengths, key=lambda size: len(lengths[size]))
        misshapen = sorted(
            i
            for size, ids in lengths.items()
            if size != majority
            for i in ids
        )
        if misshapen:
            plan.detected(
                iteration,
                "byzantine",
                "decryption-cross-check",
                misshapen[:32],
                {
                    "mode": cfg.mode,
                    "misshapen": len(misshapen),
                    "expected_length": majority,
                },
            )
            for i in misshapen:
                reports.pop(i)
                output.sums.pop(i, None)
                output.counts.pop(i, None)
            if not output.sums:
                plan.abort(
                    "byzantine",
                    iteration,
                    "every decryption report was misshapen",
                )
            if cfg.abort_on_detect:
                plan.abort(
                    "byzantine",
                    iteration,
                    f"{len(misshapen)} misshapen decryption report(s) flagged",
                )
        try:
            report = self.checker.check(reports)
        except ValueError as exc:
            plan.detected(
                iteration,
                "byzantine",
                "decryption-cross-check",
                corrupt[:32],
                {"mode": cfg.mode, "error": str(exc)},
            )
            plan.abort("byzantine", iteration, f"cross-check failed: {exc}")
            return  # pragma: no cover - abort raises
        if not report.deviating:
            return
        flagged = sorted(report.deviating)
        plan.detected(
            iteration,
            "byzantine",
            "decryption-cross-check",
            flagged[:32],
            {
                "mode": cfg.mode,
                "flagged": len(flagged),
                "non_finite": len(report.non_finite),
                "max_benign_spread": report.max_benign_spread,
            },
        )
        for i in flagged:
            output.sums.pop(i, None)
            output.counts.pop(i, None)
        if not output.sums:
            plan.abort(
                "byzantine", iteration, "cross-check flagged every report"
            )
        if cfg.abort_on_detect:
            plan.abort(
                "byzantine",
                iteration,
                f"{len(flagged)} deviating decryption report(s) flagged",
            )
