"""Correlated churn storms — burst outages over both gossip planes.

Sec. 6.1.5's churn model draws disconnections independently per node; a
:class:`~repro.gossip.churn.BurstChurnProcess` generalizes it to storms
that take a *correlated* set offline for several consecutive cycles (a
cell-tower outage, a power cut).  The injector advances one storm process
per run on its named stream and suppresses every exchange touching the
affected set, on top of whatever baseline churn the run already models.

A storm is environmental, not adversarial, but it is still *observable*:
the ``availability-monitor`` detector emits one event per storm onset so
benches and the service can correlate quality dips with outages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# repro-lint: allow=fault-seams -- the storm drives the same churn process the quality plane samples
from ..gossip.churn import BurstChurnProcess
from .base import FaultInjector, register_fault

__all__ = ["ChurnStormFault"]


@register_fault("churn-storm")
@dataclass(frozen=True)
class ChurnStormFault:
    """Storm process knobs: onset ``rate`` per cycle, offline ``magnitude``
    fraction, ``duration`` in cycles."""

    rate: float = 0.05
    magnitude: float = 0.2
    duration: int = 5

    def __post_init__(self) -> None:
        # Range validation lives in BurstChurnProcess; building one here
        # surfaces bad spec params at validation time, not mid-run.
        BurstChurnProcess(self.rate, self.magnitude, self.duration)

    def build(self, rng: np.random.Generator) -> "ChurnStormInjector":
        return ChurnStormInjector(self, rng)


class ChurnStormInjector(FaultInjector):
    """Applies one storm process across all of a run's gossip cycles."""

    def __init__(self, config: ChurnStormFault, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.plan = None
        self.population = 0
        self.process: BurstChurnProcess | None = None
        self._offline = np.empty(0, dtype=bool)
        self._any_offline = False
        self._was_storming = False
        self._storms = 0

    def bind(self, binding, plan) -> None:
        self.plan = plan
        self.population = binding.population
        self.process = BurstChurnProcess(
            self.config.rate, self.config.magnitude, self.config.duration
        )
        self._offline = np.zeros(self.population, dtype=bool)
        self._any_offline = False

    def begin_cycle(self, engine, protocols: tuple, iteration: int) -> None:
        self._offline = self.process.advance(self.population, self.rng)
        self._any_offline = bool(self._offline.any())
        storming = self.process.storming
        if storming and not self._was_storming:
            self._storms += 1
            affected = np.flatnonzero(self._offline)
            self.plan.detected(
                iteration,
                "churn-storm",
                "availability-monitor",
                affected[:32],
                {
                    "storm": self._storms,
                    "offline": int(len(affected)),
                    "duration_cycles": self.config.duration,
                },
            )
        self._was_storming = storming

    def filter_exchange(
        self, iteration: int, initiator_id: int, contact_id: int
    ) -> str:
        if self._any_offline and (
            self._offline[initiator_id] or self._offline[contact_id]
        ):
            return "drop"
        return "deliver"

    def transform_pairs(self, iteration: int, left, right):
        if not self._any_offline or not len(left):
            return left, right, [], []
        keep = ~(self._offline[left] | self._offline[right])
        return left[keep], right[keep], [], []
