"""Colluding coalitions: an empirical audit of the Appendix B.3 bounds.

A coalition controller pools the key-shares and noise-shares of ``c``
compromised participants and attempts what the appendix says it can and
cannot do:

* **key leg** — with the object plane's genuine threshold key material the
  controller encrypts a canary, computes the coalition's ``c`` partial
  decryptions, and attempts combination.  For ``c >= τ`` this is the
  regular combination; for ``c < τ`` the controller *bypasses* the honest
  API's share-count guard and interpolates with what it has (the real
  attack), recovering garbage — fewer than ``τ`` points of a degree-τ−1
  polynomial carry no information about its constant term.  The empirical
  verdict must equal :attr:`CollusionAnalysis.key_compromised`; a mismatch
  aborts the run (it would mean the crypto contradicts the analysis).
* **noise leg** — reported analytically: the fraction of the total Laplace
  noise outside the coalition decays linearly (App. B.3), quantified by
  :class:`~repro.privacy.collusion.CollusionAnalysis`.

On the vectorized plane there is no key material to steal (the
mock-homomorphic substrate), so the audit is analytical-only.

The audit emits one ``coalition-audit`` :class:`FaultDetected` event per
run carrying both the empirical and the analytical verdicts — collusion is
not detectable by honest participants (colluders follow the protocol), so
the event models an *oracle* audit for the bench, not a protocol defense.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..crypto import bigint
from ..crypto.damgard_jurik import dlog_1_plus_n, encrypt
from ..crypto.numtheory import modinv
from ..crypto.shamir import lagrange_at_zero
from ..crypto.threshold import combine_partial_decryptions, partial_decrypt
from ..privacy.collusion import CollusionAnalysis
from .base import FaultInjector, register_fault

__all__ = ["CollusionFault"]


@register_fault("collusion")
@dataclass(frozen=True)
class CollusionFault:
    """A coalition of ``collusions`` devices (or ``fraction`` of the
    population) pooling their shares."""

    collusions: int = 0
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.collusions < 0:
            raise ValueError("collusions must be >= 0")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.collusions == 0 and self.fraction == 0.0:
            raise ValueError("set a coalition size (collusions or fraction)")

    def build(self, rng: np.random.Generator) -> "CollusionInjector":
        return CollusionInjector(self, rng)


class CollusionInjector(FaultInjector):
    """Runs the coalition audit once, on the first computed output."""

    def __init__(self, config: CollusionFault, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.binding = None
        self.coalition = 0
        self._audited = False

    def bind(self, binding, plan) -> None:
        self.binding = binding
        requested = self.config.collusions or round(
            self.config.fraction * binding.population
        )
        self.coalition = min(max(0, int(requested)), binding.population)

    def observe_output(self, output, iteration: int, plan):
        if self._audited:
            return output
        self._audited = True
        binding = self.binding
        analysis = CollusionAnalysis(
            population=binding.population,
            n_shares=binding.population,
            threshold=binding.threshold,
            collusions=self.coalition,
        )
        empirical = None
        if binding.keypair is not None:
            empirical = self._attempt_decryption(binding.keypair)
        plan.detected(
            iteration,
            "collusion",
            "coalition-audit",
            tuple(range(min(self.coalition, 16))),
            {
                "collusions": self.coalition,
                "threshold": binding.threshold,
                "population": binding.population,
                "key_compromised": analysis.key_compromised,
                "missing_key_shares": analysis.missing_key_shares,
                "unknown_noise_fraction": analysis.unknown_noise_fraction,
                "residual_noise_shape": analysis.residual_noise_shape(),
                "empirical_decryption": empirical,
            },
        )
        if empirical is not None and empirical != analysis.key_compromised:
            plan.abort(
                "collusion",
                iteration,
                f"empirical coalition decryption ({empirical}) contradicts "
                f"the App. B.3 bound (key_compromised="
                f"{analysis.key_compromised}) at c={self.coalition}, "
                f"tau={binding.threshold}",
            )
        return output

    def _attempt_decryption(self, keypair) -> bool:
        """The controller's best decryption attempt with ``c`` shares."""
        context = keypair.context
        public = keypair.public
        canary = 1 + int(self.rng.integers(0, 1 << 20))
        crypto_rng = random.Random(int(self.rng.integers(0, 1 << 62)))
        ciphertext = encrypt(public, canary, rng=crypto_rng)
        shares = keypair.shares[: self.coalition]
        partials = {
            share.index: partial_decrypt(context, share, ciphertext)
            for share in shares
        }
        if not partials:
            return False
        try:
            if len(partials) >= context.threshold:
                recovered = combine_partial_decryptions(context, partials)
            else:
                # Bypass the honest API's share-count guard: interpolate
                # with the coalition's points, exactly as an attacker would.
                indices = sorted(partials)
                coefficients = lagrange_at_zero(indices, context.delta)
                combined = bigint.multi_powmod(
                    [partials[i] for i in indices],
                    [2 * coefficients[i] for i in indices],
                    public.n_s1,
                )
                raw = dlog_1_plus_n(public, combined)
                recovered = (
                    raw * modinv(4 * context.delta**2, public.n_s) % public.n_s
                )
        except (ValueError, ZeroDivisionError):
            return False
        return recovered == canary
