"""FaultPlan — per-run orchestration of the declared fault injectors.

An :class:`~repro.api.experiment.Experiment` builds one plan per run from
``RunSpec.faults`` and hands it to :class:`~repro.core.protocol.ChiaroscuroRun`
(which stays injector-agnostic: it calls exactly two neutral seams,
``wrap_engine`` and ``observe_output``).  The plan:

* instantiates **fresh** injectors with fresh named RNG streams on every
  ``bind_run`` — re-running an experiment object replays identical faults;
* wraps each per-iteration gossip engine in the matching proxy
  (:mod:`repro.faults.engines`);
* chains the injectors' report-level hooks after every computation step;
* buffers :class:`~repro.api.events.FaultDetected` events for the facade
  to drain into the run's event stream.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..api.events import FaultDetected
from ..gossip.engine import GossipEngine
from ..gossip.vectorized_protocol import VectorizedGossipEngine
from .base import FaultAbort, RunBinding, build_fault, fault_rng
from .engines import FaultyObjectEngine, FaultyVectorizedEngine

__all__ = ["FaultPlan"]


def _plain(value: Any) -> Any:
    """Coerce detector evidence to JSON-ready plain types for the wire."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


class FaultPlan:
    """The fault configuration of one run, plus its per-run live state."""

    def __init__(self, entries: Iterable[tuple[str, Any]], seed: int) -> None:
        #: ``(registry kind, frozen config)`` pairs, in spec order.
        self.entries: tuple[tuple[str, Any], ...] = tuple(entries)
        self.seed = int(seed)
        self.injectors: list = []
        self.binding: RunBinding | None = None
        self._events: list[FaultDetected] = []
        self._iteration: int | None = None

    @classmethod
    def from_spec(cls, spec: Any) -> "FaultPlan | None":
        """Build the plan a spec declares; ``None`` when it declares none."""
        faults = getattr(spec, "faults", ())
        if not faults:
            return None
        entries = [(f.kind, build_fault(f.kind, f.params)) for f in faults]
        return cls(entries, spec.seed)

    # ------------------------------------------------------------- lifecycle

    def bind_run(self, run: Any) -> None:
        """Attach to a :class:`ChiaroscuroRun`; instantiates fresh injectors.

        Called from the run's constructor once population and (object
        plane) key material exist; bind-time detections (e.g. the device
        registry rejecting unenrolled devices) are buffered as iteration-0
        events and drained with the first iteration.
        """
        self.binding = RunBinding(run)
        self.injectors = []
        self._events = []
        self._iteration = None
        for index, (kind, config) in enumerate(self.entries):
            injector = config.build(fault_rng(self.binding.seed, kind, index))
            injector.kind = kind
            self.injectors.append(injector)
        for injector in self.injectors:
            injector.bind(self.binding, self)

    def wrap_engine(self, engine: Any, iteration: int) -> Any:
        """The per-iteration engine seam: wrap in the matching proxy."""
        if iteration != self._iteration:
            self._iteration = iteration
            for injector in self.injectors:
                injector.begin_iteration(iteration)
        if isinstance(engine, GossipEngine):
            return FaultyObjectEngine(engine, self, iteration)
        if isinstance(engine, VectorizedGossipEngine):
            return FaultyVectorizedEngine(engine, self, iteration)
        raise TypeError(
            f"no fault proxy for engine type {type(engine).__name__}"
        )

    def observe_output(self, output: Any, iteration: int) -> Any:
        """The report seam: chain every injector's report-level hook."""
        for injector in self.injectors:
            output = injector.observe_output(output, iteration, self)
        return output

    # ---------------------------------------------------------------- events

    def detected(
        self,
        iteration: int,
        fault: str,
        detector: str,
        participants: Iterable[int],
        detail: dict,
    ) -> None:
        """Buffer a detection event (drained into the run's event stream)."""
        self._events.append(
            FaultDetected(
                iteration=int(iteration),
                fault=fault,
                detector=detector,
                participants=tuple(int(p) for p in participants),
                detail=_plain(detail),
            )
        )

    def drain_events(self) -> list[FaultDetected]:
        events, self._events = self._events, []
        return events

    def abort(self, fault: str, iteration: int, reason: str) -> None:
        """Escalate a detection to a clean run abort."""
        raise FaultAbort(fault, int(iteration), reason)
