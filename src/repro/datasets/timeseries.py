"""Time-series containers (Sec. 2.1).

A time-series is an ordered vector of reals; a dataset is the ``t × n``
matrix ``S`` of Eq. (1).  :class:`TimeSeriesSet` wraps that matrix with the
metadata Chiaroscuro's privacy arithmetic needs — the value range
``[dmin, dmax]`` (which fixes the DP sensitivity) and an optional
``population_scale`` recording that each stored series stands for ``scale``
identical individuals (the duplicate-and-jitter device of Appendix D, used
here to reach paper-scale populations on one machine; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..privacy.laplace import joint_sensitivity, sum_sensitivity

__all__ = ["TimeSeriesSet"]


@dataclass
class TimeSeriesSet:
    """A clipped matrix of time-series plus its privacy-relevant metadata."""

    values: np.ndarray
    dmin: float
    dmax: float
    name: str = "timeseries"
    population_scale: int = 1

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 2:
            raise ValueError("values must be a t × n matrix")
        if self.dmax <= self.dmin:
            raise ValueError("need dmin < dmax")
        if self.population_scale < 1:
            raise ValueError("population_scale must be >= 1")
        lo, hi = float(self.values.min(initial=self.dmin)), float(
            self.values.max(initial=self.dmax)
        )
        if lo < self.dmin - 1e-9 or hi > self.dmax + 1e-9:
            raise ValueError(
                f"values outside the declared range [{self.dmin}, {self.dmax}]: "
                f"observed [{lo}, {hi}] — clip at generation time"
            )

    @property
    def t(self) -> int:
        """Number of stored (distinct) series."""
        return self.values.shape[0]

    @property
    def n(self) -> int:
        """Series length."""
        return self.values.shape[1]

    @property
    def population(self) -> int:
        """Effective number of individuals (stored × population_scale)."""
        return self.t * self.population_scale

    @property
    def sum_sensitivity(self) -> float:
        """Definition 4 sensitivity ``n · max(|dmin|, |dmax|)``."""
        return sum_sensitivity(self.n, self.dmin, self.dmax)

    @property
    def joint_sensitivity(self) -> float:
        """Sensitivity of the (sum, count) pair (see privacy.laplace)."""
        return joint_sensitivity(self.n, self.dmin, self.dmax)

    def subsample(self, fraction: float, rng: np.random.Generator) -> "TimeSeriesSet":
        """Random subset (used by the per-iteration churn model of Sec. 6.1.5)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        keep = rng.random(self.t) < fraction
        if not keep.any():
            keep[rng.integers(self.t)] = True
        return TimeSeriesSet(
            values=self.values[keep],
            dmin=self.dmin,
            dmax=self.dmax,
            name=self.name,
            population_scale=self.population_scale,
        )
