"""Workload generators: CER-like electricity curves, NUMED-like tumor-growth
series, the Appendix D 2-D points, and the TimeSeriesSet container.
"""

from .cer import ARCHETYPE_BUILDERS, courbogen_like_centroids, generate_cer
from .numed import generate_numed, numed_profile
from .points2d import generate_a3_like, generate_points2d
from .timeseries import TimeSeriesSet

__all__ = [
    "ARCHETYPE_BUILDERS",
    "TimeSeriesSet",
    "courbogen_like_centroids",
    "generate_a3_like",
    "generate_cer",
    "generate_numed",
    "generate_points2d",
    "numed_profile",
]
