"""CER-like synthetic electricity-consumption time-series.

The paper's real dataset — the Irish CER smart-meter trial [16] — is
access-restricted; we generate a synthetic stand-in with the same shape
statistics the experiments depend on (see DESIGN.md substitution table):

* daily load curves of 24 hourly values in ``[0, 80]`` (kWh-scale), so the
  Definition 4 sensitivity is the paper's ``24 · 80 = 1920``;
* a *strongly concentrated* population: most households follow a handful of
  archetype profiles (night base load, morning peak, evening peak,
  business-hours plateau, night-storage heating, ...), which is exactly the
  property the paper invokes to explain CER's behaviour under churn and
  smoothing ("strongly concentrated CER time-series");
* a heavy-tailed mixture: archetype popularity follows a geometric decay, so
  there are small clusters that are noise-sensitive — the reason the SMA
  smoothing visibly helps on CER.

The module also exports :func:`courbogen_like_centroids`, the substitution
for EDF's proprietary CourboGen generator used to seed initial centroids
without touching raw series.
"""

from __future__ import annotations

import numpy as np

from .timeseries import TimeSeriesSet

__all__ = ["ARCHETYPE_BUILDERS", "generate_cer", "courbogen_like_centroids"]

_HOURS = np.arange(24)
_DMIN, _DMAX = 0.0, 80.0


def _bump(center: float, width: float, height: float) -> np.ndarray:
    """A circular Gaussian bump over the 24 hours."""
    delta = np.minimum(np.abs(_HOURS - center), 24 - np.abs(_HOURS - center))
    return height * np.exp(-0.5 * (delta / width) ** 2)


def _profile_flat_night(rng: np.random.Generator) -> np.ndarray:
    """Low base load with a mild evening bump (small flat / absent household)."""
    base = rng.uniform(1.0, 4.0)
    return base + _bump(20, 2.5, rng.uniform(2.0, 6.0))


def _profile_morning_evening(rng: np.random.Generator) -> np.ndarray:
    """Classic commuter household: morning and evening peaks."""
    base = rng.uniform(2.0, 6.0)
    return (
        base
        + _bump(7.5, 1.5, rng.uniform(8.0, 18.0))
        + _bump(19, 2.0, rng.uniform(12.0, 25.0))
    )


def _profile_evening_heavy(rng: np.random.Generator) -> np.ndarray:
    """Evening-dominated usage (electric cooking / entertainment)."""
    base = rng.uniform(2.0, 5.0)
    return base + _bump(20.5, 3.0, rng.uniform(20.0, 38.0))


def _profile_daytime_home(rng: np.random.Generator) -> np.ndarray:
    """At-home-all-day profile: broad midday plateau."""
    base = rng.uniform(3.0, 7.0)
    return base + _bump(13, 4.5, rng.uniform(10.0, 20.0))


def _profile_business(rng: np.random.Generator) -> np.ndarray:
    """Small business: 9-to-5 plateau, low nights and early mornings."""
    base = rng.uniform(1.0, 3.0)
    plateau = np.where((_HOURS >= 8) & (_HOURS <= 17), rng.uniform(25.0, 45.0), 0.0)
    return base + plateau + _bump(12.5, 1.5, rng.uniform(3.0, 8.0))


def _profile_night_storage(rng: np.random.Generator) -> np.ndarray:
    """Night-storage heating: strong overnight draw on cheap tariff."""
    base = rng.uniform(2.0, 5.0)
    return base + _bump(2.5, 2.5, rng.uniform(25.0, 45.0)) + _bump(19, 2.0, rng.uniform(5.0, 12.0))


def _profile_ev_charger(rng: np.random.Generator) -> np.ndarray:
    """Late-evening EV charging spike on top of a commuter curve."""
    return _profile_morning_evening(rng) + _bump(23, 1.2, rng.uniform(20.0, 35.0))


def _profile_heavy_consumer(rng: np.random.Generator) -> np.ndarray:
    """Large household: elevated everything."""
    base = rng.uniform(8.0, 14.0)
    return (
        base
        + _bump(8, 2.0, rng.uniform(10.0, 20.0))
        + _bump(14, 3.0, rng.uniform(8.0, 15.0))
        + _bump(20, 2.5, rng.uniform(18.0, 30.0))
    )


#: Archetype builders, ordered from most to least popular.
ARCHETYPE_BUILDERS = (
    _profile_morning_evening,
    _profile_evening_heavy,
    _profile_flat_night,
    _profile_daytime_home,
    _profile_business,
    _profile_night_storage,
    _profile_ev_charger,
    _profile_heavy_consumer,
)


def generate_cer(
    n_series: int = 30_000,
    population_scale: int = 100,
    noise_sd: float = 1.5,
    popularity_decay: float = 0.62,
    seed: int | np.random.Generator = 0,
) -> TimeSeriesSet:
    """Generate a CER-like dataset of daily 24-hour load curves.

    ``n_series`` distinct curves are drawn from the archetype mixture with
    geometric popularity ``popularity_decay^rank`` (concentrated, like CER),
    jittered per-hour with Gaussian noise of ``noise_sd``, and clipped to
    ``[0, 80]``.  ``population_scale`` records how many individuals each
    stored curve represents (default 100 → effective 3M individuals for the
    paper's default 30K curves), which the DP arithmetic uses.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(len(ARCHETYPE_BUILDERS))
    popularity = popularity_decay**ranks
    popularity /= popularity.sum()
    choices = rng.choice(len(ARCHETYPE_BUILDERS), size=n_series, p=popularity)
    values = np.empty((n_series, 24))
    for idx, archetype in enumerate(choices):
        curve = ARCHETYPE_BUILDERS[archetype](rng)
        values[idx] = curve + rng.normal(0.0, noise_sd, size=24)
    np.clip(values, _DMIN, _DMAX, out=values)
    return TimeSeriesSet(
        values=values,
        dmin=_DMIN,
        dmax=_DMAX,
        name="cer-like",
        population_scale=population_scale,
    )


def courbogen_like_centroids(k: int, rng: np.random.Generator) -> np.ndarray:
    """Synthetic initial centroids in the spirit of EDF's CourboGen.

    Returns ``k`` *plausible but generic* load profiles: a random base load
    plus one to three bumps at random hours.  Crucially these are neither
    sampled from any dataset nor copies of the generator's archetypes —
    matching the paper's privacy constraint on CER initial centroids (and
    leaving k-means an actual descent to perform, as in Fig. 2).
    """
    centroids = np.empty((k, 24))
    for i in range(k):
        curve = np.full(24, rng.uniform(1.0, 10.0))
        for _ in range(rng.integers(1, 4)):
            curve = curve + _bump(
                rng.uniform(0, 24), rng.uniform(1.0, 5.0), rng.uniform(5.0, 40.0)
            )
        centroids[i] = np.clip(curve, _DMIN, _DMAX)
    return centroids
