"""NUMED-like synthetic tumor-growth time-series.

The paper's NUMED dataset is itself synthetic: 1.2M series of 20 weekly
tumor-size measurements in ``[0, 50]``, generated from the tumor-growth
dynamics of Claret et al. [7].  We regenerate from the same model class —
the widely used tumor-growth-inhibition (TGI) equation

    ``y(t) = y0 · (exp(-shrink · t) + growth · t)``

(plus a pure-growth Gompertz-style family for untreated profiles), with
parameters drawn per patient from a set of typical-response archetypes:
responder, stable disease, progressive disease, relapse-after-response.
Cluster sizes are kept *near-uniform*, which is the property the paper uses
to explain why NUMED barely benefits from SMA smoothing (no small,
noise-fragile clusters).
"""

from __future__ import annotations

import numpy as np

from .timeseries import TimeSeriesSet

__all__ = ["generate_numed", "numed_profile"]

_WEEKS = np.arange(20, dtype=float)
_DMIN, _DMAX = 0.0, 50.0


def numed_profile(
    baseline: float, shrink: float, growth: float, weeks: np.ndarray = _WEEKS
) -> np.ndarray:
    """Claret-style TGI curve ``y0·(exp(−shrink·t) + growth·t)``."""
    return baseline * (np.exp(-shrink * weeks) + growth * weeks)


def _archetype_params(rng: np.random.Generator, archetype: int) -> tuple[float, float, float]:
    """Per-patient parameters for the four clinical archetypes."""
    if archetype == 0:  # strong responder: fast shrink, negligible regrowth
        return rng.uniform(25, 45), rng.uniform(0.25, 0.5), rng.uniform(0.0, 0.004)
    if archetype == 1:  # stable disease: slow shrink balanced by slow growth
        return rng.uniform(15, 35), rng.uniform(0.04, 0.10), rng.uniform(0.004, 0.010)
    if archetype == 2:  # progressive disease: growth dominates
        return rng.uniform(10, 25), rng.uniform(0.0, 0.03), rng.uniform(0.02, 0.05)
    # archetype 3 — relapse: strong initial response then steep regrowth
    return rng.uniform(20, 40), rng.uniform(0.3, 0.6), rng.uniform(0.012, 0.03)


def generate_numed(
    n_series: int = 24_000,
    population_scale: int = 50,
    noise_sd: float = 0.8,
    seed: int | np.random.Generator = 0,
) -> TimeSeriesSet:
    """Generate a NUMED-like dataset of 20-week tumor-size series.

    Archetypes are drawn *uniformly* (equally distributed clusters, per the
    paper's description), measurement noise is Gaussian, and values are
    clipped to ``[0, 50]`` (sensitivity ``20 · 50 = 1000``).  The default
    24K distinct series × ``population_scale=50`` matches the paper's 1.2M
    effective patients.
    """
    rng = np.random.default_rng(seed)
    archetypes = rng.integers(0, 4, size=n_series)
    values = np.empty((n_series, len(_WEEKS)))
    for idx, archetype in enumerate(archetypes):
        baseline, shrink, growth = _archetype_params(rng, int(archetype))
        curve = numed_profile(baseline, shrink, growth)
        values[idx] = curve + rng.normal(0.0, noise_sd, size=len(_WEEKS))
    np.clip(values, _DMIN, _DMAX, out=values)
    return TimeSeriesSet(
        values=values,
        dmin=_DMIN,
        dmax=_DMAX,
        name="numed-like",
        population_scale=population_scale,
    )
