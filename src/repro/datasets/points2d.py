"""A3-like 2-D points dataset (Appendix D).

The paper's final illustration duplicates the 7.5K-point, 50-cluster A3
benchmark 100 times with a small uniform jitter, producing 750K points, and
runs both clear k-means and Chiaroscuro (GREEDY, no smoothing) on it.
The original A3 file is a University of Eastern Finland download; we
synthesize an equivalent: 50 well-separated Gaussian blobs of 150 points
each on a jittered grid, then apply the same duplicate-and-jitter step.

2-D points are "time-series of size 2" for the privacy arithmetic but have
no temporal adjacency, so SMA smoothing does not apply — mirrored by the
experiment harness.
"""

from __future__ import annotations

import numpy as np

from .timeseries import TimeSeriesSet

__all__ = ["generate_points2d", "generate_a3_like"]

_DMIN, _DMAX = 0.0, 1000.0


def generate_a3_like(
    n_clusters: int = 50,
    points_per_cluster: int = 150,
    spread: float = 18.0,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthesize the base A3-like set: (points, true_centers).

    Cluster centers sit on a jittered √k × √k grid inside
    ``[100, 900]²`` so blobs are well separated at the default spread.
    """
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(n_clusters)))
    xs, ys = np.meshgrid(np.linspace(120, 880, side), np.linspace(120, 880, side))
    centers = np.column_stack([xs.ravel(), ys.ravel()])[:n_clusters]
    centers = centers + rng.uniform(-30, 30, size=centers.shape)
    points = np.concatenate(
        [
            center + rng.normal(0.0, spread, size=(points_per_cluster, 2))
            for center in centers
        ]
    )
    return np.clip(points, _DMIN, _DMAX), centers


def generate_points2d(
    n_clusters: int = 50,
    points_per_cluster: int = 150,
    duplications: int = 100,
    jitter: float = 4.0,
    seed: int | np.random.Generator = 0,
) -> TimeSeriesSet:
    """The Appendix D construction: A3-like base × ``duplications`` + jitter.

    Default sizes reproduce the paper's 7.5K × 100 = 750K points.  The
    jitter is uniform in ``[−jitter, +jitter]`` — "small enough to preserve
    the clusters".
    """
    rng = np.random.default_rng(seed)
    base, _ = generate_a3_like(n_clusters, points_per_cluster, seed=rng)
    copies = np.repeat(base, duplications, axis=0)
    copies = copies + rng.uniform(-jitter, jitter, size=copies.shape)
    return TimeSeriesSet(
        values=np.clip(copies, _DMIN, _DMAX),
        dmin=_DMIN,
        dmax=_DMAX,
        name="a3-750k-like",
    )
