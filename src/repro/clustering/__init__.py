"""Cleartext clustering plane: Lloyd k-means baseline, inertia metrics
(Definition 1), initialization strategies, and the DTW extension.
"""

from .distance import assign_to_closest, pairwise_sq_euclidean, squared_euclidean
from .dtw import (
    dba_mean,
    dtw_assign,
    dtw_assign_reference,
    dtw_distance,
    dtw_pairwise,
    dtw_path,
    lb_keogh,
)
from .inertia import dataset_inertia, inertia_report, inter_inertia, intra_inertia
from .init import kmeanspp_init, sample_init, template_init, uniform_init
from .kmeans import KMeansTrace, compute_means, lloyd_kmeans

__all__ = [
    "KMeansTrace",
    "assign_to_closest",
    "compute_means",
    "dataset_inertia",
    "dba_mean",
    "dtw_assign",
    "dtw_assign_reference",
    "dtw_distance",
    "dtw_pairwise",
    "dtw_path",
    "inertia_report",
    "inter_inertia",
    "intra_inertia",
    "kmeanspp_init",
    "lb_keogh",
    "lloyd_kmeans",
    "pairwise_sq_euclidean",
    "sample_init",
    "squared_euclidean",
    "template_init",
    "uniform_init",
]
