"""Inertia metrics (Definition 1).

* intra-cluster inertia ``q_intra = (1/t)·Σ_i Σ_{s∈ζ[i]} ||C[i] − s||²`` —
  the k-means objective the paper plots in Figs. 2–3;
* inter-cluster inertia ``q_inter = Σ_i (|ζ[i]|/t)·||C[i] − g||²`` with
  ``g`` the global centroid;
* full inertia ``q = q_intra + q_inter`` — constant for a dataset when the
  centroids are the true cluster means (Huygens decomposition), plotted as
  the "Dataset inertia" upper bound.
"""

from __future__ import annotations

import numpy as np

__all__ = ["intra_inertia", "inter_inertia", "dataset_inertia", "inertia_report"]


def _validate(series: np.ndarray, centroids: np.ndarray, labels: np.ndarray) -> None:
    if len(labels) != len(series):
        raise ValueError("labels must have one entry per series")
    if labels.size and (labels.min() < 0 or labels.max() >= len(centroids)):
        raise ValueError("labels reference unknown centroids")


def intra_inertia(
    series: np.ndarray, centroids: np.ndarray, labels: np.ndarray
) -> float:
    """Weighted (1/t) sum of squared distances to the assigned centroid."""
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.asarray(labels)
    _validate(series, centroids, labels)
    diff = series - centroids[labels]
    return float(np.einsum("ij,ij->", diff, diff) / len(series))


def inter_inertia(
    series: np.ndarray, centroids: np.ndarray, labels: np.ndarray
) -> float:
    """Cardinality-weighted squared distances of centroids to the global mean."""
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.asarray(labels)
    _validate(series, centroids, labels)
    g = series.mean(axis=0)
    counts = np.bincount(labels, minlength=len(centroids)).astype(float)
    diff = centroids - g
    sq = np.einsum("ij,ij->i", diff, diff)
    return float((counts / len(series)) @ sq)


def dataset_inertia(series: np.ndarray) -> float:
    """Full inertia ``(1/t)·Σ ||s − g||²`` — the constant upper bound."""
    series = np.asarray(series, dtype=float)
    diff = series - series.mean(axis=0)
    return float(np.einsum("ij,ij->", diff, diff) / len(series))


def inertia_report(
    series: np.ndarray, centroids: np.ndarray, labels: np.ndarray
) -> dict[str, float]:
    """All three Definition 1 quantities in one pass-friendly dict."""
    return {
        "intra": intra_inertia(series, centroids, labels),
        "inter": inter_inertia(series, centroids, labels),
        "dataset": dataset_inertia(series),
    }
