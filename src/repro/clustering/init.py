"""Initial-centroid strategies (the ``C_init`` of Table 1).

The paper seeds NUMED runs with uniform random picks *from* the dataset and
CER runs with synthetic profiles from EDF's CourboGen generator (raw series
cannot be used as centroids for privacy reasons).  We mirror both:

* :func:`sample_init`   — random distinct series (NUMED style);
* :func:`uniform_init`  — uniform random vectors in the value range;
* :func:`template_init` — synthetic profile templates supplied by a dataset
  generator (CER / CourboGen style); see ``repro.datasets.cer``.
* :func:`kmeanspp_init` — k-means++ (not in the paper; provided as the
  standard strong baseline for ablations).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .distance import pairwise_sq_euclidean

__all__ = ["sample_init", "uniform_init", "template_init", "kmeanspp_init"]


def sample_init(series: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Pick ``k`` distinct series uniformly at random as initial centroids."""
    series = np.asarray(series, dtype=float)
    if k > len(series):
        raise ValueError("k cannot exceed the number of series")
    indices = rng.choice(len(series), size=k, replace=False)
    return series[indices].copy()


def uniform_init(
    k: int,
    length: int,
    dmin: float,
    dmax: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``k`` centroids uniformly in ``[dmin, dmax]^length``."""
    if dmax <= dmin:
        raise ValueError("need dmin < dmax")
    return rng.uniform(dmin, dmax, size=(k, length))


def template_init(
    k: int, generator: Callable[[int, np.random.Generator], np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Ask a dataset-specific template ``generator(k, rng)`` for centroids.

    This is the CourboGen substitution point: CER-like experiments pass
    ``repro.datasets.cer.courbogen_like_centroids``.
    """
    centroids = np.asarray(generator(k, rng), dtype=float)
    if centroids.shape[0] != k:
        raise ValueError("template generator returned the wrong number of centroids")
    return centroids


def kmeanspp_init(series: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding (D² weighting); ablation baseline, not in the paper."""
    series = np.asarray(series, dtype=float)
    if k > len(series):
        raise ValueError("k cannot exceed the number of series")
    first = rng.integers(len(series))
    centroids = [series[first]]
    d2 = pairwise_sq_euclidean(series, np.array([series[first]]))[:, 0]
    for _ in range(1, k):
        total = d2.sum()
        if total <= 0:
            idx = rng.integers(len(series))
        else:
            idx = rng.choice(len(series), p=d2 / total)
        centroids.append(series[idx])
        d2 = np.minimum(d2, pairwise_sq_euclidean(series, np.array([series[idx]]))[:, 0])
    return np.array(centroids)
