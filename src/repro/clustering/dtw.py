"""Dynamic Time Warping distance and DTW-barycenter averaging (extension).

The paper clusters with Euclidean distance, but its conclusion points at
richer iterative analytics over time-series as future work; DTW is the
canonical elastic measure for the electricity/health series Chiaroscuro
targets.  We provide:

* :func:`dtw_distance` — classic O(n·m) dynamic program with an optional
  Sakoe–Chiba band (window) for the usual linear-time approximation;
* :func:`dba_mean` — DTW Barycenter Averaging (Petitjean-style), the DTW
  analogue of the k-means computation step;
* :func:`dtw_assign` — assignment step under DTW.

These plug into the *cleartext* planes (baseline and perturbed-centralized
k-means).  They are deliberately not wired into the encrypted protocol: the
Diptych structure only supports additive aggregates, and that boundary is
exactly the "which algorithms can Chiaroscuro support" question the paper
leaves open.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dtw_distance", "dtw_path", "dtw_assign", "dba_mean"]


def _cost_matrix(a: np.ndarray, b: np.ndarray, window: int | None) -> np.ndarray:
    n, m = len(a), len(b)
    if window is not None:
        window = max(window, abs(n - m))
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            lo, hi = 1, m
        else:
            lo, hi = max(1, i - window), min(m, i + window)
        ai = a[i - 1]
        for j in range(lo, hi + 1):
            d = (ai - b[j - 1]) ** 2
            cost[i, j] = d + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return cost


def dtw_distance(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """DTW distance (square root of the accumulated squared cost).

    ``window`` is the Sakoe–Chiba band half-width; ``None`` means
    unconstrained.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw_distance expects 1-D series")
    return float(np.sqrt(_cost_matrix(a, b, window)[len(a), len(b)]))


def dtw_path(
    a: np.ndarray, b: np.ndarray, window: int | None = None
) -> list[tuple[int, int]]:
    """Optimal warping path as (i, j) index pairs (0-based, monotone)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    cost = _cost_matrix(a, b, window)
    i, j = len(a), len(b)
    path = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1])
        best = int(np.argmin(moves))
        if best == 0:
            i, j = i - 1, j - 1
        elif best == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return path


def dtw_assign(
    series: np.ndarray, centroids: np.ndarray, window: int | None = None
) -> np.ndarray:
    """Assignment step under DTW (O(t·k·n²); use small datasets or a window)."""
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.empty(len(series), dtype=np.int64)
    for idx, s in enumerate(series):
        best, best_d = 0, np.inf
        for c_idx, c in enumerate(centroids):
            d = dtw_distance(s, c, window)
            if d < best_d:
                best, best_d = c_idx, d
        labels[idx] = best
    return labels


def dba_mean(
    series: np.ndarray,
    initial: np.ndarray,
    iterations: int = 5,
    window: int | None = None,
) -> np.ndarray:
    """DTW Barycenter Averaging: the mean under warping alignment.

    Each pass aligns every series to the current barycenter and averages
    the values mapped onto each barycenter coordinate.
    """
    series = np.asarray(series, dtype=float)
    barycenter = np.asarray(initial, dtype=float).copy()
    if len(series) == 0:
        return barycenter
    for _ in range(iterations):
        sums = np.zeros_like(barycenter)
        counts = np.zeros(len(barycenter))
        for s in series:
            for i, j in dtw_path(barycenter, s, window):
                sums[i] += s[j]
                counts[i] += 1
        mask = counts > 0
        barycenter[mask] = sums[mask] / counts[mask]
    return barycenter
