"""Dynamic Time Warping distance and DTW-barycenter averaging (extension).

The paper clusters with Euclidean distance, but its conclusion points at
richer iterative analytics over time-series as future work; DTW is the
canonical elastic measure for the electricity/health series Chiaroscuro
targets.  We provide:

* :func:`dtw_distance` — O(n·m) dynamic program with an optional
  Sakoe–Chiba band (window) for the usual linear-time approximation;
* :func:`dtw_pairwise` — all ``t × k`` series↔centroid distances as one
  batched anti-diagonal (wavefront) DP, no Python-level per-cell loops;
* :func:`dba_mean` — DTW Barycenter Averaging (Petitjean-style), the DTW
  analogue of the k-means computation step;
* :func:`dtw_assign` — assignment step under DTW (batched).

The DP is vectorized along anti-diagonals: every cell on diagonal
``d = i + j`` depends only on diagonals ``d−1`` and ``d−2``, so one numpy
operation fills a whole wavefront.  The classic per-cell loops survive as
``_cost_matrix_reference`` / :func:`dtw_assign_reference` — the semantic
reference the vectorized kernels are tested against cell-for-cell.

These plug into the *cleartext* planes (baseline and perturbed-centralized
k-means).  They are deliberately not wired into the encrypted protocol: the
Diptych structure only supports additive aggregates, and that boundary is
exactly the "which algorithms can Chiaroscuro support" question the paper
leaves open.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dtw_distance",
    "dtw_path",
    "dtw_pairwise",
    "dtw_assign",
    "dtw_assign_reference",
    "dba_mean",
]


def _cost_matrix_reference(
    a: np.ndarray, b: np.ndarray, window: int | None
) -> np.ndarray:
    """The per-cell DP loop — kept as the semantic reference for tests."""
    n, m = len(a), len(b)
    if window is not None:
        window = max(window, abs(n - m))
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            lo, hi = 1, m
        else:
            lo, hi = max(1, i - window), min(m, i + window)
        ai = a[i - 1]
        for j in range(lo, hi + 1):
            d = (ai - b[j - 1]) ** 2
            cost[i, j] = d + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return cost


def _diag_bounds(d: int, n: int, m: int, window: int | None) -> tuple[int, int]:
    """Inclusive ``i`` range of in-band cells on anti-diagonal ``d = i + j``."""
    lo, hi = max(1, d - m), min(n, d - 1)
    if window is not None:
        # |i - j| <= w with j = d - i  ⇒  (d - w)/2 <= i <= (d + w)/2.
        lo = max(lo, -((window - d) // 2))  # ceil((d - w) / 2)
        hi = min(hi, (d + window) // 2)
    return lo, hi


def _cost_matrix(a: np.ndarray, b: np.ndarray, window: int | None) -> np.ndarray:
    """Accumulated-cost matrix, filled one anti-diagonal at a time."""
    n, m = len(a), len(b)
    if window is not None:
        window = max(window, abs(n - m))
    sq = (a[:, None] - b[None, :]) ** 2
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for d in range(2, n + m + 1):
        lo, hi = _diag_bounds(d, n, m, window)
        if lo > hi:
            continue
        i = np.arange(lo, hi + 1)
        j = d - i
        best = np.minimum(
            np.minimum(cost[i - 1, j], cost[i, j - 1]), cost[i - 1, j - 1]
        )
        cost[i, j] = sq[i - 1, j - 1] + best
    return cost


def dtw_distance(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """DTW distance (square root of the accumulated squared cost).

    ``window`` is the Sakoe–Chiba band half-width; ``None`` means
    unconstrained.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw_distance expects 1-D series")
    return float(np.sqrt(_cost_matrix(a, b, window)[len(a), len(b)]))


def dtw_path(
    a: np.ndarray, b: np.ndarray, window: int | None = None
) -> list[tuple[int, int]]:
    """Optimal warping path as (i, j) index pairs (0-based, monotone)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    cost = _cost_matrix(a, b, window)
    i, j = len(a), len(b)
    path = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1])
        best = int(np.argmin(moves))
        if best == 0:
            i, j = i - 1, j - 1
        elif best == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return path


def dtw_pairwise(
    series: np.ndarray,
    centroids: np.ndarray,
    window: int | None = None,
    chunk_size: int = 2048,
) -> np.ndarray:
    """All ``t × k`` DTW distances as one batched wavefront DP.

    Every (series, centroid) pair advances through the same anti-diagonal
    schedule, so the per-diagonal recurrence runs as a single
    ``(chunk, k, diagonal)`` array operation.  Only the last two diagonals
    are kept (three rolling buffers), bounding memory at
    ``O(chunk · k · n)`` regardless of series length.
    """
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    if series.ndim != 2 or centroids.ndim != 2:
        raise ValueError("dtw_pairwise expects 2-D series and centroid matrices")
    t, n = series.shape
    k, m = centroids.shape
    if window is not None:
        window = max(window, abs(n - m))
    distances = np.empty((t, k))
    for start in range(0, t, chunk_size):
        block = series[start : start + chunk_size]
        distances[start : start + chunk_size] = _pairwise_block(
            block, centroids, window
        )
    return np.sqrt(distances)


def _pairwise_block(
    series: np.ndarray, centroids: np.ndarray, window: int | None
) -> np.ndarray:
    """Squared accumulated DTW costs for one chunk (wavefront, 3 buffers).

    Buffer slot ``i`` of diagonal ``d`` holds ``D[i, d−i]``; the recurrence
    reads ``D[i−1, j]`` and ``D[i, j−1]`` from diagonal ``d−1`` (slots
    ``i−1`` and ``i``) and ``D[i−1, j−1]`` from diagonal ``d−2`` (slot
    ``i−1``).  The three buffers rotate in place; only the band a recycled
    buffer actually wrote two diagonals ago is reset, so per-diagonal work
    is proportional to the band width, not the full buffer.
    """
    t, n = series.shape
    k, m = centroids.shape
    shape = (t, k, n + 1)
    prev2 = np.full(shape, np.inf)  # diagonal d − 2
    prev = np.full(shape, np.inf)  # diagonal d − 1
    cur = np.full(shape, np.inf)  # diagonal d (recycled each step)
    prev2[:, :, 0] = 0.0  # D[0, 0]
    bands = {id(prev2): (0, 0), id(prev): None, id(cur): None}
    for d in range(2, n + m + 1):
        stale = bands[id(cur)]
        if stale is not None:
            cur[:, :, stale[0] : stale[1] + 1] = np.inf
        lo, hi = _diag_bounds(d, n, m, window)
        if lo <= hi:
            j = d - np.arange(lo, hi + 1)
            local = (series[:, None, lo - 1 : hi] - centroids[None, :, j - 1]) ** 2
            best = np.minimum(
                np.minimum(prev[:, :, lo - 1 : hi], prev[:, :, lo : hi + 1]),
                prev2[:, :, lo - 1 : hi],
            )
            cur[:, :, lo : hi + 1] = local + best
            bands[id(cur)] = (lo, hi)
        else:
            bands[id(cur)] = None
        prev2, prev, cur = prev, cur, prev2
    return prev[:, :, n].copy()  # D[n, m] sits on the last diagonal at slot n


def dtw_assign(
    series: np.ndarray, centroids: np.ndarray, window: int | None = None
) -> np.ndarray:
    """Assignment step under DTW — batched over all ``t × k`` pairs."""
    return np.argmin(dtw_pairwise(series, centroids, window), axis=1).astype(np.int64)


def dtw_assign_reference(
    series: np.ndarray, centroids: np.ndarray, window: int | None = None
) -> np.ndarray:
    """Per-pair loop assignment — the reference :func:`dtw_assign` is tested
    against (O(t·k·n²) Python-level iteration)."""
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.empty(len(series), dtype=np.int64)
    for idx, s in enumerate(series):
        best, best_d = 0, np.inf
        for c_idx, c in enumerate(centroids):
            d = dtw_distance(s, c, window)
            if d < best_d:
                best, best_d = c_idx, d
        labels[idx] = best
    return labels


def dba_mean(
    series: np.ndarray,
    initial: np.ndarray,
    iterations: int = 5,
    window: int | None = None,
) -> np.ndarray:
    """DTW Barycenter Averaging: the mean under warping alignment.

    Each pass aligns every series to the current barycenter and averages
    the values mapped onto each barycenter coordinate.
    """
    series = np.asarray(series, dtype=float)
    barycenter = np.asarray(initial, dtype=float).copy()
    if len(series) == 0:
        return barycenter
    for _ in range(iterations):
        sums = np.zeros_like(barycenter)
        counts = np.zeros(len(barycenter))
        for s in series:
            for i, j in dtw_path(barycenter, s, window):
                sums[i] += s[j]
                counts[i] += 1
        mask = counts > 0
        barycenter[mask] = sums[mask] / counts[mask]
    return barycenter
