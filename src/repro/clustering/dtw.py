"""Dynamic Time Warping distance and DTW-barycenter averaging (extension).

The paper clusters with Euclidean distance, but its conclusion points at
richer iterative analytics over time-series as future work; DTW is the
canonical elastic measure for the electricity/health series Chiaroscuro
targets.  We provide:

* :func:`dtw_distance` — O(n·m) dynamic program with an optional
  Sakoe–Chiba band (window) for the usual linear-time approximation;
* :func:`dtw_pairwise` — all ``t × k`` series↔centroid distances as one
  batched anti-diagonal (wavefront) DP, no Python-level per-cell loops;
* :func:`dba_mean` — DTW Barycenter Averaging (Petitjean-style), the DTW
  analogue of the k-means computation step;
* :func:`dtw_assign` — assignment step under DTW (batched), with an
  LB_Keogh pruning fast path: candidate centroids whose :func:`lb_keogh`
  lower bound already exceeds the best exact distance so far are never
  run through the wavefront DP (exact — tested against
  :func:`dtw_assign_reference`).

The DP is vectorized along anti-diagonals: every cell on diagonal
``d = i + j`` depends only on diagonals ``d−1`` and ``d−2``, so one numpy
operation fills a whole wavefront.  The classic per-cell loops survive as
``_cost_matrix_reference`` / :func:`dtw_assign_reference` — the semantic
reference the vectorized kernels are tested against cell-for-cell.

These plug into the *cleartext* planes (baseline and perturbed-centralized
k-means).  They are deliberately not wired into the encrypted protocol: the
Diptych structure only supports additive aggregates, and that boundary is
exactly the "which algorithms can Chiaroscuro support" question the paper
leaves open.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dtw_distance",
    "dtw_path",
    "dtw_pairwise",
    "dtw_assign",
    "dtw_assign_reference",
    "dba_mean",
    "lb_keogh",
]


def _cost_matrix_reference(
    a: np.ndarray, b: np.ndarray, window: int | None
) -> np.ndarray:
    """The per-cell DP loop — kept as the semantic reference for tests."""
    n, m = len(a), len(b)
    if window is not None:
        window = max(window, abs(n - m))
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            lo, hi = 1, m
        else:
            lo, hi = max(1, i - window), min(m, i + window)
        ai = a[i - 1]
        for j in range(lo, hi + 1):
            d = (ai - b[j - 1]) ** 2
            cost[i, j] = d + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return cost


def _diag_bounds(d: int, n: int, m: int, window: int | None) -> tuple[int, int]:
    """Inclusive ``i`` range of in-band cells on anti-diagonal ``d = i + j``."""
    lo, hi = max(1, d - m), min(n, d - 1)
    if window is not None:
        # |i - j| <= w with j = d - i  ⇒  (d - w)/2 <= i <= (d + w)/2.
        lo = max(lo, -((window - d) // 2))  # ceil((d - w) / 2)
        hi = min(hi, (d + window) // 2)
    return lo, hi


def _cost_matrix(a: np.ndarray, b: np.ndarray, window: int | None) -> np.ndarray:
    """Accumulated-cost matrix, filled one anti-diagonal at a time."""
    n, m = len(a), len(b)
    if window is not None:
        window = max(window, abs(n - m))
    sq = (a[:, None] - b[None, :]) ** 2
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for d in range(2, n + m + 1):
        lo, hi = _diag_bounds(d, n, m, window)
        if lo > hi:
            continue
        i = np.arange(lo, hi + 1)
        j = d - i
        best = np.minimum(
            np.minimum(cost[i - 1, j], cost[i, j - 1]), cost[i - 1, j - 1]
        )
        cost[i, j] = sq[i - 1, j - 1] + best
    return cost


def dtw_distance(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """DTW distance (square root of the accumulated squared cost).

    ``window`` is the Sakoe–Chiba band half-width; ``None`` means
    unconstrained.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw_distance expects 1-D series")
    return float(np.sqrt(_cost_matrix(a, b, window)[len(a), len(b)]))


def dtw_path(
    a: np.ndarray, b: np.ndarray, window: int | None = None
) -> list[tuple[int, int]]:
    """Optimal warping path as (i, j) index pairs (0-based, monotone)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    cost = _cost_matrix(a, b, window)
    i, j = len(a), len(b)
    path = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1])
        best = int(np.argmin(moves))
        if best == 0:
            i, j = i - 1, j - 1
        elif best == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return path


def dtw_pairwise(
    series: np.ndarray,
    centroids: np.ndarray,
    window: int | None = None,
    chunk_size: int = 2048,
) -> np.ndarray:
    """All ``t × k`` DTW distances as one batched wavefront DP.

    Every (series, centroid) pair advances through the same anti-diagonal
    schedule, so the per-diagonal recurrence runs as a single
    ``(chunk, k, diagonal)`` array operation.  Only the last two diagonals
    are kept (three rolling buffers), bounding memory at
    ``O(chunk · k · n)`` regardless of series length.
    """
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    if series.ndim != 2 or centroids.ndim != 2:
        raise ValueError("dtw_pairwise expects 2-D series and centroid matrices")
    t, n = series.shape
    k, m = centroids.shape
    if window is not None:
        window = max(window, abs(n - m))
    distances = np.empty((t, k))
    for start in range(0, t, chunk_size):
        block = series[start : start + chunk_size]
        distances[start : start + chunk_size] = _pairwise_block(
            block, centroids, window
        )
    return np.sqrt(distances)


def _wavefront(local, lead_shape: tuple, n: int, m: int, window: int | None) -> np.ndarray:
    """The shared anti-diagonal DP loop (3 rolling buffers).

    ``local(lo, hi, j)`` returns the squared local costs for slots
    ``lo..hi`` of the current diagonal, broadcast over ``lead_shape`` —
    the one thing that differs between the cross-product and row-aligned
    callers.  Buffer slot ``i`` of diagonal ``d`` holds ``D[i, d−i]``;
    the recurrence reads ``D[i−1, j]`` and ``D[i, j−1]`` from diagonal
    ``d−1`` (slots ``i−1`` and ``i``) and ``D[i−1, j−1]`` from diagonal
    ``d−2`` (slot ``i−1``).  The three buffers rotate in place; only the
    band a recycled buffer actually wrote two diagonals ago is reset, so
    per-diagonal work is proportional to the band width, not the full
    buffer.
    """
    shape = (*lead_shape, n + 1)
    prev2 = np.full(shape, np.inf)  # diagonal d − 2
    prev = np.full(shape, np.inf)  # diagonal d − 1
    cur = np.full(shape, np.inf)  # diagonal d (recycled each step)
    prev2[..., 0] = 0.0  # D[0, 0]
    bands = {id(prev2): (0, 0), id(prev): None, id(cur): None}
    for d in range(2, n + m + 1):
        stale = bands[id(cur)]
        if stale is not None:
            cur[..., stale[0] : stale[1] + 1] = np.inf
        lo, hi = _diag_bounds(d, n, m, window)
        if lo <= hi:
            j = d - np.arange(lo, hi + 1)
            best = np.minimum(
                np.minimum(prev[..., lo - 1 : hi], prev[..., lo : hi + 1]),
                prev2[..., lo - 1 : hi],
            )
            cur[..., lo : hi + 1] = local(lo, hi, j) + best
            bands[id(cur)] = (lo, hi)
        else:
            bands[id(cur)] = None
        prev2, prev, cur = prev, cur, prev2
    return prev[..., n].copy()  # D[n, m] sits on the last diagonal at slot n


def _pairwise_block(
    series: np.ndarray, centroids: np.ndarray, window: int | None
) -> np.ndarray:
    """Squared accumulated DTW costs for one chunk: the full
    series × centroids cross product through :func:`_wavefront`."""

    def local(lo: int, hi: int, j: np.ndarray) -> np.ndarray:
        return (series[:, None, lo - 1 : hi] - centroids[None, :, j - 1]) ** 2

    return _wavefront(
        local, (len(series), len(centroids)), series.shape[1], centroids.shape[1],
        window,
    )


def _aligned_block(
    series: np.ndarray, partners: np.ndarray, window: int | None
) -> np.ndarray:
    """Squared accumulated DTW cost of row ``i`` of ``series`` against row
    ``i`` of ``partners`` — the row-aligned twin of :func:`_pairwise_block`.

    Same :func:`_wavefront` kernel, same per-cell arithmetic (bit-identical
    costs), but a *different partner per row* instead of the full
    ``t × k`` cross product: this is what lets LB_Keogh pruning evaluate
    one candidate per series in a single batched call rather than
    per-centroid fragments.
    """

    def local(lo: int, hi: int, j: np.ndarray) -> np.ndarray:
        return (series[:, lo - 1 : hi] - partners[:, j - 1]) ** 2

    return _wavefront(
        local, (len(series),), series.shape[1], partners.shape[1], window
    )


def _envelopes(
    centroids: np.ndarray, window: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """Per-centroid warping envelopes ``(U, L)`` of half-width ``window``.

    ``U[c, i] = max(centroids[c, i−w : i+w+1])`` (and ``L`` the min);
    ``window=None`` — unconstrained DTW — degenerates to the global
    max/min per centroid, which is the envelope of an unbounded band.
    """
    k, m = centroids.shape
    r = m - 1 if window is None else min(window, m - 1)
    if r >= m - 1:
        upper = np.repeat(centroids.max(axis=1, keepdims=True), m, axis=1)
        lower = np.repeat(centroids.min(axis=1, keepdims=True), m, axis=1)
        return upper, lower
    width = 2 * r + 1
    padded = np.pad(centroids, ((0, 0), (r, r)), constant_values=-np.inf)
    upper = np.lib.stride_tricks.sliding_window_view(padded, width, axis=1).max(axis=2)
    padded = np.pad(centroids, ((0, 0), (r, r)), constant_values=np.inf)
    lower = np.lib.stride_tricks.sliding_window_view(padded, width, axis=1).min(axis=2)
    return upper, lower


def lb_keogh(
    series: np.ndarray,
    centroids: np.ndarray,
    window: int | None = None,
    chunk_size: int = 2048,
) -> np.ndarray:
    """The LB_Keogh lower bound on every ``t × k`` DTW distance.

    ``LB(s, c) = sqrt(Σ_i ((s_i − U_i)⁺)² + ((L_i − s_i)⁺)²)`` with
    ``(U, L)`` the envelope of ``c`` over the Sakoe–Chiba band: every
    warping path must align ``s_i`` with some ``c_j`` inside the band, and
    that ``c_j`` lies within ``[L_i, U_i]``, so each term underestimates
    the path's local cost at ``i``.  Requires equal-length series and
    centroids (the classic LB_Keogh setting).  O(t·k·n) — quadratically
    cheaper than the O(t·k·n²) DP it gates.
    """
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    if series.shape[1] != centroids.shape[1]:
        raise ValueError("lb_keogh requires equal-length series and centroids")
    upper, lower = _envelopes(centroids, window)
    t = len(series)
    bounds = np.empty((t, len(centroids)))
    for start in range(0, t, chunk_size):
        block = series[start : start + chunk_size, None, :]
        above = np.clip(block - upper[None, :, :], 0.0, None)
        below = np.clip(lower[None, :, :] - block, 0.0, None)
        bounds[start : start + chunk_size] = (above**2 + below**2).sum(axis=2)
    return np.sqrt(bounds)


def dtw_assign(
    series: np.ndarray,
    centroids: np.ndarray,
    window: int | None = None,
    prune: bool = True,
) -> np.ndarray:
    """Assignment step under DTW — batched, LB_Keogh-pruned.

    With ``prune`` (and equal series/centroid lengths), candidates are
    visited per series in increasing LB_Keogh order and the wavefront DP
    runs only while the lower bound does not already exceed the best
    exact distance so far — on clustered data most of the ``t × k`` DPs
    are skipped, and when the bounds turn out not to prune (poorly
    clustered data) an effectiveness guard falls back to the single
    fully-batched wavefront call so the worst case stays near the
    unpruned cost.  Results are identical to the unpruned ``argmin`` (ties
    break toward the lower centroid index, matching
    :func:`dtw_assign_reference`): the bound is mathematically ≤ the DTW
    distance, and the gate carries a small relative slack so a *computed*
    bound that lands ulps above the computed distance (different float
    summation order) cannot prune a near-tied candidate.
    """
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    t, n = series.shape
    k, m = centroids.shape
    if not prune or n != m or k == 1:
        return np.argmin(dtw_pairwise(series, centroids, window), axis=1).astype(
            np.int64
        )
    if window is not None:
        window = max(window, 0)
    bounds = lb_keogh(series, centroids, window)
    order = np.argsort(bounds, axis=1, kind="stable")
    rows = np.arange(t)
    best = np.full(t, np.inf)
    labels = np.zeros(t, dtype=np.int64)
    evaluated = np.zeros((t, k), dtype=bool)
    for rank in range(k):
        candidate = order[:, rank]
        # <= with slack (not <): an equal-LB candidate may still hold an
        # equal exact distance at a lower index, which the tie-break must
        # see — and the computed bound may exceed the computed distance
        # by ulps, which must not prune it either.
        active = np.flatnonzero(
            bounds[rows, candidate] <= best * (1.0 + 1e-9) + 1e-12
        )
        if active.size == 0:
            # Per-row LBs are non-decreasing in rank and ``best`` only
            # shrinks, so no later rank can become active either.
            break
        # One batched row-aligned wavefront for this whole rank: row i of
        # the active set runs against its own rank-th candidate.
        chosen = candidate[active]
        distances = np.sqrt(
            _aligned_block(series[active], centroids[chosen], window)
        )
        better = (distances < best[active]) | (
            (distances == best[active]) & (chosen < labels[active])
        )
        best[active[better]] = distances[better]
        labels[active[better]] = chosen[better]
        evaluated[active, chosen] = True
        if rank == 0 and k > 2:
            # Effectiveness guard: if after the best-LB candidates the
            # bounds still fail to prune most remaining pairs (poorly
            # clustered data), the single t × k wavefront beats k more
            # row-aligned passes — fall back to it (identical result:
            # argmin with first-occurrence ties is the reference
            # tie-break).
            viable = (bounds <= best[:, None] * (1.0 + 1e-9) + 1e-12) & ~evaluated
            if viable.sum() > 0.5 * t * (k - 1):
                return np.argmin(
                    dtw_pairwise(series, centroids, window), axis=1
                ).astype(np.int64)
    return labels


def dtw_assign_reference(
    series: np.ndarray, centroids: np.ndarray, window: int | None = None
) -> np.ndarray:
    """Per-pair loop assignment — the reference :func:`dtw_assign` is tested
    against (O(t·k·n²) Python-level iteration)."""
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    labels = np.empty(len(series), dtype=np.int64)
    for idx, s in enumerate(series):
        best, best_d = 0, np.inf
        for c_idx, c in enumerate(centroids):
            d = dtw_distance(s, c, window)
            if d < best_d:
                best, best_d = c_idx, d
        labels[idx] = best
    return labels


def dba_mean(
    series: np.ndarray,
    initial: np.ndarray,
    iterations: int = 5,
    window: int | None = None,
) -> np.ndarray:
    """DTW Barycenter Averaging: the mean under warping alignment.

    Each pass aligns every series to the current barycenter and averages
    the values mapped onto each barycenter coordinate.
    """
    series = np.asarray(series, dtype=float)
    barycenter = np.asarray(initial, dtype=float).copy()
    if len(series) == 0:
        return barycenter
    for _ in range(iterations):
        sums = np.zeros_like(barycenter)
        counts = np.zeros(len(barycenter))
        for s in series:
            for i, j in dtw_path(barycenter, s, window):
                sums[i] += s[j]
                counts[i] += 1
        mask = counts > 0
        barycenter[mask] = sums[mask] / counts[mask]
    return barycenter
