"""Centralized Lloyd k-means — the paper's "No perturbation" reference curve.

This is the baseline every Fig. 2 plot compares against, implemented in the
same vocabulary as Sec. 3.1: assignment step, computation step, convergence
step with threshold ``θ`` on the centroid displacement, plus the
``n_it^max`` iteration cap shared with Chiaroscuro.

Empty clusters are *dropped* (not re-seeded): the paper's perturbed
executions lose centroids the same way ("lost means" are ignored de facto,
footnote 8), so keeping the baseline's behaviour aligned makes the
number-of-centroids plots comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distance import assign_to_closest
from .inertia import intra_inertia

__all__ = ["KMeansTrace", "lloyd_kmeans", "compute_means"]


@dataclass
class KMeansTrace:
    """Per-iteration history of a (possibly perturbed) k-means run."""

    inertia: list[float] = field(default_factory=list)
    n_centroids: list[int] = field(default_factory=list)
    centroids: list[np.ndarray] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0

    def record(self, inertia: float, centroids: np.ndarray) -> None:
        """Append one iteration's snapshot."""
        self.inertia.append(float(inertia))
        self.n_centroids.append(int(len(centroids)))
        self.centroids.append(np.array(centroids, copy=True))
        self.iterations += 1


def compute_means(
    series: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """The computation step: per-cluster sums / counts → (means, counts).

    Clusters with zero members get a ``nan`` mean row; callers decide the
    lost-centroid policy.
    """
    series = np.asarray(series, dtype=float)
    counts = np.bincount(labels, minlength=k).astype(float)
    sums = np.zeros((k, series.shape[1]))
    np.add.at(sums, labels, series)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = sums / counts[:, None]
    return means, counts


def lloyd_kmeans(
    series: np.ndarray,
    initial_centroids: np.ndarray,
    max_iterations: int = 10,
    threshold: float = 1e-4,
) -> KMeansTrace:
    """Run plain Lloyd k-means and return the iteration trace.

    ``threshold`` is the paper's θ: the run converges when the mean squared
    displacement between consecutive centroid sets falls below it.
    """
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(initial_centroids, dtype=float).copy()
    trace = KMeansTrace()
    for _ in range(max_iterations):
        labels = assign_to_closest(series, centroids)
        means, counts = compute_means(series, labels, len(centroids))
        alive = counts > 0
        means = means[alive]
        # Relabel against surviving centroids for the inertia bookkeeping.
        labels = assign_to_closest(series, means)
        trace.record(intra_inertia(series, means, labels), means)
        if len(means) == len(centroids):
            displacement = float(np.mean((means - centroids) ** 2))
            if displacement < threshold:
                trace.converged = True
                centroids = means
                break
        centroids = means
    return trace
