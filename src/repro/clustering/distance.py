"""Distance kernels used by the assignment step.

The paper uses squared Euclidean distance between length-``n`` series and
centroids.  Assignments over millions of series must not materialize the
full ``t × k`` distance matrix in one piece, so :func:`assign_to_closest`
chunks the computation (the same discipline a database engine would apply).
"""

from __future__ import annotations

import numpy as np

__all__ = ["squared_euclidean", "pairwise_sq_euclidean", "assign_to_closest"]


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance ``||a − b||²`` between two vectors."""
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return float(diff @ diff)


def pairwise_sq_euclidean(series: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """All ``t × k`` squared distances via the expansion ``|x|² − 2x·c + |c|²``."""
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    x_sq = np.einsum("ij,ij->i", series, series)[:, None]
    c_sq = np.einsum("ij,ij->j", centroids.T, centroids.T)[None, :]
    cross = series @ centroids.T
    distances = x_sq - 2.0 * cross + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def assign_to_closest(
    series: np.ndarray, centroids: np.ndarray, chunk_size: int = 65536
) -> np.ndarray:
    """Index of the closest centroid for every series (the assignment step).

    Processes ``chunk_size`` series at a time so the intermediate distance
    block stays small even for multi-million-series datasets.
    """
    series = np.asarray(series, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    if centroids.ndim != 2 or series.ndim != 2:
        raise ValueError("series and centroids must be 2-D matrices")
    if series.shape[1] != centroids.shape[1]:
        raise ValueError("series and centroids must share the same length n")
    t = series.shape[0]
    labels = np.empty(t, dtype=np.int64)
    for start in range(0, t, chunk_size):
        stop = min(start + chunk_size, t)
        block = pairwise_sq_euclidean(series[start:stop], centroids)
        labels[start:stop] = np.argmin(block, axis=1)
    return labels
