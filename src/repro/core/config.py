"""Chiaroscuro initialization parameters (Tables 1 and 2).

Every participating device downloads these from the bootstrap server at
initialization time (footnote 4 of the paper).  Defaults mirror Table 2's
experimental values wherever the paper fixes one.
"""

from __future__ import annotations

from dataclasses import dataclass

from .smoothing import derive_sma_window

__all__ = ["ChiaroscuroParams"]


@dataclass(frozen=True)
class ChiaroscuroParams:
    """The full parameter sheet of Table 1, with Table 2 defaults.

    k-means block: ``k`` initial centroids, convergence threshold ``theta``
    (mean squared centroid displacement), and the ``n_it^max`` cap that
    guarantees termination (Sec. 4.2.4).

    Epidemic block: local-view size and the exchange count ``n_e`` required
    for the epidemic sums to converge (derivable from
    :class:`repro.privacy.GossipPrivacyPlan`).

    Crypto/privacy block: key size, key-share threshold ``tau`` (fraction of
    the population), privacy level ``epsilon`` (Table 2 uses ln 2 ≈ 0.69),
    ``delta``, and the noise-share count ``n_nu`` as a fraction of the
    population (Table 2: 100%).

    Execution block (implementation, not paper): ``crypto_backend`` selects
    how ciphertext batches are evaluated (``"serial"`` in-process or
    ``"process"`` over a worker pool with ``backend_workers`` processes,
    0 = one per CPU); ``bigint_backend`` selects the modular-arithmetic
    kernel (``"auto"`` | ``"python"`` | ``"gmpy2"``, see
    :mod:`repro.crypto.bigint` — ``"auto"`` keeps the process's active
    kernel, which the ``REPRO_BIGINT_BACKEND`` env var seeds at import
    time, defaulting to gmpy2-if-installed);
    ``use_packing`` switches the computation step to the slot-packed
    ciphertext plane when the plaintext space allows it.  Backend choice —
    execution *and* bigint — is fully result-neutral (bit-identical runs
    for the same seed).  Plane choice is result-neutral at the decode level — a packed
    accumulation decodes to exactly the scalar plane's integers — but a
    full protocol run consumes the crypto RNG differently per plane
    (fewer ciphertexts → fewer seeds), so seeded runs are reproducible
    *per plane*, not across planes.

    ``protocol_plane`` selects the *simulation substrate* for the whole
    run: ``"object"`` is the cycle-driven engine with genuine Damgård–Jurik
    ciphertexts (faithful, tens-to-hundreds of devices); ``"vectorized"``
    is the struct-of-arrays engine over the mock-homomorphic integer plane
    (full Algorithm 2/EpiDis/collection semantics as array operations,
    10⁵–10⁶ participants).  The vectorized plane skips key generation and
    carries the integers real ciphertexts would decrypt to — decoded
    results are validated against the object plane by shadow execution
    (``tests/gossip``); like the packing knob, RNG consumption differs per
    plane, so seeded runs are reproducible per plane.
    ``"vectorized-crypto"`` is the struct-of-arrays engine carrying *real*
    packed Damgård–Jurik ciphertexts, each round's homomorphic work fused
    into bigint batches: decoded per-iteration centroids are bit-identical
    to a ``"vectorized"`` run of the same seed, while every exchange pays
    genuine ciphertext algebra (reported as ``crypto_ms`` telemetry).
    """

    # k-means
    k: int = 50
    theta: float = 1e-3
    max_iterations: int = 10

    # epidemic
    view_size: int = 30
    exchanges: int = 30

    # crypto / privacy
    key_bits: int = 1024
    expansion_s: int = 1
    tau_fraction: float = 0.0001  # Table 2 realistic case: 0.01 %
    epsilon: float = 0.69
    delta: float = 0.995
    noise_share_fraction: float = 1.0  # n_ν = 100 % of the population

    # quality heuristics (Sec. 5)
    budget_strategy: str = "G"
    floor_size: int = 4
    uf_iterations: int = 5
    smoothing_fraction: float = 0.2  # SMA window = 20 % of series length
    use_smoothing: bool = True

    # execution (batched crypto plane + simulation substrate)
    crypto_backend: str = "serial"
    backend_workers: int = 0  # 0 = one worker per CPU
    bigint_backend: str = "auto"  # modular-arithmetic kernel (crypto.bigint)
    use_packing: bool = True
    protocol_plane: str = "object"

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be > 1 (Sec. 2.1 requires 1 < k < t)")
        if self.theta < 0:
            raise ValueError("theta must be non-negative")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.exchanges < 1:
            raise ValueError("exchanges must be >= 1")
        if not 0 < self.tau_fraction <= 1:
            raise ValueError("tau_fraction must be in (0, 1]")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 < self.delta <= 1:
            raise ValueError("delta must be in (0, 1]")
        if not 0 < self.noise_share_fraction <= 1:
            raise ValueError("noise_share_fraction must be in (0, 1]")
        if not 0 <= self.smoothing_fraction < 1:
            raise ValueError("smoothing_fraction must be in [0, 1)")
        if self.crypto_backend not in ("serial", "process"):
            raise ValueError("crypto_backend must be 'serial' or 'process'")
        if self.bigint_backend not in ("auto", "python", "gmpy2"):
            raise ValueError(
                "bigint_backend must be 'auto', 'python' or 'gmpy2'"
            )
        if self.backend_workers < 0:
            raise ValueError("backend_workers must be >= 0 (0 = one per CPU)")
        if self.protocol_plane not in ("object", "vectorized", "vectorized-crypto"):
            raise ValueError(
                "protocol_plane must be 'object', 'vectorized' or "
                "'vectorized-crypto'"
            )

    def tau_count(self, population: int) -> int:
        """Absolute key-share threshold τ for a given population size."""
        return max(1, round(self.tau_fraction * population))

    def noise_share_count(self, population: int) -> int:
        """The ``n_ν`` parameter — the assumed number of noise-shares."""
        return max(1, round(self.noise_share_fraction * population))

    def smoothing_window(self, series_length: int) -> int:
        """SMA window size ``w`` (even, so the ±w/2 span is symmetric)."""
        return derive_sma_window(series_length, self.smoothing_fraction)
