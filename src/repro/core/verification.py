"""Malicious-attacker countermeasures (Sec. 4.4).

The paper's extensions against attackers that deviate from the execution
sequence rest on three legs; this module implements the two that are
protocol-level (the third — trusted execution environments — is hardware):

1. **Authenticated population** — restrict the execution sequence to
   authorized devices: :class:`DeviceRegistry` is the bootstrap-server
   check that admits a device (and hands it its key-share slot) only with
   a valid enrolment token.
2. **Epidemic cross-checking** — the collaborative execution makes
   deviations *visible*: all participants are supposed to decrypt the same
   converged values, so disseminating digests of the decrypted results and
   comparing them detects "lying" participants.
   :class:`DecryptionCrossCheck` implements the check the paper names
   explicitly ("checking that decrypted values are all equal across
   participants (epidemic dissemination)") with a tolerance for the benign
   epidemic approximation spread.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DeviceRegistry", "CrossCheckReport", "DecryptionCrossCheck"]


@dataclass
class DeviceRegistry:
    """Bootstrap-side enrolment of authorized devices.

    Tokens are HMACs of the device identifier under the registrar's secret
    — the standard authentication step footnote 4 alludes to.  The registry
    also assigns key-share slots, so an unauthorized device can never hold
    a share of the decryption key.
    """

    secret: bytes
    enrolled: dict[int, int] = field(default_factory=dict)  # device → share slot

    def token_for(self, device_id: int) -> str:
        """The enrolment token the registrar would issue to ``device_id``."""
        return hmac.new(
            self.secret, str(device_id).encode(), hashlib.sha256
        ).hexdigest()

    def enroll(self, device_id: int, token: str) -> int:
        """Admit a device presenting a valid token; returns its share slot.

        Raises ``PermissionError`` on a bad token; enrolment is idempotent.
        """
        expected = self.token_for(device_id)
        if not hmac.compare_digest(expected, token):
            raise PermissionError(f"invalid enrolment token for device {device_id}")
        if device_id not in self.enrolled:
            self.enrolled[device_id] = len(self.enrolled)
        return self.enrolled[device_id]

    def is_authorized(self, device_id: int) -> bool:
        return device_id in self.enrolled


@dataclass
class CrossCheckReport:
    """Outcome of one decryption cross-check round.

    ``non_finite`` names the participants whose reports carried NaN/inf
    digests — they are always also in ``deviating`` (a non-finite digest is
    never a benign epidemic spread; it is a poisoned or garbage report).
    """

    agreeing: list[int]
    deviating: list[int]
    reference: np.ndarray
    max_benign_spread: float
    non_finite: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.deviating


class DecryptionCrossCheck:
    """Flag participants whose decrypted values deviate beyond the benign spread.

    The epidemic sums converge to the same values at every honest node up
    to the gossip approximation error ``e_max``; a participant reporting a
    result outside that envelope is deviating (lying about its decryption,
    or having tampered with the sums).  The reference is the coordinate-wise
    *median* of the reported vectors, which tolerates up to half the
    population deviating.
    """

    def __init__(self, relative_tolerance: float = 1e-3, absolute_floor: float = 1e-9):
        if relative_tolerance <= 0:
            raise ValueError("relative_tolerance must be positive")
        self.relative_tolerance = relative_tolerance
        self.absolute_floor = absolute_floor

    def check(self, reports: dict[int, np.ndarray]) -> CrossCheckReport:
        """Compare per-participant decrypted vectors; returns the report.

        Non-finite digests (NaN/inf) are rejected explicitly: a NaN compares
        false against *any* tolerance, so without this gate a poisoned
        report would land in neither bucket and the round could read as
        clean.  Non-finite reporters are excluded from the median reference
        and flagged as deviating (and named in ``non_finite``).  If every
        report is non-finite there is no reference to check against and the
        round itself fails loudly.
        """
        if not reports:
            raise ValueError("no reports to cross-check")
        ids = sorted(reports)
        stacked = np.array([np.asarray(reports[i], dtype=float).ravel() for i in ids])
        finite_rows = np.isfinite(stacked).all(axis=1)
        non_finite = [i for i, ok in zip(ids, finite_rows) if not ok]
        if not finite_rows.any():
            shown = ids if len(ids) <= 16 else f"{ids[:16]} (+{len(ids) - 16} more)"
            raise ValueError(
                "every cross-check report is non-finite; no reference can "
                f"be established (participants: {shown})"
            )
        reference = np.median(stacked[finite_rows], axis=0)
        scale = np.maximum(np.abs(reference), self.absolute_floor)
        with np.errstate(invalid="ignore"):
            deviation = np.abs(stacked - reference) / scale
            worst = np.where(finite_rows, deviation.max(axis=1), np.inf)
        agreeing = [i for i, w in zip(ids, worst) if w <= self.relative_tolerance]
        deviating = [i for i, w in zip(ids, worst) if w > self.relative_tolerance]
        benign = float(
            max(w for i, w in zip(ids, worst) if w <= self.relative_tolerance)
        ) if agreeing else 0.0
        return CrossCheckReport(
            agreeing=agreeing,
            deviating=deviating,
            reference=reference,
            max_benign_spread=benign,
            non_finite=non_finite,
        )
