"""Quality-driven termination (Sec. 5.1, footnote 9).

The paper sketches a smarter termination criterion than the fixed iteration
cap: participants can monitor the centroids' quality through the
*inter-cluster inertia* (Def. 1) — computable from information that is
already public during the run:

* each cluster's (perturbed) cardinality — released with the means;
* the center of mass ``g`` of the full dataset and the total count —
  computable once, before the run, by one extra encrypted gossip sum with
  its own distributed noise;

and stop as soon as the quality starts to drop (the moment the noise
becomes intractable).

:class:`QualityMonitor` implements exactly that: feed it the released
(perturbed) means and counts after every iteration, and it reports whether
the run should stop.  It works on *public* quantities only, so plugging it
into either execution plane changes no privacy property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QualityMonitor"]


@dataclass
class QualityMonitor:
    """Stop-when-quality-drops criterion over public per-iteration releases.

    ``global_centroid`` and ``total_count`` are the pre-computed dataset
    center of mass and cardinality (both perturbed once, before the run,
    per footnote 9).  ``patience`` consecutive quality drops trigger the
    stop (1 = stop at the first drop, the paper's sketch).
    """

    global_centroid: np.ndarray
    total_count: float
    patience: int = 1
    inter_inertia_history: list[float] = field(default_factory=list)
    _drops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.global_centroid = np.asarray(self.global_centroid, dtype=float)
        if self.total_count <= 0:
            raise ValueError("total_count must be positive")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    def inter_inertia(self, means: np.ndarray, counts: np.ndarray) -> float:
        """Inter-cluster inertia from released means and cardinalities.

        ``q_inter = Σ_i (|ζ_i|/t)·||C_i − g||²`` — higher means the
        centroids spread the data better (the intra inertia is its
        complement w.r.t. the constant full inertia, so *rising* inter
        inertia is *improving* quality).
        """
        means = np.asarray(means, dtype=float)
        counts = np.clip(np.asarray(counts, dtype=float), 0.0, None)
        diff = means - self.global_centroid
        sq = np.einsum("ij,ij->i", diff, diff)
        return float((counts / self.total_count) @ sq)

    def observe(self, means: np.ndarray, counts: np.ndarray) -> bool:
        """Record one iteration's release; return True when the run should stop.

        Quality "starts to drop" when the inter-cluster inertia decreases
        relative to the best value seen so far, ``patience`` times in a row.
        """
        value = self.inter_inertia(means, counts)
        history = self.inter_inertia_history
        history.append(value)
        if len(history) == 1:
            return False
        best_before = max(history[:-1])
        if value < best_before:
            self._drops += 1
        else:
            self._drops = 0
        return self._drops >= self.patience

    @property
    def best_iteration(self) -> int:
        """1-indexed iteration with the highest inter-cluster inertia so far."""
        if not self.inter_inertia_history:
            raise ValueError("no iterations observed yet")
        return int(np.argmax(self.inter_inertia_history)) + 1
