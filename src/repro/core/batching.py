"""Ciphertext planes: how a participant's value vector becomes ciphertexts.

The computation step (Algorithm 3) is agnostic about the wire shape of the
encrypted means: it needs to encrypt value vectors, split the converged
EESum vector into its means/noise halves, homomorphically add them, and
decode decrypted plaintexts back to reals.  A *plane* packages those four
operations so the step can run over either representation:

* :class:`ScalarPlane` — one ciphertext per value, the paper's layout and
  the seed implementation's behaviour;
* :class:`PackedPlane` — :class:`repro.crypto.PackedCodec` slot packing,
  one ciphertext per ``slots`` values, plus one extra **tracker**
  ciphertext ``E(1)`` per participant.

The tracker is what makes packed decoding exact: every element of an EESum
vector accumulates contributions with the *same* public integer
coefficients, so the decrypted tracker equals the coefficient total ``C``
and the bias mass ``B·terms·C`` can be subtracted slot-wise (see the slot
layout in :mod:`repro.crypto.encoding`).  Decoded outputs are therefore
bit-identical to the scalar plane's — same signed fixed-point integers,
same float divisions.

Both planes batch all bulk work through a :class:`repro.crypto.backend`
backend (serial or process-pool).
"""

from __future__ import annotations

import random

import numpy as np

from ..crypto.backend import CryptoBackend, SerialBackend
from ..crypto.encoding import FixedPointCodec, PackedCodec
from ..crypto.keys import PublicKey

__all__ = ["CiphertextPlane", "ScalarPlane", "PackedPlane"]


class CiphertextPlane:
    """Common interface; see module docstring for the two implementations."""

    public: PublicKey
    backend: CryptoBackend
    #: extra ciphertexts appended once per participant vector (tracker).
    tracker_length = 0

    def packed_length(self, dims: int) -> int:
        """Ciphertexts carrying ``dims`` values (excluding any tracker)."""
        raise NotImplementedError

    def encrypt_values(self, values, rng: random.Random) -> list[int]:
        """Encode and encrypt a vector of reals."""
        raise NotImplementedError

    def tracker_ciphertexts(self, rng: random.Random) -> list[int]:
        """Fresh tracker ciphertexts for one participant (may be empty)."""
        return []

    def decode_sums(
        self, plaintexts: list[int], dims: int, bias_terms: int = 2
    ) -> np.ndarray:
        """Decode decrypted plaintexts (payload + tracker) to ``dims`` reals.

        ``bias_terms`` is how many biased vectors were homomorphically
        summed element-wise before decryption (means + noise = 2); the
        scalar plane ignores it.
        """
        raise NotImplementedError


class ScalarPlane(CiphertextPlane):
    """One ciphertext per value — the paper's Diptych wire layout."""

    def __init__(
        self,
        public: PublicKey,
        codec: FixedPointCodec,
        backend: CryptoBackend | None = None,
    ) -> None:
        self.public = public
        self.codec = codec
        self.backend = backend or SerialBackend()

    def packed_length(self, dims: int) -> int:
        return dims

    def encrypt_values(self, values, rng: random.Random) -> list[int]:
        plaintexts = [self.codec.encode(float(v)) for v in np.asarray(values).ravel()]
        return self.backend.encrypt_batch(self.public, plaintexts, rng)

    def decode_sums(
        self, plaintexts: list[int], dims: int, bias_terms: int = 2
    ) -> np.ndarray:
        if len(plaintexts) != dims:
            raise ValueError(f"expected {dims} plaintexts, got {len(plaintexts)}")
        return np.array([self.codec.decode(p) for p in plaintexts])


class PackedPlane(CiphertextPlane):
    """Slot-packed ciphertexts plus one tracker ``E(1)`` per participant."""

    tracker_length = 1

    def __init__(
        self,
        public: PublicKey,
        packed: PackedCodec,
        backend: CryptoBackend | None = None,
    ) -> None:
        self.public = public
        self.packed = packed
        self.backend = backend or SerialBackend()

    def packed_length(self, dims: int) -> int:
        return self.packed.packed_length(dims)

    def encrypt_values(self, values, rng: random.Random) -> list[int]:
        plaintexts = self.packed.pack(np.asarray(values, dtype=float).ravel())
        return self.backend.encrypt_batch(self.public, plaintexts, rng)

    def tracker_ciphertexts(self, rng: random.Random) -> list[int]:
        return self.backend.encrypt_batch(self.public, [1], rng)

    def decode_sums(
        self, plaintexts: list[int], dims: int, bias_terms: int = 2
    ) -> np.ndarray:
        if len(plaintexts) != self.packed_length(dims) + self.tracker_length:
            raise ValueError(
                f"expected {self.packed_length(dims)} payload plaintexts plus "
                f"a tracker, got {len(plaintexts)}"
            )
        coefficient_total = plaintexts[-1]
        return np.array(
            self.packed.unpack(
                plaintexts[:-1], dims, bias_multiplier=bias_terms * coefficient_total
            )
        )
