"""Perturbed expectation–maximization — the Sec. 8 research perspective.

The paper closes by observing that "the class of iterative analytical
algorithms (e.g., expectation-maximization …) especially fits the
foundations laid down by Chiaroscuro": any algorithm whose iteration is
*assign locally → aggregate sums globally → renormalize* can ride the same
Diptych machinery.  This module makes that concrete for spherical Gaussian
mixtures, on the quality plane (the same plane the paper evaluates k-means
quality with):

* **E step (local)** — each device computes its responsibilities against
  the public, differentially-private component parameters;
* **M step (aggregated)** — the protocol releases, per component, the
  perturbed (Σ r_i, Σ r_i·x_i, Σ r_i·‖x_i−μ‖²) sufficient statistics —
  additive aggregates exactly like the k-means (sum, count) pair, so the
  EESum/noise/decryption pipeline applies verbatim;
* budget strategies and the iteration cap carry over unchanged.

The sensitivity of the responsibility-weighted sums is bounded by the same
``n·max(|d|)`` as k-means (responsibilities sum to 1 per individual), the
count by 1, and the scatter by ``n·max(|d|)²`` — stated in
:func:`em_sensitivities` and used for the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.timeseries import TimeSeriesSet
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import BudgetExhausted, BudgetStrategy

__all__ = ["GaussianMixtureState", "EMTrace", "em_sensitivities", "perturbed_em"]


@dataclass
class GaussianMixtureState:
    """Public parameters of a spherical Gaussian mixture."""

    means: np.ndarray  # (k, n)
    variances: np.ndarray  # (k,)
    weights: np.ndarray  # (k,)

    @property
    def k(self) -> int:
        return len(self.means)


@dataclass
class EMTrace:
    """Per-iteration history of a perturbed EM run."""

    log_likelihood: list[float] = field(default_factory=list)
    n_components: list[int] = field(default_factory=list)
    states: list[GaussianMixtureState] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.log_likelihood)


def em_sensitivities(series_length: int, dmin: float, dmax: float) -> dict[str, float]:
    """L1 sensitivities of the per-component EM sufficient statistics.

    One individual contributes responsibilities summing to exactly 1 across
    components, values bounded by ``m = max(|dmin|, |dmax|)`` per dimension:
    weighted-sum ≤ n·m, count ≤ 1, scatter ≤ n·(range)².
    """
    m = max(abs(dmin), abs(dmax))
    spread = dmax - dmin
    return {
        "sum": series_length * m,
        "count": 1.0,
        "scatter": series_length * spread * spread,
    }


def _log_gaussian(series: np.ndarray, state: GaussianMixtureState) -> np.ndarray:
    """Log density of every series under every spherical component: (t, k)."""
    t, n = series.shape
    diff = series[:, None, :] - state.means[None, :, :]
    sq = np.einsum("tkn,tkn->tk", diff, diff)
    var = np.maximum(state.variances, 1e-6)[None, :]
    return (
        -0.5 * sq / var
        - 0.5 * n * np.log(2 * np.pi * var)
        + np.log(np.maximum(state.weights, 1e-12))[None, :]
    )


def perturbed_em(
    dataset: TimeSeriesSet,
    initial: GaussianMixtureState,
    strategy: BudgetStrategy,
    max_iterations: int = 10,
    min_weight: float = 1e-4,
    rng: np.random.Generator | None = None,
) -> EMTrace:
    """Run differentially-private EM with Chiaroscuro's budget machinery.

    Each iteration charges its strategy slice and splits it equally across
    the three aggregate families (sums, counts, scatters); components whose
    perturbed count goes non-positive are lost, mirroring the k-means
    lost-centroid behaviour.  Perturbation is scaled against the dataset's
    effective population (``population_scale``), like the k-means plane.
    """
    rng = rng or np.random.default_rng(0)
    series = dataset.values
    scale_factor = float(dataset.population_scale)
    sens = em_sensitivities(dataset.n, dataset.dmin, dataset.dmax)
    accountant = PrivacyAccountant(epsilon_budget=strategy.epsilon)

    state = GaussianMixtureState(
        means=np.array(initial.means, dtype=float),
        variances=np.array(initial.variances, dtype=float),
        weights=np.array(initial.weights, dtype=float),
    )
    trace = EMTrace()

    for iteration in range(1, max_iterations + 1):
        try:
            epsilon_i = strategy.epsilon_for(iteration)
            accountant.charge(epsilon_i)
        except BudgetExhausted:
            break
        eps_part = epsilon_i / 3.0  # sums, counts, scatters

        # E step (local per device; vectorized here).
        log_p = _log_gaussian(series, state)
        log_norm = np.logaddexp.reduce(log_p, axis=1, keepdims=True)
        resp = np.exp(log_p - log_norm)  # (t, k)

        # M step aggregates (the quantities Chiaroscuro would release).
        counts = resp.sum(axis=0) * scale_factor
        sums = (resp.T @ series) * scale_factor
        diff = series[:, None, :] - state.means[None, :, :]
        scatter = np.einsum("tk,tkn->k", resp, diff**2) * scale_factor

        counts = counts + rng.laplace(0, sens["count"] / eps_part, size=counts.shape)
        sums = sums + rng.laplace(0, sens["sum"] / eps_part, size=sums.shape)
        scatter = scatter + rng.laplace(0, sens["scatter"] / eps_part, size=scatter.shape)

        alive = counts > max(min_weight * len(series) * scale_factor, 1.0)
        if not alive.any():
            break
        counts, sums, scatter = counts[alive], sums[alive], scatter[alive]
        means = sums / counts[:, None]
        variances = np.maximum(scatter / (counts * dataset.n), 1e-4)
        weights = np.maximum(counts, 1e-12)
        weights = weights / weights.sum()
        state = GaussianMixtureState(means=means, variances=variances, weights=weights)

        trace.log_likelihood.append(float(log_norm.mean()))
        trace.n_components.append(int(alive.sum()))
        trace.states.append(state)

    return trace
