"""Simple-moving-average smoothing of perturbed means (Sec. 5.2).

The Laplace noise added to each measure is symmetric around zero, so a
sliding average over ``w + 1`` neighbouring measures cancels a large part
of it while preserving the profile shape.  The paper indexes neighbours
*modulo n* (daily load curves are circular), which we follow:

    ``S̄[i, j] = (m(S[i, j−w/2]) + … + m(S[i, j+w/2])) / (w + 1)``

Post-processing a differentially-private value is free: the smoothed means
satisfy the same (ε, δ) guarantee.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_sma_window", "sma_smooth"]


def derive_sma_window(series_length: int, fraction: float = 0.2) -> int:
    """The SMA window ``w`` for a series length (Table 2: 20 % of ``n``).

    Rounded to the nearest integer, then down to even so the ±w/2 span is
    symmetric.  This is the single source of truth for the window size —
    both :meth:`repro.core.config.ChiaroscuroParams.smoothing_window` and
    the quality plane derive theirs from here.  A window is *applicable*
    only when ``0 < w < series_length``; callers gate on that.
    """
    w = int(round(fraction * series_length))
    return w if w % 2 == 0 else w - 1


def sma_smooth(means: np.ndarray, window: int) -> np.ndarray:
    """Circular SMA over ``window + 1`` measures (``window`` must be even).

    Accepts a single mean (1-D) or a stack of means (2-D, one per row);
    ``window = 0`` returns the input unchanged.
    """
    if window < 0 or window % 2 != 0:
        raise ValueError("window must be a non-negative even integer")
    means = np.asarray(means, dtype=float)
    if window == 0:
        return means.copy()
    single = means.ndim == 1
    if single:
        means = means[None, :]
    n = means.shape[1]
    if window >= n:
        raise ValueError("window must be smaller than the series length")
    half = window // 2
    offsets = np.arange(-half, half + 1)
    # Circular gather: columns j+o (mod n) for every offset o.
    indices = (np.arange(n)[None, :] + offsets[:, None]) % n
    smoothed = means[:, indices].mean(axis=1)
    return smoothed[0] if single else smoothed
