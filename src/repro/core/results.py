"""Result containers for Chiaroscuro runs (both planes).

``IterationStats`` captures exactly what the paper plots:

* ``pre_inertia``   — intra-cluster inertia of the partition measured
  against the *unperturbed* means (Figs. 2a/2b "before perturbing");
* ``post_inertia``  — inertia against the perturbed (and smoothed)
  centroids without re-assignment, aberrant centroids removed (Figs. 2e/2f
  "POST");
* ``n_centroids``   — surviving centroids after the lost-mean effect
  (Figs. 2c/2d);
* ``epsilon_spent`` — the iteration's budget slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationStats", "ClusteringResult"]


@dataclass
class IterationStats:
    """Everything measured during one perturbed k-means iteration."""

    iteration: int
    pre_inertia: float
    post_inertia: float
    n_centroids: int
    epsilon_spent: float
    centroids: np.ndarray

    def to_dict(self) -> dict:
        """JSON-ready dict; exact float round-trip (``float`` ↔ JSON)."""
        return {
            "iteration": self.iteration,
            "pre_inertia": self.pre_inertia,
            "post_inertia": self.post_inertia,
            "n_centroids": self.n_centroids,
            "epsilon_spent": self.epsilon_spent,
            "centroids": self.centroids.tolist(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "IterationStats":
        return cls(
            iteration=int(d["iteration"]),
            pre_inertia=float(d["pre_inertia"]),
            post_inertia=float(d["post_inertia"]),
            n_centroids=int(d["n_centroids"]),
            epsilon_spent=float(d["epsilon_spent"]),
            centroids=np.asarray(d["centroids"], dtype=float),
        )


@dataclass
class ClusteringResult:
    """A full run: final centroids plus the per-iteration history."""

    centroids: np.ndarray
    history: list[IterationStats] = field(default_factory=list)
    converged: bool = False
    strategy: str = ""
    smoothing: bool = False

    @property
    def iterations(self) -> int:
        return len(self.history)

    @property
    def pre_inertia_curve(self) -> list[float]:
        """The Fig. 2(a)/(b) series."""
        return [stats.pre_inertia for stats in self.history]

    @property
    def n_centroids_curve(self) -> list[int]:
        """The Fig. 2(c)/(d) series."""
        return [stats.n_centroids for stats in self.history]

    def best_iteration(self) -> IterationStats:
        """The iteration with the lowest pre-perturbation inertia (Fig. 2e/2f)."""
        if not self.history:
            raise ValueError("empty run")
        return min(self.history, key=lambda stats: stats.pre_inertia)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"G_SMA"`` or ``"UF5"``."""
        return f"{self.strategy}_SMA" if self.smoothing else self.strategy

    def to_dict(self) -> dict:
        """JSON-ready dict (the ``result`` half of a run record)."""
        return {
            "strategy": self.strategy,
            "label": self.label,
            "smoothing": self.smoothing,
            "converged": self.converged,
            "iterations": self.iterations,
            "centroids": np.asarray(self.centroids).tolist(),
            "history": [stats.to_dict() for stats in self.history],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClusteringResult":
        return cls(
            centroids=np.asarray(d["centroids"], dtype=float),
            history=[IterationStats.from_dict(s) for s in d.get("history", [])],
            converged=bool(d.get("converged", False)),
            strategy=d.get("strategy", ""),
            smoothing=bool(d.get("smoothing", False)),
        )
