"""Participant-local operations (the cleartext steps of Algorithm 1).

The assignment step and the convergence step run locally on cleartext data
(App. C.1): the participant measures distances between its own series and
the differentially-private centroids, picks the closest, and initializes
its encrypted means.  This module holds those per-device computations so
the protocol orchestrator stays readable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..clustering.distance import pairwise_sq_euclidean
from ..crypto.encoding import FixedPointCodec
from ..crypto.keys import PublicKey
from .batching import CiphertextPlane
from .diptych import initialize_means

__all__ = ["Participant"]


@dataclass
class Participant:
    """One device: its series, its node id, and its crypto handles.

    ``plane`` (optional) switches the means initialization to the batched
    ciphertext plane: the flattened ``k·(n+1)`` value vector is encoded,
    packed, and encrypted as one batch.  Without it the per-ciphertext
    Diptych path of :func:`repro.core.diptych.initialize_means` is used.
    """

    node_id: int
    series: np.ndarray
    public: PublicKey
    codec: FixedPointCodec
    plane: CiphertextPlane | None = None

    def closest_centroid(self, centroids: np.ndarray) -> int:
        """Assignment step: index of the closest cleartext centroid."""
        distances = pairwise_sq_euclidean(self.series[None, :], centroids)[0]
        return int(np.argmin(distances))

    def means_value_vector(self, assigned: int, k: int) -> np.ndarray:
        """The cleartext flattened means vector: series + count 1 for the
        assigned cluster, zeros elsewhere (Alg. 1 l.6 semantics)."""
        stride = len(self.series) + 1
        values = np.zeros(k * stride)
        start = assigned * stride
        values[start : start + stride - 1] = self.series
        values[start + stride - 1] = 1.0
        return values

    def encrypted_means_vector(
        self, centroids: np.ndarray, rng: random.Random
    ) -> list[int]:
        """Alg. 1 l.5-6: assign locally, return the flattened encrypted means."""
        assigned = self.closest_centroid(centroids)
        k = len(centroids)
        if self.plane is not None:
            return self.plane.encrypt_values(self.means_value_vector(assigned, k), rng)
        means = initialize_means(
            self.public, self.codec, self.series, assigned, k, rng
        )
        flat: list[int] = []
        for mean in means:
            flat.extend(mean.as_vector())
        return flat
