"""The Diptych data structure (Definition 6).

A Diptych has two panels:

* ``C`` — the cleartext, *differentially-private* centroids every
  participant uses for the local assignment step;
* ``M`` — the *encrypted* means, one per cluster, each represented by
  ``(s = E(σ_sum), c = E(σ_count), ω)``: the homomorphically encrypted
  epidemic sum of the member series, the encrypted epidemic count, and the
  cleartext weight (harmless — data-independent).

Everything that depends on a participant's series is either encrypted or
differentially private; that invariant is what Theorem 2's proof walks
through, and :meth:`Diptych.exported_fields` exposes it for the
information-flow audit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crypto.damgard_jurik import encrypt
from ..crypto.encoding import FixedPointCodec
from ..crypto.keys import PublicKey

__all__ = ["EncryptedMean", "Diptych"]


@dataclass
class EncryptedMean:
    """One cluster's encrypted mean: E(sum vector), E(count), clear weight."""

    sum_cipher: list[int]
    count_cipher: int
    omega: int = 0

    def as_vector(self) -> list[int]:
        """Flatten to the ciphertext vector EESum operates on (sum ‖ count)."""
        return [*self.sum_cipher, self.count_cipher]

    @classmethod
    def from_vector(cls, vector: list[int], omega: int) -> "EncryptedMean":
        """Rebuild from a flattened ciphertext vector."""
        return cls(sum_cipher=list(vector[:-1]), count_cipher=vector[-1], omega=omega)


@dataclass
class Diptych:
    """The two-panel structure a participant holds during one iteration."""

    centroids: np.ndarray  # cleartext, differentially private
    means: list[EncryptedMean] = field(default_factory=list)

    @property
    def k(self) -> int:
        """Number of clusters currently alive."""
        return len(self.centroids)

    def flatten_means(self) -> list[int]:
        """All means' ciphertexts as one vector (k·(n+1) elements)."""
        flat: list[int] = []
        for mean in self.means:
            flat.extend(mean.as_vector())
        return flat

    @staticmethod
    def unflatten_means(vector: list[int], k: int, omega: int) -> list[EncryptedMean]:
        """Inverse of :meth:`flatten_means` for ``k`` clusters."""
        if k < 1 or len(vector) % k != 0:
            raise ValueError("vector length must be a positive multiple of k")
        stride = len(vector) // k
        return [
            EncryptedMean.from_vector(vector[i * stride : (i + 1) * stride], omega)
            for i in range(k)
        ]

    def exported_fields(self) -> dict[str, str]:
        """Classification of every field that leaves the device.

        Returns field → one of ``"dp"`` (differentially private),
        ``"encrypted"``, ``"independent"`` (data-independent) — the
        trichotomy of the Theorem 2 proof.
        """
        return {
            "centroids": "dp",
            "means.sum_cipher": "encrypted",
            "means.count_cipher": "encrypted",
            "means.omega": "independent",
        }


def initialize_means(
    public: PublicKey,
    codec: FixedPointCodec,
    series: np.ndarray,
    assigned_cluster: int,
    k: int,
    rng,
    randomizers: list[int] | None = None,
) -> list[EncryptedMean]:
    """The assignment-step initialization of the encrypted means (Alg. 1, l.6).

    The assigned cluster gets the participant's series encrypted
    dimension-wise with count E(1); every other cluster gets encrypted
    zeros with count E(0).  ``randomizers`` optionally supplies
    pre-computed ``r^{n^s}`` values (k·(n+1) of them) to amortize the
    encryption modexps.
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    pool = iter(randomizers) if randomizers is not None else None

    def _enc(value: int) -> int:
        randomizer = next(pool) if pool is not None else None
        return encrypt(public, value, rng=rng, randomizer=randomizer)

    means = []
    for cluster in range(k):
        if cluster == assigned_cluster:
            sums = [_enc(codec.encode(x)) for x in series]
            count = _enc(codec.encode(1.0))
        else:
            sums = [_enc(0) for _ in range(n)]
            count = _enc(0)
        means.append(EncryptedMean(sum_cipher=sums, count_cipher=count, omega=0))
    return means
