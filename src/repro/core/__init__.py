"""Chiaroscuro core: the Diptych structure, the full distributed execution
sequence (Algorithms 1-3) with real threshold cryptography, and the
perturbed centralized k-means quality plane.
"""

from .batching import CiphertextPlane, PackedPlane, ScalarPlane
from .computation import ComputationOutput, ComputationStep
from .config import ChiaroscuroParams
from .diptych import Diptych, EncryptedMean, initialize_means
from .noise import NoisePlan, encrypt_share_vector
from .participant import Participant
from .perturbed_em import EMTrace, GaussianMixtureState, em_sensitivities, perturbed_em
from .perturbed_kmeans import (
    PerturbationOptions,
    QualityStep,
    iter_perturbed_kmeans,
    perturbed_kmeans,
    resolve_smoothing_plan,
)
from .protocol import ChiaroscuroRun, DistributedTrace, ProtocolStep
from .quality_monitor import QualityMonitor
from .results import ClusteringResult, IterationStats
from .smoothing import derive_sma_window, sma_smooth
from .verification import CrossCheckReport, DecryptionCrossCheck, DeviceRegistry

__all__ = [
    "ChiaroscuroParams",
    "ChiaroscuroRun",
    "CiphertextPlane",
    "PackedPlane",
    "ScalarPlane",
    "ClusteringResult",
    "ComputationOutput",
    "ComputationStep",
    "CrossCheckReport",
    "DecryptionCrossCheck",
    "DeviceRegistry",
    "Diptych",
    "DistributedTrace",
    "EMTrace",
    "EncryptedMean",
    "GaussianMixtureState",
    "IterationStats",
    "NoisePlan",
    "Participant",
    "PerturbationOptions",
    "ProtocolStep",
    "QualityMonitor",
    "QualityStep",
    "derive_sma_window",
    "em_sensitivities",
    "encrypt_share_vector",
    "initialize_means",
    "iter_perturbed_kmeans",
    "perturbed_em",
    "perturbed_kmeans",
    "resolve_smoothing_plan",
    "sma_smooth",
]
