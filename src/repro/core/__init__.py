"""Chiaroscuro core: the Diptych structure, the full distributed execution
sequence (Algorithms 1-3) with real threshold cryptography, and the
perturbed centralized k-means quality plane.
"""

from .batching import CiphertextPlane, PackedPlane, ScalarPlane
from .computation import ComputationOutput, ComputationStep
from .config import ChiaroscuroParams
from .diptych import Diptych, EncryptedMean, initialize_means
from .noise import NoisePlan, encrypt_share_vector
from .participant import Participant
from .perturbed_em import EMTrace, GaussianMixtureState, em_sensitivities, perturbed_em
from .perturbed_kmeans import PerturbationOptions, perturbed_kmeans
from .protocol import ChiaroscuroRun, DistributedTrace
from .quality_monitor import QualityMonitor
from .results import ClusteringResult, IterationStats
from .smoothing import sma_smooth
from .verification import CrossCheckReport, DecryptionCrossCheck, DeviceRegistry

__all__ = [
    "ChiaroscuroParams",
    "ChiaroscuroRun",
    "CiphertextPlane",
    "PackedPlane",
    "ScalarPlane",
    "ClusteringResult",
    "ComputationOutput",
    "ComputationStep",
    "CrossCheckReport",
    "DecryptionCrossCheck",
    "DeviceRegistry",
    "Diptych",
    "DistributedTrace",
    "EMTrace",
    "EncryptedMean",
    "GaussianMixtureState",
    "IterationStats",
    "NoisePlan",
    "Participant",
    "PerturbationOptions",
    "QualityMonitor",
    "em_sensitivities",
    "encrypt_share_vector",
    "initialize_means",
    "perturbed_em",
    "perturbed_kmeans",
    "sma_smooth",
]
