"""Perturbed centralized k-means — the paper's quality-evaluation plane.

Sec. 6.1 is explicit that clustering *quality* was evaluated "by running a
perturbed centralized k-means implementation embedding our budget
concentration strategies and means smoothing technique": the full gossip
machinery changes latency and cost but, by App. B, delivers the same
perturbed aggregates up to a compensated approximation error.  This module
is that implementation, vectorized with numpy so paper-scale populations
fit on one machine.

Per iteration ``i`` (1-indexed, budget ``ε_i`` from the strategy):

1. optional per-iteration churn subsample (Sec. 6.1.5);
2. assignment of every series to the closest current centroid;
3. per-cluster sums and counts, scaled by the dataset's
   ``population_scale`` (each stored series stands for ``scale``
   individuals — the App. D duplication device);
4. *pre-perturbation* inertia of the partition against the true means;
5. Laplace perturbation of sums and counts at scale
   ``sensitivity / ε_i`` (optionally Lemma-2 inflated, optionally with a
   simulated gossip relative error);
6. perturbed means = perturbed sums / perturbed counts; clusters whose
   perturbed count is non-positive (or that were empty) are *lost*
   (footnote 8's aberrant means);
7. optional circular SMA smoothing (Sec. 5.2);
8. *post-perturbation* inertia against the released centroids without
   re-assignment (Figs. 2e/2f);
9. convergence test on the centroid displacement, plus the ``n_it^max``
   cap and the strategy's own exhaustion bound (Sec. 4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..clustering.distance import assign_to_closest
from ..clustering.inertia import intra_inertia
from ..clustering.kmeans import compute_means
from ..datasets.timeseries import TimeSeriesSet
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import BudgetExhausted, BudgetStrategy
from ..privacy.laplace import sum_sensitivity
from ..privacy.probabilistic import lemma2_noise_inflation, lemma2_scale
from .results import ClusteringResult, IterationStats
from .smoothing import derive_sma_window, sma_smooth

__all__ = [
    "PerturbationOptions",
    "QualityStep",
    "iter_perturbed_kmeans",
    "perturbed_kmeans",
    "resolve_smoothing_plan",
]


@dataclass(frozen=True)
class PerturbationOptions:
    """Knobs of the perturbation model (defaults follow the paper).

    ``sensitivity_mode``:

    * ``"per-aggregate"`` (default) — the literal Def. 4 reading: the sum
      vector is perturbed at scale ``n·max(|d|)/ε_i`` and the count, being
      "simply a sum of 1's" with sensitivity 1, at scale ``1/ε_i``.  This
      is the calibration that reproduces the paper's Fig. 2 shapes (means
      drift and are lost through assignment starvation, not count flips);
      its accounting caveat — counts formally cost a second ε_i unless one
      argues a joint release — is documented in DESIGN.md;
    * ``"joint"``  — one conservative Laplace scale from the joint L1
      sensitivity ``n·max(|d|) + 1`` for both sums and counts;
    * ``"split"``  — ε_i halved between sums (sensitivity ``n·max(|d|)``)
      and counts (sensitivity 1).

    ``gossip_e_max`` — when positive, the Lemma 2 machinery kicks in: the
    scale is inflated by ``(1 + e_max)``, the noise by
    ``1 + e_max/(1−e_max)``, and each aggregate is additionally multiplied
    by a uniform relative error in ``[−e_max, +e_max]`` to emulate the
    epidemic approximation.
    """

    sensitivity_mode: str = "per-aggregate"
    gossip_e_max: float = 0.0
    smoothing: bool = True
    count_floor: float = 0.0  # perturbed counts at or below this are "lost"

    def __post_init__(self) -> None:
        if self.sensitivity_mode not in ("per-aggregate", "joint", "split"):
            raise ValueError(
                "sensitivity_mode must be 'per-aggregate', 'joint' or 'split'"
            )
        if not 0 <= self.gossip_e_max < 1:
            raise ValueError("gossip_e_max must be in [0, 1)")


def _noise_scales(
    dataset: TimeSeriesSet, epsilon: float, options: PerturbationOptions
) -> tuple[float, float]:
    """Laplace scales (sum_scale, count_scale) for one iteration's budget."""
    sum_sens = sum_sensitivity(dataset.n, dataset.dmin, dataset.dmax)
    if options.sensitivity_mode == "joint":
        sens = sum_sens + 1.0
        if options.gossip_e_max > 0:
            scale = lemma2_scale(sens, epsilon, options.gossip_e_max)
        else:
            scale = sens / epsilon
        return scale, scale
    if options.sensitivity_mode == "per-aggregate":
        sum_eps = count_eps = epsilon
    else:  # split: half the budget to sums, half to counts
        sum_eps = count_eps = epsilon / 2.0
    if options.gossip_e_max > 0:
        return (
            lemma2_scale(sum_sens, sum_eps, options.gossip_e_max),
            lemma2_scale(1.0, count_eps, options.gossip_e_max),
        )
    return sum_sens / sum_eps, 1.0 / count_eps


def _gossip_error(
    values: np.ndarray, e_max: float, rng: np.random.Generator
) -> np.ndarray:
    """Multiply by (1 + e) with e ~ U(−e_max, e_max): the epidemic error model."""
    if e_max <= 0:
        return values
    return values * (1.0 + rng.uniform(-e_max, e_max, size=values.shape))


@dataclass
class QualityStep:
    """One completed quality-plane iteration, as yielded by the generator.

    ``centroids`` are the *next* centroids (perturbed, possibly smoothed) —
    the released output of the iteration; ``stats`` carries the paper's
    per-iteration measurements; ``active_series`` counts the series that
    survived the churn subsample (the whole dataset when churn is 0).
    """

    stats: IterationStats
    centroids: np.ndarray
    converged: bool
    active_series: int


def resolve_smoothing_plan(
    series_length: int,
    smoothing_window: int | None,
    options: PerturbationOptions,
) -> tuple[int, bool]:
    """(window, applies) for a run — the single gate both entry points use.

    A ``None`` window derives the Table 2 default (20 % of ``n``); smoothing
    applies only when enabled *and* ``0 < window < n`` — the same guard the
    protocol planes use (``ChiaroscuroParams.smoothing_window`` + bound
    check), so the quality and distributed planes can never disagree on
    whether a given series length is smoothable.
    """
    if smoothing_window is None:
        smoothing_window = derive_sma_window(series_length)
    return smoothing_window, options.smoothing and 0 < smoothing_window < series_length


def iter_perturbed_kmeans(
    dataset: TimeSeriesSet,
    initial_centroids: np.ndarray,
    strategy: BudgetStrategy,
    max_iterations: int = 10,
    theta: float = 0.0,
    smoothing_window: int | None = None,
    options: PerturbationOptions | None = None,
    churn: float = 0.0,
    rng: np.random.Generator | None = None,
    start_iteration: int = 1,
) -> Iterator[QualityStep]:
    """The perturbed k-means loop as a generator of per-iteration steps.

    This is the streaming primitive underneath :func:`perturbed_kmeans`
    (and the ``repro.api`` quality plane): one :class:`QualityStep` per
    completed iteration, so callers can report progress, stop early, or
    checkpoint between iterations.  The generator returns (without a final
    step) when the budget is exhausted or every cluster is lost.

    ``start_iteration`` supports checkpoint resume: budget charges for
    iterations ``1 .. start_iteration-1`` are replayed (deterministic, no
    RNG consumption), and ``initial_centroids``/``rng`` are expected to
    carry the checkpointed state.  A resumed run draws exactly the same
    randomness as an uninterrupted one from that point on.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    options = options or PerturbationOptions()
    series_all = dataset.values
    scale_factor = float(dataset.population_scale)

    smoothing_window, do_smooth = resolve_smoothing_plan(
        dataset.n, smoothing_window, options
    )

    accountant = PrivacyAccountant(epsilon_budget=strategy.epsilon)
    for iteration in range(1, start_iteration):  # replay a resumed prefix
        accountant.charge(strategy.epsilon_for(iteration))
    inflation = (
        lemma2_noise_inflation(options.gossip_e_max) if options.gossip_e_max > 0 else 1.0
    )

    centroids = np.asarray(initial_centroids, dtype=float).copy()

    for iteration in range(start_iteration, max_iterations + 1):
        try:
            epsilon_i = strategy.epsilon_for(iteration)
            accountant.charge(epsilon_i)
        except BudgetExhausted:
            return

        if churn > 0:
            keep = rng.random(len(series_all)) >= churn
            if not keep.any():
                keep[rng.integers(len(series_all))] = True
            series = series_all[keep]
        else:
            series = series_all

        labels = assign_to_closest(series, centroids)
        k = len(centroids)
        means, counts = compute_means(series, labels, k)
        sums = np.nan_to_num(means, nan=0.0) * counts[:, None]
        sums *= scale_factor
        counts = counts * scale_factor

        alive_true = counts > 0
        pre_inertia = intra_inertia(
            series, means[alive_true], _compress_labels(labels, alive_true)
        )

        sum_scale, count_scale = _noise_scales(dataset, epsilon_i, options)
        noisy_sums = _gossip_error(sums, options.gossip_e_max, rng) + (
            inflation * rng.laplace(0.0, sum_scale, size=sums.shape)
        )
        noisy_counts = _gossip_error(counts, options.gossip_e_max, rng) + (
            inflation * rng.laplace(0.0, count_scale, size=counts.shape)
        )

        survive = alive_true & (noisy_counts > options.count_floor)
        if not survive.any():
            return
        with np.errstate(invalid="ignore", divide="ignore"):
            perturbed = noisy_sums[survive] / noisy_counts[survive, None]
        if do_smooth:
            perturbed = sma_smooth(perturbed, smoothing_window)

        post_labels = assign_to_closest(series, perturbed)  # for POST bookkeeping
        post_inertia = intra_inertia(series, perturbed, _restrict_labels(labels, survive, post_labels))

        stats = IterationStats(
            iteration=iteration,
            pre_inertia=float(pre_inertia),
            post_inertia=float(post_inertia),
            n_centroids=int(survive.sum()),
            epsilon_spent=epsilon_i,
            centroids=perturbed.copy(),
        )

        converged = False
        if theta > 0 and perturbed.shape == centroids.shape:
            displacement = float(np.mean((perturbed - centroids) ** 2))
            converged = displacement < theta

        yield QualityStep(
            stats=stats,
            centroids=perturbed,
            converged=converged,
            active_series=len(series),
        )
        if converged:
            return
        centroids = perturbed


def perturbed_kmeans(
    dataset: TimeSeriesSet,
    initial_centroids: np.ndarray,
    strategy: BudgetStrategy,
    max_iterations: int = 10,
    theta: float = 0.0,
    smoothing_window: int | None = None,
    options: PerturbationOptions | None = None,
    churn: float = 0.0,
    rng: np.random.Generator | None = None,
) -> ClusteringResult:
    """Run the perturbed k-means and return the full iteration trace.

    ``smoothing_window`` defaults to 20 % of the series length (Table 2),
    rounded down to even; pass ``0`` to disable smoothing regardless of
    ``options.smoothing``.  ``theta = 0`` disables the convergence test so
    traces always span ``min(max_iterations, strategy bound)`` iterations —
    the paper's Fig. 2 setting.

    A thin driver over :func:`iter_perturbed_kmeans`; use the generator
    directly for streaming progress, early stopping, or checkpointing.
    """
    options = options or PerturbationOptions()
    _, do_smooth = resolve_smoothing_plan(dataset.n, smoothing_window, options)

    centroids = np.asarray(initial_centroids, dtype=float).copy()
    result = ClusteringResult(
        centroids=centroids,
        strategy=strategy.name,
        smoothing=do_smooth,
    )
    for step in iter_perturbed_kmeans(
        dataset,
        centroids,
        strategy,
        max_iterations=max_iterations,
        theta=theta,
        smoothing_window=smoothing_window,
        options=options,
        churn=churn,
        rng=rng,
    ):
        result.history.append(step.stats)
        result.converged = step.converged
        centroids = step.centroids

    result.centroids = centroids
    return result


def _compress_labels(labels: np.ndarray, alive: np.ndarray) -> np.ndarray:
    """Relabel onto the surviving-cluster index space (dead clusters never
    hold members when ``alive`` is the non-empty mask, so the mapping is
    total)."""
    mapping = np.cumsum(alive) - 1
    return mapping[labels]


def _restrict_labels(
    labels: np.ndarray, survive: np.ndarray, fallback: np.ndarray
) -> np.ndarray:
    """Labels against the surviving centroids, *without* re-assignment.

    Series whose cluster survived keep their membership (remapped to the
    surviving index space); series whose cluster was lost are measured
    against their closest surviving centroid (they are exactly the
    "ignored de facto" series of footnote 8 — ``fallback`` carries the
    closest-surviving assignment for them).
    """
    mapping = np.cumsum(survive) - 1
    kept = survive[labels]
    restricted = np.where(kept, mapping[labels], fallback)
    return restricted
