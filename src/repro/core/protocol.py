"""The full Chiaroscuro execution sequence (Algorithm 1) — real crypto plane.

This orchestrates, over the cycle-driven gossip engine and with genuine
Damgård–Jurik threshold cryptography, the loop every participant runs:

    while not converged and n_it ≤ n_it^max:
        assignment step   (local, cleartext — Participant)
        computation step  (Algorithm 3 — ComputationStep)
        convergence step  (local, cleartext)

It is the "strong proof of concept" plane: faithful down to the ciphertext
algebra, sized for populations of tens-to-hundreds of devices (the paper's
Peersim plane had the same reach; scale experiments use the vectorized
gossip plane and the perturbed centralized k-means, as the paper did).

The run keeps one canonical trace (node 0's view — all nodes agree up to
the epidemic approximation error, which is recorded per iteration as
``agreement``) and enforces the iteration-capped termination criterion of
Sec. 4.2.4 plus the budget strategy's own bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..clustering.distance import assign_to_closest
from ..clustering.inertia import intra_inertia
from ..crypto.encoding import FixedPointCodec
from ..crypto.threshold import ThresholdKeypair, generate_threshold_keypair
from ..datasets.timeseries import TimeSeriesSet
from ..gossip.engine import GossipEngine
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import BudgetExhausted, BudgetStrategy
from .computation import ComputationStep
from .config import ChiaroscuroParams
from .noise import NoisePlan
from .participant import Participant
from .results import ClusteringResult, IterationStats
from .smoothing import sma_smooth

__all__ = ["ChiaroscuroRun", "DistributedTrace"]


@dataclass
class DistributedTrace:
    """Extra diagnostics only the distributed plane can produce."""

    agreement: list[float] = field(default_factory=list)  # per-iteration spread
    exchanges_per_node: list[float] = field(default_factory=list)


class ChiaroscuroRun:
    """One full protocol execution over a (small) population of devices.

    ``key_bits`` defaults to a test-friendly 256 bits; the Fig. 5 cost
    benches use 1024.  The Damgård–Jurik expansion ``s`` is picked
    automatically so the plaintext space survives the worst-case EESum
    scaling (see ``FixedPointCodec.check_capacity``).
    """

    def __init__(
        self,
        dataset: TimeSeriesSet,
        strategy: BudgetStrategy,
        params: ChiaroscuroParams,
        initial_centroids: np.ndarray,
        key_bits: int = 256,
        seed: int = 0,
        keypair: ThresholdKeypair | None = None,
    ) -> None:
        self.dataset = dataset
        self.strategy = strategy
        self.params = params
        self.initial_centroids = np.asarray(initial_centroids, dtype=float)
        self.seed = seed
        self.crypto_rng = random.Random(seed)
        self.noise_rng = np.random.default_rng(seed + 1)

        population = dataset.t
        tau = params.tau_count(population)
        if keypair is None:
            keypair = generate_threshold_keypair(
                key_bits,
                n_shares=population,
                threshold=tau,
                s=params.expansion_s,
                rng=self.crypto_rng,
            )
        self.keypair = keypair

        # Pick the fixed-point resolution, then prove the plaintext space
        # can absorb population sums × the delayed-division scaling.
        self.codec = FixedPointCodec(keypair.public, fractional_bits=24)
        worst_exchanges = 4 * params.exchanges + 2
        self.codec.check_capacity(
            max_abs_value=max(abs(dataset.dmin), abs(dataset.dmax))
            + 10.0 * dataset.joint_sensitivity,  # headroom for noise shares
            population=population,
            exchanges=worst_exchanges,
        )

        self.participants = [
            Participant(
                node_id=i,
                series=dataset.values[i],
                public=keypair.public,
                codec=self.codec,
            )
            for i in range(population)
        ]

    def run(self, churn: float = 0.0) -> tuple[ClusteringResult, DistributedTrace]:
        """Execute Algorithm 1; returns the canonical trace plus diagnostics."""
        params = self.params
        dataset = self.dataset
        accountant = PrivacyAccountant(epsilon_budget=self.strategy.epsilon)
        centroids = self.initial_centroids.copy()
        window = params.smoothing_window(dataset.n)
        do_smooth = params.use_smoothing and 0 < window < dataset.n

        result = ClusteringResult(
            centroids=centroids, strategy=self.strategy.name, smoothing=do_smooth
        )
        trace = DistributedTrace()
        n_nu = params.noise_share_count(dataset.t)

        for iteration in range(1, params.max_iterations + 1):
            try:
                epsilon_i = self.strategy.epsilon_for(iteration)
                accountant.charge(epsilon_i)
            except BudgetExhausted:
                break

            engine = GossipEngine(
                n_nodes=dataset.t,
                seed=self.seed + 1000 * iteration,
                view_size=params.view_size,
                churn=churn,
            )

            # Assignment step (local, per participant).
            mean_vectors = {
                p.node_id: p.encrypted_means_vector(centroids, self.crypto_rng)
                for p in self.participants
            }

            # Computation step (Algorithm 3).
            plan = NoisePlan(
                k=len(centroids),
                series_length=dataset.n,
                dmin=dataset.dmin,
                dmax=dataset.dmax,
                epsilon=epsilon_i,
                n_nu=n_nu,
            )
            step = ComputationStep(
                keypair=self.keypair,
                codec=self.codec,
                noise_plan=plan,
                exchanges=params.exchanges,
                crypto_rng=self.crypto_rng,
                noise_rng=self.noise_rng,
            )
            output = step.run(engine, mean_vectors)
            if not output.sums:
                break
            trace.agreement.append(output.agreement())
            trace.exchanges_per_node.append(engine.mean_exchanges_per_node)

            # Canonical post-processing (every node does the same locally).
            canonical = min(output.sums)
            means, counts = output.perturbed_means(canonical)
            survive = counts > 0.5  # counts are perturbed reals; lost below
            if not survive.any():
                break
            perturbed = means[survive]
            if do_smooth:
                perturbed = sma_smooth(perturbed, window)

            labels = assign_to_closest(dataset.values, centroids)
            true_pre = self._pre_inertia(labels, len(centroids))
            post_labels = assign_to_closest(dataset.values, perturbed)
            post = intra_inertia(dataset.values, perturbed, post_labels)

            result.history.append(
                IterationStats(
                    iteration=iteration,
                    pre_inertia=true_pre,
                    post_inertia=float(post),
                    n_centroids=int(survive.sum()),
                    epsilon_spent=epsilon_i,
                    centroids=perturbed.copy(),
                )
            )

            if params.theta > 0 and perturbed.shape == centroids.shape:
                displacement = float(np.mean((perturbed - centroids) ** 2))
                if displacement < params.theta:
                    result.converged = True
                    centroids = perturbed
                    break
            centroids = perturbed

        result.centroids = centroids
        return result, trace

    def _pre_inertia(self, labels: np.ndarray, k: int) -> float:
        """Inertia of the current partition against its true (local) means."""
        series = self.dataset.values
        counts = np.bincount(labels, minlength=k).astype(float)
        sums = np.zeros((k, series.shape[1]))
        np.add.at(sums, labels, series)
        alive = counts > 0
        means = sums[alive] / counts[alive, None]
        mapping = np.cumsum(alive) - 1
        return float(intra_inertia(series, means, mapping[labels]))
