"""The full Chiaroscuro execution sequence (Algorithm 1) — both substrates.

This orchestrates the loop every participant runs:

    while not converged and n_it ≤ n_it^max:
        assignment step   (local, cleartext — Participant)
        computation step  (Algorithm 3 — ComputationStep)
        convergence step  (local, cleartext)

over one of two simulation substrates, selected by
``ChiaroscuroParams.protocol_plane``:

* ``"object"`` — the cycle-driven gossip engine with genuine Damgård–Jurik
  threshold cryptography.  The "strong proof of concept" plane: faithful
  down to the ciphertext algebra, sized for populations of
  tens-to-hundreds of devices (the paper's Peersim plane had the same
  reach);
* ``"vectorized"`` — the struct-of-arrays engine over the mock-homomorphic
  integer plane (:class:`repro.core.computation.VectorizedComputationStep`).
  Full Algorithm 2/EpiDis/collection semantics as whole-population array
  operations, sized for the paper's 10⁵–10⁶-participant Figs. 3–4 curves.
  Validated against the object plane by shadow-execution equivalence tests
  at small populations (``tests/gossip``);
* ``"vectorized-crypto"`` — the struct-of-arrays engine carrying *real*
  packed Damgård–Jurik ciphertexts (:class:`repro.core.computation.
  VectorizedCryptoComputationStep` over :class:`repro.gossip.cipher_array.
  CipherEESum`): every exchange round's homomorphic algebra runs as
  whole-round bigint batches, shardable over the process-pool crypto
  backend.  Decoded results are bit-identical to the mock plane at the
  same seed; per-iteration ``crypto_ms`` telemetry splits out the
  ciphertext cost.

The run keeps one canonical trace (the smallest-id weighted node's view —
all nodes agree up to the epidemic approximation error, which is recorded
per iteration as ``agreement``) and enforces the iteration-capped
termination criterion of Sec. 4.2.4 plus the budget strategy's own bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..clustering.distance import assign_to_closest
from ..clustering.inertia import intra_inertia
from ..crypto import bigint
from ..crypto.backend import create_backend
from ..crypto.damgard_jurik import FastEncryptor
from ..crypto.encoding import FixedPointCodec, PackedCodec
from ..crypto.threshold import ThresholdKeypair, generate_threshold_keypair
from ..datasets.timeseries import TimeSeriesSet
from ..gossip.engine import GossipEngine
from ..gossip.vectorized_protocol import VectorizedGossipEngine
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import BudgetExhausted, BudgetStrategy
from .batching import PackedPlane, ScalarPlane
from .computation import (
    ComputationStep,
    VectorizedComputationStep,
    VectorizedCryptoComputationStep,
)
from .config import ChiaroscuroParams
from .noise import NoisePlan
from .participant import Participant
from .results import ClusteringResult, IterationStats
from .smoothing import sma_smooth

__all__ = ["ChiaroscuroRun", "DistributedTrace", "ProtocolStep"]


@dataclass
class DistributedTrace:
    """Extra diagnostics only the distributed plane can produce."""

    agreement: list[float] = field(default_factory=list)  # per-iteration spread
    exchanges_per_node: list[float] = field(default_factory=list)


@dataclass
class ProtocolStep:
    """One completed distributed iteration, as yielded by ``run_iter``.

    ``centroids`` are the released (perturbed, smoothed, lost-cluster-
    pruned) centroids of the iteration; ``agreement`` and
    ``exchanges_per_node`` are the :class:`DistributedTrace` entries for it.
    """

    stats: IterationStats
    centroids: np.ndarray
    converged: bool
    agreement: float
    exchanges_per_node: float
    #: Wall-clock milliseconds spent inside crypto batch calls this
    #: iteration (encryption, homomorphic gossip algebra, threshold
    #: decryption).  ``None`` on planes that carry no real ciphertexts.
    crypto_ms: float | None = None


class ChiaroscuroRun:
    """One full protocol execution over a (small) population of devices.

    ``key_bits`` defaults to a test-friendly 256 bits; the Fig. 5 cost
    benches use 1024.  The Damgård–Jurik expansion ``s`` is picked
    automatically so the plaintext space survives the worst-case EESum
    scaling (see ``FixedPointCodec.check_capacity``).
    """

    def __init__(
        self,
        dataset: TimeSeriesSet,
        strategy: BudgetStrategy,
        params: ChiaroscuroParams,
        initial_centroids: np.ndarray,
        key_bits: int = 256,
        seed: int = 0,
        keypair: ThresholdKeypair | None = None,
        cycle_hook: Callable[[int, int], None] | None = None,
        fault_plan=None,
    ) -> None:
        self.dataset = dataset
        self.strategy = strategy
        self.params = params
        self.initial_centroids = np.asarray(initial_centroids, dtype=float)
        self.seed = seed
        self.crypto_rng = random.Random(seed)
        self.noise_rng = np.random.default_rng(seed + 1)
        # Resolve the spec'd bigint kernel up front (loud failure on an
        # uninstalled gmpy2 request) without mutating the process-global
        # selection: key/table construction below and every protocol
        # iteration run inside use_backend(self.bigint_backend), so an
        # explicit per-run choice cannot leak into later "auto" runs in
        # the same process.  "auto" keeps the process's active kernel
        # (env-var/import-time resolution, or a programmatic
        # select_backend/use_backend).  Either kernel is result-neutral —
        # both are exact integer arithmetic.
        if params.bigint_backend == "auto":
            self.bigint_backend = bigint.active_backend()
        else:
            self.bigint_backend = bigint.resolve_backend(params.bigint_backend)
        # Observability hook handed to every per-iteration gossip engine:
        # called after each cycle with (cycle_index, exchanges_in_cycle).
        self.cycle_hook = cycle_hook
        # Optional FaultPlan (repro.faults): the protocol never reads it —
        # it only wraps the per-iteration engine and the computation output
        # at the two seams below, so fault-free runs are bit-identical.
        self.fault_plan = fault_plan

        population = dataset.t
        tau = params.tau_count(population)
        if params.protocol_plane == "vectorized":
            # Mock-homomorphic substrate: no key material, no per-device
            # objects — the whole population lives in arrays.  The
            # fixed-point grid matches the object plane's codec resolution
            # so both planes quantize inputs identically.
            self.keypair = keypair
            self.fractional_bits = 24
            self.codec = None
            self.encryptor = None
            self.backend = None
            self.plane = None
            self.participants = []
            if self.fault_plan is not None:
                self.fault_plan.bind_run(self)
            return
        if params.protocol_plane == "vectorized-crypto":
            # Real packed Damgård–Jurik ciphertexts over the struct-of-
            # arrays engine.  Key material is committee-sized, not
            # population-sized: Shoup combination carries Δ = n_shares! in
            # its exponents, which explodes past a few dozen shares — and
            # decoded plaintexts are keypair-independent, so a small
            # committee dealing the key changes nothing downstream.  The
            # epidemic share-collection protocol still runs against the
            # population's τ for latency parity with the mock plane.
            self.fractional_bits = 24
            committee = min(population, 16)
            if keypair is None:
                with bigint.use_backend(self.bigint_backend):
                    keypair = generate_threshold_keypair(
                        key_bits,
                        n_shares=committee,
                        threshold=min(max(1, tau), committee),
                        s=params.expansion_s,
                        rng=self.crypto_rng,
                    )
            self.keypair = keypair
            # On the pairing engine a node joins at most one (disjoint)
            # exchange per cycle, so its counter — and with it the packed
            # coefficient mass C = 2^count — is bounded by the cycle
            # count: accumulation headroom is cycles + safety bits, far
            # tighter than the object engine's chaining growth model.
            # terms=1 / population=1 because means and noise are summed in
            # clear on the fixed-point grid before the single packed
            # encryption, and C already *is* the whole coefficient total.
            cycles = 2 * params.exchanges
            slices = []
            for iteration in range(1, params.max_iterations + 1):
                try:
                    slices.append(strategy.epsilon_for(iteration))
                except BudgetExhausted:
                    break
            min_epsilon = min(slices) if slices else params.epsilon
            noise_bound = 60.0 * dataset.joint_sensitivity / min_epsilon
            self.packed = PackedCodec.plan(
                keypair.public,
                fractional_bits=self.fractional_bits,
                max_abs_value=max(abs(dataset.dmin), abs(dataset.dmax))
                + noise_bound,
                population=1,
                exchanges=cycles,
                terms=1,
            )
            self.codec = None
            self.plane = None
            self.participants = []
            with bigint.use_backend(self.bigint_backend):
                self.encryptor = FastEncryptor(keypair.public, self.crypto_rng)
            self.backend = create_backend(
                params.crypto_backend,
                workers=params.backend_workers,
                encryptor=self.encryptor,
            )
            if self.fault_plan is not None:
                self.fault_plan.bind_run(self)
            return
        if keypair is None:
            with bigint.use_backend(self.bigint_backend):
                keypair = generate_threshold_keypair(
                    key_bits,
                    n_shares=population,
                    threshold=tau,
                    s=params.expansion_s,
                    rng=self.crypto_rng,
                )
        self.keypair = keypair

        # Pick the fixed-point resolution, then prove the plaintext space
        # can absorb population sums × the delayed-division scaling.
        # The EESum exchange counter can *chain* within one cycle (a node
        # that just advanced is contacted again), so the max count grows by
        # roughly 2 + 0.8·log2(t) per cycle empirically; 4 + ceil(log2 t)
        # bounds it with ≥1.6× margin and sizes both the scalar wrap check
        # and the packed slot headroom.  Undershooting is loud, not silent:
        # the PackedCodec decode gate raises on an excessive actual mass.
        self.codec = FixedPointCodec(keypair.public, fractional_bits=24)
        growth_per_cycle = 4 + max(1, population - 1).bit_length()
        worst_exchanges = params.exchanges * growth_per_cycle + 2
        max_abs = (
            max(abs(dataset.dmin), abs(dataset.dmax))
            + 10.0 * dataset.joint_sensitivity  # headroom for noise shares
        )
        self.codec.check_capacity(
            max_abs_value=max_abs,
            population=population,
            exchanges=worst_exchanges,
        )

        # Batched ciphertext plane: amortized randomizers (fixed-base table
        # built once per run), a swappable evaluation backend, and — when
        # the plaintext space has room for it — slot packing.  Unlike the
        # scalar plane (which wraps benignly into its huge margin), a
        # packed slot must hold every *individual* encoded value, noise
        # shares included — and their Laplace scale is ε-dependent, blowing
        # past any fixed multiple of the sensitivity once the per-iteration
        # budget slice gets small.  Size the slot from the worst slice's
        # scale with an exponential-tail quantile (P[|share| > 60λ] ~ e⁻⁶⁰
        # per element: never in practice), falling back to scalar when the
        # resulting slot no longer fits the plaintext.
        with bigint.use_backend(self.bigint_backend):
            self.encryptor = FastEncryptor(keypair.public, self.crypto_rng)
        self.backend = create_backend(
            params.crypto_backend,
            workers=params.backend_workers,
            encryptor=self.encryptor,
        )
        self.plane = ScalarPlane(keypair.public, self.codec, self.backend)
        if params.use_packing:
            slices = []
            for iteration in range(1, params.max_iterations + 1):
                try:
                    slices.append(strategy.epsilon_for(iteration))
                except BudgetExhausted:
                    break
            min_epsilon = min(slices) if slices else params.epsilon
            noise_bound = 60.0 * dataset.joint_sensitivity / min_epsilon
            try:
                packed = PackedCodec.plan(
                    keypair.public,
                    fractional_bits=self.codec.fractional_bits,
                    max_abs_value=max(abs(dataset.dmin), abs(dataset.dmax))
                    + noise_bound,
                    population=population,
                    exchanges=worst_exchanges,
                    terms=2,  # means + noise are the biased vectors summed
                )
                self.plane = PackedPlane(keypair.public, packed, self.backend)
            except ValueError:
                pass  # no room for even one slot — stay on the scalar plane

        self.participants = [
            Participant(
                node_id=i,
                series=dataset.values[i],
                public=keypair.public,
                codec=self.codec,
                plane=self.plane,
            )
            for i in range(population)
        ]
        if self.fault_plan is not None:
            self.fault_plan.bind_run(self)

    def smoothing_plan(self) -> tuple[int, bool]:
        """(window, applies) for this run — shared by both substrates."""
        window = self.params.smoothing_window(self.dataset.n)
        return window, self.params.use_smoothing and 0 < window < self.dataset.n

    def run(self, churn: float = 0.0) -> tuple[ClusteringResult, DistributedTrace]:
        """Execute Algorithm 1; returns the canonical trace plus diagnostics.

        Backend resources are released on every exit path; the run object
        stays reusable (a process-pool backend re-creates its executor
        lazily).  A thin driver over :meth:`run_iter`.
        """
        _, do_smooth = self.smoothing_plan()
        centroids = self.initial_centroids.copy()
        result = ClusteringResult(
            centroids=centroids, strategy=self.strategy.name, smoothing=do_smooth
        )
        trace = DistributedTrace()
        for step in self.run_iter(churn):
            result.history.append(step.stats)
            trace.agreement.append(step.agreement)
            trace.exchanges_per_node.append(step.exchanges_per_node)
            result.converged = step.converged
            centroids = step.centroids
        result.centroids = centroids
        return result, trace

    def run_iter(
        self, churn: float = 0.0, start_iteration: int = 1
    ) -> Iterator[ProtocolStep]:
        """Algorithm 1 as a generator of per-iteration steps (both planes).

        Yields one :class:`ProtocolStep` per completed iteration — the
        streaming primitive for progress reporting, early stopping, and
        (on the vectorized plane) checkpointing.  ``start_iteration``
        resumes mid-run: budget charges for the prefix are replayed
        (deterministic) and the caller is expected to have restored
        ``initial_centroids`` and the RNG state from a checkpoint.  On the
        object plane the backend is released when the generator finishes
        or is closed.
        """
        if self.params.protocol_plane == "vectorized":
            yield from self._iter_vectorized(churn, start_iteration)
        elif self.params.protocol_plane == "vectorized-crypto":
            try:
                yield from self._iter_vectorized_crypto(churn, start_iteration)
            finally:
                self.close()
        else:
            try:
                yield from self._iter_object(churn, start_iteration)
            finally:
                self.close()

    def _charged_accountant(self, start_iteration: int) -> PrivacyAccountant:
        """An accountant with the resumed prefix already charged."""
        accountant = PrivacyAccountant(epsilon_budget=self.strategy.epsilon)
        for iteration in range(1, start_iteration):
            accountant.charge(self.strategy.epsilon_for(iteration))
        return accountant

    def _iter_object(self, churn: float, start_iteration: int) -> Iterator[ProtocolStep]:
        params = self.params
        dataset = self.dataset
        accountant = self._charged_accountant(start_iteration)
        centroids = self.initial_centroids.copy()
        window, do_smooth = self.smoothing_plan()
        n_nu = params.noise_share_count(dataset.t)

        for iteration in range(start_iteration, params.max_iterations + 1):
            try:
                epsilon_i = self.strategy.epsilon_for(iteration)
                accountant.charge(epsilon_i)
            except BudgetExhausted:
                return

            # The run's bigint kernel is active only while this iteration
            # computes and is restored before every yield — interleaved
            # generators of runs with different kernels never see each
            # other's selection, and nothing leaks into later runs.
            with bigint.use_backend(self.bigint_backend):
                engine = GossipEngine(
                    n_nodes=dataset.t,
                    seed=self.seed + 1000 * iteration,
                    view_size=params.view_size,
                    churn=churn,
                )
                engine.on_cycle = self.cycle_hook
                if self.fault_plan is not None:
                    engine = self.fault_plan.wrap_engine(engine, iteration)

                # Assignment step (local, per participant).
                mean_vectors = {
                    p.node_id: p.encrypted_means_vector(centroids, self.crypto_rng)
                    for p in self.participants
                }

                # Computation step (Algorithm 3).
                plan = NoisePlan(
                    k=len(centroids),
                    series_length=dataset.n,
                    dmin=dataset.dmin,
                    dmax=dataset.dmax,
                    epsilon=epsilon_i,
                    n_nu=n_nu,
                )
                step = ComputationStep(
                    keypair=self.keypair,
                    codec=self.codec,
                    noise_plan=plan,
                    exchanges=params.exchanges,
                    crypto_rng=self.crypto_rng,
                    noise_rng=self.noise_rng,
                    plane=self.plane,
                )
                output = step.run(engine, mean_vectors)
                if self.fault_plan is not None:
                    output = self.fault_plan.observe_output(output, iteration)
                if not output.sums:
                    return

                advanced = self._advance_centroids(
                    output, centroids, iteration, epsilon_i, do_smooth, window
                )
            if advanced is None:
                return
            stats, centroids, converged = advanced
            yield ProtocolStep(
                stats=stats,
                centroids=centroids,
                converged=converged,
                agreement=output.agreement(),
                exchanges_per_node=engine.mean_exchanges_per_node,
            )
            if converged:
                return

    def _iter_vectorized(
        self, churn: float, start_iteration: int
    ) -> Iterator[ProtocolStep]:
        """Algorithm 1 over the struct-of-arrays plane (10⁵–10⁶ participants)."""
        params = self.params
        dataset = self.dataset
        accountant = self._charged_accountant(start_iteration)
        centroids = self.initial_centroids.copy()
        window, do_smooth = self.smoothing_plan()
        n_nu = params.noise_share_count(dataset.t)
        tau = params.tau_count(dataset.t)
        stride = dataset.n + 1

        for iteration in range(start_iteration, params.max_iterations + 1):
            try:
                epsilon_i = self.strategy.epsilon_for(iteration)
                accountant.charge(epsilon_i)
            except BudgetExhausted:
                return

            engine = VectorizedGossipEngine(
                dataset.t, seed=self.seed + 1000 * iteration, churn=churn
            )
            engine.on_cycle = self.cycle_hook
            if self.fault_plan is not None:
                engine = self.fault_plan.wrap_engine(engine, iteration)

            # Assignment step (Alg. 1 l.5-6), whole population at once: the
            # t × k·(n+1) matrix whose row i carries series i in the
            # assigned cluster's stripe and a count of 1 in its last slot.
            k = len(centroids)
            labels = assign_to_closest(dataset.values, centroids)
            mean_matrix = np.zeros((dataset.t, k * stride))
            rows = np.arange(dataset.t)
            base = labels * stride
            mean_matrix[rows[:, None], base[:, None] + np.arange(dataset.n)] = (
                dataset.values
            )
            mean_matrix[rows, base + dataset.n] = 1.0

            # Computation step (Algorithm 3) on the mock-homomorphic plane.
            plan = NoisePlan(
                k=k,
                series_length=dataset.n,
                dmin=dataset.dmin,
                dmax=dataset.dmax,
                epsilon=epsilon_i,
                n_nu=n_nu,
            )
            step = VectorizedComputationStep(
                noise_plan=plan,
                exchanges=params.exchanges,
                threshold=tau,
                noise_rng=self.noise_rng,
                fractional_bits=self.fractional_bits,
            )
            output = step.run(engine, mean_matrix)
            del mean_matrix
            if self.fault_plan is not None:
                output = self.fault_plan.observe_output(output, iteration)
            if not output.sums:
                return

            advanced = self._advance_centroids(
                output, centroids, iteration, epsilon_i, do_smooth, window,
                labels=labels,
            )
            if advanced is None:
                return
            stats, centroids, converged = advanced
            yield ProtocolStep(
                stats=stats,
                centroids=centroids,
                converged=converged,
                agreement=output.agreement(),
                exchanges_per_node=engine.mean_exchanges_per_node,
            )
            if converged:
                return

    def _iter_vectorized_crypto(
        self, churn: float, start_iteration: int
    ) -> Iterator[ProtocolStep]:
        """Algorithm 1 over the struct-of-arrays plane with real ciphertexts.

        Identical control flow to :meth:`_iter_vectorized` — same engine
        seeds, same assignment-step matrix, same noise plan — with the
        computation step swapped for the packed-Damgård–Jurik one.  Decoded
        per-iteration centroids are bit-identical to a mock-plane run of
        the same seed (the step mirrors the mock's RNG and float sequence
        exactly); what changes is that every gossip exchange really does
        carry ciphertexts, and ``crypto_ms`` reports what that cost.
        """
        params = self.params
        dataset = self.dataset
        accountant = self._charged_accountant(start_iteration)
        centroids = self.initial_centroids.copy()
        window, do_smooth = self.smoothing_plan()
        n_nu = params.noise_share_count(dataset.t)
        tau = params.tau_count(dataset.t)
        stride = dataset.n + 1

        for iteration in range(start_iteration, params.max_iterations + 1):
            try:
                epsilon_i = self.strategy.epsilon_for(iteration)
                accountant.charge(epsilon_i)
            except BudgetExhausted:
                return

            with bigint.use_backend(self.bigint_backend):
                engine = VectorizedGossipEngine(
                    dataset.t, seed=self.seed + 1000 * iteration, churn=churn
                )
                engine.on_cycle = self.cycle_hook
                if self.fault_plan is not None:
                    engine = self.fault_plan.wrap_engine(engine, iteration)

                # Assignment step (Alg. 1 l.5-6) — the mock plane's exact
                # matrix construction, reused verbatim.
                k = len(centroids)
                labels = assign_to_closest(dataset.values, centroids)
                mean_matrix = np.zeros((dataset.t, k * stride))
                rows = np.arange(dataset.t)
                base = labels * stride
                mean_matrix[
                    rows[:, None], base[:, None] + np.arange(dataset.n)
                ] = dataset.values
                mean_matrix[rows, base + dataset.n] = 1.0

                # Computation step (Algorithm 3) with genuine crypto.
                plan = NoisePlan(
                    k=k,
                    series_length=dataset.n,
                    dmin=dataset.dmin,
                    dmax=dataset.dmax,
                    epsilon=epsilon_i,
                    n_nu=n_nu,
                )
                step = VectorizedCryptoComputationStep(
                    keypair=self.keypair,
                    packed=self.packed,
                    noise_plan=plan,
                    exchanges=params.exchanges,
                    threshold=tau,
                    crypto_rng=self.crypto_rng,
                    noise_rng=self.noise_rng,
                    backend=self.backend,
                    fractional_bits=self.fractional_bits,
                )
                output = step.run(engine, mean_matrix)
                del mean_matrix
                if self.fault_plan is not None:
                    output = self.fault_plan.observe_output(output, iteration)
                if not output.sums:
                    return

                advanced = self._advance_centroids(
                    output, centroids, iteration, epsilon_i, do_smooth, window,
                    labels=labels,
                )
            if advanced is None:
                return
            stats, centroids, converged = advanced
            yield ProtocolStep(
                stats=stats,
                centroids=centroids,
                converged=converged,
                agreement=output.agreement(),
                exchanges_per_node=engine.mean_exchanges_per_node,
                crypto_ms=step.crypto_seconds * 1000.0,
            )
            if converged:
                return

    def _advance_centroids(
        self,
        output,
        centroids: np.ndarray,
        iteration: int,
        epsilon_i: float,
        do_smooth: bool,
        window: int,
        labels: np.ndarray | None = None,
    ) -> tuple[IterationStats, np.ndarray, bool] | None:
        """Canonical post-processing (every node does the same locally).

        Shared by both substrates: decode the canonical node's perturbed
        means, drop lost clusters, smooth, measure the iteration's quality
        stats and apply the θ convergence test.  Returns ``(stats,
        next_centroids, converged)``, or ``None`` when every cluster was
        lost (the run ends without a recordable iteration).  ``labels``
        lets the vectorized path reuse its assignment-step result instead
        of recomputing the t × k argmin (the dominant cleartext cost at
        10⁵–10⁶ participants).
        """
        params = self.params
        dataset = self.dataset
        canonical = min(output.sums)
        means, counts = output.perturbed_means(canonical)
        survive = counts > 0.5  # counts are perturbed reals; lost below
        if not survive.any():
            return None
        perturbed = means[survive]
        if do_smooth:
            perturbed = sma_smooth(perturbed, window)

        if labels is None:
            labels = assign_to_closest(dataset.values, centroids)
        true_pre = self._pre_inertia(labels, len(centroids))
        post_labels = assign_to_closest(dataset.values, perturbed)
        post = intra_inertia(dataset.values, perturbed, post_labels)

        stats = IterationStats(
            iteration=iteration,
            pre_inertia=true_pre,
            post_inertia=float(post),
            n_centroids=int(survive.sum()),
            epsilon_spent=epsilon_i,
            centroids=perturbed.copy(),
        )

        converged = False
        if params.theta > 0 and perturbed.shape == centroids.shape:
            displacement = float(np.mean((perturbed - centroids) ** 2))
            converged = displacement < params.theta
        return stats, perturbed, converged

    def close(self) -> None:
        """Release backend resources (worker pools); the run can be reused —
        a process-pool backend re-creates its executor lazily."""
        if self.backend is not None:
            self.backend.close()

    def _pre_inertia(self, labels: np.ndarray, k: int) -> float:
        """Inertia of the current partition against its true (local) means."""
        series = self.dataset.values
        counts = np.bincount(labels, minlength=k).astype(float)
        sums = np.zeros((k, series.shape[1]))
        np.add.at(sums, labels, series)
        alive = counts > 0
        means = sums[alive] / counts[alive, None]
        mapping = np.cumsum(alive) - 1
        return float(intra_inertia(series, means, mapping[labels]))
