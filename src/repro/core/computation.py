"""The computation step (Algorithm 3) over the gossip engine.

One instance executes, for a single k-means iteration:

1. **Epidemic computation of the encrypted means** — the EESum protocol
   over every participant's flattened ``k·(n+1)`` ciphertext vector;
2. **Epidemic noise generation** — the noise-share EESum (carried in the
   *same* exchange stream so scales stay aligned), the cleartext epidemic
   counter ``ctr``, and the min-identifier surplus-correction
   dissemination;
3. **Encrypted perturbation** — homomorphic addition of the converged
   noise to the converged means;
4. **Epidemic decryption** — the threshold protocol of Sec. 4.2.3.

The correction vector is public, data-independent material (it travels in
clear with its identifier); we subtract it right after decryption instead
of homomorphically re-encoding it beforehand — arithmetically identical
and noted in DESIGN.md.

The output is per-node: each participant ends the step with its own decoded
``(sums, counts)`` per cluster; Theorem 1's correctness shows these agree
across nodes up to the epidemic approximation error, and the integration
tests measure exactly that agreement.
"""

from __future__ import annotations

import random
import time

import numpy as np

from ..crypto.backend import CryptoBackend, SerialBackend
from ..crypto.damgard_jurik import homomorphic_add_batch
from ..crypto.encoding import FixedPointCodec, PackedCodec
from ..crypto.threshold import ThresholdKeypair, combine_partial_decryptions_batch
from ..gossip.aggregation import EpidemicSum
from ..gossip.cipher_array import CipherEESum
from ..gossip.decryption import EpidemicDecryption, VectorizedShareCollection
from ..gossip.dissemination import MinIdDissemination, VectorizedMinId
from ..gossip.eesum import EESum, VectorizedEESum
from ..gossip.engine import GossipEngine
from ..gossip.vectorized_protocol import VectorizedGossipEngine
from .batching import CiphertextPlane, ScalarPlane
from .noise import NoisePlan

__all__ = [
    "ComputationStep",
    "ComputationOutput",
    "VectorizedComputationStep",
    "VectorizedCryptoComputationStep",
]


class ComputationOutput:
    """Per-node decoded aggregates after one computation step."""

    def __init__(self, k: int, series_length: int) -> None:
        self.k = k
        self.series_length = series_length
        self.sums: dict[int, np.ndarray] = {}  # node id → (k, n)
        self.counts: dict[int, np.ndarray] = {}  # node id → (k,)

    def perturbed_means(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(means, counts) for a node; lost clusters carry non-positive counts."""
        sums = self.sums[node_id]
        counts = self.counts[node_id]
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts[:, None]
        return means, counts

    def agreement(self) -> float:
        """Max pairwise relative disagreement of the decoded sums (diagnostic)."""
        stacked = np.array([self.sums[i] for i in sorted(self.sums)])
        spread = stacked.max(axis=0) - stacked.min(axis=0)
        magnitude = np.abs(stacked).max(axis=0) + 1e-12
        return float((spread / magnitude).max())


class ComputationStep:
    """Algorithm 3, parameterized by the crypto material and epidemic knobs.

    ``plane`` selects the ciphertext representation (scalar vs packed —
    see :mod:`repro.core.batching`); every bulk crypto operation goes
    through the plane's backend as a batch.  The supplied ``mean_vectors``
    must be laid out by the *same* plane (``Participant`` takes one).
    When ``plane`` is omitted a scalar plane over ``codec`` is built,
    preserving the seed implementation's one-ciphertext-per-value wire
    format.
    """

    def __init__(
        self,
        keypair: ThresholdKeypair,
        codec: FixedPointCodec,
        noise_plan: NoisePlan,
        exchanges: int,
        crypto_rng: random.Random,
        noise_rng: np.random.Generator,
        plane: CiphertextPlane | None = None,
        backend: CryptoBackend | None = None,
    ) -> None:
        self.keypair = keypair
        self.codec = codec
        self.noise_plan = noise_plan
        self.exchanges = exchanges
        self.crypto_rng = crypto_rng
        self.noise_rng = noise_rng
        if plane is not None and backend is not None:
            raise ValueError(
                "pass either plane or backend, not both — a plane carries "
                "its own backend"
            )
        self.plane = plane or ScalarPlane(keypair.public, codec, backend)

    def run(
        self,
        engine: GossipEngine,
        mean_vectors: dict[int, list[int]],
    ) -> ComputationOutput:
        """Execute the computation step for every node of ``engine``.

        ``mean_vectors`` maps node id → flattened encrypted means (the
        Alg. 1 l.6 initialization): ``k·(n+1)`` ciphertexts on the scalar
        plane, ``packed_length(k·(n+1))`` on the packed plane.
        """
        public = self.keypair.public
        plane = self.plane
        node_ids = [node.node_id for node in engine.nodes]
        dims = self.noise_plan.dimensions
        payload = plane.packed_length(dims)

        # --- local noise-share generation (Alg. 3 l.4) -------------------
        shares = {i: self.noise_plan.draw_share(self.noise_rng) for i in node_ids}
        noise_vectors = {
            i: plane.encrypt_values(shares[i], self.crypto_rng) for i in node_ids
        }

        # --- background epidemic sums (Alg. 3 l.2 & l.5) -----------------
        # Means and noise ride the same EESum instance so their delayed-
        # division scales stay aligned; the cleartext counter gossips on
        # the same exchange stream.  On the packed plane one tracker
        # ciphertext E(1) per node rides along too: it converges to the
        # EESum coefficient total C, which exact unpacking needs.
        combined = {
            i: mean_vectors[i]
            + noise_vectors[i]
            + plane.tracker_ciphertexts(self.crypto_rng)
            for i in node_ids
        }
        eesum = EESum(public, combined)
        counter = EpidemicSum({i: np.array([1.0]) for i in node_ids})
        engine.setup(eesum, counter)
        engine.run_cycles(self.exchanges, eesum, counter)

        # --- epidemic noise correction (Alg. 3 l.6) ----------------------
        proposals: dict[int, tuple[int, np.ndarray]] = {}
        for node in engine.nodes:
            estimate = counter.estimate(node)
            if estimate is None:
                continue
            contributors = int(round(float(estimate[0])))
            correction = self.noise_plan.correction(contributors, self.noise_rng)
            proposals[node.node_id] = (self.crypto_rng.getrandbits(63), correction)
        dissemination = MinIdDissemination(proposals)
        engine.setup(dissemination)
        engine.run_cycles(self.exchanges, dissemination)

        # --- encrypted perturbation (Alg. 3 l.7) --------------------------
        # Batched: one element-wise homomorphic add of the means half and
        # the noise half; the tracker (if any) passes through untouched.
        bundles: dict[int, tuple[list[int], int]] = {}
        for node in engine.nodes:
            state = eesum.state_of(node)
            means_part = state.ciphertexts[:payload]
            noise_part = state.ciphertexts[payload : 2 * payload]
            tracker_part = state.ciphertexts[2 * payload :]
            perturbed = homomorphic_add_batch(public, means_part, noise_part)
            bundles[node.node_id] = (perturbed + tracker_part, state.omega)

        # --- epidemic decryption (Alg. 3 l.8-10) ---------------------------
        key_shares = {
            i: self.keypair.shares[i % len(self.keypair.shares)] for i in node_ids
        }
        decryption = EpidemicDecryption(
            self.keypair.context, bundles, key_shares, backend=plane.backend
        )
        engine.setup(decryption)
        for _ in range(10 * self.exchanges):
            engine.run_cycle(decryption)
            if decryption.all_done(engine.nodes):
                break

        # --- decode (Alg. 3 l.10-11) ---------------------------------------
        output = ComputationOutput(self.noise_plan.k, self.noise_plan.series_length)
        stride = self.noise_plan.series_length + 1
        for node in engine.nodes:
            if not decryption.is_done(node):
                # A node that never collected τ key-shares (isolated by
                # churn or a partition for the whole window) holds no
                # decrypted result — it reports nothing, exactly like the
                # vectorized step's holders mask.
                continue
            plaintexts, omega = decryption.plaintexts_of(node)
            if omega <= 0:
                continue
            values = plane.decode_sums(plaintexts, dims, bias_terms=2)
            values /= float(omega)  # σ/ω — the epidemic sum estimate
            correction_entry = dissemination.value_of(node)
            if correction_entry is not None:
                values -= correction_entry[1]
            grid = values.reshape(self.noise_plan.k, stride)
            output.sums[node.node_id] = grid[:, :-1]
            output.counts[node.node_id] = grid[:, -1]
        return output


class VectorizedComputationStep:
    """Algorithm 3 over the struct-of-arrays plane (mock-homomorphic).

    Executes the same four phases as :class:`ComputationStep` — epidemic
    encrypted means, epidemic noise, min-id surplus correction, epidemic
    decryption — but as whole-population array operations on the integer
    plane (``E(a) = a``), which is what makes 10⁵–10⁶ participants
    affordable.  Semantic deltas versus the object step, all documented and
    all validated or bounded:

    * means and noise are summed *before* the gossip instead of
      homomorphically after it — EESum is linear, so the converged result
      is identical (the object step itself relies on the same linearity
      when it rides both vectors on one exchange stream);
    * the cleartext counter ``ctr`` travels as one extra column of the
      EESum matrix (push–pull averaging and Alg. 2's delayed division are
      the same rule, App. C.2.1);
    * the min-id dissemination gossips identifiers and resolves payloads by
      identifier at decode time (exact — an identifier uniquely names its
      proposal);
    * the decryption phase models the share-collection latency
      (:class:`VectorizedShareCollection`); the mock plane's "decryption"
      itself is the identity.

    Decoding every node at 10⁶ × k·(n+1) would be pure waste; the step
    decodes the canonical node plus an ``agreement_sample`` of nodes so
    :meth:`ComputationOutput.agreement` still measures the epidemic spread.
    """

    def __init__(
        self,
        noise_plan: NoisePlan,
        exchanges: int,
        threshold: int,
        noise_rng: np.random.Generator,
        fractional_bits: int = 24,
        agreement_sample: int = 64,
    ) -> None:
        if exchanges < 1:
            raise ValueError("exchanges must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.noise_plan = noise_plan
        self.exchanges = exchanges
        self.threshold = threshold
        self.noise_rng = noise_rng
        self.fractional_bits = fractional_bits
        self.agreement_sample = agreement_sample

    def run(
        self,
        engine: VectorizedGossipEngine,
        mean_matrix: np.ndarray,
    ) -> ComputationOutput:
        """Execute the computation step for the whole population at once.

        ``mean_matrix`` is the ``population × k·(n+1)`` cleartext Diptych
        initialization (Alg. 1 l.6): each row is one participant's flattened
        means vector.  It is quantized to the fixed-point grid here, exactly
        as encryption would quantize it.
        """
        plan = self.noise_plan
        population = engine.population
        dims = plan.dimensions
        if mean_matrix.shape != (population, dims):
            raise ValueError(
                f"mean_matrix must be {(population, dims)}, got {mean_matrix.shape}"
            )

        # --- local noise-share generation (Alg. 3 l.4) -------------------
        shares = plan.draw_shares(self.noise_rng, population)

        # --- background epidemic sums (Alg. 3 l.2 & l.5) -----------------
        # Means and noise are quantized separately (matching the two
        # independent encryptions, same round-half-even as
        # ``quantize_to_grid``) and summed up front; the counter rides as
        # one extra column.  Everything is staged in ONE preallocated
        # (population, dims + 1) buffer handed to the EESum without a copy
        # — the payload matrix is the dominant allocation at 10⁵–10⁶ nodes.
        scale = float(1 << self.fractional_bits)
        payload = np.empty((population, dims + 1))
        body = payload[:, :dims]
        np.multiply(mean_matrix, scale, out=body)
        np.round(body, out=body)
        shares *= scale
        np.round(shares, out=shares)
        body += shares
        body /= scale
        del shares
        payload[:, -1] = 1.0
        eesum = VectorizedEESum(payload, copy=False)
        del payload, body
        # One object-engine cycle yields ~2 exchange participations per node
        # (every online node initiates once and is contacted ~once); one
        # pairing cycle yields ~1.  The paper's n_e budget is *per-node
        # exchanges*, so the pairing plane runs twice the cycles.
        cycles = 2 * self.exchanges
        engine.run_cycles(cycles, eesum)

        # --- epidemic noise correction (Alg. 3 l.6) ----------------------
        holders = eesum.omega > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            ctr_estimates = np.where(
                holders, eesum.values[:, -1] / eesum.omega, np.nan
            )
        proposal_ids = np.full(population, VectorizedMinId.NO_PROPOSAL, dtype=np.int64)
        n_holders = int(holders.sum())
        if n_holders:
            proposal_ids[holders] = engine.rng.integers(
                0, 1 << 62, size=n_holders, dtype=np.int64
            )
        dissemination = VectorizedMinId(proposal_ids)
        engine.run_cycles(cycles, dissemination)

        # --- epidemic decryption collection (Alg. 3 l.8-10) ---------------
        collection = VectorizedShareCollection(population, self.threshold)
        for _ in range(10 * cycles):
            engine.run_cycle(collection)
            if collection.all_done():
                break

        # --- decode (Alg. 3 l.10-11) ---------------------------------------
        output = ComputationOutput(plan.k, plan.series_length)
        sample = np.flatnonzero(holders)[: self.agreement_sample]
        if len(sample) == 0:
            return output
        # Correction payloads, materialized lazily per surviving identifier
        # (the winner's everywhere after a converged dissemination).  The
        # proposer of an identifier is resolved by a numpy scan — only one
        # or two distinct identifiers survive, so no per-node Python
        # structure is ever built.
        corrections: dict[int, np.ndarray] = {}
        stride = plan.series_length + 1
        for node in sample:
            values = eesum.values[node, :-1] / eesum.omega[node]
            final_id = int(dissemination.ids[node])
            if final_id != VectorizedMinId.NO_PROPOSAL:
                if final_id not in corrections:
                    proposer = int(np.flatnonzero(proposal_ids == final_id)[0])
                    contributors = int(round(float(ctr_estimates[proposer])))
                    corrections[final_id] = plan.correction(
                        contributors, self.noise_rng
                    )
                values = values - corrections[final_id]
            grid = values.reshape(plan.k, stride)
            output.sums[int(node)] = grid[:, :-1]
            output.counts[int(node)] = grid[:, -1]
        return output


class VectorizedCryptoComputationStep:
    """Algorithm 3 over the struct-of-arrays plane with *real* ciphertexts.

    The missing quadrant: the vectorized engine's scaling with the object
    plane's genuine Damgård–Jurik crypto.  Each node's quantized
    means+noise payload is packed (:class:`~repro.crypto.encoding.
    PackedCodec` striping — one ciphertext amortizes ``slots`` counter
    values) and encrypted once; every gossip round's homomorphic work then
    runs as whole-round batches through a :class:`~repro.gossip.
    cipher_array.CipherEESum`; decryption is real Shoup threshold
    decryption of a decode sample, fused across the batch
    (:func:`~repro.crypto.threshold.combine_partial_decryptions_batch`).

    **Mock parity.**  The step consumes ``noise_rng`` and the engine's RNG
    in *exactly* the sequence :class:`VectorizedComputationStep` does, the
    clear ω/ctr side mirrors the mock's float operations, and the decoded
    integers divide back to the very dyadic floats the mock plane carries
    — so decoded per-iteration results are bit-identical to a mock run of
    the same seed (pinned by the shadow-identity tests).  The correction
    materialization walks the same ``agreement_sample`` window as the mock
    (RNG parity); only the first ``decode_sample`` nodes of that window
    pay real decryption.

    **Keypair.**  Decryption uses the first ``threshold`` dealer shares
    (the committee).  Decoded plaintexts are keypair-independent, so a
    committee-sized keypair (``n_shares`` capped far below the population
    — ``Δ = n_shares!`` must stay small) changes nothing downstream.

    Wall-clock spent inside crypto batch calls accumulates in
    ``crypto_seconds`` for the ``crypto_ms`` telemetry split.
    """

    def __init__(
        self,
        keypair: ThresholdKeypair,
        packed: PackedCodec,
        noise_plan: NoisePlan,
        exchanges: int,
        threshold: int,
        crypto_rng: random.Random,
        noise_rng: np.random.Generator,
        backend: CryptoBackend | None = None,
        fractional_bits: int = 24,
        agreement_sample: int = 64,
        decode_sample: int = 8,
    ) -> None:
        if exchanges < 1:
            raise ValueError("exchanges must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if packed.fractional_bits != fractional_bits:
            raise ValueError(
                "packed codec and step must agree on fractional_bits"
            )
        self.keypair = keypair
        self.packed = packed
        self.noise_plan = noise_plan
        self.exchanges = exchanges
        self.threshold = threshold
        self.crypto_rng = crypto_rng
        self.noise_rng = noise_rng
        self.backend = backend or SerialBackend()
        self.fractional_bits = fractional_bits
        self.agreement_sample = agreement_sample
        self.decode_sample = decode_sample
        self.crypto_seconds = 0.0

    def run(
        self,
        engine: VectorizedGossipEngine,
        mean_matrix: np.ndarray,
    ) -> ComputationOutput:
        """Execute the computation step for the whole population at once.

        Same contract as :meth:`VectorizedComputationStep.run`; the
        ``population × k·(n+1)`` cleartext matrix is quantized, packed and
        encrypted here (Alg. 1 l.6 / Alg. 3 l.4 in one pass).
        """
        plan = self.noise_plan
        population = engine.population
        dims = plan.dimensions
        if mean_matrix.shape != (population, dims):
            raise ValueError(
                f"mean_matrix must be {(population, dims)}, got {mean_matrix.shape}"
            )

        # --- local noise-share generation (Alg. 3 l.4) -------------------
        shares = plan.draw_shares(self.noise_rng, population)

        # --- quantize + pack + encrypt -----------------------------------
        # Operation-for-operation the mock step's staging (means and noise
        # quantized separately, summed on the fixed-point grid), so the
        # floats — and hence the packed integers — match a mock run bit
        # for bit.  The counter column stays cleartext (the object plane's
        # EpidemicSum is cleartext too); CipherEESum carries it.
        scale = float(1 << self.fractional_bits)
        body = np.empty((population, dims))
        np.multiply(mean_matrix, scale, out=body)
        np.round(body, out=body)
        shares *= scale
        np.round(shares, out=shares)
        body += shares
        body /= scale
        del shares
        packed = self.packed
        width = packed.packed_length(dims) + 1  # payload stripes + tracker
        flat_plaintexts: list[int] = []
        for node in range(population):
            flat_plaintexts.extend(packed.pack(body[node]))
            flat_plaintexts.append(1)  # tracker E(1): the coefficient total
        del body
        started = time.perf_counter()
        ciphertexts = self.backend.encrypt_batch(
            self.keypair.public, flat_plaintexts, self.crypto_rng
        )
        self.crypto_seconds += time.perf_counter() - started
        del flat_plaintexts
        rows = [
            ciphertexts[i * width : (i + 1) * width] for i in range(population)
        ]
        del ciphertexts

        # --- background epidemic sums (Alg. 3 l.2 & l.5) -----------------
        eesum = CipherEESum(
            self.keypair.public, rows, backend=self.backend
        )
        del rows
        cycles = 2 * self.exchanges  # per-node exchange budget, as the mock
        engine.run_cycles(cycles, eesum)

        # --- epidemic noise correction (Alg. 3 l.6) ----------------------
        holders = eesum.omega > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            ctr_estimates = np.where(holders, eesum.ctr / eesum.omega, np.nan)
        proposal_ids = np.full(
            population, VectorizedMinId.NO_PROPOSAL, dtype=np.int64
        )
        n_holders = int(holders.sum())
        if n_holders:
            proposal_ids[holders] = engine.rng.integers(
                0, 1 << 62, size=n_holders, dtype=np.int64
            )
        dissemination = VectorizedMinId(proposal_ids)
        engine.run_cycles(cycles, dissemination)

        # --- epidemic decryption collection (Alg. 3 l.8-10) ---------------
        collection = VectorizedShareCollection(population, self.threshold)
        for _ in range(10 * cycles):
            engine.run_cycle(collection)
            if collection.all_done():
                break

        # --- real threshold decryption of the decode sample ----------------
        output = ComputationOutput(plan.k, plan.series_length)
        sample = np.flatnonzero(holders)[: self.agreement_sample]
        if len(sample) == 0:
            return output
        decode_nodes = sample[: max(1, self.decode_sample)]
        context = self.keypair.context
        committee = self.keypair.shares[: context.threshold]
        flat = [c for node in decode_nodes for c in eesum.row(node)]
        started = time.perf_counter()
        partials = {
            share.index: self.backend.partial_decrypt_batch(
                context, share, flat
            )
            for share in committee
        }
        plaintexts = combine_partial_decryptions_batch(context, partials)
        self.crypto_seconds += time.perf_counter() - started

        decoded: dict[int, np.ndarray] = {}
        for slot, node in enumerate(decode_nodes):
            node_plain = plaintexts[slot * width : (slot + 1) * width]
            tracker = node_plain[-1]  # C = 2^count, exact
            ints = packed.unpack_integers(
                node_plain[:-1], dims, bias_multiplier=tracker
            )
            # V = σ·2^{count+f} exactly; int/int true division is correctly
            # rounded, so in the dyadic regime the floats are the mock's.
            shift = 1 << (int(eesum.count[node]) + self.fractional_bits)
            values = np.array([v / shift for v in ints], dtype=float)
            decoded[int(node)] = values / eesum.omega[node]

        # --- decode (Alg. 3 l.10-11) ---------------------------------------
        # The correction walk covers the full mock-sized sample so the
        # noise_rng stream advances identically whether or not a node was
        # actually decrypted.
        corrections: dict[int, np.ndarray] = {}
        stride = plan.series_length + 1
        for node in sample:
            final_id = int(dissemination.ids[node])
            correction = None
            if final_id != VectorizedMinId.NO_PROPOSAL:
                if final_id not in corrections:
                    proposer = int(np.flatnonzero(proposal_ids == final_id)[0])
                    contributors = int(round(float(ctr_estimates[proposer])))
                    corrections[final_id] = plan.correction(
                        contributors, self.noise_rng
                    )
                correction = corrections[final_id]
            values = decoded.get(int(node))
            if values is None:
                continue
            if correction is not None:
                values = values - correction
            grid = values.reshape(plan.k, stride)
            output.sums[int(node)] = grid[:, :-1]
            output.counts[int(node)] = grid[:, -1]
        self.crypto_seconds += eesum.crypto_seconds
        return output
