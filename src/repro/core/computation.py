"""The computation step (Algorithm 3) over the gossip engine.

One instance executes, for a single k-means iteration:

1. **Epidemic computation of the encrypted means** — the EESum protocol
   over every participant's flattened ``k·(n+1)`` ciphertext vector;
2. **Epidemic noise generation** — the noise-share EESum (carried in the
   *same* exchange stream so scales stay aligned), the cleartext epidemic
   counter ``ctr``, and the min-identifier surplus-correction
   dissemination;
3. **Encrypted perturbation** — homomorphic addition of the converged
   noise to the converged means;
4. **Epidemic decryption** — the threshold protocol of Sec. 4.2.3.

The correction vector is public, data-independent material (it travels in
clear with its identifier); we subtract it right after decryption instead
of homomorphically re-encoding it beforehand — arithmetically identical
and noted in DESIGN.md.

The output is per-node: each participant ends the step with its own decoded
``(sums, counts)`` per cluster; Theorem 1's correctness shows these agree
across nodes up to the epidemic approximation error, and the integration
tests measure exactly that agreement.
"""

from __future__ import annotations

import random

import numpy as np

from ..crypto.backend import CryptoBackend
from ..crypto.damgard_jurik import homomorphic_add_batch
from ..crypto.encoding import FixedPointCodec
from ..crypto.threshold import ThresholdKeypair
from ..gossip.aggregation import EpidemicSum
from ..gossip.decryption import EpidemicDecryption, VectorizedShareCollection
from ..gossip.dissemination import MinIdDissemination, VectorizedMinId
from ..gossip.eesum import EESum, VectorizedEESum
from ..gossip.engine import GossipEngine
from ..gossip.vectorized_protocol import VectorizedGossipEngine
from .batching import CiphertextPlane, ScalarPlane
from .noise import NoisePlan

__all__ = ["ComputationStep", "ComputationOutput", "VectorizedComputationStep"]


class ComputationOutput:
    """Per-node decoded aggregates after one computation step."""

    def __init__(self, k: int, series_length: int) -> None:
        self.k = k
        self.series_length = series_length
        self.sums: dict[int, np.ndarray] = {}  # node id → (k, n)
        self.counts: dict[int, np.ndarray] = {}  # node id → (k,)

    def perturbed_means(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(means, counts) for a node; lost clusters carry non-positive counts."""
        sums = self.sums[node_id]
        counts = self.counts[node_id]
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts[:, None]
        return means, counts

    def agreement(self) -> float:
        """Max pairwise relative disagreement of the decoded sums (diagnostic)."""
        stacked = np.array([self.sums[i] for i in sorted(self.sums)])
        spread = stacked.max(axis=0) - stacked.min(axis=0)
        magnitude = np.abs(stacked).max(axis=0) + 1e-12
        return float((spread / magnitude).max())


class ComputationStep:
    """Algorithm 3, parameterized by the crypto material and epidemic knobs.

    ``plane`` selects the ciphertext representation (scalar vs packed —
    see :mod:`repro.core.batching`); every bulk crypto operation goes
    through the plane's backend as a batch.  The supplied ``mean_vectors``
    must be laid out by the *same* plane (``Participant`` takes one).
    When ``plane`` is omitted a scalar plane over ``codec`` is built,
    preserving the seed implementation's one-ciphertext-per-value wire
    format.
    """

    def __init__(
        self,
        keypair: ThresholdKeypair,
        codec: FixedPointCodec,
        noise_plan: NoisePlan,
        exchanges: int,
        crypto_rng: random.Random,
        noise_rng: np.random.Generator,
        plane: CiphertextPlane | None = None,
        backend: CryptoBackend | None = None,
    ) -> None:
        self.keypair = keypair
        self.codec = codec
        self.noise_plan = noise_plan
        self.exchanges = exchanges
        self.crypto_rng = crypto_rng
        self.noise_rng = noise_rng
        if plane is not None and backend is not None:
            raise ValueError(
                "pass either plane or backend, not both — a plane carries "
                "its own backend"
            )
        self.plane = plane or ScalarPlane(keypair.public, codec, backend)

    def run(
        self,
        engine: GossipEngine,
        mean_vectors: dict[int, list[int]],
    ) -> ComputationOutput:
        """Execute the computation step for every node of ``engine``.

        ``mean_vectors`` maps node id → flattened encrypted means (the
        Alg. 1 l.6 initialization): ``k·(n+1)`` ciphertexts on the scalar
        plane, ``packed_length(k·(n+1))`` on the packed plane.
        """
        public = self.keypair.public
        plane = self.plane
        node_ids = [node.node_id for node in engine.nodes]
        dims = self.noise_plan.dimensions
        payload = plane.packed_length(dims)

        # --- local noise-share generation (Alg. 3 l.4) -------------------
        shares = {i: self.noise_plan.draw_share(self.noise_rng) for i in node_ids}
        noise_vectors = {
            i: plane.encrypt_values(shares[i], self.crypto_rng) for i in node_ids
        }

        # --- background epidemic sums (Alg. 3 l.2 & l.5) -----------------
        # Means and noise ride the same EESum instance so their delayed-
        # division scales stay aligned; the cleartext counter gossips on
        # the same exchange stream.  On the packed plane one tracker
        # ciphertext E(1) per node rides along too: it converges to the
        # EESum coefficient total C, which exact unpacking needs.
        combined = {
            i: mean_vectors[i]
            + noise_vectors[i]
            + plane.tracker_ciphertexts(self.crypto_rng)
            for i in node_ids
        }
        eesum = EESum(public, combined)
        counter = EpidemicSum({i: np.array([1.0]) for i in node_ids})
        engine.setup(eesum, counter)
        engine.run_cycles(self.exchanges, eesum, counter)

        # --- epidemic noise correction (Alg. 3 l.6) ----------------------
        proposals: dict[int, tuple[int, np.ndarray]] = {}
        for node in engine.nodes:
            estimate = counter.estimate(node)
            if estimate is None:
                continue
            contributors = int(round(float(estimate[0])))
            correction = self.noise_plan.correction(contributors, self.noise_rng)
            proposals[node.node_id] = (self.crypto_rng.getrandbits(63), correction)
        dissemination = MinIdDissemination(proposals)
        engine.setup(dissemination)
        engine.run_cycles(self.exchanges, dissemination)

        # --- encrypted perturbation (Alg. 3 l.7) --------------------------
        # Batched: one element-wise homomorphic add of the means half and
        # the noise half; the tracker (if any) passes through untouched.
        bundles: dict[int, tuple[list[int], int]] = {}
        for node in engine.nodes:
            state = eesum.state_of(node)
            means_part = state.ciphertexts[:payload]
            noise_part = state.ciphertexts[payload : 2 * payload]
            tracker_part = state.ciphertexts[2 * payload :]
            perturbed = homomorphic_add_batch(public, means_part, noise_part)
            bundles[node.node_id] = (perturbed + tracker_part, state.omega)

        # --- epidemic decryption (Alg. 3 l.8-10) ---------------------------
        key_shares = {
            i: self.keypair.shares[i % len(self.keypair.shares)] for i in node_ids
        }
        decryption = EpidemicDecryption(
            self.keypair.context, bundles, key_shares, backend=plane.backend
        )
        engine.setup(decryption)
        for _ in range(10 * self.exchanges):
            engine.run_cycle(decryption)
            if decryption.all_done(engine.nodes):
                break

        # --- decode (Alg. 3 l.10-11) ---------------------------------------
        output = ComputationOutput(self.noise_plan.k, self.noise_plan.series_length)
        stride = self.noise_plan.series_length + 1
        for node in engine.nodes:
            if not decryption.is_done(node):
                # A node that never collected τ key-shares (isolated by
                # churn or a partition for the whole window) holds no
                # decrypted result — it reports nothing, exactly like the
                # vectorized step's holders mask.
                continue
            plaintexts, omega = decryption.plaintexts_of(node)
            if omega <= 0:
                continue
            values = plane.decode_sums(plaintexts, dims, bias_terms=2)
            values /= float(omega)  # σ/ω — the epidemic sum estimate
            correction_entry = dissemination.value_of(node)
            if correction_entry is not None:
                values -= correction_entry[1]
            grid = values.reshape(self.noise_plan.k, stride)
            output.sums[node.node_id] = grid[:, :-1]
            output.counts[node.node_id] = grid[:, -1]
        return output


class VectorizedComputationStep:
    """Algorithm 3 over the struct-of-arrays plane (mock-homomorphic).

    Executes the same four phases as :class:`ComputationStep` — epidemic
    encrypted means, epidemic noise, min-id surplus correction, epidemic
    decryption — but as whole-population array operations on the integer
    plane (``E(a) = a``), which is what makes 10⁵–10⁶ participants
    affordable.  Semantic deltas versus the object step, all documented and
    all validated or bounded:

    * means and noise are summed *before* the gossip instead of
      homomorphically after it — EESum is linear, so the converged result
      is identical (the object step itself relies on the same linearity
      when it rides both vectors on one exchange stream);
    * the cleartext counter ``ctr`` travels as one extra column of the
      EESum matrix (push–pull averaging and Alg. 2's delayed division are
      the same rule, App. C.2.1);
    * the min-id dissemination gossips identifiers and resolves payloads by
      identifier at decode time (exact — an identifier uniquely names its
      proposal);
    * the decryption phase models the share-collection latency
      (:class:`VectorizedShareCollection`); the mock plane's "decryption"
      itself is the identity.

    Decoding every node at 10⁶ × k·(n+1) would be pure waste; the step
    decodes the canonical node plus an ``agreement_sample`` of nodes so
    :meth:`ComputationOutput.agreement` still measures the epidemic spread.
    """

    def __init__(
        self,
        noise_plan: NoisePlan,
        exchanges: int,
        threshold: int,
        noise_rng: np.random.Generator,
        fractional_bits: int = 24,
        agreement_sample: int = 64,
    ) -> None:
        if exchanges < 1:
            raise ValueError("exchanges must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.noise_plan = noise_plan
        self.exchanges = exchanges
        self.threshold = threshold
        self.noise_rng = noise_rng
        self.fractional_bits = fractional_bits
        self.agreement_sample = agreement_sample

    def run(
        self,
        engine: VectorizedGossipEngine,
        mean_matrix: np.ndarray,
    ) -> ComputationOutput:
        """Execute the computation step for the whole population at once.

        ``mean_matrix`` is the ``population × k·(n+1)`` cleartext Diptych
        initialization (Alg. 1 l.6): each row is one participant's flattened
        means vector.  It is quantized to the fixed-point grid here, exactly
        as encryption would quantize it.
        """
        plan = self.noise_plan
        population = engine.population
        dims = plan.dimensions
        if mean_matrix.shape != (population, dims):
            raise ValueError(
                f"mean_matrix must be {(population, dims)}, got {mean_matrix.shape}"
            )

        # --- local noise-share generation (Alg. 3 l.4) -------------------
        shares = plan.draw_shares(self.noise_rng, population)

        # --- background epidemic sums (Alg. 3 l.2 & l.5) -----------------
        # Means and noise are quantized separately (matching the two
        # independent encryptions, same round-half-even as
        # ``quantize_to_grid``) and summed up front; the counter rides as
        # one extra column.  Everything is staged in ONE preallocated
        # (population, dims + 1) buffer handed to the EESum without a copy
        # — the payload matrix is the dominant allocation at 10⁵–10⁶ nodes.
        scale = float(1 << self.fractional_bits)
        payload = np.empty((population, dims + 1))
        body = payload[:, :dims]
        np.multiply(mean_matrix, scale, out=body)
        np.round(body, out=body)
        shares *= scale
        np.round(shares, out=shares)
        body += shares
        body /= scale
        del shares
        payload[:, -1] = 1.0
        eesum = VectorizedEESum(payload, copy=False)
        del payload, body
        # One object-engine cycle yields ~2 exchange participations per node
        # (every online node initiates once and is contacted ~once); one
        # pairing cycle yields ~1.  The paper's n_e budget is *per-node
        # exchanges*, so the pairing plane runs twice the cycles.
        cycles = 2 * self.exchanges
        engine.run_cycles(cycles, eesum)

        # --- epidemic noise correction (Alg. 3 l.6) ----------------------
        holders = eesum.omega > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            ctr_estimates = np.where(
                holders, eesum.values[:, -1] / eesum.omega, np.nan
            )
        proposal_ids = np.full(population, VectorizedMinId.NO_PROPOSAL, dtype=np.int64)
        n_holders = int(holders.sum())
        if n_holders:
            proposal_ids[holders] = engine.rng.integers(
                0, 1 << 62, size=n_holders, dtype=np.int64
            )
        dissemination = VectorizedMinId(proposal_ids)
        engine.run_cycles(cycles, dissemination)

        # --- epidemic decryption collection (Alg. 3 l.8-10) ---------------
        collection = VectorizedShareCollection(population, self.threshold)
        for _ in range(10 * cycles):
            engine.run_cycle(collection)
            if collection.all_done():
                break

        # --- decode (Alg. 3 l.10-11) ---------------------------------------
        output = ComputationOutput(plan.k, plan.series_length)
        sample = np.flatnonzero(holders)[: self.agreement_sample]
        if len(sample) == 0:
            return output
        # Correction payloads, materialized lazily per surviving identifier
        # (the winner's everywhere after a converged dissemination).  The
        # proposer of an identifier is resolved by a numpy scan — only one
        # or two distinct identifiers survive, so no per-node Python
        # structure is ever built.
        corrections: dict[int, np.ndarray] = {}
        stride = plan.series_length + 1
        for node in sample:
            values = eesum.values[node, :-1] / eesum.omega[node]
            final_id = int(dissemination.ids[node])
            if final_id != VectorizedMinId.NO_PROPOSAL:
                if final_id not in corrections:
                    proposer = int(np.flatnonzero(proposal_ids == final_id)[0])
                    contributors = int(round(float(ctr_estimates[proposer])))
                    corrections[final_id] = plan.correction(
                        contributors, self.noise_rng
                    )
                values = values - corrections[final_id]
            grid = values.reshape(plan.k, stride)
            output.sums[int(node)] = grid[:, :-1]
            output.counts[int(node)] = grid[:, -1]
        return output
