"""The computation step (Algorithm 3) over the gossip engine.

One instance executes, for a single k-means iteration:

1. **Epidemic computation of the encrypted means** — the EESum protocol
   over every participant's flattened ``k·(n+1)`` ciphertext vector;
2. **Epidemic noise generation** — the noise-share EESum (carried in the
   *same* exchange stream so scales stay aligned), the cleartext epidemic
   counter ``ctr``, and the min-identifier surplus-correction
   dissemination;
3. **Encrypted perturbation** — homomorphic addition of the converged
   noise to the converged means;
4. **Epidemic decryption** — the threshold protocol of Sec. 4.2.3.

The correction vector is public, data-independent material (it travels in
clear with its identifier); we subtract it right after decryption instead
of homomorphically re-encoding it beforehand — arithmetically identical
and noted in DESIGN.md.

The output is per-node: each participant ends the step with its own decoded
``(sums, counts)`` per cluster; Theorem 1's correctness shows these agree
across nodes up to the epidemic approximation error, and the integration
tests measure exactly that agreement.
"""

from __future__ import annotations

import random

import numpy as np

from ..crypto.backend import CryptoBackend
from ..crypto.damgard_jurik import homomorphic_add_batch
from ..crypto.encoding import FixedPointCodec
from ..crypto.threshold import ThresholdKeypair
from ..gossip.aggregation import EpidemicSum
from ..gossip.decryption import EpidemicDecryption
from ..gossip.dissemination import MinIdDissemination
from ..gossip.eesum import EESum
from ..gossip.engine import GossipEngine
from .batching import CiphertextPlane, ScalarPlane
from .noise import NoisePlan

__all__ = ["ComputationStep", "ComputationOutput"]


class ComputationOutput:
    """Per-node decoded aggregates after one computation step."""

    def __init__(self, k: int, series_length: int) -> None:
        self.k = k
        self.series_length = series_length
        self.sums: dict[int, np.ndarray] = {}  # node id → (k, n)
        self.counts: dict[int, np.ndarray] = {}  # node id → (k,)

    def perturbed_means(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(means, counts) for a node; lost clusters carry non-positive counts."""
        sums = self.sums[node_id]
        counts = self.counts[node_id]
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts[:, None]
        return means, counts

    def agreement(self) -> float:
        """Max pairwise relative disagreement of the decoded sums (diagnostic)."""
        stacked = np.array([self.sums[i] for i in sorted(self.sums)])
        spread = stacked.max(axis=0) - stacked.min(axis=0)
        magnitude = np.abs(stacked).max(axis=0) + 1e-12
        return float((spread / magnitude).max())


class ComputationStep:
    """Algorithm 3, parameterized by the crypto material and epidemic knobs.

    ``plane`` selects the ciphertext representation (scalar vs packed —
    see :mod:`repro.core.batching`); every bulk crypto operation goes
    through the plane's backend as a batch.  The supplied ``mean_vectors``
    must be laid out by the *same* plane (``Participant`` takes one).
    When ``plane`` is omitted a scalar plane over ``codec`` is built,
    preserving the seed implementation's one-ciphertext-per-value wire
    format.
    """

    def __init__(
        self,
        keypair: ThresholdKeypair,
        codec: FixedPointCodec,
        noise_plan: NoisePlan,
        exchanges: int,
        crypto_rng: random.Random,
        noise_rng: np.random.Generator,
        plane: CiphertextPlane | None = None,
        backend: CryptoBackend | None = None,
    ) -> None:
        self.keypair = keypair
        self.codec = codec
        self.noise_plan = noise_plan
        self.exchanges = exchanges
        self.crypto_rng = crypto_rng
        self.noise_rng = noise_rng
        if plane is not None and backend is not None:
            raise ValueError(
                "pass either plane or backend, not both — a plane carries "
                "its own backend"
            )
        self.plane = plane or ScalarPlane(keypair.public, codec, backend)

    def run(
        self,
        engine: GossipEngine,
        mean_vectors: dict[int, list[int]],
    ) -> ComputationOutput:
        """Execute the computation step for every node of ``engine``.

        ``mean_vectors`` maps node id → flattened encrypted means (the
        Alg. 1 l.6 initialization): ``k·(n+1)`` ciphertexts on the scalar
        plane, ``packed_length(k·(n+1))`` on the packed plane.
        """
        public = self.keypair.public
        plane = self.plane
        node_ids = [node.node_id for node in engine.nodes]
        dims = self.noise_plan.dimensions
        payload = plane.packed_length(dims)

        # --- local noise-share generation (Alg. 3 l.4) -------------------
        shares = {i: self.noise_plan.draw_share(self.noise_rng) for i in node_ids}
        noise_vectors = {
            i: plane.encrypt_values(shares[i], self.crypto_rng) for i in node_ids
        }

        # --- background epidemic sums (Alg. 3 l.2 & l.5) -----------------
        # Means and noise ride the same EESum instance so their delayed-
        # division scales stay aligned; the cleartext counter gossips on
        # the same exchange stream.  On the packed plane one tracker
        # ciphertext E(1) per node rides along too: it converges to the
        # EESum coefficient total C, which exact unpacking needs.
        combined = {
            i: mean_vectors[i]
            + noise_vectors[i]
            + plane.tracker_ciphertexts(self.crypto_rng)
            for i in node_ids
        }
        eesum = EESum(public, combined)
        counter = EpidemicSum({i: np.array([1.0]) for i in node_ids})
        engine.setup(eesum, counter)
        engine.run_cycles(self.exchanges, eesum, counter)

        # --- epidemic noise correction (Alg. 3 l.6) ----------------------
        proposals: dict[int, tuple[int, np.ndarray]] = {}
        for node in engine.nodes:
            estimate = counter.estimate(node)
            if estimate is None:
                continue
            contributors = int(round(float(estimate[0])))
            correction = self.noise_plan.correction(contributors, self.noise_rng)
            proposals[node.node_id] = (self.crypto_rng.getrandbits(63), correction)
        dissemination = MinIdDissemination(proposals)
        engine.setup(dissemination)
        engine.run_cycles(self.exchanges, dissemination)

        # --- encrypted perturbation (Alg. 3 l.7) --------------------------
        # Batched: one element-wise homomorphic add of the means half and
        # the noise half; the tracker (if any) passes through untouched.
        bundles: dict[int, tuple[list[int], int]] = {}
        for node in engine.nodes:
            state = eesum.state_of(node)
            means_part = state.ciphertexts[:payload]
            noise_part = state.ciphertexts[payload : 2 * payload]
            tracker_part = state.ciphertexts[2 * payload :]
            perturbed = homomorphic_add_batch(public, means_part, noise_part)
            bundles[node.node_id] = (perturbed + tracker_part, state.omega)

        # --- epidemic decryption (Alg. 3 l.8-10) ---------------------------
        key_shares = {
            i: self.keypair.shares[i % len(self.keypair.shares)] for i in node_ids
        }
        decryption = EpidemicDecryption(
            self.keypair.context, bundles, key_shares, backend=plane.backend
        )
        engine.setup(decryption)
        for _ in range(10 * self.exchanges):
            engine.run_cycle(decryption)
            if decryption.all_done(engine.nodes):
                break

        # --- decode (Alg. 3 l.10-11) ---------------------------------------
        output = ComputationOutput(self.noise_plan.k, self.noise_plan.series_length)
        stride = self.noise_plan.series_length + 1
        for node in engine.nodes:
            plaintexts, omega = decryption.plaintexts_of(node)
            if omega <= 0:
                continue
            values = plane.decode_sums(plaintexts, dims, bias_terms=2)
            values /= float(omega)  # σ/ω — the epidemic sum estimate
            correction_entry = dissemination.value_of(node)
            if correction_entry is not None:
                values -= correction_entry[1]
            grid = values.reshape(self.noise_plan.k, stride)
            output.sums[node.node_id] = grid[:, :-1]
            output.counts[node.node_id] = grid[:, -1]
        return output
