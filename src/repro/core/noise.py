"""Epidemic noise generation — the participant-side half (Sec. 4.2.2).

Each iteration needs ``k·(n+1)`` Laplace random variables (one per mean
dimension plus one per count), generated so that **no single participant
knows the total noise**.  Participants draw *noise-shares* (Def. 5)
locally, encrypt them, and feed them to the same EESum stream as the means;
the surplus over the assumed ``n_ν`` contributors is cancelled by the
min-identifier correction (Lemma 3 guarantees the surplus itself never
endangers privacy).

This module packages the per-participant arithmetic: scale computation for
an iteration's budget slice, share generation, encryption, and the
correction proposal.
"""

from __future__ import annotations

import random

import numpy as np

from ..crypto.damgard_jurik import encrypt
from ..crypto.encoding import FixedPointCodec
from ..crypto.keys import PublicKey
from ..privacy.laplace import joint_sensitivity
from ..privacy.noise_shares import gen_noise_share, gen_noise_shares, surplus_correction

__all__ = ["NoisePlan", "encrypt_share_vector"]


class NoisePlan:
    """Everything one participant needs to perturb one iteration's Diptych.

    ``dimensions`` is ``k·(n+1)``; ``scale`` is the Laplace scale for the
    iteration's ε slice using the joint (sum, count) sensitivity.
    """

    def __init__(
        self,
        k: int,
        series_length: int,
        dmin: float,
        dmax: float,
        epsilon: float,
        n_nu: int,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if n_nu < 1:
            raise ValueError("n_nu must be >= 1")
        self.k = k
        self.series_length = series_length
        self.dimensions = k * (series_length + 1)
        self.scale = joint_sensitivity(series_length, dmin, dmax) / epsilon
        self.n_nu = n_nu

    def draw_share(self, rng: np.random.Generator) -> np.ndarray:
        """One participant's noise-share vector (Def. 5), length ``dimensions``."""
        return gen_noise_share(self.n_nu, self.scale, rng, size=self.dimensions)

    def draw_shares(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """All ``count`` participants' share vectors in one batch draw.

        The vectorized plane's entry point: a single ``(count, dimensions)``
        Gamma-difference sample instead of ``count`` per-participant draws.
        """
        return gen_noise_shares(count, self.n_nu, self.scale, rng, self.dimensions)

    def correction(self, contributors: int, rng: np.random.Generator) -> np.ndarray:
        """The surplus-correction proposal for an observed contributor count."""
        return surplus_correction(
            contributors, self.n_nu, self.scale, rng, self.dimensions
        )


def encrypt_share_vector(
    public: PublicKey,
    codec: FixedPointCodec,
    share: np.ndarray,
    rng: random.Random,
    randomizers: list[int] | None = None,
) -> list[int]:
    """Encode and encrypt a noise-share vector, one ciphertext per value.

    This is the scalar-plane reference path (kept for tests and the cost
    baseline); the computation step itself now routes noise encryption
    through its :class:`repro.core.batching.CiphertextPlane`, which batches
    the work over a backend and may pack several values per ciphertext.
    """
    pool = iter(randomizers) if randomizers is not None else None
    ciphertexts = []
    for value in np.asarray(share, dtype=float):
        randomizer = next(pool) if pool is not None else None
        ciphertexts.append(
            encrypt(public, codec.encode(float(value)), rng=rng, randomizer=randomizer)
        )
    return ciphertexts
