"""Small measurement helpers shared by the gossip experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LatencyFit", "fit_logarithmic", "fit_linear"]


@dataclass(frozen=True)
class LatencyFit:
    """A fitted latency model ``y = intercept + slope · f(x)``."""

    slope: float
    intercept: float
    transform: str  # "log" or "identity"

    def predict(self, x: float) -> float:
        """Evaluate the fitted model at ``x``."""
        value = math.log(x) if self.transform == "log" else x
        return self.intercept + self.slope * value


def fit_logarithmic(xs: list[float], ys: list[float]) -> LatencyFit:
    """Least-squares fit of ``y = a + b·ln(x)``.

    Used to extrapolate the Fig. 4(a) message counts to 10⁶ participants —
    the paper observes the logarithmic growth and extrapolates the same way.
    """
    return _fit([math.log(x) for x in xs], ys, "log")


def fit_linear(xs: list[float], ys: list[float]) -> LatencyFit:
    """Least-squares fit of ``y = a + b·x`` (Fig. 4(b)'s linear curves)."""
    return _fit(list(xs), ys, "identity")


def _fit(xs: list[float], ys: list[float], transform: str) -> LatencyFit:
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise ValueError("degenerate fit: all x equal")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    return LatencyFit(slope=slope, intercept=mean_y - slope * mean_x, transform=transform)
