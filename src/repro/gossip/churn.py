"""Churn models (Sec. 6.1.5).

The paper models churn as a uniform disconnection probability applied
(1) at each gossip exchange of the epidemic encrypted sum and (2) at each
perturbed k-means iteration.  The engine consumes (1) directly through its
``churn`` parameter; this module packages both knobs plus a convenience for
drawing per-iteration availability masks used by the quality plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChurnModel"]


@dataclass(frozen=True)
class ChurnModel:
    """Disconnection probabilities for the two churn surfaces of Sec. 6.1.5."""

    per_exchange: float = 0.0
    per_iteration: float = 0.0

    def __post_init__(self) -> None:
        for value in (self.per_exchange, self.per_iteration):
            if not 0.0 <= value < 1.0:
                raise ValueError("churn probabilities must be in [0, 1)")

    def exchange_mask(self, population: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean availability mask for one gossip cycle.

        The vectorized plane's analogue of the object engine's per-cycle
        online redraw: each node is offline for the cycle with probability
        ``per_exchange`` (churn surface (1) of Sec. 6.1.5).
        """
        if self.per_exchange == 0.0:
            return np.ones(population, dtype=bool)
        return rng.random(population) >= self.per_exchange

    def iteration_mask(self, population: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean availability mask for one k-means iteration.

        Guarantees at least one participant stays online (an empty
        population would be a different failure mode than churn).

        Zero churn takes the same draw-free fast path as
        :meth:`exchange_mask`: a churn-free run must not consume RNG
        stream, so it stays bit-identical to a run without a churn model.
        """
        if self.per_iteration == 0.0:
            return np.ones(population, dtype=bool)
        mask = rng.random(population) >= self.per_iteration
        if not mask.any():
            mask[rng.integers(population)] = True
        return mask
