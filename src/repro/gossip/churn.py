"""Churn models (Sec. 6.1.5).

The paper models churn as a uniform disconnection probability applied
(1) at each gossip exchange of the epidemic encrypted sum and (2) at each
perturbed k-means iteration.  The engine consumes (1) directly through its
``churn`` parameter; this module packages both knobs plus a convenience for
drawing per-iteration availability masks used by the quality plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BurstChurnProcess", "ChurnModel"]


@dataclass(frozen=True)
class ChurnModel:
    """Disconnection probabilities for the two churn surfaces of Sec. 6.1.5."""

    per_exchange: float = 0.0
    per_iteration: float = 0.0

    def __post_init__(self) -> None:
        for value in (self.per_exchange, self.per_iteration):
            if not 0.0 <= value < 1.0:
                raise ValueError("churn probabilities must be in [0, 1)")

    def exchange_mask(self, population: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean availability mask for one gossip cycle.

        The vectorized plane's analogue of the object engine's per-cycle
        online redraw: each node is offline for the cycle with probability
        ``per_exchange`` (churn surface (1) of Sec. 6.1.5).
        """
        if self.per_exchange == 0.0:
            return np.ones(population, dtype=bool)
        return rng.random(population) >= self.per_exchange

    def iteration_mask(self, population: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean availability mask for one k-means iteration.

        Guarantees at least one participant stays online (an empty
        population would be a different failure mode than churn).

        Zero churn takes the same draw-free fast path as
        :meth:`exchange_mask`: a churn-free run must not consume RNG
        stream, so it stays bit-identical to a run without a churn model.
        """
        if self.per_iteration == 0.0:
            return np.ones(population, dtype=bool)
        mask = rng.random(population) >= self.per_iteration
        if not mask.any():
            mask[rng.integers(population)] = True
        return mask


class BurstChurnProcess:
    """Correlated churn storms — bursts knocking out a whole node set at once.

    :class:`ChurnModel` draws disconnections i.i.d. per node per cycle; real
    deployments also see *correlated* outages (a cell tower, a power cut, a
    flash crowd) where a sizeable fraction vanishes together and stays gone
    for a while.  This process generalizes the Sec. 6.1.5 model: each cycle
    a storm starts with probability ``rate``; it takes a uniformly drawn
    ``magnitude`` fraction of the population offline for ``duration``
    consecutive cycles (the same set — that is the correlation).

    The process is stateful (a storm persists across :meth:`advance` calls)
    and consumes only the generator it is handed, so a caller owning a named
    RNG stream gets deterministic storms.
    """

    def __init__(self, rate: float, magnitude: float, duration: int) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if not 0.0 < magnitude <= 1.0:
            raise ValueError("magnitude must be in (0, 1]")
        if duration < 1:
            raise ValueError("duration must be >= 1 cycle")
        self.rate = float(rate)
        self.magnitude = float(magnitude)
        self.duration = int(duration)
        self._remaining = 0
        self._offline: np.ndarray | None = None

    @property
    def storming(self) -> bool:
        """Whether the last :meth:`advance` fell inside a storm."""
        return self._offline is not None

    def advance(self, population: int, rng: np.random.Generator) -> np.ndarray:
        """One cycle tick; returns the boolean offline mask for this cycle."""
        if self._offline is not None and self._remaining > 0:
            self._remaining -= 1
            return self._offline
        self._offline = None
        if self.rate and rng.random() < self.rate:
            size = min(population, max(1, int(round(self.magnitude * population))))
            offline = np.zeros(population, dtype=bool)
            offline[rng.choice(population, size=size, replace=False)] = True
            self._offline = offline
            self._remaining = self.duration - 1
            return offline
        return np.zeros(population, dtype=bool)
