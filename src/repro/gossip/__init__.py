"""Gossip substrate: cycle-driven engine (the Peersim substitution),
Newscast peer sampling, cleartext and encrypted epidemic sums, min-id
dissemination, epidemic threshold decryption, churn models, and the
vectorized large-population plane.
"""

from .aggregation import EpidemicSum
from .churn import ChurnModel
from .decryption import (
    DecryptionState,
    EpidemicDecryption,
    TokenDecryption,
    VectorizedShareCollection,
)
from .dissemination import MinIdDissemination, VectorizedMinId
from .eesum import (
    EESum,
    EESumState,
    HomomorphicOps,
    MockHomomorphicOps,
    VectorizedEESum,
)
from .engine import GossipEngine, Node
from .metrics import LatencyFit, fit_linear, fit_logarithmic
from .peer_sampling import NewscastView
from .vectorized import (
    PushPullSumSimulator,
    SumErrorTrace,
    dissemination_cycles,
    messages_to_reach_error,
    random_pairing,
    simulate_sum_error,
)
from .vectorized_protocol import VectorizedGossipEngine

__all__ = [
    "ChurnModel",
    "DecryptionState",
    "EESum",
    "EESumState",
    "EpidemicDecryption",
    "EpidemicSum",
    "GossipEngine",
    "HomomorphicOps",
    "LatencyFit",
    "MinIdDissemination",
    "MockHomomorphicOps",
    "NewscastView",
    "Node",
    "PushPullSumSimulator",
    "SumErrorTrace",
    "TokenDecryption",
    "VectorizedEESum",
    "VectorizedGossipEngine",
    "VectorizedMinId",
    "VectorizedShareCollection",
    "dissemination_cycles",
    "fit_linear",
    "fit_logarithmic",
    "messages_to_reach_error",
    "random_pairing",
    "simulate_sum_error",
]
