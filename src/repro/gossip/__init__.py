"""Gossip substrate: cycle-driven engine (the Peersim substitution),
Newscast peer sampling, cleartext and encrypted epidemic sums, min-id
dissemination, epidemic threshold decryption, churn models, and the
vectorized large-population plane.
"""

from .aggregation import EpidemicSum
from .churn import ChurnModel
from .decryption import DecryptionState, EpidemicDecryption, TokenDecryption
from .dissemination import MinIdDissemination
from .eesum import EESum, EESumState
from .engine import GossipEngine, Node
from .metrics import LatencyFit, fit_linear, fit_logarithmic
from .peer_sampling import NewscastView
from .vectorized import (
    PushPullSumSimulator,
    SumErrorTrace,
    dissemination_cycles,
    messages_to_reach_error,
    simulate_sum_error,
)

__all__ = [
    "ChurnModel",
    "DecryptionState",
    "EESum",
    "EESumState",
    "EpidemicDecryption",
    "EpidemicSum",
    "GossipEngine",
    "LatencyFit",
    "MinIdDissemination",
    "NewscastView",
    "Node",
    "PushPullSumSimulator",
    "SumErrorTrace",
    "TokenDecryption",
    "dissemination_cycles",
    "fit_linear",
    "fit_logarithmic",
    "messages_to_reach_error",
    "simulate_sum_error",
]
