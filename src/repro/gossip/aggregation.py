"""Cleartext epidemic aggregation (Sec. 3.2) — the Kempe et al. sum protocol.

Every node holds a local state ``(σ, ω)``; the update rule moves half of
each to the contact at every exchange, and ``σ/ω`` converges exponentially
fast to the global sum (one designated node starts with ``ω = 1``, all
others with ``ω = 0`` — footnote 5 of the paper).

This protocol is used directly for the cleartext *counter* of the noise
generation (the ``ctr`` of Alg. 3) and serves as the reference the
encrypted EESum is tested against (the Alg. 2 update rule is proved
arithmetically equivalent in App. C.2.1).
"""

from __future__ import annotations

import random

import numpy as np

from .engine import GossipProtocol, Node

__all__ = ["EpidemicSum"]

_STATE = "episum"


class EpidemicSum(GossipProtocol):
    """Push–pull averaging of a per-node vector; ``σ/ω`` estimates the sum.

    ``initial`` maps node id → initial vector (numpy array or float).  The
    node with id ``weight_holder`` starts with ω = 1.
    """

    def __init__(self, initial: dict[int, np.ndarray], weight_holder: int = 0) -> None:
        self.initial = initial
        self.weight_holder = weight_holder

    def setup(self, node: Node, rng: random.Random) -> None:
        value = np.asarray(self.initial.get(node.node_id, 0.0), dtype=float)
        node.state[_STATE] = {
            "sigma": value.copy(),
            "omega": 1.0 if node.node_id == self.weight_holder else 0.0,
        }

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        a = initiator.state[_STATE]
        b = contact.state[_STATE]
        sigma = (a["sigma"] + b["sigma"]) / 2.0
        omega = (a["omega"] + b["omega"]) / 2.0
        a["sigma"] = sigma.copy()
        b["sigma"] = sigma.copy()
        a["omega"] = omega
        b["omega"] = omega

    def estimate(self, node: Node) -> np.ndarray | None:
        """The node's local estimate ``σ/ω`` of the global sum (None if ω = 0)."""
        state = node.state[_STATE]
        if state["omega"] <= 0:
            return None
        return state["sigma"] / state["omega"]

    def max_relative_error(self, nodes: list[Node], exact: float) -> float:
        """Largest relative estimation error among nodes with ω > 0."""
        worst = 0.0
        for node in nodes:
            estimate = self.estimate(node)
            if estimate is None:
                return float("inf")
            error = float(np.max(np.abs(estimate - exact))) / max(abs(exact), 1e-300)
            worst = max(worst, error)
        return worst
