"""EESum — the encrypted epidemic sum (Sec. 4.2.1, Algorithm 2).

Homomorphic ciphertexts support additions and scalar multiplications but no
divisions, so the push–pull averaging rule ("each keeps half") cannot be
applied directly.  Algorithm 2 *delays every division*: a node's encrypted
value is the cleartext algorithm's value scaled by ``2^{n_l}``, where
``n_l`` is its exchange count.  On an exchange the less-advanced side is
scaled up by ``2^{|n_r − n_l|}`` (a homomorphic scalar multiplication),
the two values are added homomorphically, and both counters move to
``max(n_l, n_r) + 1``.  Appendix C.2.1 proves this is arithmetically
equivalent to the cleartext rule; ``tests/gossip`` re-proves it by shadow
execution.

The protocol carries a whole *vector* of ciphertexts (the k×(n+1) Diptych
means plus, optionally, the noise vector) under a single shared counter, so
parallel sums stay scale-aligned — which is what lets Alg. 3 add the
encrypted noise to the encrypted means at the end.
"""

from __future__ import annotations

import random

from ..crypto.damgard_jurik import homomorphic_add, homomorphic_scalar_mul
from ..crypto.keys import PublicKey
from .engine import GossipProtocol, Node

__all__ = ["EESum", "EESumState"]

_STATE = "eesum"


class EESumState:
    """One node's EESum state: ciphertext vector, clear weight, counter."""

    __slots__ = ("ciphertexts", "omega", "count")

    def __init__(self, ciphertexts: list[int], omega: int) -> None:
        self.ciphertexts = ciphertexts
        self.omega = omega  # kept scaled: integer ω·2^{count}
        self.count = 0


class EESum(GossipProtocol):
    """Algorithm 2 over a vector of Damgård–Jurik ciphertexts.

    ``initial`` maps node id → list of ciphertexts (all nodes must supply
    vectors of equal length).  ``weight_holder`` starts with ω = 1
    (footnote 5).  After convergence, a node's estimate of the global sum
    of element ``j`` is ``decrypt(c_j) / omega`` — both carry the same
    ``2^{count}`` scale, so the ratio needs no descaling; alternatively
    callers divide two decrypted elements (sum/count) and the scale cancels
    likewise, as in Alg. 3.
    """

    def __init__(
        self,
        public: PublicKey,
        initial: dict[int, list[int]],
        weight_holder: int = 0,
    ) -> None:
        self.public = public
        self.initial = initial
        self.weight_holder = weight_holder

    def setup(self, node: Node, rng: random.Random) -> None:
        ciphertexts = list(self.initial[node.node_id])
        omega = 1 if node.node_id == self.weight_holder else 0
        node.state[_STATE] = EESumState(ciphertexts, omega)

    def state_of(self, node: Node) -> EESumState:
        """Access a node's EESum state."""
        return node.state[_STATE]

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        a = self.state_of(initiator)
        b = self.state_of(contact)
        if len(a.ciphertexts) != len(b.ciphertexts):
            raise ValueError("EESum vectors must have equal length")
        if a.count != b.count:
            # Scale the less-advanced side up by 2^{difference} (Alg. 2 l.1-5).
            low, high = (a, b) if a.count < b.count else (b, a)
            factor = 1 << (high.count - low.count)
            low.ciphertexts = [
                homomorphic_scalar_mul(self.public, c, factor) for c in low.ciphertexts
            ]
            low.omega *= factor
        merged = [
            homomorphic_add(self.public, ca, cb)
            for ca, cb in zip(a.ciphertexts, b.ciphertexts)
        ]
        omega = a.omega + b.omega
        count = max(a.count, b.count) + 1
        for side in (a, b):
            side.ciphertexts = list(merged)
            side.omega = omega
            side.count = count
