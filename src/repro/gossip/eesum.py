"""EESum — the encrypted epidemic sum (Sec. 4.2.1, Algorithm 2).

Homomorphic ciphertexts support additions and scalar multiplications but no
divisions, so the push–pull averaging rule ("each keeps half") cannot be
applied directly.  Algorithm 2 *delays every division*: a node's encrypted
value is the cleartext algorithm's value scaled by ``2^{n_l}``, where
``n_l`` is its exchange count.  On an exchange the less-advanced side is
scaled up by ``2^{|n_r − n_l|}`` (a homomorphic scalar multiplication),
the two values are added homomorphically, and both counters move to
``max(n_l, n_r) + 1``.  Appendix C.2.1 proves this is arithmetically
equivalent to the cleartext rule; ``tests/gossip`` re-proves it by shadow
execution.

The protocol carries a whole *vector* of ciphertexts (the k×(n+1) Diptych
means plus, optionally, the noise vector) under a single shared counter, so
parallel sums stay scale-aligned — which is what lets Alg. 3 add the
encrypted noise to the encrypted means at the end.
"""

from __future__ import annotations

import random
from fractions import Fraction

import numpy as np

from ..crypto.damgard_jurik import homomorphic_add, homomorphic_scalar_mul
from ..crypto.encoding import quantize_to_grid
from ..crypto.keys import PublicKey
from .engine import GossipProtocol, Node

__all__ = [
    "EESum",
    "EESumState",
    "HomomorphicOps",
    "MockHomomorphicOps",
    "VectorizedEESum",
]

_STATE = "eesum"


class HomomorphicOps:
    """The real ciphertext algebra: Damgård–Jurik multiply/exponentiate."""

    def __init__(self, public: PublicKey) -> None:
        self.public = public

    def add(self, c1: int, c2: int) -> int:
        return homomorphic_add(self.public, c1, c2)

    def scalar_mul(self, ciphertext: int, scalar: int) -> int:
        return homomorphic_scalar_mul(self.public, ciphertext, scalar)


class MockHomomorphicOps:
    """The mock-homomorphic integer plane: ``E(a) = a``.

    Addition and scalar multiplication act directly on the plaintext
    integers, so a protocol run carries exactly the integers a real run's
    ciphertexts would decrypt to (no modular wrap — the capacity check of
    :meth:`repro.crypto.encoding.FixedPointCodec.check_capacity` guarantees
    real runs never wrap either).  This is what lets the object engine
    execute full EESum semantics at populations where big-int modexps are
    unaffordable, and what the vectorized plane's equivalence tests compare
    against.
    """

    def add(self, c1: int, c2: int) -> int:
        return c1 + c2

    def scalar_mul(self, ciphertext: int, scalar: int) -> int:
        return ciphertext * scalar


class EESumState:
    """One node's EESum state: ciphertext vector, clear weight, counter."""

    __slots__ = ("ciphertexts", "omega", "count")

    def __init__(self, ciphertexts: list[int], omega: int) -> None:
        self.ciphertexts = ciphertexts
        self.omega = omega  # kept scaled: integer ω·2^{count}
        self.count = 0


class EESum(GossipProtocol):
    """Algorithm 2 over a vector of Damgård–Jurik ciphertexts.

    ``initial`` maps node id → list of ciphertexts (all nodes must supply
    vectors of equal length).  ``weight_holder`` starts with ω = 1
    (footnote 5).  After convergence, a node's estimate of the global sum
    of element ``j`` is ``decrypt(c_j) / omega`` — both carry the same
    ``2^{count}`` scale, so the ratio needs no descaling; alternatively
    callers divide two decrypted elements (sum/count) and the scale cancels
    likewise, as in Alg. 3.
    """

    def __init__(
        self,
        public: PublicKey | None,
        initial: dict[int, list[int]],
        weight_holder: int = 0,
        ops: HomomorphicOps | MockHomomorphicOps | None = None,
    ) -> None:
        if ops is None:
            if public is None:
                raise ValueError("EESum needs a public key or explicit ops")
            ops = HomomorphicOps(public)
        self.public = public
        self.ops = ops
        self.initial = initial
        self.weight_holder = weight_holder

    def setup(self, node: Node, rng: random.Random) -> None:
        ciphertexts = list(self.initial[node.node_id])
        omega = 1 if node.node_id == self.weight_holder else 0
        node.state[_STATE] = EESumState(ciphertexts, omega)

    def state_of(self, node: Node) -> EESumState:
        """Access a node's EESum state."""
        return node.state[_STATE]

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        a = self.state_of(initiator)
        b = self.state_of(contact)
        if len(a.ciphertexts) != len(b.ciphertexts):
            raise ValueError("EESum vectors must have equal length")
        if a.count != b.count:
            # Scale the less-advanced side up by 2^{difference} (Alg. 2 l.1-5).
            low, high = (a, b) if a.count < b.count else (b, a)
            factor = 1 << (high.count - low.count)
            low.ciphertexts = [
                self.ops.scalar_mul(c, factor) for c in low.ciphertexts
            ]
            low.omega *= factor
        merged = [
            self.ops.add(ca, cb)
            for ca, cb in zip(a.ciphertexts, b.ciphertexts)
        ]
        omega = a.omega + b.omega
        count = max(a.count, b.count) + 1
        for side in (a, b):
            side.ciphertexts = list(merged)
            side.omega = omega
            side.count = count


class VectorizedEESum:
    """Algorithm 2 as whole-population array operations (struct-of-arrays).

    State is three arrays over ``population`` nodes: the value matrix
    ``values`` (``population × dims``), the weight vector ``omega`` and the
    shared exchange counter ``count`` — one counter per node covering the
    whole k×(n+1) Diptych vector, exactly as the object protocol keeps one
    ``EESumState.count`` for its whole ciphertext list.

    **Representation.**  The object plane stores the delayed-division
    integers ``v = σ·2^count`` (and ``ω_int = ω·2^count``); this plane
    stores the *normalized* pair ``(σ, ω)`` plus ``count``.  The Alg. 2
    exchange — scale the less-advanced side by ``2^{|n_r − n_l|}``, add,
    advance both counters to ``max(n_l, n_r) + 1`` — collapses in the
    normalized representation to

        σ' = (σ_l·2^{c_l}·2^{max−c_l} + σ_r·2^{c_r}·2^{max−c_r}) / 2^{max+1}
           = (σ_l + σ_r) / 2,            c' = max(c_l, c_r) + 1,

    i.e. the delayed divisions cancel the alignment scalings *exactly* (a
    restatement of the App. C.2.1 equivalence).  Both representations are
    dyadic-rational–exact: as long as numerators fit a float64 mantissa the
    arrays hold the same numbers the object plane's integers denote, and
    :meth:`scaled_state` re-materializes those integers bit-for-bit (the
    equivalence tests assert identity against a mock-homomorphic object
    run on the same pairing schedule).

    ``values`` is quantized to the ``2^{-quantize_bits}`` fixed-point grid
    at construction when ``quantize_bits`` is given, mirroring
    ``FixedPointCodec.encode``'s round-half-even.
    """

    def __init__(
        self,
        values: np.ndarray,
        weight_holder: int = 0,
        quantize_bits: int | None = None,
        copy: bool = True,
    ) -> None:
        """``copy=False`` takes ownership of ``values`` without duplicating
        it — the k·(n+1) matrix is the dominant allocation at 10⁵–10⁶
        nodes, and the computation step hands over a buffer it built for
        exactly this purpose."""
        if copy:
            values = np.array(values, dtype=float, copy=True)
        else:
            values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2 or len(values) < 2:
            raise ValueError("values must be a population × dims matrix (pop >= 2)")
        if quantize_bits is not None:
            values = quantize_to_grid(values, quantize_bits)
        self.values = values
        self.population, self.dims = values.shape
        self.omega = np.zeros(self.population)
        self.omega[weight_holder] = 1.0
        self.count = np.zeros(self.population, dtype=np.int64)

    def exchange_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        """One batch of disjoint pairwise exchanges (Alg. 2 l.1-7).

        ``left``/``right`` must be disjoint index arrays (each node appears
        at most once across both) — the vectorized analogue of a set of
        simultaneous point-to-point exchanges.
        """
        merged = self.values[left]
        merged += self.values[right]
        merged *= 0.5
        self.values[left] = merged
        self.values[right] = merged
        omega = (self.omega[left] + self.omega[right]) * 0.5
        self.omega[left] = omega
        self.omega[right] = omega
        count = np.maximum(self.count[left], self.count[right]) + 1
        self.count[left] = count
        self.count[right] = count

    def estimates(self, nodes: np.ndarray | None = None) -> np.ndarray:
        """Per-node sum estimates ``σ/ω`` (rows of NaN where ω is still 0)."""
        values = self.values if nodes is None else self.values[nodes]
        omega = self.omega if nodes is None else self.omega[nodes]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(omega[:, None] > 0, values / omega[:, None], np.nan)

    def scaled_state(self, node: int, fractional_bits: int = 0) -> tuple[list[int], int]:
        """The node's object-plane integers ``(v·2^{count+f}, ω·2^count)``.

        Exact big-int materialization (via ``Fraction``) of the delayed-
        division integers the object engine would hold — the equivalence
        proofs compare these for identity.  Raises if the normalized floats
        have left the dyadic grid (i.e. float64 rounding occurred and the
        two planes are no longer bit-comparable).
        """
        shift = 1 << (int(self.count[node]) + fractional_bits)
        scaled = []
        for value in self.values[node]:
            exact = Fraction(value) * shift
            if exact.denominator != 1:
                raise ValueError(
                    "normalized value is no longer dyadic at this scale — "
                    "float64 mantissa exhausted, exact comparison impossible"
                )
            scaled.append(int(exact))
        omega_exact = Fraction(self.omega[node]) * (1 << int(self.count[node]))
        if omega_exact.denominator != 1:
            raise ValueError("omega is no longer dyadic — mantissa exhausted")
        return scaled, int(omega_exact)
