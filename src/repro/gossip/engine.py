"""Cycle-driven gossip simulator (the Peersim substitution).

The engine reproduces Peersim's cycle-driven mode, which is what the paper
used: in each cycle every *online* node initiates one exchange with a peer
drawn from its local view, and a pluggable :class:`Protocol` mutates the two
node states.  Churn is modelled exactly as Sec. 6.1.5 describes — a uniform
per-cycle disconnection probability.

Design notes:

* node states are plain dicts owned by the protocol, keyed by protocol
  name, so several protocols can run "in parallel" over the same exchanges
  (the paper runs the means-EESum and the noise-EESum on the same gossip
  stream);
* the engine counts *exchanges per node* — the unit in which Theorem 3 and
  all the Fig. 4 latency plots are expressed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

__all__ = ["Node", "GossipProtocol", "GossipEngine"]


@dataclass
class Node:
    """One simulated participant."""

    node_id: int
    online: bool = True
    state: dict = field(default_factory=dict)
    exchanges: int = 0


class GossipProtocol(TypingProtocol):
    """Anything that can react to a pairwise gossip exchange."""

    def setup(self, node: Node, rng: random.Random) -> None:
        """Initialize the per-node state before the first cycle."""

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        """Perform one point-to-point exchange (mutates both states)."""


class GossipEngine:
    """Cycle-driven engine over ``n_nodes`` with uniform peer sampling.

    ``view_size`` bounds the per-cycle candidate set the initiator draws its
    contact from (a fresh uniform sample each cycle — the standard
    approximation of a converged Newscast view; the explicit view-maintenance
    protocol lives in :mod:`repro.gossip.peer_sampling` and is validated to
    mix indistinguishably in the tests).
    """

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        view_size: int = 30,
        churn: float = 0.0,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("need at least two nodes to gossip")
        if not 0 <= churn < 1:
            raise ValueError("churn must be in [0, 1)")
        self.rng = random.Random(seed)
        self.view_size = view_size
        self.churn = churn
        self.nodes = [Node(node_id=i) for i in range(n_nodes)]
        self.cycles = 0
        # Observability hook: called after every cycle with
        # (cycle_index, exchanges_in_cycle).  Must not mutate engine state —
        # it exists so streaming frontends (repro.api events) can report
        # epidemic progress without changing the exchange schedule.
        self.on_cycle = None

    def setup(self, *protocols: GossipProtocol) -> None:
        """Run every protocol's per-node initialization."""
        for node in self.nodes:
            for protocol in protocols:
                protocol.setup(node, self.rng)

    def _draw_contact(self, initiator: Node, online_ids: list[int]) -> Node | None:
        candidates = self.rng.sample(online_ids, min(self.view_size, len(online_ids)))
        for candidate in candidates:
            if candidate != initiator.node_id:
                return self.nodes[candidate]
        return None

    def run_cycle(self, *protocols: GossipProtocol) -> int:
        """One cycle: every online node initiates once.  Returns #exchanges."""
        for node in self.nodes:
            node.online = self.rng.random() >= self.churn
        online_ids = [node.node_id for node in self.nodes if node.online]
        exchanges = 0
        if len(online_ids) >= 2:
            order = online_ids[:]
            self.rng.shuffle(order)
            for node_id in order:
                initiator = self.nodes[node_id]
                if not initiator.online:
                    continue
                contact = self._draw_contact(initiator, online_ids)
                if contact is None:
                    continue
                for protocol in protocols:
                    protocol.exchange(initiator, contact, self.rng)
                initiator.exchanges += 1
                contact.exchanges += 1
                exchanges += 1
        self.cycles += 1
        if self.on_cycle is not None:
            self.on_cycle(self.cycles, exchanges)
        return exchanges

    def run_pairing_cycle(
        self,
        pairs: "list[tuple[int, int]] | zip",
        *protocols: GossipProtocol,
    ) -> int:
        """Execute an externally-supplied exchange schedule for one cycle.

        The shadow-execution hook: the vectorized plane draws a pairing
        (``VectorizedGossipEngine.run_cycle`` returns it) and this engine
        replays the identical schedule, so the equivalence tests can assert
        both planes land on the same decoded sums, ω-weights and exchange
        counters.  Pairs are applied in order; node online flags are not
        redrawn (the schedule already encodes who was online).
        """
        exchanges = 0
        for initiator_id, contact_id in pairs:
            initiator, contact = self.nodes[initiator_id], self.nodes[contact_id]
            for protocol in protocols:
                protocol.exchange(initiator, contact, self.rng)
            initiator.exchanges += 1
            contact.exchanges += 1
            exchanges += 1
        return exchanges

    def run_cycles(self, cycles: int, *protocols: GossipProtocol) -> int:
        """Run ``cycles`` full cycles; returns the total exchange count."""
        total = 0
        for _ in range(cycles):
            total += self.run_cycle(*protocols)
        return total

    @property
    def mean_exchanges_per_node(self) -> float:
        """Average number of exchange participations per node so far."""
        return sum(node.exchanges for node in self.nodes) / len(self.nodes)
