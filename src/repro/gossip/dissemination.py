"""Min-identifier epidemic dissemination — ``EpiDis`` (Sec. 4.2.2).

The noise-surplus correction must be *unique* across the population: every
participant proposes its own correction vector tagged with a random
identifier, and dissemination keeps, at every exchange, the proposal with
the smallest identifier.  Standard epidemic-diffusion results apply: the
probability that some node misses the global minimum decays exponentially
with the number of exchanges (the paper: < 50 messages per participant for
one million nodes).
"""

from __future__ import annotations

import random
from typing import Any

import numpy as np

from .engine import GossipProtocol, Node

__all__ = ["MinIdDissemination", "VectorizedMinId"]

_STATE = "epidis"


class MinIdDissemination(GossipProtocol):
    """Keep-the-smallest-identifier flooding of (identifier, payload) pairs.

    ``proposals`` maps node id → (identifier, payload); nodes without a
    proposal start empty and adopt whatever they hear first.
    """

    def __init__(self, proposals: dict[int, tuple[int, Any]]) -> None:
        self.proposals = proposals

    def setup(self, node: Node, rng: random.Random) -> None:
        node.state[_STATE] = self.proposals.get(node.node_id)

    def value_of(self, node: Node) -> tuple[int, Any] | None:
        """The node's current (identifier, payload) belief."""
        return node.state[_STATE]

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        a = initiator.state[_STATE]
        b = contact.state[_STATE]
        proposals = [x for x in (a, b) if x is not None]
        best = min(proposals, key=lambda pair: pair[0], default=None) if proposals else None
        initiator.state[_STATE] = best
        contact.state[_STATE] = best

    def converged(self, nodes: list[Node]) -> bool:
        """True when every node holds the same (global-minimum) proposal."""
        values = {node.state[_STATE] and node.state[_STATE][0] for node in nodes}
        return len(values) == 1 and None not in values


class VectorizedMinId:
    """EpiDis as whole-population array operations (struct-of-arrays).

    ``ids`` holds one proposal identifier per node; nodes without a proposal
    carry :attr:`NO_PROPOSAL` (which loses every minimum, exactly like the
    object protocol's ``None`` state).  On an exchange both sides adopt the
    smaller identifier — ties resolve to the same value on both planes, so
    shadow execution on a shared pairing schedule yields identical final
    identifier arrays (asserted in ``tests/gossip``).

    Payloads are resolved *by identifier*: the protocol gossips only the
    64-bit identifiers (what dominates the paper's message accounting);
    the caller maps the final identifiers back to the payloads it proposed,
    which is exact because an identifier uniquely names its proposal.
    """

    NO_PROPOSAL = np.iinfo(np.int64).max

    def __init__(self, ids: np.ndarray) -> None:
        ids = np.array(ids, dtype=np.int64, copy=True)
        if ids.ndim != 1 or len(ids) < 2:
            raise ValueError("ids must be one identifier per node (pop >= 2)")
        self.ids = ids

    def exchange_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        best = np.minimum(self.ids[left], self.ids[right])
        self.ids[left] = best
        self.ids[right] = best

    def converged(self) -> bool:
        """True when every node holds the same (global-minimum) identifier
        — the array mirror of :meth:`MinIdDissemination.converged`."""
        first = self.ids[0]
        return first != self.NO_PROPOSAL and bool((self.ids == first).all())
