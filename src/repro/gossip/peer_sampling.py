"""Newscast-style peer sampling (Sec. 3.2, connectivity layer of App. B).

Each node keeps a *local view* Λ of ``view_size`` (peer id, age) entries.
On an exchange both parties merge their views plus each other's fresh
descriptor and keep the youngest ``view_size`` entries — the mechanism
that gives gossip its robustness to failures [25].

The main engine approximates a *converged* Newscast overlay with uniform
sampling (standard practice); this protocol exists to (a) bootstrap views
from an arbitrary initial topology and (b) let tests verify that the view
dynamics indeed mix toward uniform-looking samples.
"""

from __future__ import annotations

import random

from .engine import GossipProtocol, Node

__all__ = ["NewscastView"]

_STATE = "newscast"


class NewscastView(GossipProtocol):
    """Maintains the (peer, age) views; exposes sampling from the view."""

    def __init__(self, n_nodes: int, view_size: int = 30) -> None:
        self.n_nodes = n_nodes
        self.view_size = view_size

    def setup(self, node: Node, rng: random.Random) -> None:
        peers = [p for p in range(self.n_nodes) if p != node.node_id]
        sample = rng.sample(peers, min(self.view_size, len(peers)))
        node.state[_STATE] = {peer: 0 for peer in sample}

    def view_of(self, node: Node) -> dict[int, int]:
        """The node's current view: peer id → age."""
        return node.state[_STATE]

    def sample_contact(self, node: Node, rng: random.Random) -> int | None:
        """Draw a random peer from the node's view (None if empty)."""
        view = node.state[_STATE]
        if not view:
            return None
        return rng.choice(list(view))

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        # Merge the two views, aging every pre-existing entry by one…
        merged: dict[int, int] = {}
        for view in (self.view_of(contact), self.view_of(initiator)):
            for peer, age in view.items():
                aged = age + 1
                if peer not in merged or aged < merged[peer]:
                    merged[peer] = aged
        # …then inject the two parties' fresh descriptors (age 0), which by
        # construction win the freshness truncation below.
        merged[initiator.node_id] = 0
        merged[contact.node_id] = 0
        for party in (initiator, contact):
            candidate = {
                peer: age for peer, age in merged.items() if peer != party.node_id
            }
            youngest = sorted(candidate.items(), key=lambda item: item[1])
            party.state[_STATE] = dict(youngest[: self.view_size])
