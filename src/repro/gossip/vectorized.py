"""Vectorized gossip plane for large-population sweeps (Figs. 3b, 4a).

The object engine tops out around 10⁴ nodes in pure Python, the same order
of magnitude where the paper's Peersim runs lived; the paper's 10⁵–10⁶
curves came from a dedicated aggregation simulator.  This module is that
simulator: push–pull averaging, min-id dissemination and churn expressed as
numpy array operations, handling a million nodes in milliseconds per cycle.

Semantics per cycle (matching the object engine):

* every online node initiates one exchange with a uniformly random online
  peer (sampling with replacement on the contact side, the standard gossip
  assumption);
* push–pull: both sides end with the average of their (σ, ω) states.  We
  realize one *initiation round* as a random pairing over online nodes, so
  each node participates in ~2 exchanges per cycle on average — message
  accounting counts actual exchange participations per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PushPullSumSimulator",
    "SumErrorTrace",
    "random_pairing",
    "simulate_sum_error",
    "messages_to_reach_error",
    "dissemination_cycles",
]


def random_pairing(
    rng: np.random.Generator, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """A uniform random disjoint pairing of ``indices`` (one odd leftover idles).

    This is the canonical vectorized realization of one gossip initiation
    round; it is shared by the cleartext sum simulator below and by the
    full-protocol plane in :mod:`repro.gossip.vectorized_protocol`.
    """
    shuffled = rng.permutation(indices)
    half = len(shuffled) // 2
    return shuffled[:half], shuffled[half : 2 * half]


@dataclass
class SumErrorTrace:
    """Per-cycle trace of the epidemic sum's worst-case relative error."""

    cycles: list[int] = field(default_factory=list)
    max_relative_error: list[float] = field(default_factory=list)
    messages_per_node: list[float] = field(default_factory=list)


class PushPullSumSimulator:
    """Push–pull averaging over ``population`` nodes with optional churn.

    ``data`` is each node's scalar contribution (default all-ones, the
    paper's Fig. 3(b)/4(a) setting).  One node holds the initial weight.
    """

    def __init__(
        self,
        population: int,
        data: np.ndarray | None = None,
        churn: float = 0.0,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if population < 2:
            raise ValueError("population must be >= 2")
        if not 0 <= churn < 1:
            raise ValueError("churn must be in [0, 1)")
        self.rng = np.random.default_rng(seed)
        self.population = population
        self.churn = churn
        self.sigma = (
            np.ones(population) if data is None else np.asarray(data, dtype=float).copy()
        )
        if self.sigma.shape != (population,):
            raise ValueError("data must be a vector of length population")
        self.exact_sum = float(self.sigma.sum())
        self.omega = np.zeros(population)
        self.omega[0] = 1.0
        self.messages = np.zeros(population, dtype=np.int64)

    def run_cycle(self) -> None:
        """One initiation round: random pairing among online nodes."""
        online = np.flatnonzero(self.rng.random(self.population) >= self.churn)
        if len(online) < 2:
            return
        left, right = random_pairing(self.rng, online)
        sigma_avg = (self.sigma[left] + self.sigma[right]) / 2.0
        omega_avg = (self.omega[left] + self.omega[right]) / 2.0
        self.sigma[left] = sigma_avg
        self.sigma[right] = sigma_avg
        self.omega[left] = omega_avg
        self.omega[right] = omega_avg
        self.messages[left] += 1
        self.messages[right] += 1

    def estimates(self) -> np.ndarray:
        """Per-node sum estimates σ/ω (inf where ω is still zero)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.omega > 0, self.sigma / self.omega, np.inf)

    def max_relative_error(self) -> float:
        """Worst relative error across nodes (inf while weight has not spread)."""
        estimates = self.estimates()
        if not np.isfinite(estimates).all():
            return float("inf")
        return float(np.max(np.abs(estimates - self.exact_sum)) / abs(self.exact_sum))

    def max_absolute_error(self) -> float:
        """Worst absolute estimation error across nodes."""
        estimates = self.estimates()
        if not np.isfinite(estimates).all():
            return float("inf")
        return float(np.max(np.abs(estimates - self.exact_sum)))

    @property
    def mean_messages_per_node(self) -> float:
        return float(self.messages.mean())


def simulate_sum_error(
    population: int,
    cycles: int,
    churn: float = 0.0,
    seed: int = 0,
    data: np.ndarray | None = None,
) -> SumErrorTrace:
    """Run ``cycles`` rounds and trace the worst relative error per cycle."""
    simulator = PushPullSumSimulator(population, data=data, churn=churn, seed=seed)
    trace = SumErrorTrace()
    for cycle in range(1, cycles + 1):
        simulator.run_cycle()
        trace.cycles.append(cycle)
        trace.max_relative_error.append(simulator.max_relative_error())
        trace.messages_per_node.append(simulator.mean_messages_per_node)
    return trace


def messages_to_reach_error(
    population: int,
    target_abs_error: float,
    churn: float = 0.0,
    seed: int = 0,
    max_cycles: int = 400,
) -> float:
    """Average messages per node until the *absolute* error falls under target.

    This reproduces the Fig. 4(a) y-axis: the paper plots the average
    number of messages per participant needed for the epidemic sum (over
    all-ones data) to reach a given absolute approximation error.
    Returns ``inf`` when ``max_cycles`` does not suffice.
    """
    simulator = PushPullSumSimulator(population, churn=churn, seed=seed)
    for _ in range(max_cycles):
        simulator.run_cycle()
        if simulator.max_absolute_error() <= target_abs_error:
            return simulator.mean_messages_per_node
    return float("inf")


def dissemination_cycles(
    population: int,
    churn: float = 0.0,
    seed: int = 0,
    max_cycles: int = 400,
) -> tuple[float, int]:
    """Messages/node and cycles for min-id dissemination to reach everyone.

    Vectorized version of :class:`~repro.gossip.dissemination.MinIdDissemination`
    with every node proposing a random identifier (the noise-correction
    scenario of Sec. 4.2.2).
    """
    rng = np.random.default_rng(seed)
    values = rng.random(population)  # random identifiers
    target = values.min()
    messages = np.zeros(population, dtype=np.int64)
    for cycle in range(1, max_cycles + 1):
        online = np.flatnonzero(rng.random(population) >= churn)
        if len(online) < 2:
            continue
        left, right = random_pairing(rng, online)
        best = np.minimum(values[left], values[right])
        values[left] = best
        values[right] = best
        messages[left] += 1
        messages[right] += 1
        if (values == target).all():
            return float(messages.mean()), cycle
    return float("inf"), max_cycles
