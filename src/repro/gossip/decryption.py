"""Epidemic threshold decryption (Sec. 4.2.3).

Each participant holds (a) its converged encrypted vector and (b) one
private key-share with a random key-share identifier.  During an exchange:

1. **replacement** — the less-advanced side (fewer distinct key-shares
   applied) discards its partially-decrypted state and adopts the more
   advanced side's, the latency optimization the paper describes;
2. **mutual partial decryption** — each side applies its own key-share to
   the other's vector if that identifier is not present yet.

A node stops once ``τ`` distinct key-shares have been applied; it then
combines the partial decryptions locally (Shoup combination, see
:mod:`repro.crypto.threshold`).

Three planes share this module:

* :class:`EpidemicDecryption` — the real-crypto protocol used by the full
  Chiaroscuro execution;
* :class:`TokenDecryption` — a crypto-free twin that moves only key-share
  *identifiers*, used for the Fig. 4(b) latency sweeps where only message
  counts matter;
* :class:`VectorizedShareCollection` — the struct-of-arrays twin driven by
  :class:`repro.gossip.vectorized_protocol.VectorizedGossipEngine` for the
  10⁵–10⁶-node sweeps and the vectorized Chiaroscuro run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..crypto.backend import CryptoBackend, SerialBackend
from ..crypto.keys import KeyShare, ThresholdContext
from ..crypto.threshold import combine_partial_decryptions
from .engine import GossipProtocol, Node

__all__ = [
    "DecryptionState",
    "EpidemicDecryption",
    "TokenDecryption",
    "VectorizedShareCollection",
]

_STATE = "eedec"


@dataclass
class DecryptionState:
    """A node's decryption bundle: vector, weight, and per-element partials."""

    ciphertexts: list[int]
    omega: int
    partials: dict[int, list[int]] = field(default_factory=dict)  # share idx → vec

    @property
    def n_shares_applied(self) -> int:
        return len(self.partials)


class EpidemicDecryption(GossipProtocol):
    """Real threshold decryption over the gossip stream.

    ``bundles`` maps node id → (ciphertext vector, scaled weight ω); these
    are the converged EESum outputs (estimates are equal across nodes up to
    the gossip approximation error, so the replacement step is sound).
    ``shares`` maps node id → its :class:`KeyShare`.

    Applying a key-share partially decrypts the node's *whole* vector — one
    ``c^{2Δd_i}`` exponentiation per element — so it runs as a single batch
    through ``backend`` (serial by default; a process-pool backend spreads
    the batch over workers, see :mod:`repro.crypto.backend`).
    """

    def __init__(
        self,
        context: ThresholdContext,
        bundles: dict[int, tuple[list[int], int]],
        shares: dict[int, KeyShare],
        backend: CryptoBackend | None = None,
    ) -> None:
        self.context = context
        self.bundles = bundles
        self.shares = shares
        self.backend = backend or SerialBackend()

    def setup(self, node: Node, rng: random.Random) -> None:
        ciphertexts, omega = self.bundles[node.node_id]
        state = DecryptionState(list(ciphertexts), omega)
        self._apply_share(state, self.shares[node.node_id])
        node.state[_STATE] = state

    def state_of(self, node: Node) -> DecryptionState:
        return node.state[_STATE]

    def _apply_share(self, state: DecryptionState, share: KeyShare) -> None:
        if share.index in state.partials:
            return
        if state.n_shares_applied >= self.context.threshold:
            return
        state.partials[share.index] = self.backend.partial_decrypt_batch(
            self.context, share, state.ciphertexts
        )

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        a, b = self.state_of(initiator), self.state_of(contact)
        # Replacement: the laggard adopts the leader's bundle wholesale.
        if a.n_shares_applied != b.n_shares_applied:
            lag, lead = (a, b) if a.n_shares_applied < b.n_shares_applied else (b, a)
            lag.ciphertexts = list(lead.ciphertexts)
            lag.omega = lead.omega
            lag.partials = {idx: list(vec) for idx, vec in lead.partials.items()}
        self._apply_share(a, self.shares[contact.node_id])
        self._apply_share(b, self.shares[initiator.node_id])

    def is_done(self, node: Node) -> bool:
        """Stopping criterion: τ distinct key-shares applied."""
        return self.state_of(node).n_shares_applied >= self.context.threshold

    def all_done(self, nodes: list[Node]) -> bool:
        return all(self.is_done(node) for node in nodes)

    def plaintexts_of(self, node: Node) -> tuple[list[int], int]:
        """Combine the node's partials into plaintext residues (plus ω)."""
        state = self.state_of(node)
        if state.n_shares_applied < self.context.threshold:
            raise RuntimeError("node has not collected enough key-shares yet")
        plaintexts = []
        for element in range(len(state.ciphertexts)):
            partials = {idx: vec[element] for idx, vec in state.partials.items()}
            plaintexts.append(combine_partial_decryptions(self.context, partials))
        return plaintexts, state.omega


class TokenDecryption(GossipProtocol):
    """Crypto-free twin for latency sweeps: moves identifier sets only.

    Each node's key-share identifier is its node id; states are plain sets.
    Message accounting is inherited from the engine (exchanges per node).
    """

    def __init__(self, threshold_count: int) -> None:
        if threshold_count < 1:
            raise ValueError("threshold_count must be >= 1")
        self.threshold_count = threshold_count

    def setup(self, node: Node, rng: random.Random) -> None:
        node.state[_STATE] = {node.node_id}

    def exchange(self, initiator: Node, contact: Node, rng: random.Random) -> None:
        a: set[int] = initiator.state[_STATE]
        b: set[int] = contact.state[_STATE]
        if len(a) != len(b):
            lag, lead = (a, b) if len(a) < len(b) else (b, a)
            lag.clear()
            lag.update(lead)
            # ``a``/``b`` aliases still point at the same set objects.
        if len(a) < self.threshold_count:
            a.add(contact.node_id)
        if len(b) < self.threshold_count:
            b.add(initiator.node_id)

    def is_done(self, node: Node) -> bool:
        return len(node.state[_STATE]) >= self.threshold_count

    def fraction_done(self, nodes: list[Node]) -> float:
        done = sum(1 for node in nodes if self.is_done(node))
        return done / len(nodes)


class VectorizedShareCollection:
    """Epidemic decryption collection as array operations (third plane).

    The per-node state is the number of distinct key-shares applied to the
    node's bundle.  An exchange replays :class:`TokenDecryption`'s rule in
    bulk: the laggard adopts the leader's bundle (replacement), then each
    side applies the other's own key-share if it still needs shares.

    One deliberate large-population approximation: shares are counted by
    cardinality only, assuming the contact's key-share is not already among
    the adopted set.  A duplicate occurs with probability ``≈ count/population``
    per exchange — negligible at the 10⁵–10⁶ populations this plane exists
    for (and the Fig. 4(b) latency is what is being measured, not the share
    identities).  The object-engine :class:`TokenDecryption` remains the
    exact-semantics reference.
    """

    def __init__(self, population: int, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if population < 2:
            raise ValueError("population must be >= 2")
        self.threshold = threshold
        # Every node starts having applied its own key-share (as in
        # EpidemicDecryption.setup).
        self.shares = np.ones(population, dtype=np.int64)

    def exchange_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        lead = np.maximum(self.shares[left], self.shares[right])
        advanced = np.minimum(lead + 1, self.threshold)
        # Nodes already at/above threshold stop collecting (the Sec. 4.2.3
        # stopping criterion) — they keep their count.
        merged = np.where(lead >= self.threshold, lead, advanced)
        self.shares[left] = merged
        self.shares[right] = merged

    def fraction_done(self) -> float:
        return float((self.shares >= self.threshold).mean())

    def all_done(self) -> bool:
        return bool((self.shares >= self.threshold).all())
