"""CipherArray — genuine Damgård–Jurik ciphertexts in struct-of-arrays form.

The vectorized plane (PR 2) reaches 10⁵–10⁶ participants by replacing the
object engine's per-node Python objects with whole-population arrays — but
it carries *mock*-homomorphic integers.  This module closes that gap: the
same struct-of-arrays exchange discipline, over real packed Damgård–Jurik
ciphertexts, with every round's homomorphic work routed through the batch
bigint primitives (:func:`repro.crypto.bigint.powmod_batch` /
:func:`~repro.crypto.bigint.mulmod_pairwise`) and shardable across the
process-pool crypto backend.

Two layers:

* :class:`CipherArray` — the batch container: one equal-width ciphertext
  vector per node, plus the two whole-round operations Algorithm 2 needs
  (scale lagging rows by a shared ``2^d``; merge all scheduled pairs
  elementwise).  Per-round cost is **one** ``pow_batch`` call per distinct
  counter gap (a handful of small values) plus **one** ``mulmod_batch``
  over every ciphertext of every pair — no per-ciphertext Python-level
  modexp loop.
* :class:`CipherEESum` — Algorithm 2 over a CipherArray, drop-in for the
  vectorized engine's protocol slot (it implements ``exchange_pairs``).
  The weight ω and the epidemic counter column stay cleartext (exactly as
  the object plane keeps ``EESumState.omega`` and its cleartext
  ``EpidemicSum`` counter) and are updated with the *mock* plane's exact
  normalized float operations, so a crypto run's clear side is
  bit-identical to a mock run on the same pairing schedule — while the
  ciphertext side is bit-identical to an object-plane :class:`~.EESum`
  run with real :class:`~.HomomorphicOps` on that schedule (same ops, same
  order, same integers).

Crypto wall-time is accumulated in ``CipherArray.crypto_seconds`` so the
computation step can report a per-iteration ``crypto_ms`` split.
"""

from __future__ import annotations

import time
from fractions import Fraction

import numpy as np

from ..crypto.backend import CryptoBackend, SerialBackend
from ..crypto.keys import PublicKey

__all__ = ["CipherArray", "CipherEESum"]


class CipherArray:
    """Equal-width Damgård–Jurik ciphertext vectors for a whole population.

    ``rows[i]`` is node ``i``'s packed ciphertext vector (plain ints mod
    ``n^{s+1}``).  All homomorphic arithmetic goes through ``backend`` so a
    process pool shards rounds transparently; results are independent of
    worker count and bigint backend (the operations are deterministic
    integer arithmetic — no randomness is consumed here).
    """

    def __init__(
        self,
        public: PublicKey,
        rows: list[list[int]],
        backend: CryptoBackend | None = None,
    ) -> None:
        if not rows:
            raise ValueError("CipherArray needs at least one row")
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise ValueError("CipherArray rows must have equal width")
        self.public = public
        self.rows = [list(row) for row in rows]
        self.width = width
        self.backend = backend or SerialBackend()
        #: Accumulated wall-clock seconds spent inside backend batch calls.
        self.crypto_seconds = 0.0

    def __len__(self) -> int:
        return len(self.rows)

    def row(self, node: int) -> list[int]:
        """Node ``node``'s ciphertext vector (a copy — rows are immutable
        from the caller's perspective)."""
        return list(self.rows[int(node)])

    # ------------------------------------------------------ round batches

    def scale_rows(self, nodes: np.ndarray, log2_factors: np.ndarray) -> None:
        """Homomorphic scalar-multiply each row by its ``2^d`` (Alg. 2 l.1-5).

        Rows are grouped by distinct ``d`` so each group is one shared-
        exponent ``pow_batch`` — within a gossip round the counter gaps
        take only a handful of small values, so the whole alignment step
        is a few batched calls regardless of population.
        """
        nodes = np.asarray(nodes)
        log2_factors = np.asarray(log2_factors)
        if len(nodes) == 0:
            return
        n_s1 = self.public.n_s1
        started = time.perf_counter()
        for gap in np.unique(log2_factors):
            group = nodes[log2_factors == gap]
            flat = [c for node in group for c in self.rows[node]]
            powed = self.backend.pow_batch(flat, 1 << int(gap), n_s1)
            for slot, node in enumerate(group):
                start = slot * self.width
                self.rows[node] = powed[start : start + self.width]
        self.crypto_seconds += time.perf_counter() - started

    def merge_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        """Homomorphic-add every scheduled pair's vectors in one batch.

        Both sides of each pair end up holding the merged vector, exactly
        as the object protocol assigns ``side.ciphertexts = list(merged)``
        to initiator and contact alike.
        """
        left = np.asarray(left)
        right = np.asarray(right)
        if len(left) == 0:
            return
        n_s1 = self.public.n_s1
        started = time.perf_counter()
        flat_left = [c for node in left for c in self.rows[node]]
        flat_right = [c for node in right for c in self.rows[node]]
        merged = self.backend.mulmod_batch(flat_left, flat_right, n_s1)
        for slot, (l, r) in enumerate(zip(left, right)):
            start = slot * self.width
            row = merged[start : start + self.width]
            self.rows[l] = row
            self.rows[r] = list(row)
        self.crypto_seconds += time.perf_counter() - started


class CipherEESum:
    """Algorithm 2 over a :class:`CipherArray` (vectorized-engine protocol).

    State per node: the ciphertext vector (in the array), the cleartext
    weight ω and epidemic counter — both kept *normalized* (divisions
    applied) exactly like :class:`~.VectorizedEESum` keeps them — and the
    shared exchange counter ``count`` governing the delayed-division scale
    of the ciphertexts (``E(σ·2^{count}·2^{fractional_bits})``).
    """

    def __init__(
        self,
        public: PublicKey,
        rows: list[list[int]],
        weight_holder: int = 0,
        backend: CryptoBackend | None = None,
    ) -> None:
        self.array = CipherArray(public, rows, backend)
        self.population = len(rows)
        if self.population < 2:
            raise ValueError("CipherEESum needs a population >= 2")
        self.omega = np.zeros(self.population)
        self.omega[weight_holder] = 1.0
        self.ctr = np.ones(self.population)
        self.count = np.zeros(self.population, dtype=np.int64)

    @property
    def crypto_seconds(self) -> float:
        return self.array.crypto_seconds

    def exchange_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        """One batch of disjoint pairwise exchanges (Alg. 2 l.1-7).

        Ciphertext side: scale the lagging side of every uneven pair by
        its ``2^{|n_r − n_l|}`` (grouped shared-exponent batch), then merge
        all pairs elementwise (one batch).  Clear side: the mock plane's
        normalized update, operation for operation, so ω/ctr floats remain
        bit-identical to a :class:`~.VectorizedEESum` run on the same
        schedule.
        """
        left = np.asarray(left)
        right = np.asarray(right)
        count_left = self.count[left]
        count_right = self.count[right]
        gaps = count_left - count_right
        lagging = np.where(gaps < 0, left, right)
        log2_factors = np.abs(gaps)
        uneven = log2_factors > 0
        if np.any(uneven):
            self.array.scale_rows(lagging[uneven], log2_factors[uneven])
        self.array.merge_pairs(left, right)
        omega = (self.omega[left] + self.omega[right]) * 0.5
        self.omega[left] = omega
        self.omega[right] = omega
        ctr = self.ctr[left]
        ctr += self.ctr[right]
        ctr *= 0.5
        self.ctr[left] = ctr
        self.ctr[right] = ctr
        count = np.maximum(count_left, count_right) + 1
        self.count[left] = count
        self.count[right] = count

    # -------------------------------------------------- shadow comparison

    def row(self, node: int) -> list[int]:
        """Node ``node``'s current ciphertext vector."""
        return self.array.row(node)

    def scaled_omega(self, node: int) -> int:
        """The object-plane integer ``ω·2^{count}`` this node denotes.

        Exact materialization via ``Fraction`` — raises if the normalized
        float has left the dyadic grid (mantissa exhausted), mirroring
        :meth:`~.VectorizedEESum.scaled_state`.
        """
        exact = Fraction(float(self.omega[node])) * (
            1 << int(self.count[node])
        )
        if exact.denominator != 1:
            raise ValueError("omega is no longer dyadic — mantissa exhausted")
        return int(exact)
