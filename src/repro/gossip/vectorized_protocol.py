"""Struct-of-arrays cycle driver for the full-protocol vectorized plane.

:mod:`repro.gossip.vectorized` models only the cleartext push–pull sum; this
module provides the *full protocol* substrate: a cycle-driven engine whose
per-node state lives in numpy arrays (online mask, exchange counters) and
whose protocols — :class:`~repro.gossip.eesum.VectorizedEESum` (Algorithm 2
with delayed-division counters), :class:`~repro.gossip.dissemination.VectorizedMinId`
(EpiDis), :class:`~repro.gossip.decryption.VectorizedShareCollection`
(epidemic decryption collection) — implement one whole-population
``exchange_pairs(left, right)`` per cycle instead of per-node ``exchange``
calls.  This is what carries the paper's 10⁵–10⁶-participant curves
(Figs. 3–4) through the *exact* protocol semantics rather than the
cleartext approximation.

Cycle semantics (mirroring :class:`repro.gossip.engine.GossipEngine`):

* every node redraws its online flag with the per-exchange churn
  probability of Sec. 6.1.5;
* one initiation round is realized as a uniform random disjoint pairing of
  the online nodes (each node participates in ≤ 1 exchange per cycle; the
  object engine's initiator/contact roles average to ~2 — message
  accounting is per participation in both cases, so latency comparisons
  normalize per exchange);
* the pairing is *exposed* (``run_cycle`` returns it), so the object engine
  can shadow-execute the identical schedule via
  :meth:`repro.gossip.engine.GossipEngine.run_pairing_cycle` — the
  equivalence tests in ``tests/gossip`` prove both planes produce identical
  decoded sums, ω-weights, counters and exchange counts on shared schedules.
"""

from __future__ import annotations

from typing import Protocol as TypingProtocol

import numpy as np

from .churn import ChurnModel
from .vectorized import random_pairing

__all__ = ["VectorizedGossipEngine", "VectorizedProtocol"]


class VectorizedProtocol(TypingProtocol):
    """Anything that can react to a batch of disjoint pairwise exchanges."""

    def exchange_pairs(self, left: np.ndarray, right: np.ndarray) -> None:
        """Perform one batch of simultaneous point-to-point exchanges."""


class VectorizedGossipEngine:
    """Cycle-driven engine over array state — the 10⁵–10⁶-node substrate.

    ``churn`` is either the per-exchange disconnection probability (a float,
    as in :class:`repro.gossip.engine.GossipEngine`) or a
    :class:`repro.gossip.churn.ChurnModel`, whose ``per_exchange`` surface
    is applied each cycle.
    """

    def __init__(
        self,
        population: int,
        seed: int | np.random.Generator = 0,
        churn: float | ChurnModel = 0.0,
    ) -> None:
        if population < 2:
            raise ValueError("need at least two nodes to gossip")
        if not isinstance(churn, ChurnModel):
            churn = ChurnModel(per_exchange=float(churn))
        self.rng = np.random.default_rng(seed)
        self.population = population
        self.churn = churn
        self.exchanges = np.zeros(population, dtype=np.int64)
        self.online = np.ones(population, dtype=bool)
        self.cycles = 0
        # Observability hook: called after every cycle with
        # (cycle_index, exchanges_in_cycle); must not consume engine RNG.
        self.on_cycle = None

    def draw_pairing(self) -> tuple[np.ndarray, np.ndarray]:
        """Redraw the online mask, then pair the online nodes uniformly.

        Consumes engine randomness; exposed separately so a shadow test can
        capture the schedule before applying it to both planes.
        """
        self.online = self.churn.exchange_mask(self.population, self.rng)
        alive = np.flatnonzero(self.online)
        if len(alive) < 2:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return random_pairing(self.rng, alive)

    def run_pairing_cycle(
        self,
        left: np.ndarray,
        right: np.ndarray,
        *protocols: VectorizedProtocol,
    ) -> int:
        """Execute an externally-supplied pairing (shadow-execution hook)."""
        if len(left):
            for protocol in protocols:
                protocol.exchange_pairs(left, right)
            self.exchanges[left] += 1
            self.exchanges[right] += 1
        return len(left)

    def run_cycle(
        self, *protocols: VectorizedProtocol
    ) -> tuple[np.ndarray, np.ndarray]:
        """One cycle: churn redraw, pairing, exchanges.  Returns the pairing."""
        left, right = self.draw_pairing()
        self.run_pairing_cycle(left, right, *protocols)
        self.cycles += 1
        if self.on_cycle is not None:
            self.on_cycle(self.cycles, len(left))
        return left, right

    def run_cycles(self, cycles: int, *protocols: VectorizedProtocol) -> int:
        """Run ``cycles`` full cycles; returns the total exchange count."""
        total = 0
        for _ in range(cycles):
            left, _right = self.run_cycle(*protocols)
            total += len(left)
        return total

    @property
    def mean_exchanges_per_node(self) -> float:
        """Average number of exchange participations per node so far."""
        return float(self.exchanges.mean())
