"""Command-line interface: run the paper's experiments without writing code.

Subcommands
-----------
``cluster``   any clustering experiment, on any execution plane, driven by
the unified ``repro.api`` surface.  Flags build a :class:`~repro.api.RunSpec`
on the fly, or ``--spec`` loads one from JSON (the canonical, shareable
form)::

    python -m repro cluster --dataset cer --series 10000 --scale 100 \
        --k 20 --strategy G --epsilon 0.69 --iterations 8
    python -m repro cluster --spec examples/specs/cer_small.json \
        --checkpoint-dir ckpt --json-out result.json
    python -m repro cluster --dataset numed --plane vectorized --k 8

``plan``      print the Appendix B gossip/privacy plan (δ_atom, ι, n_e)::

    python -m repro plan --delta 0.995 --e-max 1e-12 --population 1000000 \
        --iterations 10 --length 24

``costs``     the Fig. 5 cost/bandwidth sheet for a key size::

    python -m repro costs --key-bits 1024 --k 50 --length 20

``serve``/``submit``/``jobs``/``tail``   the experiment service: a durable
job queue under ``--root``, executed by a concurrent scheduler that
survives kills by resuming from checkpoints::

    python -m repro submit batch.json --root runs
    python -m repro serve --root runs --max-workers 8 --drain
    python -m repro jobs --root runs
    python -m repro tail --root runs <job-id>

``db``/``report``   the run warehouse: incrementally ingest service
roots, ``--json-out`` records and ``BENCH_*.json`` mirrors into sqlite,
then reproduce the paper's comparisons from stored runs (no re-run)::

    python -m repro db ingest runs BENCH_fig3_attack_quality.json --db wh.db
    python -m repro db ingest runs --db wh.db --follow       # live fleet
    python -m repro report fig3 --db wh.db
    python -m repro db query "SELECT * FROM v_detector_counts" --db wh.db
    python -m repro jobs --db wh.db                          # store offline

``lint``      the AST-based invariant analyzer (determinism, layering,
ε-accounting; see docs/ARCHITECTURE.md): exit 0 clean, 1 on new
findings, 2 on usage errors.  ``--format json`` emits the
``chiaroscuro-lint/v1`` envelope the warehouse ingests, and
``report lint`` plots the violation trajectory over revisions::

    python -m repro lint src/repro
    python -m repro lint src/repro --format json > lint-findings.json
    python -m repro lint --list-rules
    python -m repro report lint --db wh.db
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from . import __version__
from .api import DATASETS, PLANES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Chiaroscuro (SIGMOD 2015) reproduction CLI"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cluster = sub.add_parser(
        "cluster", help="run a clustering experiment on any execution plane"
    )
    cluster.add_argument("--spec", metavar="PATH",
                         help="load a RunSpec JSON file; the spec-building flags "
                              "(--dataset/--series/.../--seed) are then ignored, "
                              "while --plane overrides the spec's plane and the "
                              "run flags (--checkpoint-dir, --no-resume, "
                              "--json-out) apply as usual")
    cluster.add_argument("--plane", choices=PLANES.keys(), default=None,
                         help="execution plane (default: quality, or the spec's)")
    cluster.add_argument("--dataset", choices=DATASETS.keys(), default="cer")
    cluster.add_argument("--series", type=int, default=10_000)
    cluster.add_argument("--scale", type=int, default=100)
    cluster.add_argument("--k", type=int, default=20)
    cluster.add_argument("--strategy", default="G", help="G, GF, UF5, UF10, …")
    cluster.add_argument("--epsilon", type=float, default=0.69)
    cluster.add_argument("--iterations", type=int, default=8)
    cluster.add_argument("--no-smoothing", action="store_true")
    cluster.add_argument("--churn", type=float, default=0.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--key-bits", type=int, default=256,
                         help="threshold-key modulus for --plane object "
                              "(flag-built specs only; Table 2 uses 1024)")
    cluster.add_argument("--bigint-backend", choices=("auto", "python", "gmpy2"),
                         default=None,
                         help="modular-arithmetic kernel (default: auto = "
                              "REPRO_BIGINT_BACKEND, else gmpy2 when "
                              "installed; bit-identical either way). "
                              "Overrides the spec's bigint_backend too")
    cluster.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="write a resumable checkpoint after every "
                              "iteration; an existing matching checkpoint "
                              "resumes the run")
    cluster.add_argument("--no-resume", action="store_true",
                         help="ignore existing checkpoints in --checkpoint-dir")
    cluster.add_argument("--json-out", metavar="PATH", default=None,
                         help="write the structured run record "
                              "(chiaroscuro-run/v1: spec + history + timings)")

    plan = sub.add_parser("plan", help="Appendix B privacy/gossip plan")
    plan.add_argument("--delta", type=float, default=0.995)
    plan.add_argument("--e-max", type=float, default=1e-12)
    plan.add_argument("--population", type=int, default=1_000_000)
    plan.add_argument("--iterations", type=int, default=10)
    plan.add_argument("--length", type=int, default=24)

    serve = sub.add_parser(
        "serve", help="run the experiment server over a service root"
    )
    serve.add_argument("--root", metavar="DIR", default="service-root",
                       help="service root directory (default: service-root)")
    serve.add_argument("--max-workers", type=int, default=4,
                       help="concurrent worker processes (default: 4)")
    serve.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                       help="scheduler poll interval (default: 0.2)")
    serve.add_argument("--drain", action="store_true",
                       help="exit once the queue is empty instead of "
                            "serving forever")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="with --drain: give up after this many seconds")

    submit = sub.add_parser(
        "submit", help="enqueue RunSpec JSON files (object or array per file)"
    )
    submit.add_argument("specs", nargs="+", metavar="SPEC",
                        help="spec files; each holds one spec object or a "
                             "JSON array of specs (a batch)")
    submit.add_argument("--root", metavar="DIR", default="service-root")

    jobs = sub.add_parser("jobs", help="list the service root's jobs")
    jobs.add_argument("--root", metavar="DIR", default="service-root")
    jobs.add_argument("--db", metavar="FILE", default=None, dest="db_path",
                      help="read job status from an ingested warehouse "
                           "instead of the store directory (for when the "
                           "root is remote or unavailable)")
    jobs.add_argument("--state", choices=("queued", "running", "completed",
                                          "failed"),
                      default=None, help="only jobs in this state")
    jobs.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable output (one JSON array)")

    tail = sub.add_parser(
        "tail", help="print a job's event log (or the combined feed)"
    )
    tail.add_argument("job", nargs="?", default=None,
                      help="job id (omit for the combined feed)")
    tail.add_argument("--root", metavar="DIR", default="service-root")
    tail.add_argument("--follow", action="store_true",
                      help="keep following appends (Ctrl-C to stop)")
    tail.add_argument("--raw", action="store_true",
                      help="print raw NDJSON records instead of the "
                           "rendered form")

    db = sub.add_parser(
        "db", help="the run warehouse: ingest and query stored telemetry"
    )
    db_sub = db.add_subparsers(dest="db_command", required=True)
    ingest = db_sub.add_parser(
        "ingest",
        help="incrementally ingest service roots, run records and "
             "BENCH_*.json files (idempotent: re-ingesting is a no-op)",
    )
    ingest.add_argument("paths", nargs="+", metavar="PATH",
                        help="a service root directory, a --json-out run "
                             "record, a BENCH_*.json file, or a directory "
                             "of them")
    ingest.add_argument("--db", metavar="FILE", default="warehouse.db",
                        dest="db_path", help="warehouse file (default: "
                                             "warehouse.db; created and "
                                             "migrated automatically)")
    ingest.add_argument("--follow", action="store_true",
                        help="live tailing mode: keep re-ingesting deltas "
                             "from a running fleet (Ctrl-C to stop)")
    ingest.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="with --follow: delay between passes "
                             "(default: 0.5)")
    ingest.add_argument("--max-seconds", type=float, default=None,
                        metavar="SECONDS",
                        help="with --follow: stop after this long instead "
                             "of waiting for Ctrl-C")
    query = db_sub.add_parser(
        "query", help="run read-only SQL against the warehouse "
                      "(tables and v_* views)"
    )
    query.add_argument("sql", metavar="SQL")
    query.add_argument("--db", metavar="FILE", default="warehouse.db",
                       dest="db_path")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="emit rows as one JSON array")
    db_stats = db_sub.add_parser(
        "stats", help="row counts, sources and event-type coverage"
    )
    db_stats.add_argument("--db", metavar="FILE", default="warehouse.db",
                          dest="db_path")
    db_stats.add_argument("--json", action="store_true", dest="as_json")

    report = sub.add_parser(
        "report",
        help="render the paper's comparisons from the warehouse "
             "(no protocol re-run)",
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    rep_fig2 = report_sub.add_parser(
        "fig2", help="inertia trajectories per strategy (Fig. 2)"
    )
    rep_fig2.add_argument("--strategy", default=None,
                          help="only this budget strategy (e.g. G, UF6)")
    rep_fig3 = report_sub.add_parser(
        "fig3", help="quality per deployment vs. baseline "
                     "(Fig. 3 / quality under attack)"
    )
    rep_fig3.add_argument("--like", default=None, metavar="PATTERN",
                          help="only runs whose name matches this SQL "
                               "LIKE pattern (e.g. 'attack-%%')")
    rep_attacks = report_sub.add_parser(
        "attacks", help="detector counts per fault class"
    )
    rep_latency = report_sub.add_parser(
        "latency", help="per-plane iteration latency percentiles "
                        "with the crypto_ms split"
    )
    rep_bench = report_sub.add_parser(
        "bench", help="bench metric trajectory over git revisions"
    )
    rep_bench.add_argument("--bench", default=None,
                           help="only this bench (e.g. fig3_attack_quality)")
    rep_bench.add_argument("--metric", default=None, metavar="PATTERN",
                           help="only metrics matching this SQL LIKE "
                                "pattern")
    rep_lint = report_sub.add_parser(
        "lint", help="lint-finding trajectory over git revisions"
    )
    rep_lint.add_argument("--rule", default=None,
                          help="only this lint rule (e.g. determinism-rng)")
    for rep in (rep_fig2, rep_fig3, rep_attacks, rep_latency, rep_bench,
                rep_lint):
        rep.add_argument("--db", metavar="FILE", default="warehouse.db",
                         dest="db_path")
        rep.add_argument("--format", choices=("text", "markdown"),
                         default="text", dest="fmt")

    lint = sub.add_parser(
        "lint",
        help="AST-based invariant analyzer (determinism, layering, "
             "ε-accounting contracts)",
    )
    lint.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="fmt",
                      help="json emits the chiaroscuro-lint/v1 envelope "
                           "the warehouse ingests")
    lint.add_argument("--rules", default=None, metavar="RULE[,RULE...]",
                      help="run only these rules")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      metavar="FILE",
                      help="known-findings file; matches are reported as "
                           "'baselined' and don't fail the run "
                           "(default: lint-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline file entirely")
    lint.add_argument("--write-baseline", action="store_true",
                      help="snapshot current findings to --baseline and "
                           "exit 0")
    lint.add_argument("--verbose", action="store_true",
                      help="text format: also show suppressed and "
                           "baselined findings")

    costs = sub.add_parser("costs", help="Fig. 5 cost/bandwidth sheet")
    costs.add_argument("--key-bits", type=int, default=1024)
    costs.add_argument("--k", type=int, default=50)
    costs.add_argument("--length", type=int, default=20)
    costs.add_argument("--measure", action="store_true",
                       help="also measure real crypto wall-times (slow)")
    costs.add_argument("--bigint-backend", choices=("auto", "python", "gmpy2"),
                       default="auto",
                       help="modular-arithmetic kernel for --measure")
    return parser


def _cmd_cluster(args, out) -> int:
    from .api import RunSpec

    try:
        if args.spec:
            spec = RunSpec.load(args.spec)
            if args.plane and args.plane != spec.plane:
                spec = spec.with_plane(args.plane)
        else:
            spec = RunSpec.from_cli_args(args)
        if args.bigint_backend and args.bigint_backend != spec.params.bigint_backend:
            spec = spec.replace(
                params=replace(spec.params, bigint_backend=args.bigint_backend)
            )
        return _run_cluster(args, spec, out)
    except ValueError as exc:
        # Spec validation and checkpoint refusals (e.g. "written by a
        # different spec") are user errors: message + exit code, no
        # traceback.
        print(f"error: {exc}", file=out)
        return 2


def _run_cluster(args, spec, out) -> int:
    from .api import (
        CheckpointSaved,
        Experiment,
        FaultDetected,
        IterationCompleted,
        RunAborted,
        RunCompleted,
        RunStarted,
        run_record,
    )

    experiment = Experiment.from_spec(spec)
    result = None
    environment = None
    started = time.perf_counter()
    header_printed = False
    for event in experiment.run_iter(
        checkpoint_dir=args.checkpoint_dir, resume=not args.no_resume
    ):
        if isinstance(event, RunStarted):
            environment = {
                "crypto_backend": event.crypto_backend,
                "bigint_backend": event.bigint_backend,
                "key_bits": event.key_bits,
            }
            print(f"dataset={event.dataset_name} t={event.t} n={event.n} "
                  f"population={event.population:,} "
                  f"sensitivity={event.sum_sensitivity:.0f}", file=out)
            print(f"strategy={event.label} plane={spec.plane} seed={spec.seed} "
                  f"bigint={event.bigint_backend}", file=out)
            if event.resumed_iteration:
                print(f"resuming after iteration {event.resumed_iteration} "
                      f"(checkpoint in {args.checkpoint_dir})", file=out)
        elif isinstance(event, IterationCompleted):
            if not header_printed:
                print(f"{'iter':>4} {'pre-inertia':>12} {'post-inertia':>13} "
                      f"{'#centroids':>11} {'eps':>9} {'exch/node':>10}", file=out)
                header_printed = True
            exchanges = (f"{event.exchanges_per_node:>10.0f}"
                         if event.exchanges_per_node is not None else f"{'-':>10}")
            stats = event.stats
            print(f"{stats.iteration:>4} {stats.pre_inertia:>12.2f} "
                  f"{stats.post_inertia:>13.2f} {stats.n_centroids:>11d} "
                  f"{stats.epsilon_spent:>9.4f} {exchanges}", file=out)
        elif isinstance(event, CheckpointSaved):
            pass  # noted in the summary; per-iteration chatter stays low
        elif isinstance(event, FaultDetected):
            print(f"fault detected: {event.fault} via {event.detector} "
                  f"(iteration {event.iteration}, "
                  f"{len(event.participants)} participant(s) flagged)", file=out)
        elif isinstance(event, RunAborted):
            print(f"run aborted at iteration {event.iteration}: {event.reason} "
                  f"(epsilon charged: {event.epsilon_charged:.4f})", file=out)
        elif isinstance(event, RunCompleted):
            result = event.result
    elapsed = time.perf_counter() - started

    if result is None or not result.history:
        print("no iterations completed (budget exhausted or clusters lost)",
              file=out)
        return 1
    best = result.best_iteration()
    print(f"best iteration: {best.iteration} (pre-inertia {best.pre_inertia:.2f})",
          file=out)
    if args.checkpoint_dir:
        print(f"checkpoints in {args.checkpoint_dir} "
              f"(resume with the same command)", file=out)
    if args.json_out:
        record = run_record(spec, result, timings={"wall_seconds": elapsed},
                            environment=environment)
        with open(args.json_out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"run record written to {args.json_out}", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from .service import JobState, JobStore, Scheduler

    if args.timeout is not None and not args.drain:
        print("error: --timeout only applies with --drain "
              "(a foreground server runs until interrupted)", file=out)
        return 2
    store = JobStore(args.root)
    scheduler = Scheduler(
        store, max_workers=args.max_workers, poll_interval=args.poll
    )
    recovered = scheduler.recover()
    for job in recovered:
        print(f"recovered {job.job_id} (re-queued; will resume from its "
              f"latest checkpoint)", file=out)
    print(f"serving {store.root} with {args.max_workers} worker(s)", file=out)
    if args.drain:
        # Score only the jobs this drain is responsible for: a job that
        # failed terminally in some *previous* session must not make
        # every future drain exit 1 forever.
        watched = {
            job.job_id
            for job in store.in_state(JobState.QUEUED, JobState.RUNNING)
        }
        try:
            jobs = [
                job for job in scheduler.drain(timeout=args.timeout)
                if job.job_id in watched
            ]
        except TimeoutError as exc:
            print(f"error: {exc}", file=out)
            return 1
        failed = [job for job in jobs if job.state == JobState.FAILED]
        done = [job for job in jobs if job.state == JobState.COMPLETED]
        print(f"drained: {len(done)} completed, {len(failed)} failed", file=out)
        for job in failed:
            print(f"  failed {job.job_id}: {job.error}", file=out)
        return 1 if failed else 0
    try:
        scheduler.run_forever()
    except KeyboardInterrupt:
        print("interrupted; running jobs will resume on the next serve",
              file=out)
    return 0


def _cmd_submit(args, out) -> int:
    from .service import JobStore, load_specs

    store = JobStore(args.root)
    try:
        # Load and validate every file before enqueuing anything, so a
        # malformed later file cannot leave earlier files half-submitted.
        specs = [spec for path in args.specs for spec in load_specs(path)]
        jobs = store.submit_batch(specs)
    except KeyError as exc:
        # A spec dict missing a required block surfaces as KeyError.
        print(f"error: spec is missing required block {exc}", file=out)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    for job in jobs:
        print(f"queued {job.job_id}", file=out)
    print(f"{len(jobs)} job(s) submitted to {store.root}", file=out)
    return 0


def _cmd_jobs(args, out) -> int:
    if args.db_path:
        return _cmd_jobs_from_db(args, out)
    from .service import JobStore

    store = JobStore(args.root)
    jobs = store.jobs()
    if args.state:
        jobs = [job for job in jobs if job.state == args.state]
    if args.as_json:
        print(json.dumps([job.to_dict() for job in jobs], indent=2), file=out)
        return 0
    if not jobs:
        print(f"no jobs in {store.root}", file=out)
        return 0
    print(f"{'job':<42} {'state':<10} {'plane':<11} {'strategy':<9} "
          f"{'attempts':>8}", file=out)
    for job in jobs:
        print(f"{job.job_id:<42} {job.state:<10} "
              f"{job.spec.get('plane', '?'):<11} "
              f"{job.spec.get('strategy', '?'):<9} {job.attempts:>8}", file=out)
    return 0


def _cmd_jobs_from_db(args, out) -> int:
    """``repro jobs --db``: job status from the warehouse, store offline.

    Sorted exactly like the store's listing — submit order
    (``submitted_at``, then ``job_id``) — so both surfaces agree
    row-for-row on the same fleet.
    """
    from .warehouse import connect_readonly, run_query

    try:
        con = connect_readonly(args.db_path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    try:
        rows = run_query(
            con,
            "SELECT job_id, root, name, state, plane, strategy, "
            "submitted_at, started_at, finished_at, attempts, error "
            "FROM jobs ORDER BY COALESCE(submitted_at, 0), job_id",
        )
    finally:
        con.close()
    if args.state:
        rows = [row for row in rows if row["state"] == args.state]
    if args.as_json:
        print(json.dumps(rows, indent=2), file=out)
        return 0
    if not rows:
        print(f"no jobs ingested in {args.db_path}", file=out)
        return 0
    print(f"{'job':<42} {'state':<10} {'plane':<11} {'strategy':<9} "
          f"{'attempts':>8}", file=out)
    for row in rows:
        print(f"{row['job_id']:<42} {row['state']:<10} "
              f"{row['plane'] or '?':<11} "
              f"{row['strategy'] or '?':<9} {row['attempts']:>8}", file=out)
    return 0


def _cmd_db(args, out) -> int:
    import sqlite3

    from . import warehouse

    if args.db_command == "ingest":
        try:
            con = warehouse.connect(args.db_path)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        try:
            if args.follow:
                import time as _time

                deadline = (
                    _time.monotonic() + args.max_seconds
                    if args.max_seconds is not None
                    else None
                )
                try:
                    totals = warehouse.follow_ingest(
                        con,
                        args.paths,
                        poll_interval=args.poll,
                        should_stop=(
                            (lambda: _time.monotonic() >= deadline)
                            if deadline is not None
                            else None
                        ),
                    )
                except KeyboardInterrupt:
                    totals = warehouse.table_counts(con)
                    print("follow interrupted", file=out)
            else:
                totals = warehouse.ingest_paths(con, args.paths)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=out)
            return 2
        finally:
            con.close()
        new = {k: v for k, v in totals.items() if v}
        summary = ", ".join(f"+{v} {k}" for k, v in new.items()) or "no new rows"
        print(f"ingested into {args.db_path}: {summary}", file=out)
        return 0

    try:
        con = warehouse.connect_readonly(args.db_path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    try:
        if args.db_command == "stats":
            payload = warehouse.stats(con)
            if args.as_json:
                print(json.dumps(payload, indent=2), file=out)
                return 0
            print(f"warehouse {args.db_path} "
                  f"(schema v{payload['schema_version']})", file=out)
            for table, count in payload["tables"].items():
                print(f"  {table:<14} {count:>8}", file=out)
            if payload["runs_by_source"]:
                print("runs by source: " + ", ".join(
                    f"{source}={count}"
                    for source, count in payload["runs_by_source"].items()
                ), file=out)
            if payload["events_by_type"]:
                print("events by type: " + ", ".join(
                    f"{kind}={count}"
                    for kind, count in payload["events_by_type"].items()
                ), file=out)
            return 0
        # db query
        try:
            rows = warehouse.run_query(con, args.sql)
        except sqlite3.Error as exc:
            print(f"error: {exc}", file=out)
            return 2
        if args.as_json:
            print(warehouse.to_json(rows), file=out)
            return 0
        if not rows:
            print("(no rows)", file=out)
            return 0
        headers = list(rows[0].keys())
        table = [[("" if row[h] is None else str(row[h])) for h in headers]
                 for row in rows]
        for line in warehouse.render_table(headers, table):
            print(line, file=out)
        return 0
    finally:
        con.close()


def _cmd_report(args, out) -> int:
    from . import warehouse

    try:
        con = warehouse.connect_readonly(args.db_path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    try:
        if args.report_command == "fig2":
            text = warehouse.report_fig2(
                con, strategy=args.strategy, fmt=args.fmt
            )
        elif args.report_command == "fig3":
            text = warehouse.report_fig3(con, like=args.like, fmt=args.fmt)
        elif args.report_command == "attacks":
            text = warehouse.report_attacks(con, fmt=args.fmt)
        elif args.report_command == "latency":
            text = warehouse.report_latency(con, fmt=args.fmt)
        elif args.report_command == "lint":
            text = warehouse.report_lint(con, rule=args.rule, fmt=args.fmt)
        else:  # bench
            text = warehouse.report_bench(
                con, bench=args.bench, metric=args.metric, fmt=args.fmt
            )
    finally:
        con.close()
    print(text, file=out)
    return 0


def _render_event(record: dict) -> str:
    job = record.get("job", "?")
    kind = record.get("type", "?")
    try:
        detail = _render_detail(kind, record)
    except (TypeError, ValueError, KeyError):
        # A record from another version (or missing numeric fields) must
        # not abort the whole tail; fall back to the raw line.
        detail = json.dumps(record)
    return f"[{job}] {kind} {detail}".rstrip()


def _render_detail(kind: str, record: dict) -> str:
    return {
        "run_started": lambda r: (
            f"label={r.get('label')} dataset={r.get('dataset')} "
            f"resumed_after={r.get('resumed_iteration')}"
        ),
        "iteration_completed": lambda r: (
            f"iteration={r.get('iteration')} "
            f"pre_inertia={r.get('pre_inertia'):.2f} "
            f"centroids={r.get('n_centroids')} "
            f"eps_total={r.get('epsilon_spent_total'):.4f}"
        ),
        "checkpoint_saved": lambda r: f"iteration={r.get('iteration')}",
        "run_completed": lambda r: (
            f"reason={r.get('reason')} iterations={r.get('iterations')}"
        ),
        "job_completed": lambda r: f"wall={r.get('wall_seconds')}s",
        "job_failed": lambda r: f"error={r.get('error')}",
    }.get(kind, lambda r: "")(record)


def _cmd_tail(args, out) -> int:
    from .service import JobStore, tail_events

    store = JobStore(args.root)
    if args.job:
        try:
            store.get(args.job)
        except KeyError as exc:
            print(f"error: {exc}", file=out)
            return 2
        path = store.events_path(args.job)
    else:
        path = store.feed_path
    try:
        for record in tail_events(path, follow=args.follow):
            print(json.dumps(record) if args.raw else _render_event(record),
                  file=out)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_plan(args, out) -> int:
    from .privacy import GossipPrivacyPlan

    plan = GossipPrivacyPlan(
        delta=args.delta, e_max=args.e_max, population=args.population,
        max_iterations=args.iterations, series_length=args.length,
    )
    print(f"delta={plan.delta} e_max={plan.e_max} population={plan.population:,}", file=out)
    print(f"delta_atom = {plan.delta_atom:.10f} "
          f"(= {args.iterations * 2 * args.length}-th root of delta)", file=out)
    print(f"iota = {plan.iota:.3e} (strict Lemma-2 variant: {plan.iota_strict:.3e})",
          file=out)
    print(f"exchanges per participant per EESum (Thm 3): n_e = {plan.exchanges}", file=out)
    print(f"Lemma-2 noise inflation factor: {plan.noise_inflation:.12f}", file=out)
    return 0


def _cmd_costs(args, out) -> int:
    import random

    from .analysis import LocalCostModel, measure_crypto_costs
    from .crypto import bigint, generate_threshold_keypair

    try:
        backend = bigint.resolve_backend(args.bigint_backend)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    # Scoped selection (restored on exit) — a `costs` invocation must not
    # flip the process-global kernel for whatever runs next.
    with bigint.use_backend(backend):
        keypair = generate_threshold_keypair(
            args.key_bits, n_shares=5, threshold=3, rng=random.Random(0)
        )
        model = LocalCostModel(keypair.public, k=args.k, series_length=args.length)
        print(f"key: {args.key_bits} bits, ciphertext {keypair.public.ciphertext_bytes} B",
              file=out)
        print(f"means set ({args.k} × ({args.length}+1) ciphertexts): "
              f"{model.transfer_bytes / 1024:.1f} kB", file=out)
        print(f"sum exchange: {model.exchange_bytes() / 1024:.1f} kB; "
              f"decryption exchange: {model.decryption_exchange_bytes() / 1024:.1f} kB",
              file=out)
        print(f"transfer at 1 Mb/s: {model.transfer_seconds():.2f} s", file=out)
        if args.measure:
            print(f"measuring with bigint backend: {backend}", file=out)
            costs = measure_crypto_costs(keypair, k=args.k,
                                         series_length=args.length,
                                         repetitions=1)
            for op, sample in costs.items():
                print(f"{op:>8}: avg {sample.average:.3f} s", file=out)
    return 0


def _cmd_lint(args, out) -> int:
    from .analysis.lint import (
        RULES,
        load_baseline,
        render_json,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        for key in RULES:
            print(f"{key:<24} {RULES.get(key).description}", file=out)
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            # The *default* baseline is optional; one named explicitly
            # must exist.
            if args.baseline != "lint-baseline.json":
                print(f"error: no baseline file at {args.baseline}",
                      file=out)
                return 2
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    try:
        report = run_lint(args.paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc}", file=out)
        print("usage: repro lint [PATH ...] [--format text|json] "
              "[--rules RULE,...]", file=out)
        return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return 2
    if args.write_baseline:
        count = write_baseline(args.baseline, report.findings)
        print(f"wrote {count} finding(s) to {args.baseline}", file=out)
        return 0
    if args.fmt == "json":
        out.write(render_json(report))
    else:
        out.write(render_text(report, verbose=args.verbose))
    return report.exit_code


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    With no arguments at all, prints the full help and exits 2 (instead of
    the terse argparse usage error).
    """
    out = out or sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    if not argv:
        parser.print_help(out)
        return 2
    args = parser.parse_args(argv)
    handlers = {
        "cluster": _cmd_cluster,
        "plan": _cmd_plan,
        "costs": _cmd_costs,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "tail": _cmd_tail,
        "db": _cmd_db,
        "report": _cmd_report,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args, out)
    except BrokenPipeError:
        # `repro report ... | head` closing the pipe early is a normal
        # exit, not a traceback.  Detach stdout so the interpreter's
        # shutdown flush doesn't raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
