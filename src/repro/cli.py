"""Command-line interface: run the paper's experiments without writing code.

Subcommands
-----------
``cluster``   perturbed k-means on a synthetic workload::

    python -m repro cluster --dataset cer --series 10000 --scale 100 \
        --k 20 --strategy G --epsilon 0.69 --iterations 8

``plan``      print the Appendix B gossip/privacy plan (δ_atom, ι, n_e)::

    python -m repro plan --delta 0.995 --e-max 1e-12 --population 1000000 \
        --iterations 10 --length 24

``costs``     the Fig. 5 cost/bandwidth sheet for a key size::

    python -m repro costs --key-bits 1024 --k 50 --length 20
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Chiaroscuro (SIGMOD 2015) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cluster = sub.add_parser("cluster", help="run a perturbed k-means experiment")
    cluster.add_argument("--dataset", choices=("cer", "numed"), default="cer")
    cluster.add_argument("--series", type=int, default=10_000)
    cluster.add_argument("--scale", type=int, default=100)
    cluster.add_argument("--k", type=int, default=20)
    cluster.add_argument("--strategy", default="G", help="G, GF, UF5, UF10, …")
    cluster.add_argument("--epsilon", type=float, default=0.69)
    cluster.add_argument("--iterations", type=int, default=8)
    cluster.add_argument("--no-smoothing", action="store_true")
    cluster.add_argument("--churn", type=float, default=0.0)
    cluster.add_argument("--seed", type=int, default=0)

    plan = sub.add_parser("plan", help="Appendix B privacy/gossip plan")
    plan.add_argument("--delta", type=float, default=0.995)
    plan.add_argument("--e-max", type=float, default=1e-12)
    plan.add_argument("--population", type=int, default=1_000_000)
    plan.add_argument("--iterations", type=int, default=10)
    plan.add_argument("--length", type=int, default=24)

    costs = sub.add_parser("costs", help="Fig. 5 cost/bandwidth sheet")
    costs.add_argument("--key-bits", type=int, default=1024)
    costs.add_argument("--k", type=int, default=50)
    costs.add_argument("--length", type=int, default=20)
    costs.add_argument("--measure", action="store_true",
                       help="also measure real crypto wall-times (slow)")
    return parser


def _cmd_cluster(args, out) -> int:
    from .core import PerturbationOptions, perturbed_kmeans
    from .datasets import courbogen_like_centroids, generate_cer, generate_numed
    from .clustering import sample_init
    from .privacy import strategy_from_name

    rng = np.random.default_rng(args.seed)
    if args.dataset == "cer":
        data = generate_cer(n_series=args.series, population_scale=args.scale, seed=args.seed)
        init = courbogen_like_centroids(args.k, rng)
    else:
        data = generate_numed(n_series=args.series, population_scale=args.scale, seed=args.seed)
        init = sample_init(data.values, args.k, rng)

    strategy = strategy_from_name(args.strategy, args.epsilon)
    result = perturbed_kmeans(
        data, init, strategy, max_iterations=args.iterations,
        options=PerturbationOptions(smoothing=not args.no_smoothing),
        churn=args.churn, rng=rng,
    )
    print(f"dataset={data.name} t={data.t} n={data.n} "
          f"population={data.population:,} sensitivity={data.sum_sensitivity:.0f}",
          file=out)
    print(f"strategy={result.label} iterations={result.iterations}", file=out)
    print(f"{'iter':>4} {'pre-inertia':>12} {'post-inertia':>13} {'#centroids':>11} {'eps':>9}",
          file=out)
    for stats in result.history:
        print(f"{stats.iteration:>4} {stats.pre_inertia:>12.2f} "
              f"{stats.post_inertia:>13.2f} {stats.n_centroids:>11d} "
              f"{stats.epsilon_spent:>9.4f}", file=out)
    best = result.best_iteration()
    print(f"best iteration: {best.iteration} (pre-inertia {best.pre_inertia:.2f})",
          file=out)
    return 0


def _cmd_plan(args, out) -> int:
    from .privacy import GossipPrivacyPlan

    plan = GossipPrivacyPlan(
        delta=args.delta, e_max=args.e_max, population=args.population,
        max_iterations=args.iterations, series_length=args.length,
    )
    print(f"delta={plan.delta} e_max={plan.e_max} population={plan.population:,}", file=out)
    print(f"delta_atom = {plan.delta_atom:.10f} "
          f"(= {args.iterations * 2 * args.length}-th root of delta)", file=out)
    print(f"iota = {plan.iota:.3e} (strict Lemma-2 variant: {plan.iota_strict:.3e})",
          file=out)
    print(f"exchanges per participant per EESum (Thm 3): n_e = {plan.exchanges}", file=out)
    print(f"Lemma-2 noise inflation factor: {plan.noise_inflation:.12f}", file=out)
    return 0


def _cmd_costs(args, out) -> int:
    import random

    from .analysis import LocalCostModel, measure_crypto_costs
    from .crypto import generate_threshold_keypair

    keypair = generate_threshold_keypair(
        args.key_bits, n_shares=5, threshold=3, rng=random.Random(0)
    )
    model = LocalCostModel(keypair.public, k=args.k, series_length=args.length)
    print(f"key: {args.key_bits} bits, ciphertext {keypair.public.ciphertext_bytes} B",
          file=out)
    print(f"means set ({args.k} × ({args.length}+1) ciphertexts): "
          f"{model.transfer_bytes / 1024:.1f} kB", file=out)
    print(f"sum exchange: {model.exchange_bytes() / 1024:.1f} kB; "
          f"decryption exchange: {model.decryption_exchange_bytes() / 1024:.1f} kB",
          file=out)
    print(f"transfer at 1 Mb/s: {model.transfer_seconds():.2f} s", file=out)
    if args.measure:
        costs = measure_crypto_costs(keypair, k=args.k, series_length=args.length,
                                     repetitions=1)
        for op, sample in costs.items():
            print(f"{op:>8}: avg {sample.average:.3f} s", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {"cluster": _cmd_cluster, "plan": _cmd_plan, "costs": _cmd_costs}
    return handlers[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
