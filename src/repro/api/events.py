"""Typed streaming events emitted by ``Experiment.run_iter``.

The event stream is the observation surface of a run: every frontend
(CLI progress table, benchmark telemetry, a future service pushing
server-sent events) consumes the same sequence —

    RunStarted, (IterationCompleted [CheckpointSaved])*, RunCompleted

Runs executing under a fault plane (``RunSpec.faults``) may interleave
:class:`FaultDetected` events (the Sec. 4.4 countermeasures flagged an
injected adversary) and may end with a :class:`RunAborted` immediately
before the final ``RunCompleted`` (whose reason is then ``"aborted"``).

A consumer may stop iterating at any point (early stopping); generators
clean up behind it, and any checkpoints already written remain resumable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.results import ClusteringResult, IterationStats
    from .spec import RunSpec

__all__ = [
    "CheckpointSaved",
    "FaultDetected",
    "IterationCompleted",
    "RunAborted",
    "RunCompleted",
    "RunEvent",
    "RunStarted",
    "event_to_dict",
]


@dataclass(frozen=True)
class RunStarted:
    """Emitted once, before the first iteration (or after a resume)."""

    # repro-lint: allow=event-wire-sync -- heavyweight payload lives in the job record, not the wire form
    spec: "RunSpec"
    label: str  # paper-style strategy label, e.g. "G_SMA"
    dataset_name: str
    t: int  # stored series / participants
    n: int  # series length
    population: int  # effective individuals (t × population_scale)
    sum_sensitivity: float
    resumed_iteration: int = 0  # 0 = fresh run; i = resuming after iteration i
    crypto_backend: str = "serial"  # ciphertext-batch executor (params sheet)
    bigint_backend: str = "python"  # *resolved* arithmetic kernel, never "auto"
    key_bits: int = 0  # threshold-key modulus size (0 = no real crypto ran)


@dataclass(frozen=True)
class IterationCompleted:
    """One finished iteration: the paper's stats plus run-level counters."""

    stats: "IterationStats"
    epsilon_spent_total: float
    epsilon_remaining: float
    active_series: int | None = None  # churn counter (quality plane)
    agreement: float | None = None  # epidemic spread (protocol planes)
    exchanges_per_node: float | None = None  # gossip counter (protocol planes)
    crypto_ms: float | None = None  # ciphertext wall time (real-crypto planes)

    @property
    def iteration(self) -> int:
        return self.stats.iteration

    @property
    def n_centroids(self) -> int:
        return self.stats.n_centroids


@dataclass(frozen=True)
class CheckpointSaved:
    """A resumable checkpoint for the just-completed iteration was written."""

    iteration: int
    path: pathlib.Path


@dataclass(frozen=True)
class FaultDetected:
    """A Sec. 4.4 countermeasure flagged an injected fault during a run.

    ``detector`` names the machinery that fired (``device-registry``,
    ``exchange-guard``, ``decryption-cross-check``, ``coalition-audit``,
    ``availability-monitor``); ``participants`` are the offending device
    ids (capped to a readable prefix for large coalitions) and ``detail``
    is a small JSON-ready dict of detector-specific evidence.
    """

    iteration: int
    fault: str  # fault registry key, e.g. "byzantine"
    detector: str
    participants: tuple = ()
    detail: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "participants", tuple(self.participants))
        object.__setattr__(
            self, "detail", dict(self.detail) if self.detail else {}
        )


@dataclass(frozen=True)
class RunAborted:
    """A detected fault the protocol cannot safely continue past.

    Emitted at most once, immediately before the final ``RunCompleted``
    (whose reason is then ``"aborted"``).  ``epsilon_charged`` is the total
    privacy budget consumed *including* the aborted iteration's slice — the
    accountant charges before the iteration runs, so an abort never
    under-reports spend.
    """

    iteration: int
    fault: str
    reason: str
    epsilon_charged: float


@dataclass(frozen=True)
class RunCompleted:
    """Emitted once; carries the final result (and reason the loop ended)."""

    result: "ClusteringResult"
    reason: str  # "converged" | "budget" | "iterations" | "clusters-lost" | "aborted"


RunEvent = Union[
    RunStarted,
    IterationCompleted,
    CheckpointSaved,
    FaultDetected,
    RunAborted,
    RunCompleted,
]


def event_to_dict(event: RunEvent) -> dict:
    """Flatten a run event to a JSON-ready dict with a ``"type"`` tag.

    This is the wire form of the event stream — what the service appends
    to its NDJSON logs and what any future push transport would send.  The
    heavyweight payloads stay out: ``RunStarted.spec`` lives in the job
    record and ``RunCompleted.result`` in the run record, so event lines
    stay one-screen greppable.
    """
    if isinstance(event, RunStarted):
        return {
            "type": "run_started",
            "label": event.label,
            "dataset": event.dataset_name,
            "t": event.t,
            "n": event.n,
            "population": event.population,
            "sum_sensitivity": event.sum_sensitivity,
            "resumed_iteration": event.resumed_iteration,
            "crypto_backend": event.crypto_backend,
            "bigint_backend": event.bigint_backend,
            "key_bits": event.key_bits,
        }
    if isinstance(event, IterationCompleted):
        stats = event.stats
        return {
            "type": "iteration_completed",
            "iteration": stats.iteration,
            "pre_inertia": stats.pre_inertia,
            "post_inertia": stats.post_inertia,
            "n_centroids": stats.n_centroids,
            "epsilon_spent": stats.epsilon_spent,
            "epsilon_spent_total": event.epsilon_spent_total,
            "epsilon_remaining": event.epsilon_remaining,
            "active_series": event.active_series,
            "agreement": event.agreement,
            "exchanges_per_node": event.exchanges_per_node,
            "crypto_ms": event.crypto_ms,
        }
    if isinstance(event, CheckpointSaved):
        return {
            "type": "checkpoint_saved",
            "iteration": event.iteration,
            "path": str(event.path),
        }
    if isinstance(event, FaultDetected):
        return {
            "type": "fault_detected",
            "iteration": event.iteration,
            "fault": event.fault,
            "detector": event.detector,
            "participants": list(event.participants),
            "detail": dict(event.detail),
        }
    if isinstance(event, RunAborted):
        return {
            "type": "run_aborted",
            "iteration": event.iteration,
            "fault": event.fault,
            "reason": event.reason,
            "epsilon_charged": event.epsilon_charged,
        }
    if isinstance(event, RunCompleted):
        return {
            "type": "run_completed",
            "reason": event.reason,
            "iterations": event.result.iterations,
            "converged": event.result.converged,
            "n_centroids": (
                event.result.history[-1].n_centroids
                if event.result.history
                else 0
            ),
        }
    raise TypeError(f"not a run event: {type(event).__name__}")
