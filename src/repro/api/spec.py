"""The declarative experiment specification — ``RunSpec`` and its blocks.

A :class:`RunSpec` is the *artifact*: a frozen, JSON-round-trippable
description of one experiment — dataset block, init block, the full
:class:`~repro.core.config.ChiaroscuroParams` sheet (Tables 1–2), budget
strategy, seed and execution plane.  Any frontend (CLI, benchmark, test,
service) submits a spec; :class:`~repro.api.experiment.Experiment` decides
how to execute it.  The same spec modulo its ``plane`` field drives the
quality, object and vectorized planes.

Construction paths: direct, :meth:`RunSpec.from_dict` /
:meth:`RunSpec.from_json` / :meth:`RunSpec.load`, and
:meth:`RunSpec.from_cli_args` (the ``repro cluster`` flag set).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from ..core.config import ChiaroscuroParams
from .registry import DATASETS, INITIALIZERS, PLANES, resolve_strategy

__all__ = ["DatasetSpec", "FaultSpec", "InitSpec", "RunSpec"]

#: Planes that execute through ``ChiaroscuroRun`` and therefore must agree
#: with ``ChiaroscuroParams.protocol_plane``.
PROTOCOL_PLANES = ("object", "vectorized", "vectorized-crypto")

#: Default initializer per built-in dataset kind (used by ``from_cli_args``).
DEFAULT_INITIALIZERS = {
    "cer": "courbogen",
    "numed": "sample",
    "points2d": "sample",
    "timeseries": "sample",
}


def _jsonify(value: Any) -> Any:
    """Normalize to plain JSON types so spec equality survives round-trips."""
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    raise TypeError(f"spec parameter of unsupported type {type(value).__name__}")


@dataclass(frozen=True)
class DatasetSpec:
    """Which workload to build: a registry kind plus generator kwargs.

    ``params`` may carry its own ``"seed"``; otherwise the run seed is
    used, so sweeps can pin the dataset while varying run randomness.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonify(self.params))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "DatasetSpec":
        return cls(kind=d["kind"], params=dict(d.get("params", {})))


@dataclass(frozen=True)
class InitSpec:
    """How to draw the k initial centroids (``k`` itself lives in params.k).

    Like datasets, ``params`` may pin its own ``"seed"``.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonify(self.params))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "InitSpec":
        return cls(kind=d["kind"], params=dict(d.get("params", {})))


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: a fault-registry kind plus its config params.

    ``params`` are the constructor kwargs of the registered fault-config
    dataclass (e.g. ``{"loss": 0.2}`` for ``kind="network"``); they are
    validated at spec construction by instantiating the config.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonify(self.params))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "FaultSpec":
        return cls(kind=d["kind"], params=dict(d.get("params", {})))


@dataclass(frozen=True)
class RunSpec:
    """One experiment, fully specified and serializable.

    ``options`` carries plane-specific knobs outside the Table 1 sheet —
    the quality plane reads ``sensitivity_mode``, ``gossip_e_max`` and
    ``count_floor`` (see
    :class:`~repro.core.perturbed_kmeans.PerturbationOptions`).  Keys no
    registered plane declares in its ``option_keys`` are rejected here
    (typo protection); a plane simply ignores *other* planes' keys, so
    one spec can still pivot across planes.

    ``faults`` declares the hostile-deployment scenario: a tuple of
    :class:`FaultSpec` entries (registry kind + params) injected through
    :class:`~repro.faults.FaultPlan` when the run executes.  Only the
    protocol planes run a live adversary, so faults are rejected on the
    quality plane; an empty block is bit-identical to no block at all
    (and serializes to nothing — old checkpoints keep resuming).
    """

    dataset: DatasetSpec
    init: InitSpec
    params: ChiaroscuroParams = field(default_factory=ChiaroscuroParams)
    strategy: str = ""
    seed: int = 0
    plane: str = "quality"
    churn: float = 0.0
    options: dict = field(default_factory=dict)
    name: str = ""
    faults: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _jsonify(self.options))
        faults = tuple(
            f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
            for f in self.faults
        )
        object.__setattr__(self, "faults", faults)
        if faults:
            if self.plane not in PROTOCOL_PLANES:
                raise ValueError(
                    "faults require a protocol plane "
                    f"({' or '.join(map(repr, PROTOCOL_PLANES))}); the "
                    f"{self.plane!r} plane runs no live adversary"
                )
            # Deferred import: repro.faults itself imports repro.api (for
            # the registry and event types), so binding it at module level
            # would deadlock package initialization.
            from ..faults import build_fault

            for fault in faults:
                try:
                    build_fault(fault.kind, fault.params)
                except KeyError as exc:
                    raise ValueError(str(exc)) from None
        if not self.strategy:
            object.__setattr__(self, "strategy", self.params.budget_strategy)
        if not 0 <= self.churn < 1:
            raise ValueError("churn must be in [0, 1)")
        if self.plane not in PLANES:
            raise ValueError(
                f"unknown plane {self.plane!r}; registered: {', '.join(PLANES.keys())}"
            )
        if self.dataset.kind not in DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset.kind!r}; registered: "
                f"{', '.join(DATASETS.keys())}"
            )
        if self.init.kind not in INITIALIZERS:
            raise ValueError(
                f"unknown initializer {self.init.kind!r}; registered: "
                f"{', '.join(INITIALIZERS.keys())}"
            )
        try:
            resolve_strategy(self.strategy, self.params)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        known_options = set().union(
            *(PLANES.get(key).option_keys for key in PLANES)
        )
        unknown = sorted(set(self.options) - known_options)
        if unknown:
            raise ValueError(
                f"unknown options key(s) {', '.join(map(repr, unknown))}; "
                f"keys declared by registered planes: "
                f"{', '.join(sorted(known_options)) or '(none)'}"
            )
        if self.plane in PROTOCOL_PLANES and self.params.protocol_plane != self.plane:
            raise ValueError(
                f"plane={self.plane!r} requires params.protocol_plane={self.plane!r} "
                f"(got {self.params.protocol_plane!r}); build the spec via "
                "from_dict/with_plane, which reconcile the two"
            )

    # ------------------------------------------------------------------ io

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "plane": self.plane,
            "seed": self.seed,
            "churn": self.churn,
            "strategy": self.strategy,
            "dataset": self.dataset.to_dict(),
            "init": self.init.to_dict(),
            "params": asdict(self.params),
            "options": dict(self.options),
        }
        if self.faults:
            # Emitted only when non-empty, so fault-free specs serialize
            # exactly as before the fault plane existed (checkpoint spec-
            # identity compatibility).
            d["faults"] = [fault.to_dict() for fault in self.faults]
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "RunSpec":
        plane = d.get("plane", "quality")
        params_dict = dict(d.get("params", {}))
        if plane in PROTOCOL_PLANES:
            params_dict["protocol_plane"] = plane
        try:
            params = ChiaroscuroParams(**params_dict)
        except TypeError as exc:
            raise ValueError(f"bad params block: {exc}") from None
        return cls(
            dataset=DatasetSpec.from_dict(d["dataset"]),
            init=InitSpec.from_dict(d["init"]),
            params=params,
            strategy=d.get("strategy", "") or params.budget_strategy,
            seed=int(d.get("seed", 0)),
            plane=plane,
            churn=float(d.get("churn", 0.0)),
            options=dict(d.get("options", {})),
            name=d.get("name", ""),
            faults=tuple(
                FaultSpec.from_dict(f) for f in d.get("faults", ())
            ),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "RunSpec":
        return cls.from_json(pathlib.Path(path).read_text())

    # ------------------------------------------------------------ variants

    def with_plane(self, plane: str) -> "RunSpec":
        """The same experiment on a different plane (the three-plane pivot)."""
        d = self.to_dict()
        d["plane"] = plane
        return RunSpec.from_dict(d)

    def replace(self, **changes) -> "RunSpec":
        """``dataclasses.replace`` with re-validation."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ cli

    @classmethod
    def from_cli_args(cls, args) -> "RunSpec":
        """Build a spec from the ``repro cluster`` argparse namespace.

        ``theta`` is pinned to 0 (the paper's Fig. 2 setting: traces span
        the full iteration budget) — pass a spec file for convergence-test
        runs.
        """
        plane = getattr(args, "plane", None) or "quality"
        params_dict = dict(
            k=args.k,
            epsilon=args.epsilon,
            max_iterations=args.iterations,
            budget_strategy=args.strategy.upper(),
            use_smoothing=not args.no_smoothing,
            key_bits=args.key_bits,
            bigint_backend=getattr(args, "bigint_backend", None) or "auto",
            theta=0.0,
        )
        if plane in PROTOCOL_PLANES:
            params_dict["protocol_plane"] = plane
        dataset_params: dict[str, Any] = {}
        if args.dataset in ("cer", "numed"):
            dataset_params = {"n_series": args.series, "population_scale": args.scale}
        elif args.dataset == "timeseries":
            raise ValueError(
                "the 'timeseries' dataset carries inline values — use --spec"
            )
        return cls(
            dataset=DatasetSpec(kind=args.dataset, params=dataset_params),
            init=InitSpec(kind=DEFAULT_INITIALIZERS.get(args.dataset, "sample")),
            params=ChiaroscuroParams(**params_dict),
            strategy=args.strategy.upper(),
            seed=args.seed,
            plane=plane,
            churn=args.churn,
        )
