"""The ``Experiment`` facade: one front door for every execution plane.

    spec = RunSpec.load("experiment.json")
    result = Experiment.from_spec(spec).run()

or, streaming with checkpointing:

    for event in Experiment.from_spec(spec).run_iter(checkpoint_dir="ckpt"):
        ...

``Experiment`` resolves the spec's registry keys (dataset, initializer,
strategy, plane), builds the workload, and dispatches to the plane's
runner.  Planes are :class:`ExecutionPlane` instances in the
:data:`~repro.api.registry.PLANES` registry — the built-ins (``quality``,
``object``, ``vectorized``) are registered by :mod:`repro.api.builtins`,
and a new plane is one ``@register_plane`` away.

Seed discipline (what makes checkpoint/resume bit-identical):

* dataset generation uses ``dataset.params["seed"]`` if present, else the
  run seed;
* the initializer draws from ``default_rng(init.params["seed"] | seed)``;
* the quality plane's perturbation stream is ``default_rng(seed + 1)``
  (mirroring ``ChiaroscuroRun``'s ``noise_rng``), and the protocol planes
  seed ``ChiaroscuroRun(seed=spec.seed)`` exactly as before this facade
  existed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..core.config import ChiaroscuroParams
from ..core.perturbed_kmeans import PerturbationOptions, iter_perturbed_kmeans
from ..crypto import bigint
from ..core.protocol import ChiaroscuroRun
from ..core.results import ClusteringResult, IterationStats
from ..datasets.timeseries import TimeSeriesSet
from ..privacy.budget import BudgetStrategy
from .checkpoint import Checkpoint, CheckpointStore
from .events import (
    CheckpointSaved,
    IterationCompleted,
    RunAborted,
    RunCompleted,
    RunEvent,
    RunStarted,
)
from .registry import DATASETS, INITIALIZERS, PLANES, resolve_strategy
from .spec import RunSpec

__all__ = [
    "Experiment",
    "ExecutionPlane",
    "PlaneStep",
    "RunContext",
    "RESULT_SCHEMA",
    "run_environment",
    "run_record",
]

#: Schema tag shared by every structured result emitted by the CLI and the
#: benchmark suite (see :func:`run_record`).
RESULT_SCHEMA = "chiaroscuro-run/v1"


def run_environment(spec: RunSpec) -> dict:
    """The crypto execution environment a spec resolves to, for telemetry.

    ``bigint_backend`` is the *concrete* kernel — never ``"auto"`` itself:
    an explicit spec choice is resolved (and validated), while ``auto``
    reports the process's active kernel, matching what ``ChiaroscuroRun``
    executes with — so a stored record states which arithmetic actually
    ran.
    ``key_bits`` is the threshold-key modulus size on planes that build
    genuine ciphertexts (``ExecutionPlane.uses_real_crypto`` — the
    ``object`` built-in); planes running no real crypto record
    ``key_bits = 0``.
    """
    requested = spec.params.bigint_backend
    return {
        "crypto_backend": spec.params.crypto_backend,
        "bigint_backend": (
            bigint.active_backend()
            if requested == "auto"
            else bigint.resolve_backend(requested)
        ),
        "key_bits": (
            spec.params.key_bits if PLANES.get(spec.plane).uses_real_crypto else 0
        ),
    }


@dataclass
class RunContext:
    """Everything a plane needs, resolved once per experiment."""

    spec: RunSpec
    dataset: TimeSeriesSet
    initial_centroids: np.ndarray
    strategy: BudgetStrategy
    params: ChiaroscuroParams
    keypair: Any = None  # optional pre-built ThresholdKeypair (object plane)
    runtime: Any = None  # plane-owned engine object, exposed for diagnostics
    fault_plan: Any = None  # FaultPlan when the spec declares faults


@dataclass
class PlaneStep:
    """The plane-agnostic per-iteration record planes yield to the facade."""

    stats: IterationStats
    centroids: np.ndarray
    converged: bool
    active_series: int | None = None
    agreement: float | None = None
    exchanges_per_node: float | None = None
    crypto_ms: float | None = None  # real-ciphertext wall time (crypto planes)
    rng_state: dict | None = None  # serializable; None = not checkpointable


class ExecutionPlane:
    """Base class for registry-registered execution planes."""

    key: str = ""
    supports_checkpoint: bool = False
    #: Whether runs on this plane build genuine ciphertexts (and therefore
    #: a threshold key of ``params.key_bits``); drives the ``key_bits``
    #: field of :func:`run_environment`.
    uses_real_crypto: bool = False
    #: ``RunSpec.options`` keys this plane consumes.  Spec validation
    #: rejects keys no registered plane declares (typo protection), while
    #: a plane ignores other planes' keys so one spec can pivot planes.
    option_keys: frozenset = frozenset()

    def run_iter(
        self,
        ctx: RunContext,
        resume: Checkpoint | None = None,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> Iterator[PlaneStep]:
        raise NotImplementedError

    def _reject_resume(self, resume: Checkpoint | None) -> None:
        if resume is not None and not self.supports_checkpoint:
            raise ValueError(
                f"plane {self.key!r} does not support checkpoint/resume"
            )


#: ``ChiaroscuroParams`` fields documented as result-neutral (bit-identical
#: runs for the same seed): pure execution-speed knobs.
_RESULT_NEUTRAL_PARAMS = frozenset(
    {"bigint_backend", "crypto_backend", "backend_workers"}
)


def _spec_identity(spec_dict: dict) -> dict:
    """A spec dict with result-neutral knobs stripped, for checkpoint
    compatibility checks.

    The bigint kernel and the execution backend are pure speed knobs
    (bit-identical outputs), so a run may legitimately resume its own
    checkpoint under a different kernel/backend/worker count — and
    checkpoints written before a knob existed must keep resuming.
    """
    identity = dict(spec_dict)
    identity["params"] = {
        k: v for k, v in spec_dict.get("params", {}).items()
        if k not in _RESULT_NEUTRAL_PARAMS
    }
    return identity


def _dataset_cache_key(kind: str, params: dict, seed: int) -> str:
    return json.dumps([kind, params, seed], sort_keys=True)


_DATASET_CACHE: dict[str, TimeSeriesSet] = {}
_DATASET_CACHE_MAX = 8


def build_dataset(kind: str, params: dict, seed: int) -> TimeSeriesSet:
    """Build (or reuse) a workload; sweeps over run seeds hit the cache."""
    params = dict(params)
    dataset_seed = params.pop("seed", seed)  # a pinned seed defines the data
    key = _dataset_cache_key(kind, params, dataset_seed)
    cached = _DATASET_CACHE.get(key)
    if cached is not None:
        return cached
    dataset = DATASETS.get(kind)(seed=dataset_seed, **params)
    if dataset.values.size <= 5_000_000:  # don't pin 10⁵–10⁶-node matrices
        if len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
        _DATASET_CACHE[key] = dataset
    return dataset


class Experiment:
    """Facade: resolve a :class:`RunSpec` and execute it on its plane."""

    def __init__(self, spec: RunSpec, keypair: Any = None) -> None:
        self.spec = spec
        self._keypair = keypair
        self._context: RunContext | None = None

    @classmethod
    def from_spec(cls, spec: RunSpec, *, keypair: Any = None) -> "Experiment":
        return cls(spec, keypair=keypair)

    # -------------------------------------------------------------- context

    @property
    def context(self) -> RunContext:
        """The resolved workload/strategy/centroids (built on first access)."""
        if self._context is None:
            self._context = self._build_context()
        return self._context

    def _build_context(self) -> RunContext:
        spec = self.spec
        dataset = build_dataset(spec.dataset.kind, spec.dataset.params, spec.seed)
        init_params = dict(spec.init.params)
        init_rng = np.random.default_rng(init_params.pop("seed", spec.seed))
        initial = INITIALIZERS.get(spec.init.kind)(
            dataset, spec.params.k, init_rng, **init_params
        )
        initial = np.asarray(initial, dtype=float)
        strategy = resolve_strategy(spec.strategy, spec.params)
        return RunContext(
            spec=spec,
            dataset=dataset,
            initial_centroids=initial,
            strategy=strategy,
            params=spec.params,
            keypair=self._keypair,
        )

    def smoothing_active(self) -> bool:
        """Whether the SMA post-step applies to this run (all planes agree)."""
        n = self.context.dataset.n
        window = self.spec.params.smoothing_window(n)
        return self.spec.params.use_smoothing and 0 < window < n

    def label(self) -> str:
        """Paper-style label for the run (e.g. ``"G_SMA"``)."""
        suffix = "_SMA" if self.smoothing_active() else ""
        return f"{self.spec.strategy.upper()}{suffix}"

    # ------------------------------------------------------------ execution

    def run_iter(
        self,
        checkpoint_dir: str | None = None,
        resume: bool = True,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> Iterator[RunEvent]:
        """Execute the spec, yielding typed :class:`RunEvent` objects.

        With ``checkpoint_dir``, a :class:`Checkpoint` is written after
        every iteration (on planes that support it) and, when ``resume``
        is true and the directory already holds a checkpoint *of the same
        spec*, the run continues after its last completed iteration.
        Consumers may stop iterating at any time (early stopping).

        A spec declaring ``faults`` runs under a
        :class:`~repro.faults.FaultPlan`: :class:`FaultDetected` events
        interleave with the stream, and a fault the protocol cannot
        continue past yields a :class:`RunAborted` followed by a final
        ``RunCompleted(reason="aborted")`` — a clean end, never an
        exception.  Faulted runs skip checkpoint writes (injector state is
        not serialized; a seeded faulted run re-executes deterministically
        from scratch, which crash recovery relies on instead).
        """
        spec = self.spec
        ctx = self.context
        plane: ExecutionPlane = PLANES.get(spec.plane)

        # Deferred import — repro.faults imports repro.api for the registry
        # and event types, so a module-level binding would deadlock
        # package initialization.
        from ..faults import FaultAbort, FaultPlan

        fault_plan = FaultPlan.from_spec(spec)
        ctx.fault_plan = fault_plan
        if fault_plan is not None:
            checkpoint_dir = None  # documented: faulted runs re-run, not resume

        store: CheckpointStore | None = None
        checkpoint: Checkpoint | None = None
        if checkpoint_dir is not None:
            if not plane.supports_checkpoint:
                raise ValueError(
                    f"plane {spec.plane!r} does not support checkpointing; "
                    "drop checkpoint_dir or use the quality/vectorized plane"
                )
            store = CheckpointStore(checkpoint_dir)
            if resume:
                checkpoint = store.latest()
                if checkpoint is not None and _spec_identity(
                    checkpoint.spec
                ) != _spec_identity(spec.to_dict()):
                    raise ValueError(
                        f"checkpoint in {store.directory} was written by a "
                        "different spec; refusing to resume (clear the "
                        "directory or pass resume=False)"
                    )

        result = ClusteringResult(
            centroids=ctx.initial_centroids.copy(),
            strategy=ctx.strategy.name,
            smoothing=self.smoothing_active(),
        )
        epsilon_total = ctx.strategy.epsilon
        spent = 0.0
        if checkpoint is not None:
            result.history = [
                IterationStats.from_dict(s) for s in checkpoint.history
            ]
            spent = checkpoint.epsilon_spent
            final_centroids = np.asarray(checkpoint.centroids, dtype=float)
        else:
            final_centroids = ctx.initial_centroids

        environment = run_environment(spec)
        yield RunStarted(
            spec=spec,
            label=self.label(),
            dataset_name=ctx.dataset.name,
            t=ctx.dataset.t,
            n=ctx.dataset.n,
            population=ctx.dataset.population,
            sum_sensitivity=ctx.dataset.sum_sensitivity,
            resumed_iteration=checkpoint.iteration if checkpoint else 0,
            crypto_backend=environment["crypto_backend"],
            bigint_backend=environment["bigint_backend"],
            key_bits=environment["key_bits"],
        )

        converged = checkpoint.converged if checkpoint is not None else False
        steps: Iterator[PlaneStep] = (
            iter(())  # the checkpointed run already converged: nothing to do
            if converged
            else plane.run_iter(ctx, resume=checkpoint, cycle_hook=cycle_hook)
        )
        aborted: Any = None
        try:
            for step in steps:
                result.history.append(step.stats)
                spent += step.stats.epsilon_spent
                final_centroids = step.centroids
                converged = step.converged
                if fault_plan is not None:
                    # Detections raised during the iteration precede its
                    # completion event.
                    yield from fault_plan.drain_events()
                yield IterationCompleted(
                    stats=step.stats,
                    epsilon_spent_total=spent,
                    epsilon_remaining=max(0.0, epsilon_total - spent),
                    active_series=step.active_series,
                    agreement=step.agreement,
                    exchanges_per_node=step.exchanges_per_node,
                    crypto_ms=step.crypto_ms,
                )
                if store is not None and step.rng_state is not None:
                    path = store.save(
                        Checkpoint(
                            spec=spec.to_dict(),
                            plane=spec.plane,
                            iteration=step.stats.iteration,
                            centroids=np.asarray(step.centroids).tolist(),
                            epsilon_spent=spent,
                            rng_state=step.rng_state,
                            history=[s.to_dict() for s in result.history],
                            converged=step.converged,
                        )
                    )
                    yield CheckpointSaved(
                        iteration=step.stats.iteration, path=path
                    )
        except FaultAbort as abort:
            aborted = abort
            if fault_plan is not None:
                yield from fault_plan.drain_events()
            yield RunAborted(
                iteration=abort.iteration,
                fault=abort.fault,
                reason=abort.reason,
                # The accountant charges ε *before* an iteration runs, so
                # the aborted iteration's slice is already spent — report
                # it, never under-report.
                epsilon_charged=spent + self._iteration_charge(abort.iteration),
            )

        if fault_plan is not None:
            # An iteration that ends the run without completing (lost
            # clusters, exhausted budget) may still have raised detections.
            yield from fault_plan.drain_events()
        result.centroids = np.asarray(final_centroids, dtype=float)
        result.converged = converged
        yield RunCompleted(
            result=result,
            reason="aborted" if aborted is not None else self._reason(result),
        )

    def run(
        self,
        checkpoint_dir: str | None = None,
        resume: bool = True,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> ClusteringResult:
        """Execute the spec to completion; returns the final result."""
        result: ClusteringResult | None = None
        for event in self.run_iter(
            checkpoint_dir=checkpoint_dir, resume=resume, cycle_hook=cycle_hook
        ):
            if isinstance(event, RunCompleted):
                result = event.result
        assert result is not None  # run_iter always ends with RunCompleted
        return result

    def _iteration_charge(self, iteration: int) -> float:
        """The ε slice the strategy charged for ``iteration`` (0 if none)."""
        from ..privacy.budget import BudgetExhausted

        try:
            return float(self.context.strategy.epsilon_for(iteration))
        except BudgetExhausted:
            return 0.0

    def _reason(self, result: ClusteringResult) -> str:
        if result.converged:
            return "converged"
        last = result.history[-1].iteration if result.history else 0
        if last >= self.spec.params.max_iterations:
            return "iterations"
        bound = self.context.strategy.max_iterations()
        if bound is not None and last >= bound:
            return "budget"
        return "clusters-lost"


def run_record(
    spec: RunSpec,
    result: ClusteringResult,
    timings: dict | None = None,
    extra: dict | None = None,
    environment: dict | None = None,
) -> dict:
    """The canonical structured record of one run (``chiaroscuro-run/v1``).

    Every structured emitter — ``repro cluster --json-out``, the benchmark
    suite's ``record_runs`` — wraps runs in this one schema so BENCH/result
    JSON files are diffable across PRs and tools.  The ``environment``
    block makes each record self-describing: which crypto execution
    backend, which *resolved* bigint kernel, and what key size produced
    it.  Pass ``environment`` captured at run time (the ``RunStarted``
    event carries the same three fields) when recording long after the
    run — the default re-resolves via :func:`run_environment`, which for
    an ``"auto"`` spec reports the kernel active *now*, not necessarily
    the one that ran.
    """
    record = {
        "schema": RESULT_SCHEMA,
        "spec": spec.to_dict(),
        "environment": (
            dict(environment) if environment is not None else run_environment(spec)
        ),
        "result": result.to_dict(),
        "timings": dict(timings or {}),
    }
    if extra:
        record.update(extra)
    return record
