"""repro.api — the unified experiment API (the repo's one front door).

Define an experiment declaratively, run it on any execution plane,
observe it as a stream of typed events, and checkpoint/resume it:

>>> from repro.api import Experiment, RunSpec
>>> spec = RunSpec.from_dict({
...     "plane": "quality",
...     "seed": 1,
...     "strategy": "G",
...     "dataset": {"kind": "cer", "params": {"n_series": 2000}},
...     "init": {"kind": "courbogen"},
...     "params": {"k": 10, "max_iterations": 5, "epsilon": 0.69},
... })
>>> result = Experiment.from_spec(spec).run()

Components:

* :class:`RunSpec` — frozen, JSON-round-trippable experiment description
  (dataset block, init block, ``ChiaroscuroParams``, strategy, seed,
  plane);
* registries + ``@register_*`` decorators — datasets (``cer``, ``numed``,
  ``points2d``, ``timeseries``), initializers, budget strategies and
  execution planes (``quality``, ``object``, ``vectorized``); new
  scenarios are one registration away;
* :class:`Experiment` — the facade: ``run()`` returns a
  ``ClusteringResult``; ``run_iter()`` streams
  :class:`~repro.api.events.RunEvent` objects for progress reporting and
  early stopping;
* :class:`Checkpoint` / :class:`CheckpointStore` — per-iteration JSON
  checkpoints; a killed quality/vectorized run resumes bit-identically.
"""

from .checkpoint import Checkpoint, CheckpointStore, atomic_write_text
from .events import (
    CheckpointSaved,
    FaultDetected,
    IterationCompleted,
    RunAborted,
    RunCompleted,
    RunEvent,
    RunStarted,
    event_to_dict,
)
from .experiment import (
    RESULT_SCHEMA,
    ExecutionPlane,
    Experiment,
    PlaneStep,
    RunContext,
    run_environment,
    run_record,
)
from .registry import (
    DATASETS,
    INITIALIZERS,
    PLANES,
    STRATEGIES,
    Registry,
    register_dataset,
    register_initializer,
    register_plane,
    register_strategy,
    resolve_strategy,
)
from .spec import DatasetSpec, FaultSpec, InitSpec, RunSpec

from . import builtins as _builtins  # noqa: F401  (registers the built-in keys)

__all__ = [
    "Checkpoint",
    "CheckpointSaved",
    "CheckpointStore",
    "DATASETS",
    "DatasetSpec",
    "ExecutionPlane",
    "Experiment",
    "FaultDetected",
    "FaultSpec",
    "INITIALIZERS",
    "InitSpec",
    "IterationCompleted",
    "PLANES",
    "PlaneStep",
    "RESULT_SCHEMA",
    "Registry",
    "RunAborted",
    "RunCompleted",
    "RunContext",
    "RunEvent",
    "RunSpec",
    "RunStarted",
    "STRATEGIES",
    "atomic_write_text",
    "event_to_dict",
    "register_dataset",
    "register_initializer",
    "register_plane",
    "register_strategy",
    "resolve_strategy",
    "run_environment",
    "run_record",
]
