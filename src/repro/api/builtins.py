"""Built-in registry entries: the paper's datasets, initializers, budget
strategies and the three execution planes.

Imported for its side effects by ``repro.api``; everything here goes
through the same ``@register_*`` decorators a user extension would use,
so this module doubles as the reference for writing one.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..clustering.init import kmeanspp_init, sample_init, uniform_init
from ..core.perturbed_kmeans import PerturbationOptions, iter_perturbed_kmeans
from ..core.protocol import ChiaroscuroRun
from ..datasets import (
    TimeSeriesSet,
    courbogen_like_centroids,
    generate_cer,
    generate_numed,
    generate_points2d,
)
from ..privacy.budget import Greedy, GreedyFloor, UniformFast
from .checkpoint import Checkpoint
from .experiment import ExecutionPlane, PlaneStep, RunContext
from .registry import (
    register_dataset,
    register_initializer,
    register_plane,
    register_strategy,
)

# --------------------------------------------------------------- datasets


@register_dataset("cer")
def _build_cer(seed: int, **params) -> TimeSeriesSet:
    """CER-like electricity curves (Sec. 6.1 workload 1)."""
    return generate_cer(seed=seed, **params)


@register_dataset("numed")
def _build_numed(seed: int, **params) -> TimeSeriesSet:
    """NUMED-like tumor-growth series (Sec. 6.1 workload 2)."""
    return generate_numed(seed=seed, **params)


@register_dataset("points2d")
def _build_points2d(seed: int, **params) -> TimeSeriesSet:
    """The Appendix D duplicated A3-like 2-D points."""
    return generate_points2d(seed=seed, **params)


@register_dataset("timeseries")
def _build_inline(
    seed: int,
    *,
    values,
    dmin: float,
    dmax: float,
    name: str = "timeseries",
    population_scale: int = 1,
) -> TimeSeriesSet:
    """Inline data: the spec carries the t × n matrix itself (small sets)."""
    del seed  # the data is literal; nothing to draw
    return TimeSeriesSet(
        values=np.asarray(values, dtype=float),
        dmin=float(dmin),
        dmax=float(dmax),
        name=name,
        population_scale=int(population_scale),
    )


# ----------------------------------------------------------- initializers


@register_initializer("courbogen")
def _init_courbogen(dataset: TimeSeriesSet, k: int, rng, **params) -> np.ndarray:
    """CourboGen-like synthetic load profiles (never raw data)."""
    del dataset, params
    return courbogen_like_centroids(k, rng)


@register_initializer("sample")
def _init_sample(dataset: TimeSeriesSet, k: int, rng, **params) -> np.ndarray:
    """k series sampled uniformly from the dataset."""
    del params
    return sample_init(dataset.values, k, rng)


@register_initializer("uniform")
def _init_uniform(dataset: TimeSeriesSet, k: int, rng, **params) -> np.ndarray:
    """Uniform draws in the dataset's value range."""
    return uniform_init(k, dataset.n, dataset.dmin, dataset.dmax, rng, **params)


@register_initializer("kmeanspp")
def _init_kmeanspp(dataset: TimeSeriesSet, k: int, rng, **params) -> np.ndarray:
    """k-means++ seeding (D² sampling)."""
    del params
    return kmeanspp_init(dataset.values, k, rng)


@register_initializer("matrix")
def _init_matrix(dataset: TimeSeriesSet, k: int, rng, *, values) -> np.ndarray:
    """Inline centroids: the spec carries the k × n matrix itself."""
    del rng
    matrix = np.asarray(values, dtype=float)
    if matrix.shape != (k, dataset.n):
        raise ValueError(
            f"inline centroids must be {(k, dataset.n)}, got {matrix.shape}"
        )
    return matrix


# -------------------------------------------------------------- strategies


@register_strategy("G")
def _strategy_greedy(params, label: str) -> Greedy:
    """Greedy: each iteration takes half the remaining budget (Sec. 5.2)."""
    del label
    return Greedy(params.epsilon)


@register_strategy("GF")
def _strategy_greedy_floor(params, label: str) -> GreedyFloor:
    """Greedy with a floor: halve the remainder, never below the floor slice."""
    del label
    return GreedyFloor(params.epsilon, floor_size=params.floor_size)


@register_strategy("UF")
def _strategy_uniform_fast(params, label: str) -> UniformFast:
    """Uniform-fast: split the budget evenly over a fixed iteration count."""
    n_iterations = int(label[2:]) if len(label) > 2 else params.uf_iterations
    return UniformFast(params.epsilon, n_iterations=n_iterations)


# ------------------------------------------------------------------ planes

#: ``RunSpec.options`` keys the quality plane forwards to
#: :class:`~repro.core.perturbed_kmeans.PerturbationOptions`.
QUALITY_OPTION_KEYS = ("sensitivity_mode", "gossip_e_max", "count_floor")


@register_plane("quality")
class QualityPlane(ExecutionPlane):
    """Perturbed centralized k-means — the paper's Sec. 6.1 quality plane."""

    supports_checkpoint = True
    option_keys = frozenset(QUALITY_OPTION_KEYS)

    def run_iter(
        self,
        ctx: RunContext,
        resume: Checkpoint | None = None,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> Iterator[PlaneStep]:
        del cycle_hook  # no gossip engine on this plane
        spec, params = ctx.spec, ctx.params
        options = PerturbationOptions(
            smoothing=params.use_smoothing,
            **{k: spec.options[k] for k in QUALITY_OPTION_KEYS if k in spec.options},
        )
        rng = np.random.default_rng(spec.seed + 1)
        centroids = ctx.initial_centroids
        start = 1
        if resume is not None:
            rng.bit_generator.state = resume.rng_state
            centroids = np.asarray(resume.centroids, dtype=float)
            start = resume.iteration + 1
        for step in iter_perturbed_kmeans(
            ctx.dataset,
            centroids,
            ctx.strategy,
            max_iterations=params.max_iterations,
            theta=params.theta,
            smoothing_window=params.smoothing_window(ctx.dataset.n),
            options=options,
            churn=spec.churn,
            rng=rng,
            start_iteration=start,
        ):
            yield PlaneStep(
                stats=step.stats,
                centroids=step.centroids,
                converged=step.converged,
                active_series=step.active_series,
                rng_state=rng.bit_generator.state,
            )


class _ProtocolPlane(ExecutionPlane):
    """Shared dispatch for the ``ChiaroscuroRun`` substrates."""

    def _build_run(self, ctx: RunContext) -> ChiaroscuroRun:
        run = ChiaroscuroRun(
            ctx.dataset,
            ctx.strategy,
            ctx.params,
            ctx.initial_centroids,
            key_bits=ctx.params.key_bits,
            seed=ctx.spec.seed,
            keypair=ctx.keypair,
            fault_plan=ctx.fault_plan,
        )
        ctx.runtime = run  # exposed for diagnostics (e.g. wire-format demos)
        return run

    def _iterate(
        self,
        run: ChiaroscuroRun,
        ctx: RunContext,
        start: int,
        snapshot: Callable[[], dict | None],
    ) -> Iterator[PlaneStep]:
        for step in run.run_iter(churn=ctx.spec.churn, start_iteration=start):
            yield PlaneStep(
                stats=step.stats,
                centroids=step.centroids,
                converged=step.converged,
                agreement=step.agreement,
                exchanges_per_node=step.exchanges_per_node,
                crypto_ms=step.crypto_ms,
                rng_state=snapshot(),
            )


@register_plane("object")
class ObjectPlane(_ProtocolPlane):
    """Cycle-driven engine with genuine Damgård–Jurik ciphertexts.

    Not checkpointable: resuming would need the full keypair plus the
    ``random.Random`` crypto stream serialized; at this plane's
    tens-to-hundreds-of-devices reach, re-running is cheaper than that
    machinery.
    """

    supports_checkpoint = False
    uses_real_crypto = True

    def run_iter(
        self,
        ctx: RunContext,
        resume: Checkpoint | None = None,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> Iterator[PlaneStep]:
        self._reject_resume(resume)
        run = self._build_run(ctx)
        run.cycle_hook = cycle_hook
        yield from self._iterate(run, ctx, start=1, snapshot=lambda: None)


@register_plane("vectorized")
class VectorizedPlane(_ProtocolPlane):
    """Struct-of-arrays full-protocol plane (10⁵–10⁶ participants).

    Checkpointable: per-iteration gossip engines are seeded from
    ``seed + 1000·iteration`` and the only cross-iteration RNG is
    ``noise_rng``, whose bit-generator state rides in the checkpoint.
    """

    supports_checkpoint = True

    def run_iter(
        self,
        ctx: RunContext,
        resume: Checkpoint | None = None,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> Iterator[PlaneStep]:
        run = self._build_run(ctx)
        run.cycle_hook = cycle_hook
        start = 1
        if resume is not None:
            run.noise_rng.bit_generator.state = resume.rng_state
            run.initial_centroids = np.asarray(resume.centroids, dtype=float)
            start = resume.iteration + 1
        yield from self._iterate(
            run, ctx, start=start, snapshot=lambda: run.noise_rng.bit_generator.state
        )


@register_plane("vectorized-crypto")
class VectorizedCryptoPlane(_ProtocolPlane):
    """Struct-of-arrays plane with *real* packed Damgård–Jurik ciphertexts.

    Every gossip exchange carries genuine ciphertexts, fused into whole-
    round bigint batches; decoded per-iteration centroids are bit-identical
    to the mock ``vectorized`` plane at the same seed.

    Checkpointable exactly like :class:`VectorizedPlane`: the keypair and
    fixed-base table rebuild deterministically from the spec seed, the only
    cross-iteration RNG that shapes *decoded results* is ``noise_rng``
    (riding in the checkpoint), and the crypto stream's post-resume
    divergence only changes randomizers, which decryption removes exactly.
    """

    supports_checkpoint = True
    uses_real_crypto = True

    def run_iter(
        self,
        ctx: RunContext,
        resume: Checkpoint | None = None,
        cycle_hook: Callable[[int, int], None] | None = None,
    ) -> Iterator[PlaneStep]:
        run = self._build_run(ctx)
        run.cycle_hook = cycle_hook
        start = 1
        if resume is not None:
            run.noise_rng.bit_generator.state = resume.rng_state
            run.initial_centroids = np.asarray(resume.centroids, dtype=float)
            start = resume.iteration + 1
        yield from self._iterate(
            run, ctx, start=start, snapshot=lambda: run.noise_rng.bit_generator.state
        )
