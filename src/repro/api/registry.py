"""String-keyed component registries — the extension surface of the API.

Every pluggable piece of an experiment (dataset generator, centroid
initializer, budget strategy, execution plane) lives in a
:class:`Registry`, so a :class:`~repro.api.spec.RunSpec` can name it by a
stable string and a new scenario is one ``@register_*`` decoration away:

>>> from repro.api import register_dataset
>>> @register_dataset("my-workload")
... def build(seed, **params):
...     return make_timeseries_set(seed=seed, **params)

Registered callables follow fixed signatures (enforced by convention, not
reflection — keep them boring):

* dataset builder:      ``build(seed: int, **params) -> TimeSeriesSet``
* initializer:          ``build(dataset, k, rng, **params) -> np.ndarray``
* strategy factory:     ``build(params: ChiaroscuroParams, label: str) -> BudgetStrategy``
* plane:                an :class:`~repro.api.experiment.ExecutionPlane` instance

The built-in keys are registered by :mod:`repro.api.builtins` when
``repro.api`` is imported.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator

__all__ = [
    "DATASETS",
    "INITIALIZERS",
    "PLANES",
    "Registry",
    "STRATEGIES",
    "register_dataset",
    "register_initializer",
    "register_plane",
    "register_strategy",
    "resolve_strategy",
]

_KEY_RE = re.compile(r"^[a-z0-9][a-z0-9_\-]*$", re.IGNORECASE)


class Registry:
    """A named string → component mapping with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: dict[str, Any] = {}

    def register(self, key: str, obj: Any = None):
        """Register ``obj`` under ``key``; usable as ``@registry.register(key)``."""
        if not _KEY_RE.match(key):
            raise ValueError(
                f"invalid {self.kind} key {key!r}: use letters, digits, '-', '_'"
            )
        if obj is None:

            def decorator(target: Any) -> Any:
                self.register(key, target)
                return target

            return decorator
        if key in self._items and self._items[key] is not obj:
            raise ValueError(f"{self.kind} key {key!r} is already registered")
        self._items[key] = obj
        return obj

    def get(self, key: str) -> Any:
        try:
            return self._items[key]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {key!r}; registered: {', '.join(self.keys())}"
            ) from None

    def keys(self) -> list[str]:
        return sorted(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._items)


DATASETS = Registry("dataset")
INITIALIZERS = Registry("initializer")
STRATEGIES = Registry("budget strategy")
PLANES = Registry("execution plane")


def register_dataset(key: str) -> Callable:
    """Decorator: register a ``build(seed, **params) -> TimeSeriesSet``."""
    return DATASETS.register(key)


def register_initializer(key: str) -> Callable:
    """Decorator: register a ``build(dataset, k, rng, **params) -> ndarray``."""
    return INITIALIZERS.register(key)


def register_strategy(key: str) -> Callable:
    """Decorator: register a ``build(params, label) -> BudgetStrategy``."""
    return STRATEGIES.register(key)


def register_plane(key: str) -> Callable:
    """Decorator: register an :class:`ExecutionPlane` (class is instantiated)."""

    def decorator(target: Any) -> Any:
        instance = target() if isinstance(target, type) else target
        instance.key = key
        PLANES.register(key, instance)
        return target

    return decorator


def resolve_strategy(name: str, params) -> Any:
    """Build a budget strategy from its spec label.

    Exact registry keys win (``"G"``, ``"GF"``, ``"UF"``); the paper's
    parameterized ``"UF<n>"`` labels (``UF5``, ``UF10``, …) resolve through
    the ``"UF"`` factory, which reads the bound out of the label.
    """
    label = name.upper()
    if label in STRATEGIES:
        return STRATEGIES.get(label)(params, label)
    if re.fullmatch(r"UF\d+", label) and "UF" in STRATEGIES:
        return STRATEGIES.get("UF")(params, label)
    raise KeyError(
        f"unknown budget strategy {name!r}; registered: "
        f"{', '.join(STRATEGIES.keys())} (UF accepts UF<n> labels)"
    )
