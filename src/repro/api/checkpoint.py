"""Checkpoint/resume: survive a killed run without losing iterations.

After every completed iteration on a checkpointable plane, the
:class:`~repro.api.experiment.Experiment` serializes everything the next
iteration depends on — the released centroids, the iteration index, the
spent budget, the plane RNG state and the full per-iteration history — as
one JSON file in a checkpoint directory.  Resuming replays nothing: the
loop re-enters at ``iteration + 1`` with the restored RNG state, so a
resumed seeded run is bit-identical to an uninterrupted one (asserted by
``tests/api/test_checkpoint.py``).

RNG state travels as the ``numpy`` bit-generator state dict (PCG64: two
128-bit integers — JSON handles Python's arbitrary-precision ints
exactly).  The spec rides inside the checkpoint and is compared on
resume, so a checkpoint can never silently continue a *different*
experiment.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

__all__ = ["Checkpoint", "CheckpointStore"]

_PREFIX = "checkpoint_"


@dataclass
class Checkpoint:
    """The complete resumable state after one iteration."""

    spec: dict  # RunSpec.to_dict() of the run that wrote it
    plane: str
    iteration: int  # last *completed* iteration (1-indexed)
    centroids: list  # released centroids after that iteration
    epsilon_spent: float
    rng_state: dict  # numpy bit-generator state (plane-specific stream)
    history: list = field(default_factory=list)  # IterationStats.to_dict() each
    converged: bool = False  # θ-test fired at this iteration: do not resume past it

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "chiaroscuro-checkpoint/v1",
                "spec": self.spec,
                "plane": self.plane,
                "iteration": self.iteration,
                "centroids": self.centroids,
                "epsilon_spent": self.epsilon_spent,
                "rng_state": self.rng_state,
                "history": self.history,
                "converged": self.converged,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        d = json.loads(text)
        fmt = d.get("format", "chiaroscuro-checkpoint/v1")
        if fmt != "chiaroscuro-checkpoint/v1":
            raise ValueError(f"unsupported checkpoint format {fmt!r}")
        return cls(
            spec=d["spec"],
            plane=d["plane"],
            iteration=int(d["iteration"]),
            centroids=d["centroids"],
            epsilon_spent=float(d["epsilon_spent"]),
            rng_state=d["rng_state"],
            history=d.get("history", []),
            converged=bool(d.get("converged", False)),
        )


class CheckpointStore:
    """One directory of ``checkpoint_<iteration>.json`` files."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, iteration: int) -> pathlib.Path:
        return self.directory / f"{_PREFIX}{iteration:06d}.json"

    def save(self, checkpoint: Checkpoint) -> pathlib.Path:
        """Write atomically (tmp + rename): a kill mid-write never corrupts
        the latest resumable state."""
        path = self.path_for(checkpoint.iteration)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(checkpoint.to_json() + "\n")
        tmp.replace(path)
        return path

    def iterations(self) -> list[int]:
        out = []
        for entry in self.directory.glob(f"{_PREFIX}*.json"):
            stem = entry.stem[len(_PREFIX) :]
            if stem.isdigit():
                out.append(int(stem))
        return sorted(out)

    def latest(self) -> Checkpoint | None:
        iterations = self.iterations()
        if not iterations:
            return None
        return Checkpoint.from_json(self.path_for(iterations[-1]).read_text())

    def clear(self) -> None:
        for iteration in self.iterations():
            self.path_for(iteration).unlink()
