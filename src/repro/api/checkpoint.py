"""Checkpoint/resume: survive a killed run without losing iterations.

After every completed iteration on a checkpointable plane, the
:class:`~repro.api.experiment.Experiment` serializes everything the next
iteration depends on — the released centroids, the iteration index, the
spent budget, the plane RNG state and the full per-iteration history — as
one JSON file in a checkpoint directory.  Resuming replays nothing: the
loop re-enters at ``iteration + 1`` with the restored RNG state, so a
resumed seeded run is bit-identical to an uninterrupted one (asserted by
``tests/api/test_checkpoint.py``).

RNG state travels as the ``numpy`` bit-generator state dict (PCG64: two
128-bit integers — JSON handles Python's arbitrary-precision ints
exactly).  The spec rides inside the checkpoint and is compared on
resume, so a checkpoint can never silently continue a *different*
experiment.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "atomic_write_text",
    "sweep_stale_tmps",
]

_PREFIX = "checkpoint_"


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Durably replace ``path`` with ``text`` (tmp + fsync + rename).

    The tmp name embeds the writer's pid, so two processes sharing a
    directory never race on the same tmp path; the data is fsynced before
    the rename (and the directory after it), so a crash right after
    ``atomic_write_text`` returns cannot lose the new contents — the
    invariant the checkpoint store and the service job store both build
    their kill-safety on.
    """
    path = pathlib.Path(path)
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:  # make the rename itself durable; best-effort off POSIX
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return path
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def _tmp_writer_alive(entry: pathlib.Path) -> bool:
    """Whether the pid embedded in ``<name>.<pid>.tmp`` is a live process."""
    parts = entry.name.split(".")
    if len(parts) < 3 or not parts[-2].isdecimal():
        return False  # foreign/legacy tmp name: nobody owns it
    pid = int(parts[-2])
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def sweep_stale_tmps(
    directory: str | pathlib.Path,
    pattern: str = "*.tmp",
    only_stale: bool = True,
) -> int:
    """Remove leftover ``atomic_write_text`` tmps matching ``pattern``.

    With ``only_stale`` a tmp whose embedded pid is still alive is kept —
    its writer may be mid-write in a shared directory.  Returns the number
    of files removed.  Every store built on :func:`atomic_write_text`
    (checkpoints, service job records) sweeps through here.
    """
    removed = 0
    for entry in pathlib.Path(directory).glob(pattern):
        if only_stale and _tmp_writer_alive(entry):
            continue
        try:
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - lost a delete race
            pass
    return removed


@dataclass
class Checkpoint:
    """The complete resumable state after one iteration."""

    spec: dict  # RunSpec.to_dict() of the run that wrote it
    plane: str
    iteration: int  # last *completed* iteration (1-indexed)
    centroids: list  # released centroids after that iteration
    epsilon_spent: float
    rng_state: dict  # numpy bit-generator state (plane-specific stream)
    history: list = field(default_factory=list)  # IterationStats.to_dict() each
    converged: bool = False  # θ-test fired at this iteration: do not resume past it

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "chiaroscuro-checkpoint/v1",
                "spec": self.spec,
                "plane": self.plane,
                "iteration": self.iteration,
                "centroids": self.centroids,
                "epsilon_spent": self.epsilon_spent,
                "rng_state": self.rng_state,
                "history": self.history,
                "converged": self.converged,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        d = json.loads(text)
        fmt = d.get("format", "chiaroscuro-checkpoint/v1")
        if fmt != "chiaroscuro-checkpoint/v1":
            raise ValueError(f"unsupported checkpoint format {fmt!r}")
        return cls(
            spec=d["spec"],
            plane=d["plane"],
            iteration=int(d["iteration"]),
            centroids=d["centroids"],
            epsilon_spent=float(d["epsilon_spent"]),
            rng_state=d["rng_state"],
            history=d.get("history", []),
            converged=bool(d.get("converged", False)),
        )


class CheckpointStore:
    """One directory of ``checkpoint_<iteration>.json`` files."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sweep_tmps()

    def path_for(self, iteration: int) -> pathlib.Path:
        return self.directory / f"{_PREFIX}{iteration:06d}.json"

    def save(self, checkpoint: Checkpoint) -> pathlib.Path:
        """Write atomically and durably: a kill mid-write never corrupts
        the latest resumable state (pid-unique tmp + fsync + rename)."""
        return atomic_write_text(
            self.path_for(checkpoint.iteration), checkpoint.to_json() + "\n"
        )

    def sweep_tmps(self, only_stale: bool = True) -> int:
        """Remove leftover ``checkpoint_*.tmp`` files from killed writers.

        With ``only_stale`` (the init-time default) a tmp whose embedded
        pid is still a live process is left alone — another run may be
        mid-write in a shared directory; ``clear()`` sweeps everything.
        """
        return sweep_stale_tmps(
            self.directory, f"{_PREFIX}*.tmp", only_stale=only_stale
        )

    def iterations(self) -> list[int]:
        out = []
        for entry in self.directory.glob(f"{_PREFIX}*.json"):
            stem = entry.stem[len(_PREFIX) :]
            if stem.isdigit():
                out.append(int(stem))
        return sorted(out)

    def latest(self) -> Checkpoint | None:
        iterations = self.iterations()
        if not iterations:
            return None
        return Checkpoint.from_json(self.path_for(iterations[-1]).read_text())

    def clear(self) -> None:
        for iteration in self.iterations():
            self.path_for(iteration).unlink()
        self.sweep_tmps(only_stale=False)
