"""Incremental, idempotent ingestion of the repo's telemetry surfaces.

Three source shapes feed the warehouse:

* **service roots** (``repro serve``'s ``--root``): every ``jobs/<id>/``
  contributes its ``job.json`` (→ ``jobs``), ``events.ndjson``
  (→ ``events`` + ``detections``) and ``result.json`` (→ ``runs`` +
  ``iterations``).  The combined ``feed.ndjson`` is deliberately skipped —
  it multiplexes the same records the per-job logs already carry.
* **standalone run records** (``repro cluster --json-out``): one
  ``chiaroscuro-run/v1`` file → one ``runs`` row plus its history.
* **root ``BENCH_*.json`` mirrors**: scalar metrics → ``bench_points``
  (the cross-PR perf trajectory); any embedded ``chiaroscuro-run/v1``
  runs → ``runs``/``iterations``; any ``summary`` detection aggregates →
  ``detections``.
* **lint reports** (``repro lint --format json``,
  ``chiaroscuro-lint/v1``): one ``lint_findings`` row per finding, keyed
  by the report's provenance plus the finding's content fingerprint —
  the structural-quality trajectory next to the perf one.

Ingestion is a *delta*, never a rescan (the Berkholz-style discipline of
answering under updates): each NDJSON source keeps a byte-offset
watermark in ``ingest_files`` and only bytes past it are read — and only
up to the last complete line, so a torn tail from a SIGKILL mid-append
stays pending until its newline arrives.  JSON sources keep a
size+mtime fingerprint and are re-parsed only when it changes.  Every
row insert is keyed stably (events by ``job:seq``, pre-``seq`` logs by
the line's byte offset; JSON-derived rows by their source identity and
upserted), so even a from-scratch re-read — watermarks dropped, same
files — converges to identical row counts.
"""

from __future__ import annotations

import calendar
import json
import pathlib
import sqlite3
import time
from typing import Callable, Iterable

__all__ = [
    "Ingester",
    "follow_ingest",
    "ingest_paths",
    "read_ndjson_from",
    "table_counts",
]

#: Tables whose row counts summarize an ingest pass.
TABLES = (
    "jobs",
    "runs",
    "iterations",
    "events",
    "detections",
    "bench_points",
    "lint_findings",
    "ingest_files",
)


def table_counts(con: sqlite3.Connection) -> dict[str, int]:
    """Row count per warehouse table (the ``repro db stats`` core)."""
    return {
        table: con.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        for table in TABLES
    }


def read_ndjson_from(
    path: pathlib.Path, offset: int
) -> tuple[list[tuple[int, dict]], int]:
    """Decodable ``(line_offset, record)`` pairs past ``offset``.

    Returns the pairs plus the new watermark: the offset just past the
    last *complete* line.  An incomplete tail (no newline yet — a writer
    is mid-append or was killed there) is left for the next pass, the
    same torn-tail discipline as :func:`repro.service.bus.tail_events`.
    Undecodable complete lines are skipped but still advance the
    watermark (they will never become decodable).
    """
    records: list[tuple[int, dict]] = []
    if not path.exists():
        return records, offset
    with open(path, "rb") as fh:
        fh.seek(offset)
        while True:
            line_offset = fh.tell()
            line = fh.readline()
            if not line or not line.endswith(b"\n"):
                return records, line_offset
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append((line_offset, record))


def _fingerprint(path: pathlib.Path) -> str:
    st = path.stat()
    return f"{st.st_size}:{st.st_mtime_ns}"


def _parse_iso(timestamp: str) -> float | None:
    try:
        return float(
            calendar.timegm(time.strptime(timestamp, "%Y-%m-%dT%H:%M:%SZ"))
        )
    except (TypeError, ValueError):
        return None


def _flatten_scalars(data, prefix: str = "") -> Iterable[tuple[str, float]]:
    """Dotted-path numeric leaves of a JSON tree, skipping run payloads."""
    if isinstance(data, dict):
        for key, value in data.items():
            if key in ("runs", "schema"):
                continue  # full run records live in `runs`, not as metrics
            yield from _flatten_scalars(value, f"{prefix}{key}.")
    elif isinstance(data, (list, tuple)):
        for index, value in enumerate(data):
            yield from _flatten_scalars(value, f"{prefix}{index}.")
    elif isinstance(data, bool):
        yield prefix.rstrip("."), 1.0 if data else 0.0
    elif isinstance(data, (int, float)):
        yield prefix.rstrip("."), float(data)


class Ingester:
    """Drive incremental ingestion into one open warehouse connection."""

    def __init__(self, con: sqlite3.Connection) -> None:
        self.con = con

    # ------------------------------------------------------------ dispatch

    def ingest_path(self, path: str | pathlib.Path) -> None:
        """Ingest whatever ``path`` is: service root, record, bench, log.

        Directories holding a ``jobs/`` subdirectory are service roots;
        any other directory is scanned for root ``BENCH_*.json`` mirrors
        and standalone ``chiaroscuro-run/v1`` files.
        """
        path = pathlib.Path(path)
        if path.is_dir():
            if (path / "jobs").is_dir():
                self.ingest_service_root(path)
                return
            found = False
            for child in sorted(path.glob("BENCH_*.json")):
                self.ingest_bench_file(child)
                found = True
            for child in sorted(path.glob("*.json")):
                if child.name.startswith("BENCH_"):
                    continue
                if self._is_run_record(child):
                    self.ingest_run_record_file(child)
                    found = True
                elif self._is_lint(child):
                    self.ingest_lint_file(child)
                    found = True
            if not found:
                raise ValueError(
                    f"{path}: not a service root (no jobs/) and no "
                    f"BENCH_*.json, run-record or lint-report files inside"
                )
            return
        if not path.exists():
            raise FileNotFoundError(str(path))
        if path.suffix == ".ndjson":
            self.ingest_events_file(path, job_id=path.parent.name)
        elif path.name.startswith("BENCH_") or self._is_bench(path):
            self.ingest_bench_file(path)
        elif self._is_run_record(path):
            self.ingest_run_record_file(path)
        elif self._is_lint(path):
            self.ingest_lint_file(path)
        else:
            raise ValueError(
                f"{path}: unrecognized telemetry file (expected a service "
                f"root, *.ndjson log, BENCH_*.json, chiaroscuro-run/v1 "
                f"record, or chiaroscuro-lint/v1 report)"
            )

    @staticmethod
    def _peek_schema(path: pathlib.Path) -> str:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return ""
        return payload.get("schema", "") if isinstance(payload, dict) else ""

    def _is_run_record(self, path: pathlib.Path) -> bool:
        return self._peek_schema(path) == "chiaroscuro-run/v1"

    def _is_bench(self, path: pathlib.Path) -> bool:
        return self._peek_schema(path) == "chiaroscuro-bench/v1"

    def _is_lint(self, path: pathlib.Path) -> bool:
        return self._peek_schema(path) == "chiaroscuro-lint/v1"

    # ------------------------------------------------------- service roots

    def ingest_service_root(self, root: str | pathlib.Path) -> None:
        root = pathlib.Path(root)
        jobs_dir = root / "jobs"
        for job_dir in sorted(p for p in jobs_dir.iterdir() if p.is_dir()):
            job_id = job_dir.name
            job_path = job_dir / "job.json"
            if job_path.exists():
                self._ingest_json_once(
                    job_path, lambda p: self._ingest_job_json(p, root)
                )
            self.ingest_events_file(job_dir / "events.ndjson", job_id=job_id)
            result_path = job_dir / "result.json"
            if result_path.exists():
                self._ingest_json_once(
                    result_path,
                    lambda p: self._ingest_result_json(p, job_id),
                )
        self.con.commit()

    def _ingest_json_once(
        self, path: pathlib.Path, handler: Callable[[pathlib.Path], None]
    ) -> None:
        """Run ``handler`` only when the file changed since last ingest."""
        fingerprint = _fingerprint(path)
        row = self.con.execute(
            "SELECT fingerprint FROM ingest_files WHERE path = ?",
            (str(path),),
        ).fetchone()
        if row is not None and row[0] == fingerprint:
            return
        handler(path)
        self.con.execute(
            "INSERT OR REPLACE INTO ingest_files "
            "(path, kind, byte_offset, fingerprint, ingested_at) "
            "VALUES (?, 'json', 0, ?, ?)",
            (str(path), fingerprint, time.time()),
        )

    def _ingest_job_json(self, path: pathlib.Path, root: pathlib.Path) -> None:
        record = json.loads(path.read_text())
        spec = record.get("spec", {})
        self.con.execute(
            "INSERT OR REPLACE INTO jobs (job_id, root, name, state, plane, "
            "strategy, submitted_at, started_at, finished_at, attempts, error) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record["job_id"],
                str(root),
                record.get("name", ""),
                record.get("state", ""),
                spec.get("plane", ""),
                spec.get("strategy", ""),
                record.get("submitted_at"),
                record.get("started_at"),
                record.get("finished_at"),
                int(record.get("attempts", 0)),
                record.get("error", ""),
            ),
        )

    def _ingest_result_json(self, path: pathlib.Path, job_id: str) -> None:
        record = json.loads(path.read_text())
        self._upsert_run(
            record, run_key=f"job:{job_id}", source="job", job_id=job_id
        )

    # -------------------------------------------------------------- events

    def ingest_events_file(
        self, path: str | pathlib.Path, job_id: str = ""
    ) -> None:
        """Consume new complete lines of one NDJSON log past its watermark."""
        path = pathlib.Path(path)
        row = self.con.execute(
            "SELECT byte_offset FROM ingest_files WHERE path = ?",
            (str(path),),
        ).fetchone()
        offset = int(row[0]) if row is not None else 0
        records, new_offset = read_ndjson_from(path, offset)
        for line_offset, record in records:
            self._ingest_event(record, job_id, line_offset)
        if new_offset != offset or row is None:
            self.con.execute(
                "INSERT OR REPLACE INTO ingest_files "
                "(path, kind, byte_offset, fingerprint, ingested_at) "
                "VALUES (?, 'ndjson', ?, '', ?)",
                (str(path), new_offset, time.time()),
            )

    def _ingest_event(
        self, record: dict, default_job: str, line_offset: int
    ) -> None:
        job_id = str(record.get("job") or default_job or "?")
        seq = record.get("seq")
        seq = int(seq) if isinstance(seq, int) and not isinstance(seq, bool) else None
        # Stable key: the bus's monotonic per-job seq when present; for
        # pre-seq logs the line's byte offset in its file is just as
        # stable across re-reads (logs are append-only).
        event_key = (
            f"{job_id}:{seq}" if seq is not None else f"{job_id}:@{line_offset}"
        )
        kind = str(record.get("type", "?"))
        iteration = record.get("iteration")
        self.con.execute(
            "INSERT OR IGNORE INTO events "
            "(event_key, job_id, seq, ts, type, iteration, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                event_key,
                job_id,
                seq,
                record.get("ts"),
                kind,
                iteration if isinstance(iteration, int) else None,
                json.dumps(record, separators=(",", ":")),
            ),
        )
        if kind == "fault_detected":
            participants = record.get("participants") or []
            self.con.execute(
                "INSERT OR IGNORE INTO detections (detection_key, run_key, "
                "job_id, iteration, fault, detector, participants, count, "
                "detail) VALUES (?, ?, ?, ?, ?, ?, ?, 1, ?)",
                (
                    event_key,
                    f"job:{job_id}",
                    job_id,
                    iteration if isinstance(iteration, int) else None,
                    record.get("fault", ""),
                    record.get("detector", ""),
                    len(participants),
                    json.dumps(record.get("detail") or {},
                               separators=(",", ":")),
                ),
            )
        elif kind == "run_aborted":
            # Order-independent abort marking: the run row may not exist
            # yet (result.json lands after the events); _upsert_run does
            # the reverse lookup for that case.
            self.con.execute(
                "UPDATE runs SET aborted = 1 WHERE job_id = ?", (job_id,)
            )

    # ---------------------------------------------------------- run records

    def ingest_run_record_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        self._ingest_json_once(
            path,
            lambda p: self._upsert_run(
                json.loads(p.read_text()),
                run_key=f"record:{p.resolve()}",
                source="record",
            ),
        )
        self.con.commit()

    def _upsert_run(
        self,
        record: dict,
        run_key: str,
        source: str,
        job_id: str | None = None,
        bench: str | None = None,
        git_rev: str = "",
        recorded_at: str = "",
    ) -> None:
        spec = record.get("spec", {})
        params = spec.get("params", {})
        result = record.get("result", {})
        environment = record.get("environment", {})
        history = result.get("history", [])
        aborted = 0
        if job_id is not None:
            aborted = self.con.execute(
                "SELECT EXISTS(SELECT 1 FROM events "
                "WHERE job_id = ? AND type = 'run_aborted')",
                (job_id,),
            ).fetchone()[0]
        self.con.execute(
            "INSERT OR REPLACE INTO runs (run_key, source, job_id, bench, "
            "git_rev, recorded_at, name, label, strategy, plane, dataset, "
            "seed, churn, epsilon, k, key_bits, bigint_backend, "
            "crypto_backend, converged, aborted, iterations, "
            "final_pre_inertia, wall_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?, ?, ?, ?)",
            (
                run_key,
                source,
                job_id,
                bench,
                git_rev,
                recorded_at,
                spec.get("name", ""),
                result.get("label", ""),
                spec.get("strategy", ""),
                spec.get("plane", ""),
                spec.get("dataset", {}).get("kind", ""),
                spec.get("seed"),
                spec.get("churn"),
                params.get("epsilon"),
                params.get("k"),
                environment.get("key_bits"),
                environment.get("bigint_backend", ""),
                environment.get("crypto_backend", ""),
                1 if result.get("converged") else 0,
                int(aborted),
                len(history),
                history[-1]["pre_inertia"] if history else None,
                record.get("timings", {}).get("wall_seconds"),
            ),
        )
        self.con.execute(
            "DELETE FROM iterations WHERE run_key = ?", (run_key,)
        )
        self.con.executemany(
            "INSERT INTO iterations (run_key, iteration, pre_inertia, "
            "post_inertia, n_centroids, epsilon_spent) VALUES (?, ?, ?, ?, "
            "?, ?)",
            [
                (
                    run_key,
                    int(entry["iteration"]),
                    entry.get("pre_inertia"),
                    entry.get("post_inertia"),
                    entry.get("n_centroids"),
                    entry.get("epsilon_spent"),
                )
                for entry in history
            ],
        )

    # ------------------------------------------------------------ lint runs

    def ingest_lint_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        self._ingest_json_once(path, self._ingest_lint)
        self.con.commit()

    def _ingest_lint(self, path: pathlib.Path) -> None:
        envelope = json.loads(path.read_text())
        if envelope.get("schema") != "chiaroscuro-lint/v1":
            raise ValueError(
                f"{path}: not a chiaroscuro-lint/v1 envelope "
                f"(schema={envelope.get('schema')!r})"
            )
        provenance = envelope.get("provenance", {})
        git_rev = provenance.get("git_rev", "")
        recorded_at = provenance.get("timestamp", "")
        unix_time = provenance.get("unix_time")
        if unix_time is None:
            unix_time = _parse_iso(recorded_at)
        # One report = one (git_rev, timestamp) identity; re-ingesting the
        # same file (or a byte-identical copy elsewhere) lands on the same
        # primary keys and stays a no-op.
        report_key = f"{git_rev}@{recorded_at}"
        for finding in envelope.get("findings", []):
            if not isinstance(finding, dict) or not finding.get("fingerprint"):
                continue
            line = finding.get("line")
            self.con.execute(
                "INSERT OR REPLACE INTO lint_findings (report_key, "
                "fingerprint, git_rev, recorded_at, unix_time, rule, path, "
                "line, status, message, snippet, justification) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    report_key,
                    str(finding["fingerprint"]),
                    git_rev,
                    recorded_at,
                    unix_time,
                    str(finding.get("rule", "")),
                    str(finding.get("path", "")),
                    int(line) if isinstance(line, int) else 0,
                    str(finding.get("status", "new")),
                    str(finding.get("message", "")),
                    str(finding.get("snippet", "")),
                    str(finding.get("justification", "")),
                ),
            )

    # -------------------------------------------------------------- benches

    def ingest_bench_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        self._ingest_json_once(path, self._ingest_bench)
        self.con.commit()

    def _ingest_bench(self, path: pathlib.Path) -> None:
        envelope = json.loads(path.read_text())
        if envelope.get("schema") != "chiaroscuro-bench/v1":
            raise ValueError(
                f"{path}: not a chiaroscuro-bench/v1 envelope "
                f"(schema={envelope.get('schema')!r})"
            )
        bench = envelope.get("bench") or path.stem.replace("BENCH_", "")
        provenance = envelope.get("provenance", {})
        git_rev = provenance.get("git_rev") or envelope.get("git_rev", "")
        recorded_at = (
            provenance.get("timestamp") or envelope.get("timestamp", "")
        )
        unix_time = provenance.get("unix_time")
        if unix_time is None:
            unix_time = _parse_iso(recorded_at)
        data = envelope.get("data", {})

        for metric, value in _flatten_scalars(data):
            self.con.execute(
                "INSERT OR REPLACE INTO bench_points "
                "(bench, git_rev, recorded_at, unix_time, metric, value) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (bench, git_rev, recorded_at, unix_time, metric, value),
            )

        runs = data.get("runs") if isinstance(data, dict) else None
        run_keys_by_name: dict[str, str] = {}
        if isinstance(runs, list):
            for index, record in enumerate(runs):
                if not (
                    isinstance(record, dict)
                    and record.get("schema") == "chiaroscuro-run/v1"
                ):
                    continue
                name = record.get("spec", {}).get("name", "")
                run_key = f"bench:{bench}:{git_rev}:{index:03d}:{name}"
                self._upsert_run(
                    record,
                    run_key=run_key,
                    source="bench",
                    bench=bench,
                    git_rev=git_rev,
                    recorded_at=recorded_at,
                )
                run_keys_by_name[name] = run_key

        summary = data.get("summary") if isinstance(data, dict) else None
        if isinstance(summary, dict):
            self._ingest_bench_summary(
                bench, git_rev, summary, run_keys_by_name
            )

    def _ingest_bench_summary(
        self,
        bench: str,
        git_rev: str,
        summary: dict,
        run_keys_by_name: dict[str, str],
    ) -> None:
        """Detection aggregates from a bench's summary block.

        Each deployment entry contributes one ``detections`` row per
        detector it lists; the first listed detector carries the count
        remainder so ``SUM(count)`` reproduces the entry's total exactly.
        """
        for deployment, entry in summary.items():
            if not isinstance(entry, dict):
                continue
            detections = entry.get("detections")
            if not isinstance(detections, int) or detections <= 0:
                continue
            detectors = [str(d) for d in entry.get("detectors", [])] or [""]
            run_key = self._match_summary_run(
                deployment, run_keys_by_name
            )
            if entry.get("aborted") and run_key:
                self.con.execute(
                    "UPDATE runs SET aborted = 1 WHERE run_key = ?",
                    (run_key,),
                )
            fault = deployment
            for suffix in ("-mild", "-severe"):
                if fault.endswith(suffix):
                    fault = fault[: -len(suffix)]
            detail = json.dumps(
                entry.get("audit") or {}, separators=(",", ":")
            )
            remainder = detections - (len(detectors) - 1)
            for position, detector in enumerate(detectors):
                self.con.execute(
                    "INSERT OR REPLACE INTO detections (detection_key, "
                    "run_key, job_id, iteration, fault, detector, "
                    "participants, count, detail) "
                    "VALUES (?, ?, NULL, NULL, ?, ?, 0, ?, ?)",
                    (
                        f"bench:{bench}:{git_rev}:{deployment}:{detector}",
                        run_key,
                        fault,
                        detector,
                        remainder if position == 0 else 1,
                        detail,
                    ),
                )

    @staticmethod
    def _match_summary_run(
        deployment: str, run_keys_by_name: dict[str, str]
    ) -> str | None:
        """Map a summary label to the bench run it summarizes.

        Labels are run names minus a common prefix (``"network-mild"``
        for a run named ``"attack-network-mild"``), so match exact name
        first, then unique suffix.
        """
        if deployment in run_keys_by_name:
            return run_keys_by_name[deployment]
        matches = [
            key
            for name, key in run_keys_by_name.items()
            if name.endswith(f"-{deployment}")
        ]
        return matches[0] if len(matches) == 1 else None


def ingest_paths(
    con: sqlite3.Connection, paths: Iterable[str | pathlib.Path]
) -> dict[str, int]:
    """One incremental pass over ``paths``; returns new-rows-per-table."""
    before = table_counts(con)
    ingester = Ingester(con)
    for path in paths:
        ingester.ingest_path(path)
    con.commit()
    after = table_counts(con)
    return {table: after[table] - before[table] for table in after}


def follow_ingest(
    con: sqlite3.Connection,
    paths: Iterable[str | pathlib.Path],
    poll_interval: float = 0.5,
    should_stop: Callable[[], bool] | None = None,
    on_cycle: Callable[[dict[str, int]], None] | None = None,
) -> dict[str, int]:
    """Live tailing mode: repeat incremental passes until told to stop.

    Each cycle is exactly one :func:`ingest_paths` delta (so a running
    ``repro serve`` fleet's events stream in as their newlines land);
    ``on_cycle`` observes every cycle's new-row counts and
    ``should_stop`` is consulted *between* cycles.  Returns the total
    new rows across all cycles.
    """
    paths = list(paths)
    totals: dict[str, int] = {}
    while True:
        delta = ingest_paths(con, paths)
        for table, count in delta.items():
            totals[table] = totals.get(table, 0) + count
        if on_cycle is not None:
            on_cycle(delta)
        if should_stop is not None and should_stop():
            return totals
        time.sleep(poll_interval)
