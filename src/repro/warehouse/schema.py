"""Warehouse schema: versioned sqlite tables + window-function views.

The schema is migrated, never recreated: :func:`connect` applies every
migration the database has not seen yet, tracked through
``PRAGMA user_version`` (0 = empty file, N = migrations[0..N-1] applied).
A warehouse built by an older release is therefore upgraded in place the
next time any tool opens it — the ingester's watermarks and all ingested
rows survive the upgrade.

Tables (migration 1)
--------------------
``ingest_files``   per-source watermarks: NDJSON byte offsets and JSON
                   size/mtime fingerprints — the incremental-ingestion
                   cursor (re-ingestion starts where the last one ended,
                   never from byte 0).
``jobs``           mirrors of ``job.json`` records from service roots.
``runs``           one row per ``chiaroscuro-run/v1`` record, whatever
                   emitted it (service ``result.json``, a standalone
                   ``--json-out`` file, or a run embedded in a
                   ``BENCH_*.json``).
``iterations``     the per-iteration history of each run.
``events``         every bus NDJSON record, keyed stably (job + seq,
                   falling back to the line's byte offset for pre-seq
                   logs) so re-ingestion cannot duplicate.
``detections``     ``fault_detected`` events plus bench-summary detection
                   aggregates, joinable back to ``runs``.
``bench_points``   scalar metrics flattened out of root ``BENCH_*.json``
                   files — the cross-PR perf trajectory, ordered by the
                   envelope's provenance timestamp (never file mtimes).

Views (migration 2) — the window-function analytics surface
-----------------------------------------------------------
``v_inertia_trajectories``  per-run inertia curves with running ε spend
                            (``SUM() OVER``) and a 3-point moving average
                            (Fig. 2 smoothing).
``v_epsilon_spend``         cumulative ε per iteration per run.
``v_iteration_latency``     wall seconds between consecutive
                            ``iteration_completed`` events (``LAG() OVER``
                            per job), joined to the run's plane; since
                            migration 3 it also extracts the event's
                            ``crypto_ms`` field so the protocol/bigint
                            time split is queryable per iteration.
``v_detector_counts``       detections per fault class per detector.
``v_bench_trajectory``      each bench metric over git revisions with its
                            previous value (``LAG() OVER``) for deltas.

Static analysis (migration 4)
-----------------------------
``lint_findings``      one row per finding per ``chiaroscuro-lint/v1``
                       report, keyed (report, fingerprint) so re-ingesting
                       the same report is a no-op.
``v_lint_trajectory``  per-rule finding counts over git revisions with
                       deltas — the structural-quality ratchet, shaped
                       like ``v_bench_trajectory``.
"""

from __future__ import annotations

import pathlib
import sqlite3

__all__ = ["MIGRATIONS", "connect", "connect_readonly", "schema_version"]


_MIGRATION_1 = """
CREATE TABLE ingest_files (
    path        TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,              -- 'ndjson' | 'json'
    byte_offset INTEGER NOT NULL DEFAULT 0, -- ndjson watermark (complete lines)
    fingerprint TEXT NOT NULL DEFAULT '',   -- json files: "<size>:<mtime_ns>"
    ingested_at REAL NOT NULL
);

CREATE TABLE jobs (
    job_id       TEXT PRIMARY KEY,
    root         TEXT NOT NULL,
    name         TEXT NOT NULL DEFAULT '',
    state        TEXT NOT NULL,
    plane        TEXT NOT NULL DEFAULT '',
    strategy     TEXT NOT NULL DEFAULT '',
    submitted_at REAL,
    started_at   REAL,
    finished_at  REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    error        TEXT NOT NULL DEFAULT ''
);

CREATE TABLE runs (
    run_key          TEXT PRIMARY KEY,
    source           TEXT NOT NULL,         -- 'job' | 'record' | 'bench'
    job_id           TEXT,
    bench            TEXT,
    git_rev          TEXT NOT NULL DEFAULT '',
    recorded_at      TEXT NOT NULL DEFAULT '',
    name             TEXT NOT NULL DEFAULT '',
    label            TEXT NOT NULL DEFAULT '',
    strategy         TEXT NOT NULL DEFAULT '',
    plane            TEXT NOT NULL DEFAULT '',
    dataset          TEXT NOT NULL DEFAULT '',
    seed             INTEGER,
    churn            REAL,
    epsilon          REAL,
    k                INTEGER,
    key_bits         INTEGER,
    bigint_backend   TEXT NOT NULL DEFAULT '',
    crypto_backend   TEXT NOT NULL DEFAULT '',
    converged        INTEGER NOT NULL DEFAULT 0,
    aborted          INTEGER NOT NULL DEFAULT 0,
    iterations       INTEGER NOT NULL DEFAULT 0,
    final_pre_inertia REAL,
    wall_seconds     REAL
);
CREATE INDEX idx_runs_name ON runs (name);
CREATE INDEX idx_runs_job ON runs (job_id);

CREATE TABLE iterations (
    run_key       TEXT NOT NULL,
    iteration     INTEGER NOT NULL,
    pre_inertia   REAL,
    post_inertia  REAL,
    n_centroids   INTEGER,
    epsilon_spent REAL,
    PRIMARY KEY (run_key, iteration)
);

CREATE TABLE events (
    event_key TEXT PRIMARY KEY,  -- '<job>:<seq>' or '<job>:@<byte offset>'
    job_id    TEXT NOT NULL,
    seq       INTEGER,
    ts        REAL,
    type      TEXT NOT NULL,
    iteration INTEGER,
    payload   TEXT NOT NULL      -- the full NDJSON record, verbatim
);
CREATE INDEX idx_events_job ON events (job_id, type);

CREATE TABLE detections (
    detection_key TEXT PRIMARY KEY,
    run_key       TEXT,
    job_id        TEXT,
    iteration     INTEGER,
    fault         TEXT NOT NULL DEFAULT '',
    detector      TEXT NOT NULL DEFAULT '',
    participants  INTEGER NOT NULL DEFAULT 0,
    count         INTEGER NOT NULL DEFAULT 1,
    detail        TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX idx_detections_run ON detections (run_key);

CREATE TABLE bench_points (
    bench       TEXT NOT NULL,
    git_rev     TEXT NOT NULL,
    recorded_at TEXT NOT NULL,
    unix_time   REAL,
    metric      TEXT NOT NULL,
    value       REAL NOT NULL,
    PRIMARY KEY (bench, git_rev, recorded_at, metric)
);
"""

_MIGRATION_2 = """
CREATE VIEW v_inertia_trajectories AS
SELECT
    r.run_key,
    r.source,
    r.name,
    r.label,
    r.strategy,
    r.plane,
    r.churn,
    i.iteration,
    i.pre_inertia,
    i.post_inertia,
    i.n_centroids,
    i.epsilon_spent,
    SUM(i.epsilon_spent) OVER (
        PARTITION BY i.run_key ORDER BY i.iteration
    ) AS epsilon_spent_total,
    AVG(i.pre_inertia) OVER (
        PARTITION BY i.run_key ORDER BY i.iteration
        ROWS BETWEEN 2 PRECEDING AND CURRENT ROW
    ) AS pre_inertia_sma3
FROM iterations i
JOIN runs r USING (run_key);

CREATE VIEW v_epsilon_spend AS
SELECT
    run_key,
    name,
    strategy,
    iteration,
    epsilon_spent,
    epsilon_spent_total,
    epsilon_spent_total - epsilon_spent AS epsilon_before
FROM v_inertia_trajectories;

CREATE VIEW v_iteration_latency AS
SELECT
    e.job_id,
    COALESCE(r.plane, '') AS plane,
    e.iteration,
    e.ts,
    e.ts - LAG(e.ts) OVER (
        PARTITION BY e.job_id ORDER BY e.ts, COALESCE(e.seq, 0)
    ) AS seconds
FROM events e
LEFT JOIN runs r ON r.job_id = e.job_id
WHERE e.type = 'iteration_completed';

CREATE VIEW v_detector_counts AS
SELECT
    fault,
    detector,
    SUM(count) AS detections,
    COUNT(DISTINCT COALESCE(run_key, job_id, detection_key)) AS runs
FROM detections
GROUP BY fault, detector;

CREATE VIEW v_bench_trajectory AS
SELECT
    bench,
    metric,
    git_rev,
    recorded_at,
    value,
    LAG(value) OVER (
        PARTITION BY bench, metric
        ORDER BY COALESCE(unix_time, 0), recorded_at
    ) AS prev_value,
    ROW_NUMBER() OVER (
        PARTITION BY bench, metric
        ORDER BY COALESCE(unix_time, 0), recorded_at
    ) AS point_index
FROM bench_points;
"""

_MIGRATION_3 = """
DROP VIEW v_iteration_latency;
CREATE VIEW v_iteration_latency AS
SELECT
    e.job_id,
    COALESCE(r.plane, '') AS plane,
    e.iteration,
    e.ts,
    e.ts - LAG(e.ts) OVER (
        PARTITION BY e.job_id ORDER BY e.ts, COALESCE(e.seq, 0)
    ) AS seconds,
    json_extract(e.payload, '$.crypto_ms') AS crypto_ms
FROM events e
LEFT JOIN runs r ON r.job_id = e.job_id
WHERE e.type = 'iteration_completed';
"""

_MIGRATION_4 = """
CREATE TABLE lint_findings (
    report_key  TEXT NOT NULL,    -- '<git_rev>@<recorded_at>'
    fingerprint TEXT NOT NULL,    -- content hash from the lint envelope
    git_rev     TEXT NOT NULL,
    recorded_at TEXT NOT NULL,
    unix_time   REAL,
    rule        TEXT NOT NULL,
    path        TEXT NOT NULL,
    line        INTEGER NOT NULL DEFAULT 0,
    status      TEXT NOT NULL,    -- 'new' | 'suppressed' | 'baselined'
    message     TEXT NOT NULL DEFAULT '',
    snippet     TEXT NOT NULL DEFAULT '',
    justification TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (report_key, fingerprint)
);
CREATE INDEX idx_lint_rule ON lint_findings (rule, git_rev);

CREATE VIEW v_lint_trajectory AS
SELECT
    rule,
    git_rev,
    recorded_at,
    COUNT(*) AS findings,
    SUM(status = 'new') AS new,
    SUM(status = 'suppressed') AS suppressed,
    SUM(status = 'baselined') AS baselined,
    COUNT(*) - LAG(COUNT(*)) OVER w AS delta,
    ROW_NUMBER() OVER w AS point_index
FROM lint_findings
GROUP BY rule, git_rev, recorded_at
WINDOW w AS (
    PARTITION BY rule ORDER BY COALESCE(MIN(unix_time), 0), recorded_at
);
"""

#: Ordered migration scripts; ``PRAGMA user_version`` counts how many of
#: these the database has applied.  Append-only — never edit a shipped one.
#: Migration 3 rebuilds ``v_iteration_latency`` with the per-iteration
#: ``crypto_ms`` split the real-crypto planes report (NULL for events
#: written before the field existed, and for planes without real crypto).
#: Migration 4 adds the static-analysis plane: ``lint_findings`` rows from
#: ``chiaroscuro-lint/v1`` envelopes and ``v_lint_trajectory``, the
#: per-rule violation count over revisions (same LAG shape as
#: ``v_bench_trajectory`` — the quality ratchet next to the perf one).
MIGRATIONS: tuple[str, ...] = (
    _MIGRATION_1,
    _MIGRATION_2,
    _MIGRATION_3,
    _MIGRATION_4,
)


def schema_version(con: sqlite3.Connection) -> int:
    return int(con.execute("PRAGMA user_version").fetchone()[0])


def connect(path: str | pathlib.Path) -> sqlite3.Connection:
    """Open (creating if needed) a warehouse and migrate it to current.

    Each pending migration is one transaction: a crash mid-migration
    leaves ``user_version`` pointing at the last fully-applied script.
    """
    con = sqlite3.connect(str(path))
    con.row_factory = sqlite3.Row
    con.execute("PRAGMA foreign_keys = ON")
    version = schema_version(con)
    if version > len(MIGRATIONS):
        raise ValueError(
            f"warehouse {path} has schema version {version}; this build "
            f"understands at most {len(MIGRATIONS)} — refusing to write"
        )
    for number in range(version, len(MIGRATIONS)):
        with con:  # one transaction per migration
            con.executescript(MIGRATIONS[number])
            con.execute(f"PRAGMA user_version = {number + 1}")
    return con


def connect_readonly(path: str | pathlib.Path) -> sqlite3.Connection:
    """Open an existing warehouse without the ability to write.

    The ``repro db query`` surface: arbitrary SQL stays safe because the
    connection itself refuses writes (no migration happens here either —
    a too-old file is still queryable for whatever tables it has).
    """
    target = pathlib.Path(path)
    if not target.exists():
        raise FileNotFoundError(f"no warehouse at {target}")
    con = sqlite3.connect(f"file:{target}?mode=ro", uri=True)
    con.row_factory = sqlite3.Row
    return con
