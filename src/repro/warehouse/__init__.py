"""repro.warehouse — the queryable read side of the experiment service.

Every layer of the repo *emits* telemetry: the service bus appends
NDJSON run events per job, workers write ``chiaroscuro-run/v1`` records,
``repro cluster --json-out`` drops the same records standalone, and the
benchmark suite mirrors ``BENCH_*.json`` trajectories to the repo root.
This package makes all of it *queryable*:

* :mod:`~repro.warehouse.schema` — a versioned sqlite schema
  (``PRAGMA user_version`` migrations) of runs, iterations, events,
  detections, jobs, bench points and lint findings, plus
  window-function views;
* :mod:`~repro.warehouse.ingest` — incremental, idempotent ingestion:
  per-file byte-offset watermarks, torn-tail tolerance, stable event
  keys — re-ingesting is a no-op, tailing a live fleet is a delta;
* :mod:`~repro.warehouse.analytics` — Fig. 2 inertia trajectories per
  strategy, Fig. 3 quality-under-churn/attack comparisons, ε-spend
  curves, per-plane iteration-latency percentiles, detector counts, and
  the bench trajectory across git revisions;
* :mod:`~repro.warehouse.report` — the table renderers behind
  ``repro report fig2|fig3|attacks|bench``.

CLI: ``repro db ingest|query|stats`` and ``repro report …``::

    python -m repro db ingest service-root BENCH_fig3_attack_quality.json \
        --db warehouse.db
    python -m repro report fig3 --db warehouse.db
    python -m repro db ingest service-root --db warehouse.db --follow
"""

from .analytics import (
    bench_trajectory,
    detector_counts,
    epsilon_spend,
    fig2_trajectories,
    fig3_quality,
    latency_percentiles,
    lint_trajectory,
    run_query,
    stats,
    table_counts,
)
from .ingest import Ingester, follow_ingest, ingest_paths, read_ndjson_from
from .report import (
    render_table,
    report_attacks,
    report_bench,
    report_fig2,
    report_fig3,
    report_latency,
    report_lint,
)
from .schema import MIGRATIONS, connect, connect_readonly, schema_version

__all__ = [
    "Ingester",
    "MIGRATIONS",
    "bench_trajectory",
    "connect",
    "connect_readonly",
    "detector_counts",
    "epsilon_spend",
    "fig2_trajectories",
    "fig3_quality",
    "follow_ingest",
    "ingest_paths",
    "latency_percentiles",
    "lint_trajectory",
    "read_ndjson_from",
    "render_table",
    "report_attacks",
    "report_bench",
    "report_fig2",
    "report_fig3",
    "report_latency",
    "report_lint",
    "run_query",
    "schema_version",
    "stats",
    "table_counts",
]
