"""Render warehouse analytics as text or markdown tables.

The ``repro report`` surface: each ``report_*`` function pulls one
analytics shape and returns a printable string, so the CLI (and the CI
smoke job grepping its output) get stable, diffable tables without a
plotting dependency — the same spirit as the benchmark suite's
``record_report`` text renditions.
"""

from __future__ import annotations

import sqlite3

from . import analytics

__all__ = [
    "render_table",
    "report_attacks",
    "report_bench",
    "report_fig2",
    "report_fig3",
    "report_latency",
    "report_lint",
]


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: list[str],
    rows: list[list[str]],
    fmt: str = "text",
) -> list[str]:
    """Lay out one table; ``fmt`` is ``text`` (aligned) or ``markdown``."""
    if fmt == "markdown":
        lines = ["| " + " | ".join(headers) + " |"]
        lines.append("|" + "|".join(" --- " for _ in headers) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        return lines
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rows), 1)
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                      for i, cell in enumerate(row))
        )
    return lines


def report_fig2(
    con: sqlite3.Connection, strategy: str | None = None, fmt: str = "text"
) -> str:
    """Fig. 2: mean inertia trajectory per strategy over iterations."""
    rows = analytics.fig2_trajectories(con, strategy=strategy)
    if not rows:
        return "no iterations ingested — run `repro db ingest` first"
    table = [
        [
            row["strategy"],
            str(row["iteration"]),
            str(row["runs"]),
            _fmt(row["pre_inertia"]),
            _fmt(row["pre_inertia_sma3"]),
            _fmt(row["post_inertia"]),
            _fmt(row["epsilon_spent_total"], 4),
        ]
        for row in rows
    ]
    return "\n".join(render_table(
        ["strategy", "iter", "runs", "pre-inertia", "sma3",
         "post-inertia", "eps-total"],
        table,
        fmt,
    ))


def report_fig3(
    con: sqlite3.Connection, like: str | None = None, fmt: str = "text"
) -> str:
    """Fig. 3: per-deployment final quality vs. the baseline run."""
    rows = analytics.fig3_quality(con, like=like)
    if not rows:
        return "no runs ingested — run `repro db ingest` first"
    table = []
    for row in rows:
        flags = " ABORTED" if row["aborted"] else ""
        table.append(
            [
                row["name"] or row["run_key"],
                row["plane"],
                row["strategy"],
                _fmt(row["churn"]),
                _fmt(row["final_pre_inertia"], 1),
                _fmt(row["vs_baseline"]),
                str(row["iterations"]),
                str(row["detections"]),
                (row["detectors"] or "-") + flags,
            ]
        )
    return "\n".join(render_table(
        ["deployment", "plane", "strategy", "churn", "final pre-inertia",
         "vs base", "iters", "detections", "detectors"],
        table,
        fmt,
    ))


def report_latency(con: sqlite3.Connection, fmt: str = "text") -> str:
    """Per-plane iteration-latency percentiles with the crypto split.

    The ``crypto-share`` column separates protocol time from bigint
    time on planes that report ``crypto_ms`` (the real-ciphertext
    planes); planes without the field show ``-``.
    """
    rows = analytics.latency_percentiles(con)
    if not rows:
        return "no iteration events ingested — run `repro db ingest` first"
    table = [
        [
            row["plane"],
            str(row["iterations"]),
            _fmt(row["p50"], 3),
            _fmt(row["p90"], 3),
            _fmt(row["p99"], 3),
            _fmt(row["max"], 3),
            _fmt(row["crypto_mean"], 3),
            _fmt(row["crypto_share"]),
        ]
        for row in rows
    ]
    return "\n".join(render_table(
        ["plane", "iters", "p50", "p90", "p99", "max",
         "crypto-mean", "crypto-share"],
        table,
        fmt,
    ))


def report_attacks(con: sqlite3.Connection, fmt: str = "text") -> str:
    """Detector counts per fault class — the countermeasure scoreboard."""
    rows = analytics.detector_counts(con)
    if not rows:
        return "no detections ingested"
    table = [
        [
            row["fault"] or "-",
            row["detector"] or "-",
            str(row["detections"]),
            str(row["runs"]),
        ]
        for row in rows
    ]
    return "\n".join(render_table(
        ["fault", "detector", "detections", "runs"], table, fmt
    ))


def report_bench(
    con: sqlite3.Connection,
    bench: str | None = None,
    metric: str | None = None,
    fmt: str = "text",
) -> str:
    """Bench trajectory over git revisions: latest value vs. previous."""
    rows = analytics.bench_trajectory(con, bench=bench, metric=metric)
    if not rows:
        return "no bench points ingested — ingest the BENCH_*.json files"
    table = [
        [
            row["bench"],
            row["metric"],
            row["git_rev"],
            _fmt(row["value"], 4),
            _fmt(row["prev_value"], 4),
            _fmt(row["delta"], 4),
            str(row["points"]),
        ]
        for row in rows
    ]
    return "\n".join(render_table(
        ["bench", "metric", "rev", "value", "prev", "delta", "points"],
        table,
        fmt,
    ))


def report_lint(
    con: sqlite3.Connection, rule: str | None = None, fmt: str = "text"
) -> str:
    """Lint-finding trajectory: per-rule counts at the latest report."""
    rows = analytics.lint_trajectory(con, rule=rule)
    if not rows:
        return (
            "no lint findings ingested — ingest a "
            "`repro lint --format json` report"
        )
    table = [
        [
            row["rule"],
            row["git_rev"],
            str(row["findings"]),
            str(row["new"]),
            str(row["suppressed"]),
            str(row["baselined"]),
            _fmt(row["delta"], 0),
            str(row["points"]),
        ]
        for row in rows
    ]
    return "\n".join(render_table(
        ["rule", "rev", "findings", "new", "suppressed", "baselined",
         "delta", "reports"],
        table,
        fmt,
    ))
