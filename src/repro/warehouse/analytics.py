"""Window-function analytics over the warehouse.

Every function takes an open warehouse connection and returns plain
list-of-dict rows, so the CLI renderers, tests and any notebook consume
the same shapes.  The heavy lifting happens inside the migration-2 SQL
views (``v_inertia_trajectories``, ``v_iteration_latency``,
``v_bench_trajectory``, …) — sqlite's window functions do the running
sums, lags and moving averages; Python only shapes the output.
"""

from __future__ import annotations

import json
import sqlite3

from .ingest import table_counts

__all__ = [
    "bench_trajectory",
    "detector_counts",
    "epsilon_spend",
    "fig2_trajectories",
    "fig3_quality",
    "latency_percentiles",
    "lint_trajectory",
    "run_query",
    "stats",
    "table_counts",
    "to_json",
]


def _rows(cursor: sqlite3.Cursor) -> list[dict]:
    names = [column[0] for column in cursor.description]
    return [dict(zip(names, row)) for row in cursor.fetchall()]


# --------------------------------------------------------------- fig. 2


def fig2_trajectories(
    con: sqlite3.Connection, strategy: str | None = None
) -> list[dict]:
    """Mean inertia trajectory per strategy (the Fig. 2 comparison).

    One row per (strategy, iteration): mean pre-/post-perturbation
    inertia and mean running ε spend across every ingested run of that
    strategy, plus the smoothed (3-point SMA) curve the paper plots.
    """
    where = "WHERE strategy = ?" if strategy else ""
    args = (strategy,) if strategy else ()
    return _rows(
        con.execute(
            f"""
            SELECT strategy,
                   iteration,
                   COUNT(*)                  AS runs,
                   AVG(pre_inertia)          AS pre_inertia,
                   AVG(post_inertia)         AS post_inertia,
                   AVG(pre_inertia_sma3)     AS pre_inertia_sma3,
                   AVG(epsilon_spent_total)  AS epsilon_spent_total
            FROM v_inertia_trajectories
            {where}
            GROUP BY strategy, iteration
            ORDER BY strategy, iteration
            """,
            args,
        )
    )


# --------------------------------------------------------------- fig. 3


def fig3_quality(
    con: sqlite3.Connection, like: str | None = None
) -> list[dict]:
    """Per-deployment quality comparison (Fig. 3 / quality-under-attack).

    One row per run: final pre-perturbation inertia, its ratio against
    the group's baseline run (a run whose name contains ``baseline``,
    within the same source/bench group — collusion-style legs on a
    different dataset get no ratio), iterations, churn, and what the
    countermeasures detected.
    """
    where = "WHERE r.name LIKE ?" if like else ""
    args = (like,) if like else ()
    rows = _rows(
        con.execute(
            f"""
            SELECT r.run_key,
                   r.source,
                   COALESCE(r.bench, '')    AS bench,
                   r.name,
                   r.strategy,
                   r.plane,
                   r.dataset,
                   r.churn,
                   r.iterations,
                   r.final_pre_inertia,
                   MAX(r.aborted, EXISTS(
                       SELECT 1 FROM events e
                       WHERE e.job_id = r.job_id
                         AND e.type = 'run_aborted'
                   ))                        AS aborted,
                   COALESCE((
                       SELECT SUM(d.count) FROM detections d
                       WHERE d.run_key = r.run_key
                   ), 0)                     AS detections,
                   COALESCE((
                       SELECT GROUP_CONCAT(detector, ',') FROM (
                           SELECT DISTINCT d.detector FROM detections d
                           WHERE d.run_key = r.run_key
                           ORDER BY d.detector
                       )
                   ), '')                    AS detectors
            FROM runs r
            {where}
            ORDER BY r.source, bench, r.name, r.run_key
            """,
            args,
        )
    )
    # Ratio vs. the group's baseline, computed on the comparable rows
    # only (same dataset as the baseline run).
    baselines: dict[tuple, tuple[float, str]] = {}
    for row in rows:
        group = (row["source"], row["bench"])
        if "baseline" in row["name"] and row["final_pre_inertia"]:
            baselines[group] = (row["final_pre_inertia"], row["dataset"])
    for row in rows:
        base = baselines.get((row["source"], row["bench"]))
        if (
            base
            and row["final_pre_inertia"] is not None
            and row["dataset"] == base[1]
        ):
            row["vs_baseline"] = row["final_pre_inertia"] / base[0]
        else:
            row["vs_baseline"] = None
    return rows


# -------------------------------------------------------------- epsilon


def epsilon_spend(
    con: sqlite3.Connection, run_key: str | None = None
) -> list[dict]:
    """Cumulative ε-spend curve per run (``SUM() OVER`` the iterations).

    The final point of each curve matches the accountant's total charge:
    abort paths pre-charge the aborted iteration's slice, and that slice
    is part of the iteration history the records carry.
    """
    where = "WHERE run_key = ?" if run_key else ""
    args = (run_key,) if run_key else ()
    return _rows(
        con.execute(
            f"""
            SELECT run_key, name, strategy, iteration,
                   epsilon_spent, epsilon_before, epsilon_spent_total
            FROM v_epsilon_spend
            {where}
            ORDER BY run_key, iteration
            """,
            args,
        )
    )


# -------------------------------------------------------------- latency


def latency_percentiles(con: sqlite3.Connection) -> list[dict]:
    """Per-plane iteration-latency percentiles from the event stream.

    Latency is the gap between consecutive ``iteration_completed``
    timestamps of one job (``LAG() OVER`` in ``v_iteration_latency``);
    percentiles are read off the ``CUME_DIST() OVER`` distribution.

    Planes reporting the ``crypto_ms`` split (real-ciphertext planes)
    additionally get ``crypto_p50``/``crypto_mean`` seconds and
    ``crypto_share`` — the fraction of mean iteration latency spent
    inside crypto batch calls, i.e. what separates protocol time from
    bigint time.  Planes without the field report ``None`` there.
    """
    distribution = _rows(
        con.execute(
            """
            SELECT plane,
                   seconds,
                   crypto_ms / 1000.0 AS crypto_seconds,
                   CUME_DIST() OVER (
                       PARTITION BY plane ORDER BY seconds
                   ) AS cume
            FROM v_iteration_latency
            WHERE seconds IS NOT NULL
            ORDER BY plane, seconds
            """
        )
    )
    out: list[dict] = []
    by_plane: dict[str, list[dict]] = {}
    for row in distribution:
        by_plane.setdefault(row["plane"], []).append(row)
    for plane, rows in sorted(by_plane.items()):
        entry = {"plane": plane, "iterations": len(rows)}
        for label, quantile in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            entry[label] = next(
                (r["seconds"] for r in rows if r["cume"] >= quantile),
                rows[-1]["seconds"],
            )
        entry["max"] = rows[-1]["seconds"]
        crypto = sorted(
            r["crypto_seconds"] for r in rows if r["crypto_seconds"] is not None
        )
        if crypto:
            mean_seconds = sum(r["seconds"] for r in rows) / len(rows)
            entry["crypto_p50"] = crypto[len(crypto) // 2]
            entry["crypto_mean"] = sum(crypto) / len(crypto)
            entry["crypto_share"] = (
                entry["crypto_mean"] / mean_seconds if mean_seconds > 0 else None
            )
        else:
            entry["crypto_p50"] = None
            entry["crypto_mean"] = None
            entry["crypto_share"] = None
        out.append(entry)
    return out


# ----------------------------------------------------------- detections


def detector_counts(con: sqlite3.Connection) -> list[dict]:
    """Detections per fault class per detector (the attack scoreboard)."""
    return _rows(
        con.execute(
            """
            SELECT fault, detector, detections, runs
            FROM v_detector_counts
            ORDER BY fault, detector
            """
        )
    )


# ---------------------------------------------------------------- bench


def bench_trajectory(
    con: sqlite3.Connection, bench: str | None = None, metric: str | None = None
) -> list[dict]:
    """Each bench metric's latest point, previous point, and delta.

    Ordered by the envelope's provenance timestamp (``unix_time``), so
    the trajectory is meaningful even when files were checked out fresh
    (mtimes say nothing); ``points`` counts the revisions seen.
    """
    where = ["point_index = spans.n"]
    args: list = []
    if bench:
        where.append("t.bench = ?")
        args.append(bench)
    if metric:
        where.append("t.metric LIKE ?")
        args.append(metric)
    return _rows(
        con.execute(
            f"""
            SELECT t.bench, t.metric, t.git_rev, t.recorded_at,
                   t.value, t.prev_value,
                   CASE WHEN t.prev_value IS NOT NULL
                        THEN t.value - t.prev_value END AS delta,
                   spans.n AS points
            FROM v_bench_trajectory t
            JOIN (
                SELECT bench, metric, COUNT(*) AS n
                FROM bench_points GROUP BY bench, metric
            ) spans ON spans.bench = t.bench AND spans.metric = t.metric
            WHERE {' AND '.join(where)}
            ORDER BY t.bench, t.metric
            """,
            args,
        )
    )


# ------------------------------------------------------------------ lint


def lint_trajectory(
    con: sqlite3.Connection, rule: str | None = None
) -> list[dict]:
    """Per-rule lint finding counts at the latest ingested report.

    Same shape as :func:`bench_trajectory`: the newest point per rule
    with the previous report's total for a delta, ordered by the lint
    envelope's provenance timestamp.  ``new``/``suppressed``/
    ``baselined`` split the latest count by finding status.
    """
    where = ["point_index = spans.n"]
    args: list = []
    if rule:
        where.append("t.rule = ?")
        args.append(rule)
    return _rows(
        con.execute(
            f"""
            SELECT t.rule, t.git_rev, t.recorded_at,
                   t.findings, t.new, t.suppressed, t.baselined,
                   t.delta, spans.n AS points
            FROM v_lint_trajectory t
            JOIN (
                SELECT rule, COUNT(DISTINCT report_key) AS n
                FROM lint_findings GROUP BY rule
            ) spans ON spans.rule = t.rule
            WHERE {' AND '.join(where)}
            ORDER BY t.rule
            """,
            args,
        )
    )


# ---------------------------------------------------------------- stats


def stats(con: sqlite3.Connection) -> dict:
    """The ``repro db stats`` payload: row counts plus source coverage."""
    counts = table_counts(con)
    version = int(con.execute("PRAGMA user_version").fetchone()[0])
    sources = {
        row[0]: row[1]
        for row in con.execute(
            "SELECT source, COUNT(*) FROM runs GROUP BY source ORDER BY source"
        )
    }
    event_types = {
        row[0]: row[1]
        for row in con.execute(
            "SELECT type, COUNT(*) FROM events GROUP BY type ORDER BY type"
        )
    }
    return {
        "schema_version": version,
        "tables": counts,
        "runs_by_source": sources,
        "events_by_type": event_types,
    }


def run_query(con: sqlite3.Connection, sql: str) -> list[dict]:
    """Execute one read-only SQL statement and return dict rows."""
    cursor = con.execute(sql)
    if cursor.description is None:
        return []
    return _rows(cursor)


def to_json(rows) -> str:
    return json.dumps(rows, indent=2, default=str)
