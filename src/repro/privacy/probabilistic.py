"""(ε, δ)-probabilistic differential privacy arithmetic (Appendix B).

Gossip aggregation is approximate, so the distributed Laplace noise carries
a relative error ``e_N`` with ``|e_N| ≤ e_max`` (probability ≥ 1 − ι).  The
appendix shows how to keep the DP guarantee anyway:

* **Lemma 2** — inflate the scale to ``λ = (1+e_max)·max(|d|)/ε`` and the
  noise by ``1 + e_max/(1−e_max)``; the perturbed sum then satisfies
  (ε, δ)-probabilistic DP with ``δ = (1−ι)²``.
* **Theorem 3** (Newscast convergence, from Kowalczyk & Vlassis) — with
  probability ``1−ι``, ``n_e = ⌈0.581·(ln n_p + 2·ln s + 2·ln 1/e_max +
  ln 1/ι)⌉`` exchanges per participant bound the absolute error by
  ``e_max``.
* **δ_atom** — a run releases ``n_it^max · 2n`` gossip aggregates (the sum
  and noise vectors, ``n`` values each, per iteration); each must hold with
  probability ``δ_atom = δ^(1/(n_it^max · 2n))`` for the whole run to hold
  with probability δ.

The paper's worked example — ``δ = 0.995``, ``e_max = 10⁻¹²``, ``s² = 1``,
``n_p = 10⁶``, ``n_it^max = 10``, ``n = 24`` gives ``δ_atom = ⁴⁸⁰√0.995``
and ``n_e = 47`` — is pinned by a unit test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "newscast_exchanges",
    "newscast_iota",
    "delta_atom",
    "lemma2_scale",
    "lemma2_noise_inflation",
    "GossipPrivacyPlan",
]


def newscast_exchanges(
    population: int, e_max: float, iota: float, variance: float = 1.0
) -> int:
    """Theorem 3: exchanges per participant for error ≤ ``e_max`` w.p. ``1 − ι``.

    ``n_e = ⌈0.581·(ln n_p + 2·ln s + 2·ln(1/e_max) + ln(1/ι))⌉`` where
    ``s² = variance`` is the data variance (natural log, as in the source
    theorem [25]).
    """
    if population < 2:
        raise ValueError("population must be >= 2")
    if not 0 < e_max:
        raise ValueError("e_max must be positive")
    if not 0 < iota < 1:
        raise ValueError("iota must be in (0, 1)")
    if variance <= 0:
        raise ValueError("variance must be positive")
    s = math.sqrt(variance)
    value = 0.581 * (
        math.log(population)
        + 2.0 * math.log(s)
        + 2.0 * math.log(1.0 / e_max)
        + math.log(1.0 / iota)
    )
    return max(1, math.ceil(value))


def newscast_iota(
    population: int, e_max: float, exchanges: int, variance: float = 1.0
) -> float:
    """Invert Theorem 3: failure probability ι after ``exchanges`` exchanges."""
    s = math.sqrt(variance)
    log_iota = (
        exchanges / 0.581
        - math.log(population)
        - 2.0 * math.log(s)
        - 2.0 * math.log(1.0 / e_max)
    )
    return min(1.0, math.exp(-log_iota))


def delta_atom(delta: float, max_iterations: int, series_length: int) -> float:
    """Per-value probability so the whole run satisfies δ.

    A run releases ``n_it^max · 2n`` gossip aggregates (sum + noise vectors
    of length ``n``, per iteration — the appendix's ``(n_it^max · 2n)``-th
    root); each must hold with ``δ_atom = δ^(1/(n_it^max·2n))``.
    """
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    exponent = max_iterations * 2 * series_length
    return delta ** (1.0 / exponent)


def lemma2_scale(sensitivity_per_value: float, epsilon: float, e_max: float) -> float:
    """Lemma 2 inflated Laplace scale ``λ = (1+e_max)·sensitivity/ε``."""
    if not 0 <= e_max < 1:
        raise ValueError("e_max must be in [0, 1)")
    return (1.0 + e_max) * sensitivity_per_value / epsilon


def lemma2_noise_inflation(e_max: float) -> float:
    """Lemma 2 compensation factor ``1 + e_max/(1−e_max)`` applied to the noise."""
    if not 0 <= e_max < 1:
        raise ValueError("e_max must be in [0, 1)")
    return 1.0 + e_max / (1.0 - e_max)


@dataclass(frozen=True)
class GossipPrivacyPlan:
    """End-to-end plan tying δ, e_max and the exchange count together.

    Given the target global δ and the protocol shape, this derives the
    δ_atom, the per-aggregate failure budget ι (δ_atom = (1−ι)², Lemma 2),
    and the Newscast exchange count n_e — i.e. everything a bootstrap
    server must publish (footnote 4).
    """

    delta: float
    e_max: float
    population: int
    max_iterations: int
    series_length: int
    variance: float = 1.0

    @property
    def delta_atom(self) -> float:
        return delta_atom(self.delta, self.max_iterations, self.series_length)

    @property
    def iota(self) -> float:
        """Per-aggregate failure probability ``ι = 1 − δ_atom``.

        This matches the paper's own worked example (δ_atom ≈ 1 − 10⁻⁵ →
        n_e = 47); the stricter Lemma-2 reading ``δ_atom = (1 − ι)²`` would
        take ``ι = 1 − √δ_atom`` and cost one extra exchange (:attr:`iota_strict`).
        """
        return 1.0 - self.delta_atom

    @property
    def iota_strict(self) -> float:
        """The Lemma-2-exact per-aggregate failure probability ``1 − √δ_atom``."""
        return 1.0 - math.sqrt(self.delta_atom)

    @property
    def exchanges(self) -> int:
        """Newscast exchanges per participant per EESum execution."""
        return newscast_exchanges(self.population, self.e_max, self.iota, self.variance)

    @property
    def noise_inflation(self) -> float:
        return lemma2_noise_inflation(self.e_max)
