"""Differential-privacy machinery: Laplace mechanism, divisible noise,
budget-concentration strategies and the (ε, δ)-probabilistic calculus of
Appendix B.
"""

from .accountant import BudgetOverrun, PrivacyAccountant
from .budget import (
    BudgetExhausted,
    BudgetStrategy,
    Greedy,
    GreedyFloor,
    UniformFast,
    strategy_from_name,
)
from .collusion import CollusionAnalysis
from .laplace import (
    LaplaceMechanism,
    joint_sensitivity,
    laplace_scale,
    sum_sensitivity,
)
from .noise_shares import (
    gen_noise_share,
    gen_noise_shares,
    sum_of_shares,
    surplus_correction,
)
from .probabilistic import (
    GossipPrivacyPlan,
    delta_atom,
    lemma2_noise_inflation,
    lemma2_scale,
    newscast_exchanges,
    newscast_iota,
)

__all__ = [
    "BudgetExhausted",
    "BudgetOverrun",
    "BudgetStrategy",
    "CollusionAnalysis",
    "GossipPrivacyPlan",
    "Greedy",
    "GreedyFloor",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "UniformFast",
    "delta_atom",
    "gen_noise_share",
    "gen_noise_shares",
    "joint_sensitivity",
    "laplace_scale",
    "lemma2_noise_inflation",
    "lemma2_scale",
    "newscast_exchanges",
    "newscast_iota",
    "strategy_from_name",
    "sum_of_shares",
    "sum_sensitivity",
    "surplus_correction",
]
