"""Divisible Laplace noise-shares (Def. 5 / Lemma 1).

The Laplace distribution is infinitely divisible: ``L(λ)`` equals in
distribution the sum of ``n_ν`` i.i.d. noise-shares
``ν_i = G1(n_ν, λ) − G2(n_ν, λ)`` where ``G1, G2`` are Gamma variables with
shape ``1/n_ν`` and scale ``λ``.  Each Chiaroscuro participant samples its
own share locally, encrypts it, and the EESum protocol adds the shares —
no single participant ever knows the total noise (which is part of the
secret set Ξ).

This module also implements the *surplus correction* of Sec. 4.2.2: when
the actual number of contributors ``ctr`` exceeds the assumed ``n_ν``, each
participant proposes ``cor = Σ_{ctr−n_ν} GenNoise(ε, n_ν)`` and the
min-identifier dissemination picks a unique one to subtract.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gen_noise_share", "gen_noise_shares", "surplus_correction", "sum_of_shares"]


def gen_noise_share(
    n_shares: int, scale: float, rng: np.random.Generator, size: int | tuple[int, ...] = 1
) -> np.ndarray:
    """Sample ``GenNoise``: one noise-share per output element (Def. 5).

    Each element is ``G1 − G2`` with ``G1, G2 ~ Gamma(1/n_shares, scale)``
    i.i.d.; summing ``n_shares`` independent such elements is exactly
    ``Laplace(0, scale)``.
    """
    if n_shares < 1:
        raise ValueError("n_shares must be >= 1")
    if scale <= 0:
        raise ValueError("scale must be positive")
    shape = 1.0 / n_shares
    g1 = rng.gamma(shape, scale, size=size)
    g2 = rng.gamma(shape, scale, size=size)
    return g1 - g2


def gen_noise_shares(
    n_participants: int,
    n_shares: int,
    scale: float,
    rng: np.random.Generator,
    dimensions: int,
) -> np.ndarray:
    """Sample the shares of ``n_participants`` nodes, each ``dimensions``-wide.

    Returns an array of shape ``(n_participants, dimensions)``; column sums
    over any ``n_shares`` rows are Laplace-distributed.
    """
    return gen_noise_share(n_shares, scale, rng, size=(n_participants, dimensions))


def sum_of_shares(shares: np.ndarray) -> np.ndarray:
    """Dimension-wise sum of a share matrix — the value EESum converges to."""
    return np.asarray(shares).sum(axis=0)


def surplus_correction(
    actual_contributors: int,
    n_shares: int,
    scale: float,
    rng: np.random.Generator,
    dimensions: int,
) -> np.ndarray:
    """The correction vector a participant proposes when ``ctr > n_ν``.

    It is a sum of ``ctr − n_ν`` freshly-drawn noise-shares (Sec. 4.2.2);
    subtracting it leaves, in distribution, a sum of exactly ``n_ν`` shares,
    i.e. a genuine ``Laplace(0, scale)`` sample.  Returns the zero vector
    when there is no surplus.
    """
    surplus = actual_contributors - n_shares
    if surplus <= 0:
        return np.zeros(dimensions)
    shares = gen_noise_share(n_shares, scale, rng, size=(surplus, dimensions))
    return shares.sum(axis=0)
