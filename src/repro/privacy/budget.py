"""Privacy-budget concentration strategies (Sec. 5.1).

k-means has a logarithmic error-loss rate: the big quality gains happen in
the first iterations.  Chiaroscuro therefore *concentrates* the (ε, δ)
budget early instead of spreading it uniformly over a pessimistic iteration
estimate.  The paper proposes three proof-of-concept strategies, all
implemented here behind one small interface:

* ``GREEDY`` (G)        — iteration ``i`` gets ``ε / 2^i`` (``Σ 1/2^i ≤ 1``);
* ``GREEDY_FLOOR`` (GF) — GREEDY by *floors* of ``f`` iterations: each of the
  first ``f`` iterations gets ``ε/(2f)``, each of the next ``f`` gets
  ``ε/(2²f)``, and so on;
* ``UNIFORM_FAST`` (UF) — ``ε / n_it`` for a hard-bounded ``n_it`` iterations.

Strategies are 1-indexed like the paper; asking for an iteration beyond a
UF strategy's bound raises :class:`BudgetExhausted`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "BudgetExhausted",
    "BudgetStrategy",
    "Greedy",
    "GreedyFloor",
    "UniformFast",
    "strategy_from_name",
]


class BudgetExhausted(RuntimeError):
    """Raised when a strategy has no budget left for the requested iteration."""


class BudgetStrategy(ABC):
    """Assignment of the privacy budget ε across k-means iterations."""

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    @abstractmethod
    def epsilon_for(self, iteration: int) -> float:
        """Budget assigned to 1-indexed ``iteration``."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short name used in experiment labels (e.g. ``"G"``)."""

    def max_iterations(self) -> int | None:
        """Hard iteration bound, or ``None`` when only ``n_it^max`` applies."""
        return None

    def schedule(self, n_iterations: int) -> list[float]:
        """The per-iteration assignments for ``n_iterations`` iterations."""
        return [self.epsilon_for(i) for i in range(1, n_iterations + 1)]

    def _check_iteration(self, iteration: int) -> None:
        if iteration < 1:
            raise ValueError("iterations are 1-indexed")
        bound = self.max_iterations()
        if bound is not None and iteration > bound:
            raise BudgetExhausted(
                f"{self.name} allows at most {bound} iterations, asked for {iteration}"
            )


class Greedy(BudgetStrategy):
    """GREEDY: exponential decrease, ``ε/2^i`` for iteration ``i``."""

    @property
    def name(self) -> str:
        return "G"

    def epsilon_for(self, iteration: int) -> float:
        self._check_iteration(iteration)
        return self.epsilon / (2.0**iteration)


class GreedyFloor(BudgetStrategy):
    """GREEDY_FLOOR: GREEDY spread over floors of ``floor_size`` iterations."""

    def __init__(self, epsilon: float, floor_size: int = 4) -> None:
        super().__init__(epsilon)
        if floor_size < 1:
            raise ValueError("floor_size must be >= 1")
        self.floor_size = floor_size

    @property
    def name(self) -> str:
        return "GF"

    def epsilon_for(self, iteration: int) -> float:
        self._check_iteration(iteration)
        floor = (iteration - 1) // self.floor_size + 1
        return self.epsilon / (2.0**floor * self.floor_size)


class UniformFast(BudgetStrategy):
    """UNIFORM_FAST: uniform split over a strongly-limited iteration count."""

    def __init__(self, epsilon: float, n_iterations: int = 5) -> None:
        super().__init__(epsilon)
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.n_iterations = n_iterations

    @property
    def name(self) -> str:
        return f"UF{self.n_iterations}"

    def max_iterations(self) -> int | None:
        return self.n_iterations

    def epsilon_for(self, iteration: int) -> float:
        self._check_iteration(iteration)
        return self.epsilon / self.n_iterations


def strategy_from_name(
    name: str, epsilon: float, floor_size: int = 4, uf_iterations: int = 5
) -> BudgetStrategy:
    """Build a strategy from its paper label (``"G"``, ``"GF"``, ``"UF"``)."""
    label = name.upper()
    if label == "G":
        return Greedy(epsilon)
    if label == "GF":
        return GreedyFloor(epsilon, floor_size=floor_size)
    if label.startswith("UF"):
        suffix = label[2:]
        if suffix:
            # Validate before int(): a malformed label like "UFx" must be
            # "unknown budget strategy", not a raw int() ValueError.
            # isdecimal, not isdigit: superscripts pass isdigit but int()
            # rejects them.
            if not suffix.isdecimal():
                raise ValueError(f"unknown budget strategy {name!r}")
            uf_iterations = int(suffix)
        return UniformFast(epsilon, n_iterations=uf_iterations)
    raise ValueError(f"unknown budget strategy {name!r}")
