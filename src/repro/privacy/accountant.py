"""Privacy-budget ledger with sequential-composition accounting.

(ε, δ)-probabilistic differential privacy composes like the paper states
(Sec. 3.3.2): ``n`` independent aggregates with budgets ``ε_i`` and
probability ``δ`` each satisfy ``(Σ ε_i, δ^n)``-probabilistic DP.  The
accountant enforces a hard ceiling on ``Σ ε_i`` and tracks the δ exponent so
callers can read off the global guarantee actually spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PrivacyAccountant", "BudgetOverrun"]


class BudgetOverrun(RuntimeError):
    """Raised when a charge would push spent ε past the global budget."""


@dataclass
class PrivacyAccountant:
    """Tracks ε spending and δ composition across released aggregates.

    ``tolerance`` absorbs float round-off in schedules that sum to exactly
    ε (e.g. UNIFORM_FAST's ``n · ε/n``).
    """

    epsilon_budget: float
    delta_atom: float = 1.0
    tolerance: float = 1e-9
    spent: float = field(default=0.0, init=False)
    releases: int = field(default=0, init=False)

    def charge(self, epsilon: float, n_values: int = 1) -> None:
        """Record the release of ``n_values`` aggregates at level ``epsilon`` each.

        Chiaroscuro charges ``k·(n+1)`` values per iteration — one Laplace
        variable per mean dimension plus one per count — but because one
        individual's series lands in exactly *one* cluster, the per-release
        ε here is the per-iteration budget, not ``k`` times it (parallel
        composition across clusters; sequential across iterations).
        """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if n_values < 1:
            raise ValueError("n_values must be >= 1")
        if self.spent + epsilon > self.epsilon_budget + self.tolerance:
            raise BudgetOverrun(
                f"charging ε={epsilon:.6g} would exceed budget "
                f"{self.epsilon_budget:.6g} (already spent {self.spent:.6g})"
            )
        self.spent += epsilon
        self.releases += n_values

    @property
    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self.epsilon_budget - self.spent)

    @property
    def delta_global(self) -> float:
        """Composed probability ``δ_atom^releases`` of the guarantee holding."""
        return self.delta_atom**self.releases
