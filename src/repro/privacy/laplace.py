"""Laplace mechanism for the time-series ``Sum`` aggregate (Sec. 3.3.2).

The paper perturbs, at every k-means iteration and for every cluster, the
dimension-wise *sum* of the member series and their *count*.  Definition 4
fixes the Laplace scale to ``L1-sensitivity / ε`` with the sensitivity of
the time-series sum being ``n · max(|dmin|, |dmax|)`` for series of length
``n`` with variables in ``[dmin, dmax]``.

The paper does not spell out how the (sum, count) pair shares the budget;
we use the joint L1 sensitivity ``n·max(|d|) + 1`` as a single scale for
both components, which upper-bounds the impact of adding/removing one
individual on the whole released vector (see DESIGN.md, "design choices").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["sum_sensitivity", "joint_sensitivity", "laplace_scale", "LaplaceMechanism"]


def sum_sensitivity(series_length: int, dmin: float, dmax: float) -> float:
    """L1 sensitivity of the dimension-wise time-series sum (Def. 4).

    One individual contributes at most ``max(|dmin|, |dmax|)`` to each of the
    ``series_length`` output variables, hence ``n · max(|dmin|, |dmax|)``
    (the paper's 24·80 = 1920 for CER and 20·50 = 1000 for NUMED).
    """
    if series_length < 1:
        raise ValueError("series_length must be positive")
    return series_length * max(abs(dmin), abs(dmax))


def joint_sensitivity(series_length: int, dmin: float, dmax: float) -> float:
    """L1 sensitivity of the (sum, count) pair released for each mean."""
    return sum_sensitivity(series_length, dmin, dmax) + 1.0


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """Scale ``λ = sensitivity / ε`` of the Laplace mechanism."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    return sensitivity / epsilon


@dataclass(frozen=True)
class LaplaceMechanism:
    """Centralized Laplace perturbation, the trusted-curator reference.

    The distributed protocol reproduces exactly this distribution through
    noise-shares (Lemma 1); tests assert the distributional match.
    """

    sensitivity: float
    epsilon: float

    @property
    def scale(self) -> float:
        """The Laplace scale ``λ``."""
        return laplace_scale(self.sensitivity, self.epsilon)

    def perturb(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return ``values`` plus i.i.d. ``Laplace(0, λ)`` noise."""
        values = np.asarray(values, dtype=float)
        return values + rng.laplace(0.0, self.scale, size=values.shape)

    def sample_noise(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw a noise tensor of the given shape."""
        return rng.laplace(0.0, self.scale, size=shape)
