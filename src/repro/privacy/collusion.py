"""Collusion-resistance calculators (Appendix B.3).

Compromising a participant essentially discloses its key-share and its
noise-share.  The appendix argues:

* key-shares: fewer than ``τ`` shares reveal nothing about the secret
  polynomial;
* noise-shares: with ``n_p`` participants and ``c`` collusions, the fraction
  of the total noise still secret decreases *linearly* in ``c`` —
  ``(n_p − c) / n_p`` of the noise-shares remain unknown.

These helpers quantify both, and give the residual Laplace-divisibility
scale of the unknown noise remainder (a sum of ``n_p − c`` gamma-difference
shares), which is what an attacker would have to overcome.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CollusionAnalysis"]


@dataclass(frozen=True)
class CollusionAnalysis:
    """Uncertainty left to a coalition of ``collusions`` participants."""

    population: int
    n_shares: int
    threshold: int
    collusions: int

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if not 0 <= self.collusions <= self.population:
            raise ValueError("collusions must be within the population")
        if not 1 <= self.threshold <= self.n_shares:
            raise ValueError("need 1 <= threshold <= n_shares")

    @property
    def key_compromised(self) -> bool:
        """True when the coalition holds enough key-shares to decrypt alone."""
        return self.collusions >= self.threshold

    @property
    def missing_key_shares(self) -> int:
        """Key-shares the coalition still lacks to reach the threshold τ."""
        return max(0, self.threshold - self.collusions)

    @property
    def unknown_noise_fraction(self) -> float:
        """Fraction of noise-shares outside the coalition (linear decay, App. B.3)."""
        return (self.population - self.collusions) / self.population

    def residual_noise_shape(self) -> float:
        """Gamma shape of the unknown noise remainder.

        The total noise is a sum of ``n_p`` shares, each a difference of
        ``Gamma(1/n_p, λ)`` pairs; subtracting the coalition's ``c`` known
        shares leaves a ``Gamma((n_p − c)/n_p, λ)`` difference — shape < 1
        means the residual is still heavy at zero but its tails stay
        λ-scaled, i.e. the subtraction never collapses the perturbation.
        """
        return (self.population - self.collusions) / self.population
