"""repro — a from-scratch reproduction of *Chiaroscuro: Transparency and
Privacy for Massive Personal Time-Series Clustering* (Allard, Hébrail,
Masseglia, Pacitti — SIGMOD 2015).

Subpackages
-----------
``repro.api``
    The unified experiment API: declarative ``RunSpec``, string-keyed
    registries for datasets/initializers/strategies/planes, the
    ``Experiment`` facade with streaming run events, and
    checkpoint/resume.  The canonical way to define and run experiments.
``repro.core``
    The paper's contribution: the Diptych data structure, the full
    gossip-distributed execution sequence (Algorithms 1-3) with real
    threshold Damgård–Jurik cryptography, budget-concentration strategies
    and mean smoothing, plus the perturbed centralized k-means quality
    plane used by the paper's own evaluation.
``repro.crypto``
    Damgård–Jurik generalized Paillier with non-interactive threshold
    decryption, Shamir sharing, and fixed-point encoding.
``repro.privacy``
    Laplace mechanism, divisible noise-shares, budget strategies, the
    (ε, δ)-probabilistic machinery of Appendix B, collusion analysis.
``repro.gossip``
    Cycle-driven gossip simulator (Peersim substitution), Newscast views,
    cleartext and encrypted epidemic sums, min-id dissemination, epidemic
    threshold decryption, churn, and a vectorized 10⁶-node plane.
``repro.clustering``
    Lloyd k-means baseline, inertia metrics, init strategies, DTW extension.
``repro.datasets``
    CER-like electricity curves, NUMED-like tumor-growth series, and the
    Appendix D 2-D points workload.
``repro.analysis``
    Cost/bandwidth model and iteration-latency composition.

Quickstart
----------
>>> from repro.api import Experiment, RunSpec
>>> spec = RunSpec.from_dict({
...     "seed": 1, "strategy": "G",
...     "dataset": {"kind": "cer", "params": {"n_series": 2000}},
...     "init": {"kind": "courbogen"},
...     "params": {"k": 10, "max_iterations": 5, "epsilon": 0.69},
... })
>>> result = Experiment.from_spec(spec).run()
>>> len(result.history) > 0
True
"""

from . import analysis, api, clustering, core, crypto, datasets, gossip, privacy
from .api import Experiment, RunSpec
from .core import (
    ChiaroscuroParams,
    ChiaroscuroRun,
    ClusteringResult,
    Diptych,
    perturbed_kmeans,
)
from .privacy import Greedy, GreedyFloor, UniformFast

__version__ = "1.2.0"

__all__ = [
    "ChiaroscuroParams",
    "ChiaroscuroRun",
    "ClusteringResult",
    "Diptych",
    "Experiment",
    "Greedy",
    "GreedyFloor",
    "RunSpec",
    "UniformFast",
    "analysis",
    "api",
    "clustering",
    "core",
    "crypto",
    "datasets",
    "gossip",
    "perturbed_kmeans",
    "privacy",
]
