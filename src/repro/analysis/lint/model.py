"""The single-parse module model every lint rule shares.

One :class:`Module` is built per file — source, AST, inferred package
path, resolved imports, alias map, ``TYPE_CHECKING`` line spans and
suppression comments — and a :class:`Project` holds them all, so eight
rules cost one parse, not eight.

Package inference walks ``__init__.py`` parents (``src/repro/core/x.py``
→ ``repro.core.x``).  Fixture files — test snippets that must masquerade
as protocol modules without living inside the real tree — override it
with a directive in their first lines::

    # repro-lint-fixture: package=repro.core.example

Suppressions are per-line comments carrying a mandatory one-line
justification::

    risky_call()  # repro-lint: allow=rule-id -- why this is fine

A standalone suppression comment line applies to the next statement
line.  A suppression without the ``-- justification`` tail is itself
reported (rule id ``suppression``) and does not suppress anything.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass

__all__ = [
    "ImportRecord",
    "Module",
    "Project",
    "Suppression",
    "SUPPRESS_RE",
]

#: ``# repro-lint: allow=rule-a,rule-b -- justification``
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*allow=([A-Za-z0-9_,\-]+)\s*(?:--\s*(\S.*))?$"
)

_FIXTURE_RE = re.compile(r"#\s*repro-lint-fixture:\s*package=([\w.]+)")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``repro-lint: allow=`` comment."""

    line: int  # the statement line it covers
    rules: tuple[str, ...]
    justification: str


@dataclass(frozen=True)
class ImportRecord:
    """One import edge, resolved to absolute dotted module paths.

    ``targets`` holds the imported module itself plus, for
    ``from M import a, b``, the candidates ``M.a``/``M.b`` — a rule
    checking "does this module import package P" matches any target
    with prefix P, whichever spelling the import used.
    """

    module: str  # absolute dotted module ('' for bare relative)
    names: tuple[str, ...]  # imported names ('*' possible)
    line: int
    type_checking: bool  # gated behind `if TYPE_CHECKING:`

    @property
    def targets(self) -> tuple[str, ...]:
        out = [self.module] if self.module else []
        for name in self.names:
            if name != "*" and self.module:
                out.append(f"{self.module}.{name}")
        return tuple(out)


class Module:
    """One parsed source file plus everything rules repeatedly need."""

    def __init__(self, path: pathlib.Path, source: str, package: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        #: dotted module path, e.g. ``repro.core.protocol`` ('' if unknown)
        self.package = package
        self.tree = ast.parse(source, filename=str(path))
        self.type_checking_spans = _type_checking_spans(self.tree)
        self.suppressions, self.bad_suppressions = _parse_suppressions(
            self.lines
        )
        self.imports = _collect_imports(self.tree, package, self)
        self.aliases = _collect_aliases(self.tree, package)

    # ------------------------------------------------------------ helpers

    @classmethod
    def parse(cls, path: pathlib.Path) -> "Module":
        source = path.read_text()
        return cls(path, source, _infer_package(path, source))

    def in_type_checking(self, line: int) -> bool:
        """Is ``line`` inside an ``if TYPE_CHECKING:`` block?"""
        return any(lo <= line <= hi for lo, hi in self.type_checking_spans)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def resolve_call(self, node: ast.AST) -> str:
        """Absolute dotted path of a call target, through the alias map.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; ``datetime.now()`` after
        ``from datetime import datetime`` to ``datetime.datetime.now``.
        Returns ``''`` when the target is not a plain name/attribute
        chain.
        """
        parts: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return ""
        parts.append(cursor.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def referenced_names(self) -> set[str]:
        """Every bare name and attribute name read anywhere in the module."""
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names


class Project:
    """All modules under the linted paths, parsed once.

    ``by_package`` maps dotted module paths to modules (fixture
    directives included), so whole-project rules (layering, event-wire
    sync) look peers up without re-walking the filesystem.
    """

    def __init__(self, modules: list[Module]) -> None:
        self.modules = modules
        self.by_package: dict[str, Module] = {
            m.package: m for m in modules if m.package
        }

    @classmethod
    def load(cls, paths: list[pathlib.Path]) -> "Project":
        files: list[pathlib.Path] = []
        seen: set[pathlib.Path] = set()
        for path in paths:
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            elif path.exists():
                candidates = [path]
            else:
                raise FileNotFoundError(str(path))
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(candidate)
        return cls([Module.parse(f) for f in files])


# ----------------------------------------------------------- construction


def _infer_package(path: pathlib.Path, source: str) -> str:
    for line in source.splitlines()[:5]:
        match = _FIXTURE_RE.search(line)
        if match:
            return match.group(1)
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    cursor = resolved.parent
    while (cursor / "__init__.py").exists():
        parts.insert(0, cursor.name)
        cursor = cursor.parent
    return ".".join(parts) if len(parts) > (resolved.stem != "__init__") else ""


def _type_checking_spans(tree: ast.Module) -> tuple[tuple[int, int], ...]:
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            last = node.body[-1]
            spans.append((node.lineno, getattr(last, "end_lineno", last.lineno)))
    return tuple(spans)


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _parse_suppressions(
    lines: list[str],
) -> tuple[dict[int, list[Suppression]], list[tuple[int, str]]]:
    by_line: dict[int, list[Suppression]] = {}
    malformed: list[tuple[int, str]] = []
    for number, text in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(text)
        if not match:
            continue
        justification = (match.group(2) or "").strip()
        if not justification:
            malformed.append((number, text.strip()))
            continue
        # A comment-only line covers the next line; a trailing comment
        # covers its own.
        target = number + 1 if text.lstrip().startswith("#") else number
        rules = tuple(
            r.strip() for r in match.group(1).split(",") if r.strip()
        )
        by_line.setdefault(target, []).append(
            Suppression(line=target, rules=rules, justification=justification)
        )
    return by_line, malformed


def _collect_imports(
    tree: ast.Module, package: str, module: "Module"
) -> tuple[ImportRecord, ...]:
    records: list[ImportRecord] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                records.append(
                    ImportRecord(
                        module=alias.name,
                        names=(),
                        line=node.lineno,
                        type_checking=module.in_type_checking(node.lineno),
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            records.append(
                ImportRecord(
                    module=_resolve_from(node, package),
                    names=tuple(alias.name for alias in node.names),
                    line=node.lineno,
                    type_checking=module.in_type_checking(node.lineno),
                )
            )
    return tuple(records)


def _resolve_from(node: ast.ImportFrom, package: str) -> str:
    if not node.level:
        return node.module or ""
    # Relative import: walk `level` components up from the importing
    # module's dotted path (the module's own name counts as one).
    parts = package.split(".") if package else []
    base = parts[: max(len(parts) - node.level, 0)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _collect_aliases(tree: ast.Module, package: str) -> dict[str, str]:
    """Bound name → absolute dotted prefix, for resolving call targets.

    Handles the repo's idioms: ``import numpy as np`` (np → numpy),
    ``import time`` (time → time), ``from time import time``
    (time → time.time), ``from datetime import datetime``
    (datetime → datetime.datetime).  Aliased from-imports
    (``from x import y as z``) map the alias to the real target, so a
    rename cannot hide a call from a rule.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                aliases[bound] = alias.name if alias.asname else bound
        elif isinstance(node, ast.ImportFrom):
            module = _resolve_from(node, package)
            if not module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{module}.{alias.name}"
    return aliases
