"""``repro lint`` — the AST-based invariant analyzer.

Eight PRs of growth rest on invariants that exist only by convention:
bit-identical outputs across bigint kernels and crypto backends, fault
injection strictly separated from protocol logic, every run event
round-trippable through the NDJSON wire form, and every noise draw
charged to ε.  This package makes those contracts *machine-checked*
(the lightweight-formal-checking tradition): stdlib-``ast`` only, one
parse per file shared by every rule, and a registry of rules mirroring
the ``repro.api`` component-registry pattern.

Layout
------
* :mod:`~repro.analysis.lint.model`     — ``Module``/``Project``: the
  single-parse AST model (package inference, import resolution, alias
  maps, ``TYPE_CHECKING`` spans, suppression comments);
* :mod:`~repro.analysis.lint.findings`  — ``Finding`` and its stable
  content-based fingerprint (line-number independent);
* :mod:`~repro.analysis.lint.registry`  — ``RULES``/``@register_rule``;
* :mod:`~repro.analysis.lint.rules`     — the shipped invariants
  (determinism, bigint purity, layering, event-wire sync, registry
  hygiene, ε-accounting);
* :mod:`~repro.analysis.lint.engine`    — ``run_lint``: drive every
  rule over a project, apply suppressions and the baseline;
* :mod:`~repro.analysis.lint.baseline`  — the committed baseline file
  (``lint-baseline.json``): load/save/match;
* :mod:`~repro.analysis.lint.reporters` — text and JSON renditions
  (the JSON envelope, ``chiaroscuro-lint/v1``, ingests into the
  warehouse's ``lint_findings`` table).

CLI::

    python -m repro lint src/repro
    python -m repro lint src/repro --format json > lint-findings.json
    python -m repro lint src/repro --write-baseline
    python -m repro lint --list-rules
"""

from .baseline import load_baseline, write_baseline
from .engine import LintReport, run_lint
from .findings import Finding
from .model import Module, Project
from .registry import RULES, LintRule, register_rule
from .reporters import render_json, render_text

# Rule modules register themselves on import, exactly like
# repro.api.builtins populates the component registries.
from . import rules as _rules  # noqa: F401  (side-effect registration)

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "Module",
    "Project",
    "RULES",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
