"""The committed baseline: known findings that don't fail the build.

The baseline is the ratchet of the invariant analyzer: adopting a new
rule on a grown tree may surface violations that can't all be fixed in
one PR, so ``repro lint --write-baseline`` snapshots them and subsequent
runs report only *new* findings.  The file is committed
(``lint-baseline.json`` at the repo root), reviewed like code, and the
goal of every entry is to disappear — this repo's baseline is empty for
the determinism and bigint-purity rules by policy (see
docs/ARCHITECTURE.md).

Entries are matched by the content-based fingerprint
(:mod:`~repro.analysis.lint.findings`): stable across unrelated edits,
invalidated the moment the flagged line itself changes.
"""

from __future__ import annotations

import json
import pathlib

from .findings import Finding

__all__ = ["BASELINE_SCHEMA", "load_baseline", "write_baseline"]

BASELINE_SCHEMA = "chiaroscuro-lint-baseline/v1"


def load_baseline(path: str | pathlib.Path) -> dict[str, dict]:
    """Fingerprint → entry map from a baseline file.

    Raises ``FileNotFoundError`` for a missing file and ``ValueError``
    for one that isn't a baseline (wrong schema tag or shape) — the CLI
    turns both into usage errors.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no baseline file at {path}")
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BASELINE_SCHEMA
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValueError(
            f"{path}: not a {BASELINE_SCHEMA} baseline file"
        )
    out: dict[str, dict] = {}
    for entry in payload["findings"]:
        if isinstance(entry, dict) and entry.get("fingerprint"):
            out[str(entry["fingerprint"])] = entry
    return out


def write_baseline(
    path: str | pathlib.Path, findings: list[Finding]
) -> int:
    """Snapshot ``findings`` (the would-fail set) as the new baseline.

    Suppressed findings stay out — they are already justified inline.
    Entries are sorted by (rule, path, snippet) so the file diffs
    cleanly.  Returns the number of entries written.
    """
    entries = sorted(
        (
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
                "snippet": f.snippet,
            }
            for f in findings
            if f.status != "suppressed"
        ),
        key=lambda e: (e["rule"], e["path"], e["snippet"]),
    )
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
