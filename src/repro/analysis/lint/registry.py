"""The rule registry — ``repro.api.registry``'s pattern, mirrored.

Deliberately *mirrored*, not imported: the lint machinery itself uses
nothing but the standard library, while ``repro.api`` pulls in numpy
(and the whole builtin catalogue) at import time — a linter that needs
the code it judges to be healthy can't lint a broken tree.  The shape
is identical — a string-keyed registry populated
by a decorator — so writing a rule feels exactly like registering a
dataset or a plane:

>>> from repro.analysis.lint import LintRule, register_rule
>>> @register_rule("my-invariant")
... class MyRule(LintRule):
...     '''One-line contract statement (shown by ``--list-rules``).'''
...     def check(self, project):
...         yield from ()

A rule is a class with a ``check(project) -> Iterable[Finding]`` method;
``key`` is injected at registration.  Rules see the whole
:class:`~repro.analysis.lint.model.Project` (single-parse modules), so
per-module rules iterate ``project.modules`` and whole-program rules
(layering, event-wire sync) can look peers up in ``project.by_package``.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Iterator

from .findings import Finding
from .model import Project

__all__ = ["LintRule", "RULES", "register_rule"]

_KEY_RE = re.compile(r"^[a-z0-9][a-z0-9_\-]*$")


class LintRule:
    """Base class for rules: subclass, register, implement ``check``."""

    #: registry key, injected by :func:`register_rule`
    key: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    @property
    def description(self) -> str:
        """First docstring line — the ``--list-rules`` summary."""
        doc = (self.__class__.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


class _RuleRegistry:
    """A named string → rule mapping with decorator registration."""

    def __init__(self) -> None:
        self._items: dict[str, LintRule] = {}

    def register(self, key: str, obj: Any = None):
        if not _KEY_RE.match(key):
            raise ValueError(
                f"invalid rule key {key!r}: use lowercase letters, digits, "
                f"'-', '_'"
            )
        if obj is None:

            def decorator(target: Any) -> Any:
                self.register(key, target)
                return target

            return decorator
        instance = obj() if isinstance(obj, type) else obj
        instance.key = key
        if key in self._items and type(self._items[key]) is not type(instance):
            raise ValueError(f"lint rule {key!r} is already registered")
        self._items[key] = instance
        return obj

    def get(self, key: str) -> LintRule:
        try:
            return self._items[key]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {key!r}; registered: "
                f"{', '.join(self.keys())}"
            ) from None

    def keys(self) -> list[str]:
        return sorted(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._items)


RULES = _RuleRegistry()


def register_rule(key: str) -> Callable:
    """Decorator: register a :class:`LintRule` subclass under ``key``."""
    return RULES.register(key)
