"""Findings: what a rule reports, keyed by a content-based fingerprint.

The fingerprint deliberately ignores line *numbers* — it hashes the rule
id, the file's repo-relative path, the stripped source text of the
flagged line and an occurrence index (for identical lines) — so a
baseline entry survives unrelated edits above the finding, exactly like
the warehouse keys events by content, never by file position alone.
"""

from __future__ import annotations

import hashlib
import pathlib
from dataclasses import dataclass, field, replace

__all__ = ["Finding", "STATUSES", "fingerprint_findings", "relative_path"]

#: Finding lifecycle statuses (what the reporters and warehouse see).
STATUSES = ("new", "suppressed", "baselined")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path when possible
    line: int
    message: str
    col: int = 0
    #: flagged line's source text, stripped (fingerprint input + display)
    snippet: str = ""
    #: 'new' | 'suppressed' | 'baselined' (engine-assigned)
    status: str = "new"
    #: suppression justification (status == 'suppressed' only)
    justification: str = ""
    fingerprint: str = field(default="", compare=False)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "status": self.status,
            "justification": self.justification,
            "fingerprint": self.fingerprint,
        }


def relative_path(path: pathlib.Path) -> str:
    """Repo-relative posix form when under the cwd, else as given."""
    try:
        return path.resolve().relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def fingerprint_findings(findings: list[Finding]) -> list[Finding]:
    """Assign stable fingerprints; identical lines get occurrence indexes."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            "\x1f".join(
                [finding.rule, finding.path, finding.snippet, str(occurrence)]
            ).encode()
        ).hexdigest()[:16]
        out.append(replace(finding, fingerprint=digest))
    return out
