"""Drive the registered rules over a project and classify the findings.

The engine owns the finding lifecycle:

1. parse every file once (:class:`~repro.analysis.lint.model.Project`);
2. run each selected rule over the shared model;
3. mark findings covered by an inline ``# repro-lint: allow=`` comment
   as ``suppressed`` (justification attached);
4. mark findings whose fingerprint appears in the baseline as
   ``baselined``;
5. everything else is ``new`` — the set that fails the build.

Malformed suppression comments (no ``-- justification``) are reported
under the reserved rule id ``suppression``: an unexplained waiver is
itself a violation, so the justification requirement is machine-enforced
like every other contract here.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, replace

from .findings import Finding, fingerprint_findings, relative_path
from .model import Project
from .registry import RULES

__all__ = ["LintReport", "run_lint"]

#: Reserved rule id for malformed suppression comments.
SUPPRESSION_RULE = "suppression"


@dataclass
class LintReport:
    """Everything one lint run produced, pre-classified."""

    findings: list[Finding]  # every finding, status assigned
    files: int
    rules: list[str]  # rule keys that ran

    @property
    def new(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "new"]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "suppressed"]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "baselined"]

    def by_rule(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for finding in self.findings:
            bucket = out.setdefault(
                finding.rule, {"new": 0, "suppressed": 0, "baselined": 0}
            )
            bucket[finding.status] += 1
        return out

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def run_lint(
    paths: list[str | pathlib.Path],
    rules: list[str] | None = None,
    baseline: dict[str, dict] | None = None,
) -> LintReport:
    """Lint ``paths`` with ``rules`` (default: all registered).

    Raises ``FileNotFoundError`` for a missing path and ``KeyError`` for
    an unknown rule key — the CLI maps both to exit code 2.
    """
    selected = list(rules) if rules is not None else RULES.keys()
    instances = [RULES.get(key) for key in selected]
    project = Project.load([pathlib.Path(p) for p in paths])

    findings: list[Finding] = []
    for rule in instances:
        findings.extend(rule.check(project))
    findings.extend(_suppression_findings(project))

    # Anchor each finding to its source line text for the fingerprint
    # and attach inline suppressions.
    findings = [_classify_inline(project, f) for f in findings]
    findings = fingerprint_findings(findings)
    if baseline:
        findings = [
            replace(f, status="baselined")
            if f.status == "new" and f.fingerprint in baseline
            else f
            for f in findings
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(
        findings=findings, files=len(project.modules), rules=selected
    )


def _suppression_findings(project: Project) -> list[Finding]:
    out: list[Finding] = []
    for module in project.modules:
        for line, text in module.bad_suppressions:
            out.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=relative_path(module.path),
                    line=line,
                    message=(
                        "suppression comment has no justification — use "
                        "'# repro-lint: allow=<rule> -- <why this is fine>'"
                    ),
                    snippet=text,
                )
            )
    return out


def _classify_inline(project: Project, finding: Finding) -> Finding:
    """Fill the snippet and apply inline suppressions to one finding."""
    module = _module_for(project, finding.path)
    if module is None:
        return finding
    snippet = finding.snippet or module.line_text(finding.line).strip()
    finding = replace(finding, snippet=snippet)
    if finding.rule == SUPPRESSION_RULE:
        return finding  # the meta-rule cannot be waived by itself
    for suppression in module.suppressions.get(finding.line, []):
        if finding.rule in suppression.rules:
            return replace(
                finding,
                status="suppressed",
                justification=suppression.justification,
            )
    return finding


def _module_for(project: Project, path: str):
    for module in project.modules:
        if relative_path(module.path) == path:
            return module
    return None
