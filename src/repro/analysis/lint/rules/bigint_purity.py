"""bigint-purity: all big-integer arithmetic goes through the one kernel.

``repro.crypto.bigint`` is the single switchable arithmetic kernel
(pure-python vs gmpy2), and every perf/parity claim the benchmarks make
assumes nothing bypasses it.  A stray three-argument ``pow`` or a direct
``gmpy2`` import elsewhere silently forks the arithmetic path: results
stay correct, but the backend comparisons (and the gmpy2-gated CI lane)
stop measuring what they claim to.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding, relative_path
from ..model import Project
from ..registry import LintRule, register_rule

#: The one module allowed to do modular bigint arithmetic directly.
KERNEL = "repro.crypto.bigint"


@register_rule("bigint-purity")
class BigintPurity(LintRule):
    """Three-arg pow and gmpy2 imports only inside repro.crypto.bigint."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.package.startswith("repro") or module.package == KERNEL:
                continue
            path = relative_path(module.path)
            for record in module.imports:
                if any(
                    t == "gmpy2" or t.startswith("gmpy2.")
                    for t in record.targets
                ):
                    yield Finding(
                        rule=self.key,
                        path=path,
                        line=record.line,
                        message=(
                            f"gmpy2 imported outside {KERNEL} — backend "
                            f"selection belongs to the kernel alone"
                        ),
                    )
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "pow"
                    and len(node.args) == 3
                ):
                    yield Finding(
                        rule=self.key,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"three-argument pow() outside {KERNEL} — "
                            f"call bigint.powmod so the gmpy2 backend "
                            f"actually covers this site"
                        ),
                    )
