"""Layering rules: the import DAG and the fault plane's two seams.

The tree is layered (see docs/ARCHITECTURE.md):

* foundation — ``core``, ``gossip``, ``crypto``, ``clustering``,
  ``privacy``, ``datasets``: the protocol itself, importable alone;
* orchestration — ``api``, ``faults``, ``service``, ``warehouse``,
  ``analysis``, ``cli``: everything that wraps, drives or observes it.

``layering-dag`` keeps foundation code from importing upward — a single
``from ..service import …`` in gossip would make the protocol
unimportable without the service stack and invert the dependency story
every doc tells.  ``TYPE_CHECKING``-gated imports are exempt (annotations
don't execute).

``fault-seams`` pins the fault plane to its two documented seams into
protocol internals: engines are wrapped (``plan.wrap_engine`` →
``gossip.engine`` / ``gossip.vectorized_protocol``) and outputs observed
(``plan.observe_output`` → ``core.verification``).  Any other
``repro.core``/``repro.gossip`` import from ``repro.faults`` couples an
attack to internals the seams were built to hide.  Downward imports
(crypto primitives, privacy analysis, the api contract) are the DAG's
business, not this rule's.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding, relative_path
from ..model import Project
from ..registry import LintRule, register_rule
from ._util import scoped_modules

FOUNDATION_PACKAGES = (
    "repro.core",
    "repro.gossip",
    "repro.crypto",
    "repro.clustering",
    "repro.privacy",
    "repro.datasets",
)

ORCHESTRATION_PACKAGES = (
    "repro.api",
    "repro.faults",
    "repro.service",
    "repro.warehouse",
    "repro.analysis",
    "repro.cli",
)

#: The documented fault-plane seams into protocol internals.
FAULT_SEAMS = (
    "repro.gossip.engine",
    "repro.gossip.vectorized_protocol",
    "repro.core.verification",
)


def _hits(targets: tuple[str, ...], prefixes: tuple[str, ...]) -> str:
    for target in targets:
        for prefix in prefixes:
            if target == prefix or target.startswith(prefix + "."):
                return prefix
    return ""


@register_rule("layering-dag")
class LayeringDag(LintRule):
    """Foundation packages must not import orchestration packages."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in scoped_modules(project, FOUNDATION_PACKAGES):
            for record in module.imports:
                if record.type_checking:
                    continue
                hit = _hits(record.targets, ORCHESTRATION_PACKAGES)
                if hit:
                    yield Finding(
                        rule=self.key,
                        path=relative_path(module.path),
                        line=record.line,
                        message=(
                            f"foundation module {module.package} imports "
                            f"{hit} — the protocol layer must stay "
                            f"importable without the orchestration stack"
                        ),
                    )


@register_rule("fault-seams")
class FaultSeams(LintRule):
    """Faults reach protocol internals only through the documented seams."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in scoped_modules(project, ("repro.faults",)):
            for record in module.imports:
                if record.type_checking:
                    continue
                hit = _hits(record.targets, ("repro.core", "repro.gossip"))
                if hit and not _hits(record.targets, FAULT_SEAMS):
                    yield Finding(
                        rule=self.key,
                        path=relative_path(module.path),
                        line=record.line,
                        message=(
                            f"fault module imports protocol internals "
                            f"({', '.join(record.targets)}) outside the "
                            f"documented seams "
                            f"({', '.join(FAULT_SEAMS)})"
                        ),
                    )
