"""event-wire-sync: the event dataclasses and their wire form stay in step.

``repro.api.events`` defines the frozen event dataclasses and
``event_to_dict``, their NDJSON wire form.  The two drift silently: add
a field to ``IterationCompleted`` and forget the serializer, and the
warehouse simply never sees it — no test fails, the column is just
missing from every report.  This rule derives both sides from the AST:

* every member of the ``RunEvent = Union[...]`` alias must have an
  ``isinstance`` branch in ``event_to_dict``;
* every dataclass field of a member must be read (``event.<field>``)
  inside its branch.

A field deliberately kept off the wire (heavyweight payloads live in the
job/run records) carries an inline suppression at its declaration.
The rule is self-contained per module, so fixtures that declare their
own ``RunEvent``/``event_to_dict`` pair exercise it without touching the
real tree.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding, relative_path
from ..model import Module, Project
from ..registry import LintRule, register_rule

_UNION_NAME = "RunEvent"
_SERIALIZER = "event_to_dict"


@register_rule("event-wire-sync")
class EventWireSync(LintRule):
    """Every RunEvent member and field must appear in event_to_dict."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            members = _union_members(module)
            serializer = _find_function(module, _SERIALIZER)
            if not members or serializer is None:
                continue
            yield from self._check_module(module, members, serializer)

    def _check_module(
        self,
        module: Module,
        members: list[str],
        serializer: ast.FunctionDef,
    ) -> Iterable[Finding]:
        path = relative_path(module.path)
        branches = _isinstance_branches(serializer)
        classes = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for name in members:
            cls = classes.get(name)
            if cls is None:
                continue  # defined elsewhere; out of this rule's reach
            if name not in branches:
                yield Finding(
                    rule=self.key,
                    path=path,
                    line=cls.lineno,
                    message=(
                        f"{name} is in {_UNION_NAME} but {_SERIALIZER} "
                        f"has no isinstance branch for it — the event "
                        f"would crash serialization"
                    ),
                )
                continue
            read = branches[name]
            for field_name, field_line in _dataclass_fields(cls):
                if field_name not in read:
                    yield Finding(
                        rule=self.key,
                        path=path,
                        line=field_line,
                        message=(
                            f"{name}.{field_name} never read in its "
                            f"{_SERIALIZER} branch — the field is "
                            f"silently absent from the wire form"
                        ),
                    )


def _union_members(module: Module) -> list[str]:
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _UNION_NAME
            and isinstance(node.value, ast.Subscript)
        ):
            inner = node.value.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            return [e.id for e in elements if isinstance(e, ast.Name)]
    return []


def _find_function(module: Module, name: str) -> ast.FunctionDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _isinstance_branches(func: ast.FunctionDef) -> dict[str, set[str]]:
    """Event class name → attribute names read on the event parameter."""
    if not func.args.args:
        return {}
    param = func.args.args[0].arg
    branches: dict[str, set[str]] = {}
    for node in ast.walk(func):
        if not (isinstance(node, ast.If) and _isinstance_class(node.test, param)):
            continue
        cls_name = _isinstance_class(node.test, param)
        read: set[str] = set()
        for sub in node.body:
            for inner in ast.walk(sub):
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == param
                ):
                    read.add(inner.attr)
        branches.setdefault(cls_name, set()).update(read)
    return branches


def _isinstance_class(test: ast.AST, param: str) -> str:
    if (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id == "isinstance"
        and len(test.args) == 2
        and isinstance(test.args[0], ast.Name)
        and test.args[0].id == param
        and isinstance(test.args[1], ast.Name)
    ):
        return test.args[1].id
    return ""


def _dataclass_fields(cls: ast.ClassDef) -> list[tuple[str, int]]:
    fields: list[tuple[str, int]] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            fields.append((node.target.id, node.lineno))
    return fields
