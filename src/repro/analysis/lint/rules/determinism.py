"""Determinism rules: protocol code must be replayable bit-for-bit.

Chiaroscuro's whole experimental claim rests on seeded replay — a run
spec plus a seed reproduces the exact centroid trajectory (checkpoint
resume and the warehouse's repro reports both depend on it).  Two rules
guard that:

* ``determinism-rng`` — no unseeded or global-singleton randomness in
  the protocol packages.  ``np.random.default_rng()`` without a seed,
  ``random.Random()`` without a seed, and module-level singleton draws
  (``random.random()``, ``np.random.normal(...)``) all pull entropy the
  run spec never sees.
* ``determinism-wall-clock`` — no wall-clock reads
  (``time.time``, ``datetime.now``) in protocol logic.  Monotonic
  duration clocks (``perf_counter``, ``monotonic``) are fine: they feed
  telemetry, never control flow.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding, relative_path
from ..model import Project
from ..registry import LintRule, register_rule
from ._util import iter_calls, scoped_modules

#: Packages where randomness and clocks must be injected, never ambient.
PROTOCOL_PACKAGES = (
    "repro.core",
    "repro.gossip",
    "repro.crypto",
    "repro.clustering",
)

#: Constructors that are deterministic only when given a seed argument.
_SEEDED_CONSTRUCTORS = ("numpy.random.default_rng", "random.Random")

#: numpy.random attributes that are NOT the legacy global singleton.
_NUMPY_NONSINGLETON = ("default_rng", "Generator", "SeedSequence", "BitGenerator")

#: Wall-clock call targets (alias-resolved dotted paths).
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule("determinism-rng")
class UnseededRandomness(LintRule):
    """No unseeded RNG constructors or global-singleton draws in protocol code."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in scoped_modules(project, PROTOCOL_PACKAGES):
            for node, target in iter_calls(module):
                message = self._diagnose(node, target)
                if message:
                    yield Finding(
                        rule=self.key,
                        path=relative_path(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=message,
                    )

    @staticmethod
    def _diagnose(node: ast.Call, target: str) -> str:
        if target in _SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return (
                    f"unseeded {target}() — thread the run seed through "
                    f"instead of pulling OS entropy"
                )
            return ""
        if target.startswith("random.") and target.count(".") == 1:
            return (
                f"{target}() draws from the process-global random "
                f"singleton — use an injected random.Random(seed)"
            )
        if (
            target.startswith("numpy.random.")
            and target.split(".")[-1] not in _NUMPY_NONSINGLETON
        ):
            return (
                f"{target}() uses numpy's legacy global RNG — use an "
                f"injected numpy.random.default_rng(seed)"
            )
        return ""


@register_rule("determinism-wall-clock")
class WallClockRead(LintRule):
    """No wall-clock reads in protocol code (monotonic clocks are fine)."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in scoped_modules(project, PROTOCOL_PACKAGES):
            for node, target in iter_calls(module):
                if target in _WALL_CLOCKS:
                    yield Finding(
                        rule=self.key,
                        path=relative_path(module.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{target}() reads the wall clock inside "
                            f"protocol code — replay would diverge; use "
                            f"time.perf_counter for durations or take the "
                            f"timestamp as a parameter"
                        ),
                    )
