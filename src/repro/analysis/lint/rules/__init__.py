"""Built-in lint rules — importing this package registers all of them.

Eight rules guard the repo's structural invariants (plus the reserved
``suppression`` meta-rule the engine reports directly):

== ======================== ==========================================
1  determinism-rng          no unseeded/global RNG in protocol code
2  determinism-wall-clock   no wall-clock reads in protocol code
3  bigint-purity            bigint arithmetic only via crypto.bigint
4  layering-dag             foundation never imports orchestration
5  fault-seams              faults use the two documented seams only
6  event-wire-sync          RunEvent fields all reach event_to_dict
7  registry-hygiene         registered components documented + frozen
8  epsilon-accounting       noise draws reference the budget flow
== ======================== ==========================================
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for rule registration)
    bigint_purity,
    determinism,
    epsilon,
    events,
    hygiene,
    layering,
)

__all__ = [
    "bigint_purity",
    "determinism",
    "epsilon",
    "events",
    "hygiene",
    "layering",
]
