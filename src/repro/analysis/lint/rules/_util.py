"""Small helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..model import Module, Project

__all__ = ["in_packages", "iter_calls", "scoped_modules"]


def in_packages(module: Module, prefixes: Iterable[str]) -> bool:
    """Does ``module`` live under any of the dotted ``prefixes``?"""
    pkg = module.package
    return bool(pkg) and any(
        pkg == p or pkg.startswith(p + ".") for p in prefixes
    )


def scoped_modules(
    project: Project, prefixes: Iterable[str]
) -> Iterator[Module]:
    prefixes = tuple(prefixes)
    for module in project.modules:
        if in_packages(module, prefixes):
            yield module


def iter_calls(module: Module) -> Iterator[tuple[ast.Call, str]]:
    """Every call in ``module`` with its alias-resolved dotted target."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node, module.resolve_call(node.func)
