"""registry-hygiene: everything registered is documented and immutable.

Registered components (datasets, initializers, strategies, planes,
faults) are the public extension surface — ``repro api`` and
``--list-rules``-style listings print their docstrings, so an
undocumented registration is a hole in the user-facing catalogue.  And a
registered *dataclass* is shared configuration handed to arbitrary run
code: if it isn't ``frozen=True``, one plane can mutate what the next
one reads.  Both contracts are structural, so both are machine-checked:

* any ``def``/``class`` decorated with ``@register_*(...)`` or
  ``@<registry>.register(...)`` must have a docstring;
* if such a class is also decorated ``@dataclass``, it must say
  ``frozen=True``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding, relative_path
from ..model import Module, Project
from ..registry import LintRule, register_rule


@register_rule("registry-hygiene")
class RegistryHygiene(LintRule):
    """Registered components need docstrings; registered dataclasses, frozen=True."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            path = relative_path(module.path)
            for node in ast.walk(module.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                key = _registration_key(node, module)
                if key is None:
                    continue
                if not ast.get_docstring(node):
                    yield Finding(
                        rule=self.key,
                        path=path,
                        line=node.lineno,
                        message=(
                            f"registered component {node.name!r} ({key}) "
                            f"has no docstring — registries surface it in "
                            f"user-facing listings"
                        ),
                    )
                if isinstance(node, ast.ClassDef):
                    verdict = _dataclass_frozen(node)
                    if verdict is False:
                        yield Finding(
                            rule=self.key,
                            path=path,
                            line=node.lineno,
                            message=(
                                f"registered dataclass {node.name!r} "
                                f"({key}) is not frozen=True — registered "
                                f"config must be immutable"
                            ),
                        )


def _registration_key(node: ast.AST, module: Module) -> str | None:
    """The registry key string if ``node`` is decorated as a registration."""
    for decorator in getattr(node, "decorator_list", []):
        if not isinstance(decorator, ast.Call):
            continue
        target = module.resolve_call(decorator.func)
        last = target.rsplit(".", maxsplit=1)[-1]
        if last.startswith("register"):
            if decorator.args and isinstance(
                decorator.args[0], ast.Constant
            ):
                return repr(decorator.args[0].value)
            return target
    return None


def _dataclass_frozen(node: ast.ClassDef) -> bool | None:
    """True/False for dataclasses, None when not a dataclass at all."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return False  # bare @dataclass — mutable by default
        if isinstance(decorator, ast.Call):
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else getattr(
                func, "attr", ""
            )
            if name == "dataclass":
                return any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
    return None
