"""epsilon-accounting: every noise draw is visible to the budget flow.

The differential-privacy guarantee is an *accounting* property: ε is
only meaningful if every Laplace/gamma perturbation a run performs was
charged to the :class:`~repro.privacy.accountant.PrivacyAccountant`.
A noise draw added in core/gossip/clustering code that never touches
the accountant flow is an unaccounted privacy spend — the run reports a
smaller ε than it actually consumed.

The check is necessarily module-granular (data flow through numpy is
out of AST reach): any protocol module containing a noise site — an
``rng.laplace``/``rng.gamma`` draw or a ``LaplaceMechanism``/
``NoisePlan`` construction — must also reference the budget flow
(``PrivacyAccountant``, ``epsilon_for``, ``epsilon_charged``,
``charge``, ``BudgetExhausted``).  ``repro.privacy`` itself is exempt:
it *is* the mechanism layer the rest of the tree is charged through.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding, relative_path
from ..model import Module, Project
from ..registry import LintRule, register_rule
from ._util import scoped_modules

SCOPED_PACKAGES = (
    "repro.core",
    "repro.gossip",
    "repro.clustering",
    "repro.crypto",
)

#: Attribute draws on an RNG object that inject DP noise.
_NOISE_ATTRS = frozenset({"laplace", "gamma"})

#: Constructions that represent a planned noise draw.
_NOISE_CONSTRUCTORS = frozenset({"LaplaceMechanism", "NoisePlan"})

#: Names whose presence shows the module participates in ε accounting.
_BUDGET_NAMES = frozenset(
    {
        "PrivacyAccountant",
        "epsilon_for",
        "epsilon_charged",
        "charge",
        "BudgetExhausted",
    }
)


@register_rule("epsilon-accounting")
class EpsilonAccounting(LintRule):
    """Modules drawing DP noise must reference the privacy-budget flow."""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in scoped_modules(project, SCOPED_PACKAGES):
            sites = _noise_sites(module)
            if not sites:
                continue
            if module.referenced_names() & _BUDGET_NAMES:
                continue
            for line, col, what in sites:
                yield Finding(
                    rule=self.key,
                    path=relative_path(module.path),
                    line=line,
                    col=col,
                    message=(
                        f"{what} draws DP noise but this module never "
                        f"references the budget flow "
                        f"({', '.join(sorted(_BUDGET_NAMES))}) — "
                        f"unaccounted ε spend"
                    ),
                )


def _noise_sites(module: Module) -> list[tuple[int, int, str]]:
    sites: list[tuple[int, int, str]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NOISE_ATTRS
            and not module.resolve_call(func).startswith("math.")
        ):
            sites.append((node.lineno, node.col_offset, f".{func.attr}()"))
        else:
            target = module.resolve_call(func)
            last = target.rsplit(".", maxsplit=1)[-1]
            if last in _NOISE_CONSTRUCTORS:
                sites.append((node.lineno, node.col_offset, f"{last}(...)"))
    return sites
