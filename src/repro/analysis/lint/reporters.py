"""Render a :class:`~repro.analysis.lint.engine.LintReport`.

Two formats, mirroring the rest of the toolchain:

* ``text`` — human-readable, one line per finding, grouped summary;
* ``json`` — a ``chiaroscuro-lint/v1`` envelope with the same
  provenance block the benchmark records carry (git revision,
  timestamps), so the warehouse can ingest lint runs alongside bench
  records and plot the violation trajectory over commits.
"""

from __future__ import annotations

import json
import subprocess
import time

from .engine import LintReport

__all__ = ["REPORT_SCHEMA", "render_json", "render_text"]

REPORT_SCHEMA = "chiaroscuro-lint/v1"


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:
        return "unknown"


def render_text(report: LintReport, verbose: bool = False) -> str:
    """One line per actionable finding, then a per-rule summary."""
    out: list[str] = []
    shown = report.findings if verbose else report.new
    for finding in shown:
        tag = "" if finding.status == "new" else f" [{finding.status}]"
        out.append(
            f"{finding.path}:{finding.line}: {finding.rule}{tag}: "
            f"{finding.message}"
        )
        if finding.snippet:
            out.append(f"    {finding.snippet}")
        if finding.justification:
            out.append(f"    justification: {finding.justification}")
    if shown:
        out.append("")
    for rule, counts in sorted(report.by_rule().items()):
        parts = [
            f"{counts[status]} {status}"
            for status in ("new", "suppressed", "baselined")
            if counts[status]
        ]
        out.append(f"{rule}: {', '.join(parts)}")
    new = len(report.new)
    out.append(
        f"{report.files} file(s), {len(report.rules)} rule(s): "
        f"{new} new, {len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    return "\n".join(out) + "\n"


def render_json(report: LintReport) -> str:
    """The ``chiaroscuro-lint/v1`` envelope (warehouse ingest format)."""
    now = time.time()
    payload = {
        "schema": REPORT_SCHEMA,
        "provenance": {
            "git_rev": _git_rev(),
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
            ),
            "unix_time": now,
        },
        "files": report.files,
        "rules": report.rules,
        "counts": {
            "new": len(report.new),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2) + "\n"
