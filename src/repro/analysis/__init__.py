"""Evaluation helpers: local cost/bandwidth accounting (Fig. 5) and the
per-iteration latency composition (Sec. 6.3.2).
"""

from .costs import (
    CostSample,
    LocalCostModel,
    compare_scalar_batched_costs,
    means_set_bytes,
    measure_crypto_costs,
)
from .latency import IterationLatency, LatencyInputs, iteration_latency

__all__ = [
    "CostSample",
    "IterationLatency",
    "LatencyInputs",
    "LocalCostModel",
    "compare_scalar_batched_costs",
    "iteration_latency",
    "means_set_bytes",
    "measure_crypto_costs",
]
