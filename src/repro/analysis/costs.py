"""Local cost and bandwidth model (Sec. 6.1.2, Fig. 5).

Three parameters fully determine a participant's footprint: the number of
clusters ``k``, the mean size (= series length ``n``, plus the count), and
the ciphertext length (≈ ``(s+1)``× the key size).  The relationships are
linear; :class:`LocalCostModel` makes them explicit, and
:func:`measure_crypto_costs` produces the actually-measured MIN/MAX/AVG
triplets the Fig. 5(a) bars report, using the real cryptosystem.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..crypto.damgard_jurik import encrypt, homomorphic_add
from ..crypto.keys import PublicKey
from ..crypto.threshold import (
    ThresholdKeypair,
    combine_partial_decryptions,
    partial_decrypt,
)

__all__ = ["LocalCostModel", "CostSample", "measure_crypto_costs", "means_set_bytes"]


def means_set_bytes(public: PublicKey, k: int, series_length: int, with_count: bool = True) -> int:
    """Wire size of one set of encrypted means (Fig. 5(b)).

    ``k`` means × (``series_length`` sum ciphertexts + optionally the count
    ciphertext), each of ``public.ciphertext_bytes`` bytes, plus the
    cleartext weight/counter envelope (negligible, ignored).
    """
    per_mean = series_length + (1 if with_count else 0)
    return k * per_mean * public.ciphertext_bytes


@dataclass(frozen=True)
class LocalCostModel:
    """Linear cost model: everything scales with ``k·(n+1)`` ciphertexts."""

    public: PublicKey
    k: int
    series_length: int

    @property
    def ciphertexts_per_set(self) -> int:
        return self.k * (self.series_length + 1)

    @property
    def transfer_bytes(self) -> int:
        """One means-set transfer (the Fig. 5(b) bar)."""
        return means_set_bytes(self.public, self.k, self.series_length)

    def exchange_bytes(self) -> int:
        """One epidemic-sum exchange moves two means sets (push–pull)."""
        return 2 * self.transfer_bytes

    def decryption_exchange_bytes(self) -> int:
        """One decryption exchange: encrypted + partially-decrypted copies
        in both directions — the equivalent of four means sets (Sec. 6.3.1)."""
        return 4 * self.transfer_bytes

    def transfer_seconds(self, bandwidth_bits_per_s: float = 1e6) -> float:
        """Transfer time of one means set on a given uplink (default 1 Mb/s)."""
        return self.transfer_bytes * 8 / bandwidth_bits_per_s


@dataclass
class CostSample:
    """MIN/MAX/AVG of a repeated timing measurement, in seconds."""

    minimum: float
    maximum: float
    average: float

    @classmethod
    def from_times(cls, times: list[float]) -> "CostSample":
        return cls(min(times), max(times), sum(times) / len(times))


def measure_crypto_costs(
    keypair: ThresholdKeypair,
    k: int = 50,
    series_length: int = 20,
    repetitions: int = 3,
    rng: random.Random | None = None,
) -> dict[str, CostSample]:
    """Measure encrypt / add / decrypt wall-times for one set of means.

    Mirrors the Fig. 5(a) protocol: a "set of means" is ``k·(n+1)``
    ciphertexts; *decrypt* applies ``τ`` partial decryptions plus the
    combination, the per-iteration operation of the epidemic decryption.
    """
    rng = rng or random.Random(7)
    public = keypair.public
    count = k * (series_length + 1)
    values = [rng.randrange(1 << 20) for _ in range(count)]

    encrypt_times, add_times, decrypt_times = [], [], []
    for _ in range(repetitions):
        start = time.perf_counter()
        set_a = [encrypt(public, v, rng=rng) for v in values]
        encrypt_times.append(time.perf_counter() - start)

        set_b = [encrypt(public, v, rng=rng) for v in values]
        start = time.perf_counter()
        added = [homomorphic_add(public, a, b) for a, b in zip(set_a, set_b)]
        add_times.append(time.perf_counter() - start)

        tau = keypair.context.threshold
        shares = keypair.shares[:tau]
        start = time.perf_counter()
        for ciphertext in added:
            partials = {
                share.index: partial_decrypt(keypair.context, share, ciphertext)
                for share in shares
            }
            combine_partial_decryptions(keypair.context, partials)
        decrypt_times.append(time.perf_counter() - start)

    return {
        "encrypt": CostSample.from_times(encrypt_times),
        "add": CostSample.from_times(add_times),
        "decrypt": CostSample.from_times(decrypt_times),
    }
