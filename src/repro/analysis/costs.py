"""Local cost and bandwidth model (Sec. 6.1.2, Fig. 5).

Three parameters fully determine a participant's footprint: the number of
clusters ``k``, the mean size (= series length ``n``, plus the count), and
the ciphertext length (≈ ``(s+1)``× the key size).  The relationships are
linear; :class:`LocalCostModel` makes them explicit, and
:func:`measure_crypto_costs` produces the actually-measured MIN/MAX/AVG
triplets the Fig. 5(a) bars report, using the real cryptosystem.

:func:`compare_scalar_batched_costs` additionally measures the *batched*
ciphertext plane (slot packing + fixed-base randomizer tables) against the
scalar baseline on the same computation-step workload — encrypt one set of
means, homomorphically add two sets, threshold-decrypt — and verifies the
decoded outputs are bit-identical between the two planes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..crypto.backend import SerialBackend
from ..crypto.damgard_jurik import (
    FastEncryptor,
    encrypt,
    homomorphic_add,
    homomorphic_add_batch,
)
from ..crypto.encoding import FixedPointCodec, PackedCodec
from ..crypto.keys import PublicKey
from ..crypto.threshold import (
    ThresholdKeypair,
    combine_partial_decryptions,
    partial_decrypt,
)

__all__ = [
    "LocalCostModel",
    "CostSample",
    "compare_scalar_batched_costs",
    "measure_crypto_costs",
    "means_set_bytes",
]


def means_set_bytes(public: PublicKey, k: int, series_length: int, with_count: bool = True) -> int:
    """Wire size of one set of encrypted means (Fig. 5(b)).

    ``k`` means × (``series_length`` sum ciphertexts + optionally the count
    ciphertext), each of ``public.ciphertext_bytes`` bytes, plus the
    cleartext weight/counter envelope (negligible, ignored).
    """
    per_mean = series_length + (1 if with_count else 0)
    return k * per_mean * public.ciphertext_bytes


@dataclass(frozen=True)
class LocalCostModel:
    """Linear cost model: everything scales with ``k·(n+1)`` ciphertexts."""

    public: PublicKey
    k: int
    series_length: int

    @property
    def ciphertexts_per_set(self) -> int:
        return self.k * (self.series_length + 1)

    @property
    def transfer_bytes(self) -> int:
        """One means-set transfer (the Fig. 5(b) bar)."""
        return means_set_bytes(self.public, self.k, self.series_length)

    def exchange_bytes(self) -> int:
        """One epidemic-sum exchange moves two means sets (push–pull)."""
        return 2 * self.transfer_bytes

    def decryption_exchange_bytes(self) -> int:
        """One decryption exchange: encrypted + partially-decrypted copies
        in both directions — the equivalent of four means sets (Sec. 6.3.1)."""
        return 4 * self.transfer_bytes

    def transfer_seconds(self, bandwidth_bits_per_s: float = 1e6) -> float:
        """Transfer time of one means set on a given uplink (default 1 Mb/s)."""
        return self.transfer_bytes * 8 / bandwidth_bits_per_s


@dataclass
class CostSample:
    """MIN/MAX/AVG of a repeated timing measurement, in seconds."""

    minimum: float
    maximum: float
    average: float

    @classmethod
    def from_times(cls, times: list[float]) -> "CostSample":
        return cls(min(times), max(times), sum(times) / len(times))


def measure_crypto_costs(
    keypair: ThresholdKeypair,
    k: int = 50,
    series_length: int = 20,
    repetitions: int = 3,
    rng: random.Random | None = None,
) -> dict[str, CostSample]:
    """Measure encrypt / add / decrypt wall-times for one set of means.

    Mirrors the Fig. 5(a) protocol: a "set of means" is ``k·(n+1)``
    ciphertexts; *decrypt* applies ``τ`` partial decryptions plus the
    combination, the per-iteration operation of the epidemic decryption.
    """
    rng = rng or random.Random(7)
    public = keypair.public
    count = k * (series_length + 1)
    values = [rng.randrange(1 << 20) for _ in range(count)]

    encrypt_times, add_times, decrypt_times = [], [], []
    for _ in range(repetitions):
        start = time.perf_counter()
        set_a = [encrypt(public, v, rng=rng) for v in values]
        encrypt_times.append(time.perf_counter() - start)

        set_b = [encrypt(public, v, rng=rng) for v in values]
        start = time.perf_counter()
        added = [homomorphic_add(public, a, b) for a, b in zip(set_a, set_b)]
        add_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        _threshold_decrypt_all(keypair, added)
        decrypt_times.append(time.perf_counter() - start)

    return {
        "encrypt": CostSample.from_times(encrypt_times),
        "add": CostSample.from_times(add_times),
        "decrypt": CostSample.from_times(decrypt_times),
    }


def _threshold_decrypt_all(
    keypair: ThresholdKeypair, ciphertexts: list[int]
) -> list[int]:
    """τ partial decryptions + combination for every ciphertext (timed path)."""
    tau = keypair.context.threshold
    shares = keypair.shares[:tau]
    plaintexts = []
    for ciphertext in ciphertexts:
        partials = {
            share.index: partial_decrypt(keypair.context, share, ciphertext)
            for share in shares
        }
        plaintexts.append(combine_partial_decryptions(keypair.context, partials))
    return plaintexts


def compare_scalar_batched_costs(
    keypair: ThresholdKeypair,
    k: int = 50,
    series_length: int = 20,
    repetitions: int = 1,
    rng: random.Random | None = None,
    fractional_bits: int = 24,
    max_abs_value: float = 1000.0,
    window_bits: int = 6,
) -> dict:
    """Measure the computation-step local cost on both ciphertext planes.

    The workload mirrors :func:`measure_crypto_costs` — encrypt one set of
    ``k·(series_length+1)`` means values, homomorphically add two sets,
    threshold-decrypt the result — once per plane over identical input
    values.  The batched plane packs values with :class:`PackedCodec`
    (accumulation sized for the two-set sum) and amortizes randomizers with
    a :class:`FastEncryptor` table whose one-time build cost is reported
    separately as ``precompute_seconds`` (a protocol run pays it once).

    Returns a dict with per-plane ``CostSample`` maps, the per-plane
    ciphertext counts, the end-to-end ``speedup`` (scalar total / batched
    total), and ``identical`` — whether both planes decoded bit-identical
    float vectors.
    """
    rng = rng or random.Random(7)
    public = keypair.public
    count = k * (series_length + 1)
    values = [rng.uniform(-max_abs_value, max_abs_value) for _ in range(count)]

    codec = FixedPointCodec(public, fractional_bits=fractional_bits)
    packed = PackedCodec.plan(
        public,
        fractional_bits=fractional_bits,
        max_abs_value=max_abs_value,
        population=1,
        exchanges=1,
        terms=2,  # two biased sets are summed before decryption
    )

    start = time.perf_counter()
    encryptor = FastEncryptor(public, rng, window_bits=window_bits)
    precompute_seconds = time.perf_counter() - start
    batched_backend = SerialBackend(encryptor)

    results: dict[str, dict[str, CostSample]] = {}
    decoded: dict[str, list[float]] = {}

    # --- scalar plane (the seed implementation's layout) -----------------
    times: dict[str, list[float]] = {"encrypt": [], "add": [], "decrypt": []}
    for _ in range(repetitions):
        plaintexts = [codec.encode(v) for v in values]
        start = time.perf_counter()
        set_a = [encrypt(public, m, rng=rng) for m in plaintexts]
        times["encrypt"].append(time.perf_counter() - start)
        set_b = [encrypt(public, m, rng=rng) for m in plaintexts]
        start = time.perf_counter()
        added = [homomorphic_add(public, a, b) for a, b in zip(set_a, set_b)]
        times["add"].append(time.perf_counter() - start)
        start = time.perf_counter()
        residues = _threshold_decrypt_all(keypair, added)
        times["decrypt"].append(time.perf_counter() - start)
        decoded["scalar"] = [codec.decode(r) for r in residues]
    results["scalar"] = {op: CostSample.from_times(t) for op, t in times.items()}
    scalar_ciphertexts = count

    # --- batched plane (packing + fixed-base randomizers) ----------------
    times = {"encrypt": [], "add": [], "decrypt": []}
    for _ in range(repetitions):
        # Encoding (pack) stays outside the timer, mirroring the scalar
        # loop where codec.encode runs before the clock starts.
        packed_plaintexts = packed.pack(values)
        start = time.perf_counter()
        set_a = batched_backend.encrypt_batch(public, packed_plaintexts, rng)
        times["encrypt"].append(time.perf_counter() - start)
        set_b = batched_backend.encrypt_batch(public, packed_plaintexts, rng)
        start = time.perf_counter()
        added = homomorphic_add_batch(public, set_a, set_b)
        times["add"].append(time.perf_counter() - start)
        start = time.perf_counter()
        plaintexts = _threshold_decrypt_all(keypair, added)
        times["decrypt"].append(time.perf_counter() - start)
        decoded["batched"] = packed.unpack(plaintexts, count, bias_multiplier=2)
    results["batched"] = {op: CostSample.from_times(t) for op, t in times.items()}
    batched_ciphertexts = len(added)

    totals = {
        plane: sum(sample.average for sample in samples.values())
        for plane, samples in results.items()
    }
    return {
        "scalar": results["scalar"],
        "batched": results["batched"],
        "speedup": totals["scalar"] / totals["batched"],
        "identical": decoded["scalar"] == decoded["batched"],
        "slots": packed.slots,
        "scalar_ciphertexts": scalar_ciphertexts,
        "batched_ciphertexts": batched_ciphertexts,
        "precompute_seconds": precompute_seconds,
        "scalar_seconds": totals["scalar"],
        "batched_seconds": totals["batched"],
    }
