"""Iteration-latency composition (Sec. 6.3.2).

The total latency of one Chiaroscuro iteration is the latency of

* two epidemic encrypted sums (means + noise),
* one epidemic dissemination (the noise correction),
* one epidemic decryption,

expressed in messages per participant, converted to wall-clock by charging
each message with its transfer time and each exchange with its local
compute time.  The paper composes exactly these terms to land on "a first
iteration completing after around 26 mins and a fifth one after around
10 mins" — the fifth being cheaper because lost centroids shrink the means
set.  :func:`iteration_latency` reproduces that composition.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costs import LocalCostModel

__all__ = ["LatencyInputs", "IterationLatency", "iteration_latency"]


@dataclass(frozen=True)
class LatencyInputs:
    """Measured/derived building blocks for the composition."""

    sum_messages_per_node: float  # one epidemic encrypted sum
    dissemination_messages_per_node: float
    decryption_messages_per_node: float
    encrypt_seconds: float  # one means set
    add_seconds: float  # one homomorphic set addition
    decrypt_seconds: float  # one threshold decryption of a set
    bandwidth_bits_per_s: float = 1e6


@dataclass(frozen=True)
class IterationLatency:
    """The composed per-iteration latency breakdown (seconds)."""

    transfer_seconds: float
    compute_seconds: float
    messages_per_node: float

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.compute_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


def iteration_latency(
    cost_model: LocalCostModel, inputs: LatencyInputs, alive_fraction: float = 1.0
) -> IterationLatency:
    """Compose one iteration's latency for a given surviving-centroid fraction.

    ``alive_fraction`` scales the means-set size: by the fifth iteration the
    paper observed 60 % of centroids lost, i.e. ``alive_fraction = 0.4``,
    which is what shrinks 26 min to ~10 min.
    """
    if not 0 < alive_fraction <= 1:
        raise ValueError("alive_fraction must be in (0, 1]")
    messages = (
        2.0 * inputs.sum_messages_per_node
        + inputs.dissemination_messages_per_node
        + inputs.decryption_messages_per_node
    )
    set_bytes = cost_model.transfer_bytes * alive_fraction
    per_message_bytes = 2.0 * set_bytes  # push–pull moves a set each way
    transfer = messages * per_message_bytes * 8 / inputs.bandwidth_bits_per_s

    compute = alive_fraction * (
        inputs.encrypt_seconds  # once per iteration (assignment step)
        + inputs.add_seconds * 2.0 * inputs.sum_messages_per_node
        + inputs.decrypt_seconds  # once per iteration
    )
    return IterationLatency(
        transfer_seconds=transfer,
        compute_seconds=compute,
        messages_per_node=messages,
    )
