"""Appendix D illustration: clear vs perturbed k-means on 750K 2-D points.

Regenerates the paper's Figure 6 as an ASCII scatter: the duplicated
A3-like dataset, the centroids of a clear k-means run and of a Chiaroscuro
(GREEDY, no smoothing — 2-D points have no temporal adjacency) run at the
same iteration.  The private run is a ``RunSpec`` on the ``points2d``
dataset key.

    python examples/points2d_illustration.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Experiment, RunSpec
from repro.clustering import lloyd_kmeans
from repro.datasets import generate_a3_like

GRID_W, GRID_H = 72, 28

SPEC = RunSpec.from_dict({
    "name": "points2d-fig6",
    "plane": "quality",
    "seed": 4,
    "strategy": "G",
    "dataset": {"kind": "points2d", "params": {}},
    "init": {"kind": "sample"},
    "params": {"k": 50, "max_iterations": 6, "epsilon": 0.69,
               "use_smoothing": False, "theta": 0.0},
})


def ascii_scatter(points, clear_c, perturbed_c):
    """Render data density plus both centroid sets on a character grid."""
    grid = [[" "] * GRID_W for _ in range(GRID_H)]

    def cell(p):
        x = int(np.clip(p[0] / 1000 * (GRID_W - 1), 0, GRID_W - 1))
        y = int(np.clip(p[1] / 1000 * (GRID_H - 1), 0, GRID_H - 1))
        return GRID_H - 1 - y, x

    sample = points[:: max(1, len(points) // 4000)]
    for p in sample:
        r, c = cell(p)
        grid[r][c] = "."
    for p in clear_c:
        r, c = cell(p)
        grid[r][c] = "o"
    for p in perturbed_c:
        r, c = cell(p)
        grid[r][c] = "X" if grid[r][c] == "o" else "x"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    experiment = Experiment.from_spec(SPEC)
    data = experiment.context.dataset
    init = experiment.context.initial_centroids
    _, centers = generate_a3_like(seed=4)
    print(f"{data.t:,} points in 50 clusters; k = 50, iteration of interest: 6")

    clear = lloyd_kmeans(data.values, init, max_iterations=6, threshold=0.0)
    private = experiment.run()

    clear_c = clear.centroids[-1]
    pert_c = private.history[-1].centroids
    print(ascii_scatter(data.values, clear_c, pert_c))
    print("legend: '.' data   'o' clear k-means centroid   "
          "'x' Chiaroscuro centroid   'X' both")

    def summary(centroids, label):
        d = np.linalg.norm(
            centroids[:, None, :] - centers[None, :, :], axis=2
        ).min(axis=1)
        print(f"{label:<18} {len(centroids):>3} centroids, median distance to a "
              f"true center {np.median(d):6.1f}, 90th pct {np.quantile(d, .9):6.1f}")

    summary(clear_c, "clear k-means")
    summary(pert_c, "Chiaroscuro (G)")
    print("\nPaper observation: perturbed centroids are less accurate but land "
          "mostly within or between actual clusters.")


if __name__ == "__main__":
    main()
