"""Compare privacy-budget concentration strategies on electricity data.

The paper's Sec. 5.1 insight: k-means gains most in its first iterations,
so the (ε, δ) budget should be concentrated early.  This example sweeps
GREEDY, GREEDY_FLOOR and UNIFORM_FAST (the Fig. 2(a) experiment, scaled to
a laptop) and prints which strategy wins at which iteration.

The sweep runs through the **experiment service**: the eight variants are
submitted as one batch of ``RunSpec``s and executed by a concurrent
scheduler (one worker process per job), exactly as ``repro submit`` +
``repro serve --drain`` would.  The job directories — event logs,
checkpoints, ``chiaroscuro-run/v1`` records — are left under
``service-root-example/`` to poke at with ``repro jobs``/``repro tail``.

    python examples/electricity_budget_strategies.py
"""

from __future__ import annotations

import tempfile

from repro.api import Experiment, RunSpec
from repro.clustering import lloyd_kmeans
from repro.core.results import ClusteringResult
from repro.service import run_batch

ITERATIONS = 10
EPSILON = 0.69  # ln 2, the paper's "common value"

BASE = {
    "name": "budget-strategies",
    "plane": "quality",
    "seed": 4,
    "dataset": {"kind": "cer",
                # pinned dataset/init seeds: every variant clusters the
                # same workload from the same starting centroids
                "params": {"n_series": 10_000, "population_scale": 100,
                           "seed": 3}},
    "init": {"kind": "courbogen", "params": {"seed": 3}},
}


def spec_for(label: str, smoothing: bool) -> RunSpec:
    return RunSpec.from_dict({
        **BASE,
        "name": f"budget-{label.lower()}{'-sma' if smoothing else ''}",
        "strategy": label,
        "params": {"k": 30, "max_iterations": ITERATIONS, "epsilon": EPSILON,
                   "floor_size": 4, "use_smoothing": smoothing, "theta": 0.0},
    })


def main() -> None:
    context = Experiment.from_spec(spec_for("G", True)).context
    data, init = context.dataset, context.initial_centroids
    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)

    specs = [
        spec_for(label, smoothing)
        for label in ("G", "GF", "UF5", "UF10")
        for smoothing in (True, False)
    ]
    root = tempfile.mkdtemp(prefix="service-root-example-")
    print(f"submitting {len(specs)} specs to the experiment service "
          f"(root: {root})")
    records = run_batch(specs, root, max_workers=4)

    curves = {"no-perturb": baseline.inertia}
    for record in records:
        result = ClusteringResult.from_dict(record["result"])
        curve = result.pre_inertia_curve
        curves[result.label] = curve + [curve[-1]] * (ITERATIONS - len(curve))

    print(f"{'strategy':<12}" + "".join(f"{i:>8d}" for i in range(1, ITERATIONS + 1)))
    for label, curve in curves.items():
        print(f"{label:<12}" + "".join(f"{v:>8.1f}" for v in curve[:ITERATIONS]))

    print("\nwinner per iteration (lowest pre-perturbation inertia):")
    private = {k: v for k, v in curves.items() if k != "no-perturb"}
    for i in range(ITERATIONS):
        winner = min(private, key=lambda k: private[k][i])
        print(f"  iteration {i + 1:>2}: {winner:<10} ({private[winner][i]:.1f})")

    print("\nPaper expectation: GREEDY variants lead the early/middle "
          "iterations, then noise overwhelms them and the bounded/uniform "
          "strategies catch up; SMA smoothing helps on concentrated data.")
    print(f"\nservice root kept at {root} — inspect it with:")
    print(f"  python -m repro jobs --root {root}")
    print(f"  python -m repro tail --root {root}")


if __name__ == "__main__":
    main()
