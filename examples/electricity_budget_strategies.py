"""Compare privacy-budget concentration strategies on electricity data.

The paper's Sec. 5.1 insight: k-means gains most in its first iterations,
so the (ε, δ) budget should be concentrated early.  This example sweeps
GREEDY, GREEDY_FLOOR and UNIFORM_FAST (the Fig. 2(a) experiment, scaled to
a laptop) and prints which strategy wins at which iteration.

    python examples/electricity_budget_strategies.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering import lloyd_kmeans
from repro.core import PerturbationOptions, perturbed_kmeans
from repro.datasets import courbogen_like_centroids, generate_cer
from repro.privacy import strategy_from_name

ITERATIONS = 10
EPSILON = 0.69  # ln 2, the paper's "common value"


def main() -> None:
    data = generate_cer(n_series=10_000, population_scale=100, seed=3)
    init = courbogen_like_centroids(30, np.random.default_rng(3))
    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)

    curves = {"no-perturb": baseline.inertia}
    for label in ("G", "GF", "UF5", "UF10"):
        for smoothing in (True, False):
            strategy = strategy_from_name(label, EPSILON, floor_size=4)
            result = perturbed_kmeans(
                data, init, strategy, max_iterations=ITERATIONS,
                options=PerturbationOptions(smoothing=smoothing),
                rng=np.random.default_rng(4),
            )
            curve = result.pre_inertia_curve
            curves[result.label] = curve + [curve[-1]] * (ITERATIONS - len(curve))

    print(f"{'strategy':<12}" + "".join(f"{i:>8d}" for i in range(1, ITERATIONS + 1)))
    for label, curve in curves.items():
        print(f"{label:<12}" + "".join(f"{v:>8.1f}" for v in curve[:ITERATIONS]))

    print("\nwinner per iteration (lowest pre-perturbation inertia):")
    private = {k: v for k, v in curves.items() if k != "no-perturb"}
    for i in range(ITERATIONS):
        winner = min(private, key=lambda k: private[k][i])
        print(f"  iteration {i + 1:>2}: {winner:<10} ({private[winner][i]:.1f})")

    print("\nPaper expectation: GREEDY variants lead the early/middle "
          "iterations, then noise overwhelms them and the bounded/uniform "
          "strategies catch up; SMA smoothing helps on concentrated data.")


if __name__ == "__main__":
    main()
