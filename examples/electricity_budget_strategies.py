"""Compare privacy-budget concentration strategies on electricity data.

The paper's Sec. 5.1 insight: k-means gains most in its first iterations,
so the (ε, δ) budget should be concentrated early.  This example sweeps
GREEDY, GREEDY_FLOOR and UNIFORM_FAST (the Fig. 2(a) experiment, scaled to
a laptop) and prints which strategy wins at which iteration.  Each variant
is the *same* base ``RunSpec`` with the strategy and smoothing fields
swapped — the declarative form makes the sweep a loop over dicts.

    python examples/electricity_budget_strategies.py
"""

from __future__ import annotations

from repro.api import Experiment, RunSpec
from repro.clustering import lloyd_kmeans

ITERATIONS = 10
EPSILON = 0.69  # ln 2, the paper's "common value"

BASE = {
    "name": "budget-strategies",
    "plane": "quality",
    "seed": 4,
    "dataset": {"kind": "cer",
                # pinned dataset/init seeds: every variant clusters the
                # same workload from the same starting centroids
                "params": {"n_series": 10_000, "population_scale": 100,
                           "seed": 3}},
    "init": {"kind": "courbogen", "params": {"seed": 3}},
}


def spec_for(label: str, smoothing: bool) -> RunSpec:
    return RunSpec.from_dict({
        **BASE,
        "strategy": label,
        "params": {"k": 30, "max_iterations": ITERATIONS, "epsilon": EPSILON,
                   "floor_size": 4, "use_smoothing": smoothing, "theta": 0.0},
    })


def main() -> None:
    context = Experiment.from_spec(spec_for("G", True)).context
    data, init = context.dataset, context.initial_centroids
    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)

    curves = {"no-perturb": baseline.inertia}
    for label in ("G", "GF", "UF5", "UF10"):
        for smoothing in (True, False):
            result = Experiment.from_spec(spec_for(label, smoothing)).run()
            curve = result.pre_inertia_curve
            curves[result.label] = curve + [curve[-1]] * (ITERATIONS - len(curve))

    print(f"{'strategy':<12}" + "".join(f"{i:>8d}" for i in range(1, ITERATIONS + 1)))
    for label, curve in curves.items():
        print(f"{label:<12}" + "".join(f"{v:>8.1f}" for v in curve[:ITERATIONS]))

    print("\nwinner per iteration (lowest pre-perturbation inertia):")
    private = {k: v for k, v in curves.items() if k != "no-perturb"}
    for i in range(ITERATIONS):
        winner = min(private, key=lambda k: private[k][i])
        print(f"  iteration {i + 1:>2}: {winner:<10} ({private[winner][i]:.1f})")

    print("\nPaper expectation: GREEDY variants lead the early/middle "
          "iterations, then noise overwhelms them and the bounded/uniform "
          "strategies catch up; SMA smoothing helps on concentrated data.")


if __name__ == "__main__":
    main()
