"""Quickstart: privately cluster synthetic electricity time-series.

Runs the paper's quality plane — perturbed k-means with the GREEDY budget
strategy and SMA smoothing — on a CER-like workload through the unified
``repro.api`` surface, and compares it with the non-private Lloyd baseline.
The whole experiment is one declarative ``RunSpec``; swap ``"plane"`` for
``"vectorized"`` to run the same spec through the full gossip protocol.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Experiment, RunSpec
from repro.clustering import dataset_inertia, lloyd_kmeans

SPEC = RunSpec.from_dict({
    "name": "quickstart",
    "plane": "quality",
    "seed": 0,
    "strategy": "G",
    # 10K distinct daily load curves, each standing for 100 households
    # (1M effective individuals in the differential-privacy arithmetic).
    "dataset": {"kind": "cer",
                "params": {"n_series": 10_000, "population_scale": 100}},
    # Initial centroids from the CourboGen-like template generator —
    # plausible profiles, never raw data (the paper's privacy constraint).
    "init": {"kind": "courbogen"},
    "params": {"k": 20, "max_iterations": 8, "epsilon": 0.69, "theta": 0.0},
})


def main() -> None:
    experiment = Experiment.from_spec(SPEC)
    data = experiment.context.dataset
    init = experiment.context.initial_centroids
    print(f"dataset: {data.t} series × {data.n} hourly measures, "
          f"effective population {data.population:,}")
    print(f"DP sensitivity of the daily sum: {data.sum_sensitivity:.0f}")

    baseline = lloyd_kmeans(data.values, init, max_iterations=8)
    private = experiment.run()

    print(f"\nfull dataset inertia (upper bound): {dataset_inertia(data.values):.1f}")
    print(f"{'iter':>4} {'no-perturbation':>16} {'Chiaroscuro G_SMA':>18} {'#centroids':>11}")
    for i, stats in enumerate(private.history):
        print(
            f"{stats.iteration:>4} {baseline.inertia[min(i, len(baseline.inertia) - 1)]:>16.1f} "
            f"{stats.pre_inertia:>18.1f} {stats.n_centroids:>11d}"
        )

    best = private.best_iteration()
    print(f"\nbest private iteration: #{best.iteration} "
          f"(inertia {best.pre_inertia:.1f} vs baseline {min(baseline.inertia):.1f})")
    print(f"privacy spent: ε ≤ 0.69 across {private.iterations} iterations "
          f"({sum(s.epsilon_spent for s in private.history):.3f} used)")


if __name__ == "__main__":
    main()
