"""Beyond k-means: the Sec. 8 perspective, made runnable.

The paper's conclusion singles out expectation–maximization as a natural
next algorithm for the Chiaroscuro foundations: its M step aggregates
*additive* sufficient statistics, exactly what the Diptych pipeline
releases.  This example runs the perturbed EM extension on a Gaussian
mixture of electricity-like profiles and couples it with the footnote-9
quality monitor to stop when the noise starts to win.

    python examples/private_em_mixture.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    GaussianMixtureState,
    QualityMonitor,
    perturbed_em,
)
from repro.datasets import TimeSeriesSet
from repro.privacy import Greedy


def main() -> None:
    rng = np.random.default_rng(8)
    centers = np.array(
        [[8.0, 8, 8, 30, 30, 30], [30, 30, 30, 8, 8, 8], [18, 18, 18, 18, 18, 18]]
    )
    values = np.concatenate(
        [c + rng.normal(0, 1.5, (600, 6)) for c in centers]
    )
    data = TimeSeriesSet(
        np.clip(values, 0, 40), 0.0, 40.0, name="mixture", population_scale=2000
    )
    print(f"{data.t} series × {data.n}, effective population {data.population:,}")

    initial = GaussianMixtureState(
        means=centers + rng.normal(0, 3.0, centers.shape),
        variances=np.full(3, 9.0),
        weights=np.full(3, 1 / 3),
    )
    trace = perturbed_em(
        data, initial, Greedy(epsilon=0.69), max_iterations=8,
        rng=np.random.default_rng(9),
    )

    monitor = QualityMonitor(
        global_centroid=data.values.mean(axis=0),
        total_count=float(data.population),
        patience=2,  # tolerate one noisy dip before stopping
    )
    print(f"\n{'iter':>4} {'avg log-likelihood':>20} {'#components':>12} {'monitor':>9}")
    stopped = None
    for i, (ll, n_comp, state) in enumerate(
        zip(trace.log_likelihood, trace.n_components, trace.states), start=1
    ):
        counts = state.weights * data.population
        stop = monitor.observe(state.means, counts)
        if stop and stopped is None:
            stopped = i
        print(f"{i:>4} {ll:>20.2f} {n_comp:>12d} {'STOP' if stop else '':>9}")

    print("\nrecovered component means (vs true centers):")
    final = trace.states[-1]
    for mean, weight in zip(final.means, final.weights):
        nearest = centers[np.linalg.norm(centers - mean, axis=1).argmin()]
        print(f"  w={weight:.2f}  got {np.round(mean, 1)}")
        print(f"           true {nearest}")
    if stopped:
        print(f"\nquality monitor (footnote 9) would have stopped at iteration {stopped}")


if __name__ == "__main__":
    main()
