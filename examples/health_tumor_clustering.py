"""Health scenario: cluster tumor-growth trajectories privately.

NUMED-like workload (the paper's second dataset): 20-week tumor-size
series from the Claret et al. growth-model family.  Clustering reveals the
typical response profiles (responders, stable disease, progression,
relapse) without any patient's series leaving their device unprotected.
The experiment is a declarative ``RunSpec`` run through ``repro.api``.

Also demonstrates the DTW extension: comparing Euclidean and elastic
assignments on the recovered centroids.

    python examples/health_tumor_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Experiment, RunSpec
from repro.clustering import dtw_assign, lloyd_kmeans

SPEC = RunSpec.from_dict({
    "name": "health-tumor",
    "plane": "quality",
    "seed": 5,
    "strategy": "GF",
    "dataset": {"kind": "numed",
                "params": {"n_series": 8_000, "population_scale": 50}},
    "init": {"kind": "sample"},
    "params": {"k": 8, "max_iterations": 8, "epsilon": 0.69,
               "floor_size": 4, "theta": 0.0},
})


def sparkline(series: np.ndarray, lo: float = 0.0, hi: float = 50.0) -> str:
    """Tiny ASCII rendition of a time-series."""
    blocks = " .:-=+*#%@"
    scaled = np.clip((series - lo) / (hi - lo) * (len(blocks) - 1), 0, len(blocks) - 1)
    return "".join(blocks[int(b)] for b in scaled)


def main() -> None:
    experiment = Experiment.from_spec(SPEC)
    data = experiment.context.dataset
    init = experiment.context.initial_centroids
    print(f"dataset: {data.t} patients × {data.n} weekly tumor sizes, "
          f"effective population {data.population:,}")

    private = experiment.run()
    baseline = lloyd_kmeans(data.values, init, max_iterations=8)

    best = private.best_iteration()
    print(f"\nbest private iteration: #{best.iteration}, "
          f"inertia {best.pre_inertia:.1f} "
          f"(baseline reaches {min(baseline.inertia):.1f})")

    print("\nrecovered private centroids (week 1 → 20):")
    for idx, centroid in enumerate(best.centroids):
        start, end = centroid[0], centroid[-1]
        trough = centroid.min()
        if end < start * 0.6:
            kind = "responder"
        elif end > start * 1.15:
            kind = "progression/relapse"
        elif trough < start * 0.5 and end > trough * 1.5:
            kind = "relapse after response"
        else:
            kind = "stable disease"
        print(f"  c{idx:<2} |{sparkline(centroid)}|  {start:5.1f} → {end:5.1f}  {kind}")

    # DTW extension: elastic assignment against the private centroids.
    from repro.clustering import assign_to_closest

    subset = data.values[:400]
    dtw_labels = dtw_assign(subset, best.centroids, window=3)
    euclid_labels = assign_to_closest(subset, best.centroids)
    agreement = (dtw_labels == euclid_labels).mean()
    print(f"\nDTW vs Euclidean assignment agreement on 400 patients: "
          f"{agreement:.0%} (tumor profiles are phase-aligned, so the "
          f"elastic measure mostly concurs — it diverges on shifted onsets)")


if __name__ == "__main__":
    main()
