"""The full distributed machinery on a small device population.

This example runs the *real* protocol — threshold Damgård–Jurik keys, the
EESum encrypted epidemic sum (Algorithm 2), distributed divisible-Laplace
noise generation, min-identifier correction, and epidemic threshold
decryption (Algorithm 3) — over 24 simulated devices holding tiny series,
submitted through the unified API: an ``object``-plane ``RunSpec`` whose
dataset and initial centroids are carried *inline* in the spec (the
``timeseries`` and ``matrix`` registry kinds), observed as a stream of
typed run events.

It then shows the privacy boundary concretely: what one honest-but-curious
device actually sees on the wire.

    python examples/secure_gossip_sum.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Experiment, IterationCompleted, RunSpec
from repro.crypto import generate_threshold_keypair
from repro.privacy import CollusionAnalysis


def build_spec() -> RunSpec:
    rng = np.random.default_rng(5)
    base = np.array(
        [[5, 5, 5, 40, 40, 40], [40, 40, 40, 5, 5, 5], [20, 20, 20, 20, 20, 20]],
        dtype=float,
    )
    values = np.clip(np.repeat(base, 8, axis=0) + rng.normal(0, 1, (24, 6)), 0, 60)
    init = [
        [10.0, 10, 10, 30, 30, 30], [30, 30, 30, 10, 10, 10], [22, 18, 22, 18, 22, 18]
    ]
    # ε = 2000 keeps the demo's 24-device clusters recognizable; with the
    # paper's ε = 0.69 the noise is calibrated for *millions* of devices
    # and rightly obliterates clusters of eight (see the benchmarks for
    # paper-scale populations).
    return RunSpec.from_dict({
        "name": "secure-gossip-demo",
        "plane": "object",
        "seed": 3,
        "strategy": "UF2",
        "dataset": {"kind": "timeseries",
                    "params": {"values": values.tolist(), "dmin": 0.0,
                               "dmax": 60.0, "name": "demo"}},
        "init": {"kind": "matrix", "params": {"values": init}},
        "params": {"k": 3, "max_iterations": 2, "exchanges": 20,
                   "tau_fraction": 0.13, "epsilon": 2000.0, "key_bits": 256,
                   "expansion_s": 2, "use_smoothing": False, "theta": 1e-3},
    })


def main() -> None:
    spec = build_spec()
    print("dealing threshold keys: 24 shares, any 3 decrypt …")
    keypair = generate_threshold_keypair(256, n_shares=24, threshold=3, s=2)

    experiment = Experiment.from_spec(spec, keypair=keypair)
    print("running Algorithm 1 over the gossip engine (real crypto) …")
    agreement, exchanges, result = [], [], None
    for event in experiment.run_iter():
        if isinstance(event, IterationCompleted):
            agreement.append(event.agreement)
            exchanges.append(event.exchanges_per_node)
        elif hasattr(event, "result"):
            result = event.result

    data = experiment.context.dataset
    values = data.values
    true_means = np.array(
        [values[0:8].mean(axis=0), values[8:16].mean(axis=0), values[16:24].mean(axis=0)]
    )
    print(f"\niterations: {result.iterations}, converged: {result.converged}")
    print("per-iteration cross-device agreement (max relative spread):",
          [f"{a:.1e}" for a in agreement])
    print("exchanges per node per iteration:",
          [f"{e:.0f}" for e in exchanges])
    print("\nfinal (noisy) centroids vs true cluster means:")
    for centroid in result.centroids:
        nearest = true_means[np.linalg.norm(true_means - centroid, axis=1).argmin()]
        print("  got ", np.round(centroid, 1))
        print("  true", np.round(nearest, 1))

    # What the wire carries: ciphertexts and data-independent envelopes.
    # The plane exposes its engine (the ChiaroscuroRun) for diagnostics.
    run = experiment.context.runtime
    init = experiment.context.initial_centroids
    sample = run.participants[0].encrypted_means_vector(init, run.crypto_rng)
    print(f"\none device exports {len(sample)} ciphertexts per iteration "
          f"(k·(n+1) = 3·7), each ≈ {keypair.public.ciphertext_bytes} bytes; "
          f"first ciphertext begins {str(sample[0])[:24]}…")

    analysis = CollusionAnalysis(
        population=24, n_shares=24, threshold=3, collusions=2
    )
    print(f"two colluding devices: key compromised? {analysis.key_compromised} "
          f"(need {analysis.missing_key_shares} more share); "
          f"{analysis.unknown_noise_fraction:.0%} of the noise stays secret")


if __name__ == "__main__":
    main()
