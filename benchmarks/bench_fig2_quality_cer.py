"""Figure 2(a)/(c) — CER: pre-perturbation intra-cluster inertia and the
number of surviving centroids along ten perturbed k-means iterations, for
every budget strategy with and without SMA smoothing.

Paper setting: 3M daily series × 24 hourly measures in [0, 80], k = 50,
ε = 0.69, GF floor 4, UF ∈ {5, 10}, averages over repeated runs.  We run
30K distinct synthetic series with population_scale = 100 (same effective
3M individuals in the DP arithmetic; see DESIGN.md) and average 3 seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.clustering import dataset_inertia, lloyd_kmeans
from repro.core import PerturbationOptions, perturbed_kmeans
from repro.datasets import courbogen_like_centroids, generate_cer
from repro.privacy import strategy_from_name

N_SERIES = 30_000
SCALE = 100
K = 50
ITERATIONS = 10
SEEDS = (0, 1, 2)

STRATEGIES = [
    ("UF10", True), ("UF10", False),
    ("UF5", True), ("UF5", False),
    ("G", True), ("G", False),
    ("GF", True), ("GF", False),
]


@pytest.fixture(scope="module")
def cer_workload():
    data = generate_cer(n_series=N_SERIES, population_scale=SCALE, seed=1)
    init = courbogen_like_centroids(K, np.random.default_rng(1))
    return data, init


def _average_runs(data, init, label, smoothing):
    inertia = np.zeros(ITERATIONS)
    centroids = np.zeros(ITERATIONS)
    spans = np.zeros(ITERATIONS)
    for seed in SEEDS:
        result = perturbed_kmeans(
            data, init, strategy_from_name(label, 0.69, uf_iterations=5),
            max_iterations=ITERATIONS,
            options=PerturbationOptions(smoothing=smoothing),
            rng=np.random.default_rng(1000 + seed),
        )
        pre = result.pre_inertia_curve
        cnt = result.n_centroids_curve
        pre = pre + [pre[-1]] * (ITERATIONS - len(pre))
        cnt = cnt + [cnt[-1]] * (ITERATIONS - len(cnt))
        inertia += np.array(pre)
        centroids += np.array(cnt)
        spans += 1
    return inertia / spans, centroids / spans


def test_fig2a_fig2c_cer_quality(benchmark, cer_workload):
    data, init = cer_workload

    def one_perturbed_iteration():
        return perturbed_kmeans(
            data, init, strategy_from_name("G", 0.69), max_iterations=1,
            rng=np.random.default_rng(0),
        )

    benchmark.pedantic(one_perturbed_iteration, rounds=3, iterations=1)

    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)
    full = dataset_inertia(data.values)

    rows_inertia = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'dataset':<12}" + "".join(f"{full:>9.1f}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9.1f}" for v in baseline.inertia),
    ]
    rows_centroids = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'initial':<12}" + "".join(f"{K:>9d}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9d}" for v in baseline.n_centroids),
    ]
    curves = {}
    for label, smoothing in STRATEGIES:
        inertia, centroids = _average_runs(data, init, label, smoothing)
        tag = f"{label}_SMA" if smoothing else label
        curves[tag] = {
            "pre_inertia": [float(v) for v in inertia],
            "n_centroids": [float(v) for v in centroids],
        }
        rows_inertia.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in inertia))
        rows_centroids.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in centroids))

    record_report(
        "fig2a_cer_inertia",
        "Fig 2(a) CER-like: pre-perturbation intra-cluster inertia per iteration",
        rows_inertia,
    )
    record_report(
        "fig2c_cer_centroids",
        "Fig 2(c) CER-like: number of centroids per iteration",
        rows_centroids,
    )

    record_json(
        "fig2ac_cer_quality",
        {
            "population": data.population,
            "dataset_inertia": float(full),
            "baseline_inertia": [float(v) for v in baseline.inertia],
            "strategies": curves,
        },
    )
    # Shape assertions (who wins, where the crossover falls).
    g_sma, _ = _average_runs(data, init, "G", True)
    assert min(g_sma) < full / 4  # perturbed stays far below the upper bound
    assert min(g_sma) < g_sma[-1]  # noise eventually overwhelms GREEDY
