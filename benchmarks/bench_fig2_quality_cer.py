"""Figure 2(a)/(c) — CER: pre-perturbation intra-cluster inertia and the
number of surviving centroids along ten perturbed k-means iterations, for
every budget strategy with and without SMA smoothing.

Paper setting: 3M daily series × 24 hourly measures in [0, 80], k = 50,
ε = 0.69, GF floor 4, UF ∈ {5, 10}, averages over repeated runs.  We run
30K distinct synthetic series with population_scale = 100 (same effective
3M individuals in the DP arithmetic; see DESIGN.md) and average 3 seeds.

Every run goes through the unified API: one base ``RunSpec`` dict, with
strategy/smoothing/seed swapped per variant.  The dataset and init blocks
pin their own seeds, so all variants cluster the identical workload (and
the facade's dataset cache builds it once).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_report, record_runs
from repro.api import Experiment, RunSpec, run_record
from repro.clustering import dataset_inertia, lloyd_kmeans

N_SERIES = 30_000
SCALE = 100
K = 50
ITERATIONS = 10
SEEDS = (0, 1, 2)

STRATEGIES = [
    ("UF10", True), ("UF10", False),
    ("UF5", True), ("UF5", False),
    ("G", True), ("G", False),
    ("GF", True), ("GF", False),
]


def spec_for(label: str, smoothing: bool, seed: int) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"fig2ac-cer-{label}{'-sma' if smoothing else ''}",
        "plane": "quality",
        "seed": 1000 + seed,
        "strategy": label,
        "dataset": {"kind": "cer",
                    "params": {"n_series": N_SERIES, "population_scale": SCALE,
                               "seed": 1}},
        "init": {"kind": "courbogen", "params": {"seed": 1}},
        "params": {"k": K, "max_iterations": ITERATIONS, "epsilon": 0.69,
                   "uf_iterations": 5, "use_smoothing": smoothing, "theta": 0.0},
    })


@pytest.fixture(scope="module")
def cer_workload():
    context = Experiment.from_spec(spec_for("G", True, 0)).context
    return context.dataset, context.initial_centroids


def _average_runs(label, smoothing, records):
    inertia = np.zeros(ITERATIONS)
    centroids = np.zeros(ITERATIONS)
    for seed in SEEDS:
        spec = spec_for(label, smoothing, seed)
        started = time.perf_counter()
        result = Experiment.from_spec(spec).run()
        records.append(run_record(
            spec, result, timings={"wall_seconds": time.perf_counter() - started}
        ))
        pre = result.pre_inertia_curve
        cnt = result.n_centroids_curve
        pre = pre + [pre[-1]] * (ITERATIONS - len(pre))
        cnt = cnt + [cnt[-1]] * (ITERATIONS - len(cnt))
        inertia += np.array(pre)
        centroids += np.array(cnt)
    return inertia / len(SEEDS), centroids / len(SEEDS)


def test_fig2a_fig2c_cer_quality(benchmark, cer_workload):
    data, init = cer_workload

    one_iteration = spec_for("G", True, 0).to_dict()
    one_iteration["params"]["max_iterations"] = 1

    def one_perturbed_iteration():
        return Experiment.from_spec(RunSpec.from_dict(one_iteration)).run()

    benchmark.pedantic(one_perturbed_iteration, rounds=3, iterations=1)

    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)
    full = dataset_inertia(data.values)

    rows_inertia = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'dataset':<12}" + "".join(f"{full:>9.1f}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9.1f}" for v in baseline.inertia),
    ]
    rows_centroids = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'initial':<12}" + "".join(f"{K:>9d}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9d}" for v in baseline.n_centroids),
    ]
    records: list[dict] = []
    curves = {}
    for label, smoothing in STRATEGIES:
        inertia, centroids = _average_runs(label, smoothing, records)
        tag = f"{label}_SMA" if smoothing else label
        curves[tag] = {
            "pre_inertia": [float(v) for v in inertia],
            "n_centroids": [float(v) for v in centroids],
        }
        rows_inertia.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in inertia))
        rows_centroids.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in centroids))

    record_report(
        "fig2a_cer_inertia",
        "Fig 2(a) CER-like: pre-perturbation intra-cluster inertia per iteration",
        rows_inertia,
    )
    record_report(
        "fig2c_cer_centroids",
        "Fig 2(c) CER-like: number of centroids per iteration",
        rows_centroids,
    )

    record_runs(
        "fig2ac_cer_quality",
        records,
        extra={
            "population": data.population,
            "dataset_inertia": float(full),
            "baseline_inertia": [float(v) for v in baseline.inertia],
            "strategies": curves,
        },
    )
    # Shape assertions (who wins, where the crossover falls).
    g_sma = np.array(curves["G_SMA"]["pre_inertia"])
    assert g_sma.min() < full / 4  # perturbed stays far below the upper bound
    assert g_sma.min() < g_sma[-1]  # noise eventually overwhelms GREEDY
