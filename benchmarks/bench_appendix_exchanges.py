"""Appendix B — the Theorem 3 exchange-count table and its empirical check.

The analytic side reproduces the paper's worked example (δ = 0.995,
e_max = 10⁻¹², n_p = 10⁶ → n_e = 47) across a parameter sweep; the
empirical side runs the actual push–pull simulator and verifies the
predicted exchange counts indeed deliver the target error (the theorem is
an upper bound for the Newscast topology; uniform push–pull converges at
least as fast).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.gossip import PushPullSumSimulator
from repro.privacy import GossipPrivacyPlan, newscast_exchanges

DELTAS = (0.9, 0.99, 0.995)
E_MAXES = (1e-6, 1e-9, 1e-12)
POPULATION = 10**6


def test_appendix_b_exchange_table(benchmark):
    benchmark(lambda: newscast_exchanges(POPULATION, 1e-12, 1e-5))

    rows = [f"{'delta':>8}" + "".join(f"  e_max={e:<10}" for e in E_MAXES)]
    table = {}
    for delta in DELTAS:
        cells = []
        for e_max in E_MAXES:
            plan = GossipPrivacyPlan(
                delta=delta, e_max=e_max, population=POPULATION,
                max_iterations=10, series_length=24,
            )
            table[(delta, e_max)] = plan.exchanges
            cells.append(f"  {plan.exchanges:<16d}")
        rows.append(f"{delta:>8}" + "".join(cells))
    rows.append("(paper worked example: delta=0.995, e_max=1e-12 -> n_e = 47)")
    record_report(
        "appendixB_exchanges",
        "App. B / Thm 3: required gossip exchanges per participant",
        rows,
    )

    record_json(
        "appendixB_exchanges",
        {
            "population": POPULATION,
            "exchanges": {
                f"delta={d},e_max={e}": int(v) for (d, e), v in table.items()
            },
        },
    )
    assert table[(0.995, 1e-12)] == 47  # the paper's number
    # Monotonicity: tighter error or higher delta → more exchanges.
    assert table[(0.995, 1e-12)] > table[(0.995, 1e-6)]
    assert table[(0.995, 1e-6)] >= table[(0.9, 1e-6)]


def test_theorem3_empirical_validity(benchmark):
    """Empirical side of Theorem 3 on the push–pull simulator.

    The theorem is stated for Newscast's exchange accounting (each node
    *initiates* once per cycle, hence ~2 participations per exchange
    count); the uniform-pairing simulator logs one message per node per
    cycle.  We therefore check the two claims that transfer: (1) the error
    decays exponentially in the number of messages, and (2) the target
    error is reached within a small constant multiple of the predicted
    exchange count.
    """
    population, e_max, iota = 10_000, 1e-6, 0.01
    predicted = newscast_exchanges(population, e_max, iota)

    def run():
        sim = PushPullSumSimulator(population, seed=1)
        errors = []
        while sim.max_absolute_error() > e_max and sim.mean_messages_per_node < 10 * predicted:
            sim.run_cycle()
            errors.append((sim.mean_messages_per_node, sim.max_absolute_error()))
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    needed = errors[-1][0]
    rows = [
        f"population={population}, target abs error={e_max}, iota={iota}",
        f"predicted exchanges (Thm 3, Newscast accounting): {predicted}",
        f"messages/node needed by the push-pull simulator: {needed:.0f}",
        f"final max abs error: {errors[-1][1]:.3e}",
    ]
    record_report(
        "appendixB_empirical",
        "App. B / Thm 3: empirical check of the exchange bound",
        rows,
    )
    record_json(
        "appendixB_empirical",
        {
            "population": population,
            "target_abs_error": e_max,
            "predicted_exchanges": int(predicted),
            "messages_per_node_needed": float(needed),
            "final_max_abs_error": float(errors[-1][1]),
        },
    )
    assert errors[-1][1] <= e_max  # the target is reachable
    # Thm 3's 0.581 constant is calibrated to Newscast's per-cycle variance
    # reduction and to the error of the *local state* (the average), while
    # we check the harsher sum-estimate error; a small constant multiple
    # absorbs both gaps.
    assert needed <= 5 * predicted
    # Exponential decay: the last recorded finite errors drop much faster
    # than linearly in the message count.
    finite = [(m, e) for m, e in errors if np.isfinite(e) and e > 0]
    mid = finite[len(finite) // 2]
    assert finite[-1][1] < mid[1] * 1e-3
