"""Population scaling — object engine vs the struct-of-arrays plane.

The paper's headline is clustering at 10⁵–10⁶ participants; the object
engine (per-node dicts, Python loops) saturates around 10⁴.  This bench
measures the protocol plane's scaling directly:

1. **speedup** — per-exchange cost of the full protocol composition
   (EESum with delayed-division counters + cleartext counter + min-id
   dissemination) on the object engine (mock-homomorphic integers, so
   crypto cost does not mask engine cost) vs the vectorized plane, at 10⁴
   nodes: the acceptance floor is ≥ 50×;
2. **scaling** — vectorized per-cycle wall-times at 10⁴ → 10⁶ nodes;
3. **full loop** — a complete Chiaroscuro run (assignment → EESum →
   noise → dissemination → collection → smoothing → convergence) with
   ``protocol_plane="vectorized"`` at 10⁵ participants.

All three land in ``out/BENCH_population_scaling.json``.
``test_population_smoke`` is the CI subset with a wall-clock guard.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_report, record_runs
from repro.api import DATASETS, Experiment, RunSpec, register_dataset, run_record
from repro.datasets import TimeSeriesSet
from repro.gossip import (
    EESum,
    EpidemicSum,
    GossipEngine,
    MinIdDissemination,
    MockHomomorphicOps,
    VectorizedEESum,
    VectorizedGossipEngine,
    VectorizedMinId,
)

K = 10
SERIES_LENGTH = 20
DIMS = K * (SERIES_LENGTH + 1)  # the k·(n+1) Diptych payload
FRACTIONAL_BITS = 24


def _object_seconds_per_exchange(population: int, cycles: int = 3) -> float:
    """Full-protocol cycle cost on the object engine (mock-homomorphic)."""
    rng = np.random.default_rng(0)
    values = rng.uniform(-4.0, 4.0, size=(population, DIMS))
    encoded = np.round(values * (1 << FRACTIONAL_BITS)).astype(np.int64)
    # Genuine Python ints: the mock plane must pay the growing-big-int
    # arithmetic a real run's plaintexts would, not boxed-float costs.
    initial = {i: [int(v) for v in encoded[i]] for i in range(population)}
    engine = GossipEngine(population, seed=1)
    eesum = EESum(None, initial, ops=MockHomomorphicOps())
    counter = EpidemicSum({i: np.array([1.0]) for i in range(population)})
    dissemination = MinIdDissemination(
        {i: (int(x), None) for i, x in enumerate(rng.integers(0, 1 << 62, population))}
    )
    engine.setup(eesum, counter, dissemination)
    start = time.perf_counter()
    exchanges = engine.run_cycles(cycles, eesum, counter, dissemination)
    elapsed = time.perf_counter() - start
    return elapsed / max(exchanges, 1)


def _vectorized_seconds_per_exchange(population: int, cycles: int = 10) -> float:
    """Same protocol composition on the struct-of-arrays plane."""
    rng = np.random.default_rng(0)
    values = np.concatenate(
        [rng.uniform(-4.0, 4.0, size=(population, DIMS)), np.ones((population, 1))],
        axis=1,
    )
    engine = VectorizedGossipEngine(population, seed=1)
    eesum = VectorizedEESum(values, quantize_bits=FRACTIONAL_BITS)
    dissemination = VectorizedMinId(
        rng.integers(0, 1 << 62, population).astype(np.int64)
    )
    engine.run_cycle(eesum, dissemination)  # warm-up (allocations, caches)
    start = time.perf_counter()
    exchanges = engine.run_cycles(cycles, eesum, dissemination)
    elapsed = time.perf_counter() - start
    return elapsed / max(exchanges, 1)


if "population-sim" not in DATASETS:  # idempotent under pytest re-imports

    @register_dataset("population-sim")
    def _population_sim(seed: int, *, population: int,
                        series_length: int = SERIES_LENGTH) -> TimeSeriesSet:
        """Uniform-random series at bench scale — a one-decorator scenario
        registration, exactly the extension path user workloads take."""
        rng = np.random.default_rng(seed)
        return TimeSeriesSet(
            rng.uniform(0.0, 40.0, size=(population, series_length)),
            0.0, 40.0, name=f"population-sim-{population}",
        )


def _full_run_spec(population: int, max_iterations: int, exchanges: int) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"population-scaling-{population}",
        "plane": "vectorized",
        "seed": 0,
        "strategy": "G",
        "dataset": {"kind": "population-sim",
                    "params": {"population": population, "seed": 3}},
        "init": {"kind": "uniform", "params": {"seed": 3}},
        "params": {"k": K, "max_iterations": max_iterations,
                   "exchanges": exchanges, "epsilon": 0.69},
    })


def _full_run(population: int, max_iterations: int, exchanges: int) -> dict:
    """A complete vectorized-plane Chiaroscuro run via the API facade."""
    from repro.api import IterationCompleted, RunCompleted

    spec = _full_run_spec(population, max_iterations, exchanges)
    exchanges_per_node = []
    result = None
    start = time.perf_counter()
    for event in Experiment.from_spec(spec).run_iter():
        if isinstance(event, IterationCompleted):
            exchanges_per_node.append(float(event.exchanges_per_node))
        elif isinstance(event, RunCompleted):
            result = event.result
    elapsed = time.perf_counter() - start
    return {
        "population": population,
        "k": K,
        "series_length": SERIES_LENGTH,
        "exchanges": exchanges,
        "iterations_completed": result.iterations,
        "seconds_total": float(elapsed),
        "seconds_per_iteration": float(elapsed / max(result.iterations, 1)),
        "pre_inertia": [float(v) for v in result.pre_inertia_curve],
        "n_centroids": [int(v) for v in result.n_centroids_curve],
        "mean_exchanges_per_node": exchanges_per_node,
        "run_record": run_record(
            spec, result, timings={"wall_seconds": float(elapsed)}
        ),
    }


def test_population_scaling_speedup(benchmark):
    """Acceptance: ≥ 50× per-exchange over the object engine at 10⁴ nodes,
    plus a full Chiaroscuro loop at 10⁵ participants."""
    benchmark.pedantic(
        lambda: _vectorized_seconds_per_exchange(10_000, cycles=3),
        rounds=1,
        iterations=1,
    )

    object_cost = {p: _object_seconds_per_exchange(p) for p in (1_000, 10_000)}
    vectorized_cost = {
        p: _vectorized_seconds_per_exchange(p) for p in (10_000, 100_000, 1_000_000)
    }
    speedup = object_cost[10_000] / vectorized_cost[10_000]

    full = _full_run(100_000, max_iterations=2, exchanges=15)

    rows = [
        f"{'plane':<14}{'population':>12}{'us/exchange':>14}",
        *(
            f"{'object':<14}{p:>12}{c * 1e6:>14.2f}"
            for p, c in sorted(object_cost.items())
        ),
        *(
            f"{'vectorized':<14}{p:>12}{c * 1e6:>14.2f}"
            for p, c in sorted(vectorized_cost.items())
        ),
        f"per-exchange speedup at 10^4 nodes: {speedup:.0f}x (floor: 50x)",
        (
            f"full vectorized run at 10^5: {full['iterations_completed']} iterations "
            f"in {full['seconds_total']:.1f} s "
            f"({full['seconds_per_iteration']:.1f} s/iteration)"
        ),
    ]
    record_report(
        "population_scaling",
        f"Population scaling: full protocol, {DIMS}-dim Diptych payload",
        rows,
    )
    record_runs(
        "population_scaling",
        [full.pop("run_record")],
        extra={
            "dims": DIMS,
            "object_seconds_per_exchange": {
                str(p): float(c) for p, c in object_cost.items()
            },
            "vectorized_seconds_per_exchange": {
                str(p): float(c) for p, c in vectorized_cost.items()
            },
            "speedup_at_10k": float(speedup),
            "full_run_100k": full,
        },
    )

    assert speedup >= 50.0, f"vectorized plane speedup {speedup:.0f}x < 50x"
    assert full["iterations_completed"] >= 1
    assert full["n_centroids"][0] >= 1


#: Ascending populations attempted by the vectorized-crypto sweep; a
#: point only counts when its full iteration lands under the budget.
CRYPTO_SWEEP = (10_000, 20_000, 40_000, 100_000)
CRYPTO_POINT_BUDGET = 45.0


def _crypto_run_spec(population: int) -> RunSpec:
    """A light payload (k=3, 4-point series) so the sweep probes the
    crypto plane's population frontier, not the payload width."""
    return RunSpec.from_dict({
        "name": f"population-scaling-crypto-{population}",
        "plane": "vectorized-crypto",
        "seed": 0,
        "strategy": "G",
        "dataset": {"kind": "population-sim",
                    "params": {"population": population, "series_length": 4,
                               "seed": 3}},
        "init": {"kind": "uniform", "params": {"seed": 3}},
        "params": {"k": 3, "max_iterations": 1, "exchanges": 2,
                   "epsilon": 10.0, "key_bits": 256, "theta": 0.0,
                   "crypto_backend": "process"},
    })


def test_vectorized_crypto_population_sweep(benchmark):
    """Largest population completing one every-exchange-real-crypto
    iteration under the per-point time budget (the plane's frontier as
    tracked across PRs)."""
    from repro.api import IterationCompleted, RunCompleted
    from repro.crypto import bigint

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = []
    largest = 0
    for population in CRYPTO_SWEEP:
        spec = _crypto_run_spec(population)
        crypto_ms = 0.0
        result = None
        start = time.perf_counter()
        for event in Experiment.from_spec(spec).run_iter():
            if isinstance(event, IterationCompleted):
                crypto_ms += float(event.crypto_ms or 0.0)
            elif isinstance(event, RunCompleted):
                result = event.result
        elapsed = time.perf_counter() - start
        completed = result.iterations >= 1
        under_budget = completed and elapsed <= CRYPTO_POINT_BUDGET
        points.append({
            "population": population,
            "iterations_completed": int(result.iterations),
            "seconds_total": float(elapsed),
            "crypto_seconds": float(crypto_ms / 1000.0),
            "under_budget": bool(under_budget),
        })
        if under_budget:
            largest = population
        if not under_budget:
            break  # larger points cannot land under the budget either

    rows = [
        f"{'population':>12}{'total s':>10}{'crypto s':>10}{'in budget':>11}",
        *(
            f"{p['population']:>12}{p['seconds_total']:>10.1f}"
            f"{p['crypto_seconds']:>10.1f}"
            f"{'yes' if p['under_budget'] else 'no':>11}"
            for p in points
        ),
        (
            f"largest under {CRYPTO_POINT_BUDGET:.0f}s budget: {largest} "
            f"participants ({bigint.active_backend()} kernel)"
        ),
    ]
    record_report(
        "population_scaling_crypto",
        "Vectorized-crypto frontier: every exchange real Damgård–Jurik",
        rows,
    )
    from conftest import record_json

    record_json("population_scaling_crypto", {
        "bigint_backend": bigint.active_backend(),
        "point_budget_seconds": CRYPTO_POINT_BUDGET,
        "points": points,
        "largest_under_budget": largest,
    })
    assert largest >= 10_000, (
        f"crypto plane frontier regressed below 10^4 ({points})"
    )


def test_population_smoke(benchmark):
    """CI smoke: 10⁵ nodes × a few full-protocol cycles + a one-iteration
    Chiaroscuro loop, wall-clock-guarded so regressions fail loudly."""
    start = time.perf_counter()
    per_exchange = _vectorized_seconds_per_exchange(100_000, cycles=3)
    full = _full_run(100_000, max_iterations=1, exchanges=10)
    elapsed = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    record_runs(
        "population_smoke",
        [full.pop("run_record")],
        extra={
            "population": 100_000,
            "vectorized_seconds_per_exchange": float(per_exchange),
            "full_run": full,
            "wall_seconds": float(elapsed),
        },
    )
    assert full["iterations_completed"] == 1
    # Wall-clock guard: 10^5 nodes must stay comfortably interactive; a
    # regression to object-engine-like scaling would blow far past this.
    assert elapsed < 120.0, f"large-population smoke took {elapsed:.0f}s (cap 120s)"
