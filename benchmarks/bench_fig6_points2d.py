"""Figure 6 / Appendix D — the 750K two-dimensional points illustration.

Clear k-means vs the perturbed GREEDY execution (no smoothing: 2-D points
have no temporal adjacency) on the duplicated A3-like dataset; the paper
shows the 6th-iteration centroids landing within or between true clusters.
We quantify that with the distance from each surviving perturbed centroid
to the nearest true cluster center.  The private run is a ``RunSpec`` on
the ``points2d`` dataset key, executed through ``repro.api``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_report, record_runs
from repro.api import Experiment, RunSpec, run_record
from repro.clustering import lloyd_kmeans
from repro.datasets import generate_a3_like

ITERATION_OF_INTEREST = 6  # the paper's pick

SPEC = RunSpec.from_dict({
    "name": "fig6-points2d",
    "plane": "quality",
    "seed": 4,
    "strategy": "G",
    "dataset": {"kind": "points2d", "params": {"seed": 4}},
    "init": {"kind": "sample", "params": {"seed": 4}},
    "params": {"k": 50, "max_iterations": ITERATION_OF_INTEREST, "epsilon": 0.69,
               "use_smoothing": False, "theta": 0.0},
})


def test_fig6_points2d(benchmark):
    experiment = Experiment.from_spec(SPEC)
    data = experiment.context.dataset  # 7.5K × 100 = 750K points
    init = experiment.context.initial_centroids
    _, true_centers = generate_a3_like(seed=4)

    benchmark.pedantic(
        lambda: lloyd_kmeans(data.values, init, max_iterations=2, threshold=0.0),
        rounds=1,
        iterations=1,
    )

    clear = lloyd_kmeans(
        data.values, init, max_iterations=ITERATION_OF_INTEREST, threshold=0.0
    )
    started = time.perf_counter()
    perturbed = experiment.run()
    elapsed = time.perf_counter() - started

    def nearest_center_distances(centroids):
        d = np.linalg.norm(
            centroids[:, None, :] - true_centers[None, :, :], axis=2
        ).min(axis=1)
        return d

    clear_d = nearest_center_distances(clear.centroids[-1])
    pert_d = nearest_center_distances(perturbed.history[-1].centroids)
    grid_pitch = 780 / (np.ceil(np.sqrt(50)) - 1)  # spacing of true centers

    rows = [
        f"{'execution':<22}{'#centroids':>12}{'median d':>12}{'p90 d':>12}{'within blob':>14}",
        (
            f"{'clear k-means':<22}{len(clear_d):>12d}{np.median(clear_d):>12.1f}"
            f"{np.quantile(clear_d, 0.9):>12.1f}{(clear_d < 40).mean():>14.2f}"
        ),
        (
            f"{'Chiaroscuro (G)':<22}{len(pert_d):>12d}{np.median(pert_d):>12.1f}"
            f"{np.quantile(pert_d, 0.9):>12.1f}{(pert_d < 40).mean():>14.2f}"
        ),
        f"(blob std = 18, true-center grid pitch ≈ {grid_pitch:.0f})",
    ]
    record_report(
        "fig6_points2d",
        f"Fig 6: centroids at iteration {ITERATION_OF_INTEREST} over 750K 2-D points",
        rows,
    )

    record_runs(
        "fig6_points2d",
        [run_record(SPEC, perturbed, timings={"wall_seconds": elapsed})],
        extra={
            "population": data.population,
            "iteration": ITERATION_OF_INTEREST,
            "clear_median_distance": float(np.median(clear_d)),
            "perturbed_median_distance": float(np.median(pert_d)),
            "perturbed_within_half_pitch": float((pert_d < grid_pitch / 2).mean()),
        },
    )
    # Paper shape: perturbed centroids are less accurate but mostly land
    # within or near actual clusters.
    assert np.median(clear_d) < 20
    assert np.median(pert_d) < grid_pitch  # near/within clusters, not lost
    assert (pert_d < grid_pitch / 2).mean() > 0.5
