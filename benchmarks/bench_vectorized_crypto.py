"""The vectorized-crypto frontier: every exchange carries real ciphertexts.

Two measurements, both landing in ``out/BENCH_vectorized_crypto.json``
(mirrored to the repo root for the cross-PR trajectory):

1. **identity** — at small n the plane's decoded centroids are digested
   and pinned bit-identical across the serial and process-pool crypto
   backends, across the python/gmpy2 bigint kernels (when gmpy2 is
   present), and against the mock ``vectorized`` plane — the proof that
   the frontier numbers below measure the *same* computation;
2. **frontier** — one full Chiaroscuro iteration with genuine packed
   Damgård–Jurik ciphertexts on every gossip exchange, at ≥ 10⁴
   participants on the pure-python kernel and ≥ 10⁵ when gmpy2 carries
   the arithmetic, with the PackedCodec amortization (slots/ciphertext,
   ciphertexts per node vs. the unpacked layout) recorded alongside the
   wall-clock and crypto-time split.

``test_vectorized_crypto_smoke`` is the CI job's wall-clock-guarded
subset.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from conftest import record_report, record_json
from repro.api import Experiment, IterationCompleted, RunSpec, run_record
from repro.crypto import bigint

GMPY2 = "gmpy2" in bigint.available_backends()


def _digest(result) -> str:
    """One hash over every decoded centroid coordinate of the run."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(result.centroids).tobytes())
    for stats in result.history:
        h.update(np.ascontiguousarray(stats.centroids).tobytes())
        h.update(np.float64(stats.pre_inertia).tobytes())
    return h.hexdigest()


def _small_spec(plane: str = "vectorized-crypto", **params) -> RunSpec:
    """The shadow-identity workload: 24 CER curves, 3 full iterations."""
    base = {"k": 3, "max_iterations": 3, "exchanges": 2, "epsilon": 2000.0,
            "key_bits": 256, "theta": 0.0}
    base.update(params)
    return RunSpec.from_dict({
        "name": "vectorized-crypto-identity",
        "plane": plane,
        "seed": 5,
        "strategy": "UF3",
        "dataset": {"kind": "cer",
                    "params": {"n_series": 24, "population_scale": 1}},
        "init": {"kind": "courbogen"},
        "params": base,
    })


def _frontier_spec(population: int, key_bits: int = 256) -> RunSpec:
    """One-iteration run at bench scale: 2-D points, k=3, 2 exchanges."""
    return RunSpec.from_dict({
        "name": f"vectorized-crypto-{population}",
        "plane": "vectorized-crypto",
        "seed": 0,
        "strategy": "G",
        "dataset": {"kind": "points2d",
                    "params": {"n_clusters": 3,
                               "points_per_cluster": -(-population // 3),
                               "duplications": 1}},
        "init": {"kind": "sample"},
        "params": {"k": 3, "max_iterations": 1, "exchanges": 2,
                   "epsilon": 10.0, "key_bits": key_bits, "theta": 0.0,
                   "crypto_backend": "process"},
    })


def _run_frontier(population: int) -> dict:
    spec = _frontier_spec(population)
    experiment = Experiment.from_spec(spec)
    crypto_ms = []
    result = None
    start = time.perf_counter()
    for event in experiment.run_iter():
        if isinstance(event, IterationCompleted):
            crypto_ms.append(float(event.crypto_ms))
        elif hasattr(event, "result"):
            result = event.result
    elapsed = time.perf_counter() - start
    run = experiment.context.runtime  # the ChiaroscuroRun the plane built
    packed = run.packed
    dims = spec.params.k * (run.dataset.n + 1)
    ciphertexts_per_node = packed.packed_length(dims) + 1  # + tracker
    actual_population = run.dataset.t
    cycles = 2 * spec.params.exchanges
    # Exchange volume: each EESum cycle multiplies ~population/2 merged
    # rows of `ciphertexts_per_node` ciphertexts on both pair sides.
    exchange_ciphertexts = actual_population * cycles * ciphertexts_per_node
    crypto_seconds = sum(crypto_ms) / 1000.0
    return {
        "population": int(actual_population),
        "dims": int(dims),
        "key_bits": spec.params.key_bits,
        "exchanges": spec.params.exchanges,
        "iterations_completed": int(result.iterations),
        "seconds_total": float(elapsed),
        "crypto_seconds": float(crypto_seconds),
        "crypto_share": float(crypto_seconds / elapsed) if elapsed else None,
        "packing": {
            "slots_per_ciphertext": int(packed.slots),
            "slot_bits": int(packed.slot_bits),
            "ciphertexts_per_node": int(ciphertexts_per_node),
            "unpacked_ciphertexts_per_node": int(dims + 1),
            "amortization": float((dims + 1) / ciphertexts_per_node),
        },
        "exchange_ciphertexts": int(exchange_ciphertexts),
        "us_per_exchanged_ciphertext": float(
            crypto_seconds * 1e6 / max(exchange_ciphertexts, 1)
        ),
        "digest": _digest(result),
        "run_record": run_record(
            spec, result, timings={"wall_seconds": float(elapsed)}
        ),
    }


def _identity_digests() -> dict:
    digests = {}
    serial = Experiment.from_spec(
        _small_spec(bigint_backend="python")
    ).run()
    digests["serial_python"] = _digest(serial)
    pooled = Experiment.from_spec(
        _small_spec(bigint_backend="python", crypto_backend="process",
                    backend_workers=2)
    ).run()
    digests["process_python"] = _digest(pooled)
    mock = Experiment.from_spec(_small_spec(plane="vectorized")).run()
    digests["mock_vectorized"] = _digest(mock)
    if GMPY2:
        gm = Experiment.from_spec(_small_spec(bigint_backend="gmpy2")).run()
        digests["serial_gmpy2"] = _digest(gm)
    return digests


def test_vectorized_crypto_smoke(benchmark):
    """CI leg: identity digests + one frontier point, wall-clock-guarded.

    The frontier population is gated by the active arithmetic: ≥ 10⁴
    participants on the pure-python kernel, ≥ 10⁵ once gmpy2 carries the
    bigint work — every exchange a real packed Damgård–Jurik batch.
    """
    start = time.perf_counter()
    digests = _identity_digests()
    assert len(set(digests.values())) == 1, digests

    population = 100_000 if GMPY2 else 10_000
    frontier = _run_frontier(population)
    elapsed = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert frontier["iterations_completed"] >= 1
    assert frontier["population"] >= population
    assert frontier["packing"]["amortization"] > 1.0

    packing = frontier["packing"]
    rows = [
        f"{'kernel':<10}{'population':>12}{'cts/node':>10}"
        f"{'amortize':>10}{'crypto s':>10}{'total s':>10}",
        (
            f"{bigint.active_backend():<10}{frontier['population']:>12}"
            f"{packing['ciphertexts_per_node']:>10}"
            f"{packing['amortization']:>10.1f}"
            f"{frontier['crypto_seconds']:>10.1f}"
            f"{frontier['seconds_total']:>10.1f}"
        ),
        f"identity digests agree across {sorted(digests)}",
        f"us per exchanged ciphertext: "
        f"{frontier['us_per_exchanged_ciphertext']:.1f}",
    ]
    record_report(
        "vectorized_crypto",
        "Vectorized-crypto plane: real ciphertexts on every exchange",
        rows,
    )
    run_records = [frontier.pop("run_record")]
    record_json("vectorized_crypto", {
        "schema": "chiaroscuro-run/v1",
        "runs": run_records,
        "bigint_backend": bigint.active_backend(),
        "gmpy2_available": GMPY2,
        "identity_digests": digests,
        "frontier": frontier,
        "wall_seconds": float(elapsed),
    })

    # Wall-clock guard: one iteration at the gated population plus the
    # small-n identity runs must stay far from CI-timeout territory.
    assert elapsed < 240.0, f"crypto smoke took {elapsed:.0f}s (cap 240s)"
