"""Figure 5 — unitary local costs for a set of 50 means, 20 measures per
mean, and a 1024-bit encryption key.

(a) MIN/MAX/AVG wall-times for encrypting a set of means, adding two
    encrypted sets, and threshold-decrypting a set;
(b) bandwidth for transferring one set of encrypted means.

Absolute times differ from the paper's Java measurements (pure-Python
big-int arithmetic); the *ordering* — add ≪ encrypt < decrypt, with
decrypt the dominant per-iteration cost — and the bandwidth arithmetic are
the reproduced shapes.
"""

from __future__ import annotations

import random

import pytest

from conftest import record_report
from repro.analysis import LocalCostModel, measure_crypto_costs
from repro.crypto import encrypt, generate_threshold_keypair, homomorphic_add

K = 50
MEASURES = 20
KEY_BITS = 1024


@pytest.fixture(scope="module")
def keypair_1024():
    return generate_threshold_keypair(
        KEY_BITS, n_shares=5, threshold=3, s=1, rng=random.Random(0)
    )


def test_fig5a_crypto_times(benchmark, keypair_1024):
    pub = keypair_1024.public
    rng = random.Random(1)
    c1 = encrypt(pub, 123456, rng=rng)
    c2 = encrypt(pub, 654321, rng=rng)
    benchmark(lambda: homomorphic_add(pub, c1, c2))

    costs = measure_crypto_costs(
        keypair_1024, k=K, series_length=MEASURES, repetitions=1, rng=rng
    )
    rows = [f"{'operation':<10}{'MIN (s)':>12}{'MAX (s)':>12}{'AVG (s)':>12}"]
    for op in ("encrypt", "add", "decrypt"):
        sample = costs[op]
        rows.append(
            f"{op:<10}{sample.minimum:>12.3f}{sample.maximum:>12.3f}{sample.average:>12.3f}"
        )
    record_report(
        "fig5a_local_times",
        f"Fig 5(a): times for one set of {K} means × {MEASURES} measures, {KEY_BITS}-bit key",
        rows,
    )

    assert costs["add"].average < costs["encrypt"].average
    assert costs["add"].average < costs["decrypt"].average
    assert costs["decrypt"].average == max(s.average for s in costs.values())


def test_fig5b_bandwidth(benchmark, keypair_1024):
    model = LocalCostModel(keypair_1024.public, k=K, series_length=MEASURES)
    benchmark(lambda: model.transfer_bytes)

    kb = model.transfer_bytes / 1024
    rows = [
        f"one means set transfer: {kb:.1f} kB",
        f"epidemic-sum exchange (2 sets): {model.exchange_bytes() / 1024:.1f} kB",
        f"decryption exchange (4 sets): {model.decryption_exchange_bytes() / 1024:.1f} kB",
        f"transfer time at 1 Mb/s: {model.transfer_seconds():.2f} s",
    ]
    record_report(
        "fig5b_bandwidth",
        f"Fig 5(b): bandwidth for one set of {K} encrypted means ({KEY_BITS}-bit key)",
        rows,
    )

    # Paper: "a hundredth of kilo-bytes per transfer", ~1 s at 1 Mb/s.
    # Exact kB depends on whether counts ride along (ours do): 50 × 21
    # ciphertexts × 256 B = 262.5 kB vs the paper's ~135 kB for 50 × 20 ×
    # 1024-bit ciphertext halves — same order of magnitude.
    assert 100 <= kb <= 400
    assert model.transfer_seconds() < 5.0
