"""Figure 5 — unitary local costs for a set of 50 means, 20 measures per
mean, and a 1024-bit encryption key.

(a) MIN/MAX/AVG wall-times for encrypting a set of means, adding two
    encrypted sets, and threshold-decrypting a set;
(b) bandwidth for transferring one set of encrypted means;
(c) [extension] the same computation-step workload on the batched
    ciphertext plane (slot packing + fixed-base randomizer tables) vs the
    scalar plane: reported speedup, with decoded outputs checked to be
    bit-identical.

Absolute times differ from the paper's Java measurements (pure-Python
big-int arithmetic); the *ordering* — add ≪ encrypt < decrypt, with
decrypt the dominant per-iteration cost — and the bandwidth arithmetic are
the reproduced shapes.

``test_fig5_batched_smoke`` is the fast CI subset: a small key and few
means, seconds instead of minutes.
"""

from __future__ import annotations

import random

import pytest

from conftest import record_json, record_report
from repro.analysis import (
    LocalCostModel,
    compare_scalar_batched_costs,
    measure_crypto_costs,
)
from repro.crypto import encrypt, generate_threshold_keypair, homomorphic_add

K = 50
MEASURES = 20
KEY_BITS = 1024


def _speedup_rows(res: dict) -> list[str]:
    rows = [
        f"{'plane':<10}{'ciphertexts':>12}{'encrypt':>10}{'add':>10}"
        f"{'decrypt':>10}{'total':>10}"
    ]
    for plane, n_cts in (
        ("scalar", res["scalar_ciphertexts"]),
        ("batched", res["batched_ciphertexts"]),
    ):
        samples = res[plane]
        total = sum(s.average for s in samples.values())
        rows.append(
            f"{plane:<10}{n_cts:>12}"
            f"{samples['encrypt'].average:>10.3f}{samples['add'].average:>10.3f}"
            f"{samples['decrypt'].average:>10.3f}{total:>10.3f}"
        )
    rows.append(
        f"slots/ciphertext: {res['slots']}   one-time table build: "
        f"{res['precompute_seconds']:.3f} s"
    )
    rows.append(
        f"computation-step speedup: {res['speedup']:.1f}x   "
        f"bit-identical post-decode: {res['identical']}"
    )
    return rows


@pytest.fixture(scope="module")
def keypair_1024():
    return generate_threshold_keypair(
        KEY_BITS, n_shares=5, threshold=3, s=1, rng=random.Random(0)
    )


def test_fig5a_crypto_times(benchmark, keypair_1024):
    pub = keypair_1024.public
    rng = random.Random(1)
    c1 = encrypt(pub, 123456, rng=rng)
    c2 = encrypt(pub, 654321, rng=rng)
    benchmark(lambda: homomorphic_add(pub, c1, c2))

    costs = measure_crypto_costs(
        keypair_1024, k=K, series_length=MEASURES, repetitions=1, rng=rng
    )
    rows = [f"{'operation':<10}{'MIN (s)':>12}{'MAX (s)':>12}{'AVG (s)':>12}"]
    for op in ("encrypt", "add", "decrypt"):
        sample = costs[op]
        rows.append(
            f"{op:<10}{sample.minimum:>12.3f}{sample.maximum:>12.3f}{sample.average:>12.3f}"
        )
    record_report(
        "fig5a_local_times",
        f"Fig 5(a): times for one set of {K} means × {MEASURES} measures, {KEY_BITS}-bit key",
        rows,
    )

    record_json(
        "fig5a_local_times",
        {
            "k": K,
            "series_length": MEASURES,
            "key_bits": KEY_BITS,
            "seconds": {
                op: {
                    "min": float(costs[op].minimum),
                    "max": float(costs[op].maximum),
                    "avg": float(costs[op].average),
                }
                for op in ("encrypt", "add", "decrypt")
            },
        },
    )
    assert costs["add"].average < costs["encrypt"].average
    assert costs["add"].average < costs["decrypt"].average
    assert costs["decrypt"].average == max(s.average for s in costs.values())


def test_fig5c_batched_speedup(keypair_1024):
    """Acceptance: ≥ 5× on the computation-step local cost at the paper's
    default key size, bit-identical decoded outputs."""
    res = compare_scalar_batched_costs(
        keypair_1024, k=K, series_length=MEASURES, repetitions=1,
        rng=random.Random(2),
    )
    record_report(
        "fig5c_batched_speedup",
        f"Fig 5(c) extension: batched vs scalar plane, {K} means × "
        f"{MEASURES} measures, {KEY_BITS}-bit key",
        _speedup_rows(res),
    )
    record_json(
        "fig5c_batched_speedup",
        {
            "k": K,
            "series_length": MEASURES,
            "key_bits": KEY_BITS,
            "speedup": float(res["speedup"]),
            "slots_per_ciphertext": int(res["slots"]),
            "identical": bool(res["identical"]),
        },
    )
    assert res["identical"], "batched plane must decode bit-identically"
    assert res["speedup"] >= 5.0, f"speedup {res['speedup']:.1f}x < 5x"


def test_fig5_batched_smoke():
    """CI smoke: same comparison at a small key size, runs in seconds."""
    keypair = generate_threshold_keypair(
        512, n_shares=5, threshold=3, s=1, rng=random.Random(3)
    )
    res = compare_scalar_batched_costs(
        keypair, k=10, series_length=8, repetitions=1, rng=random.Random(4)
    )
    record_report(
        "fig5_batched_smoke",
        "Fig 5 smoke: batched vs scalar plane, 10 means × 8 measures, 512-bit key",
        _speedup_rows(res),
    )
    record_json(
        "fig5_batched_smoke",
        {"k": 10, "series_length": 8, "key_bits": 512, "speedup": float(res["speedup"])},
    )
    assert res["identical"]
    assert res["speedup"] > 1.5


def test_fig5b_bandwidth(benchmark, keypair_1024):
    model = LocalCostModel(keypair_1024.public, k=K, series_length=MEASURES)
    benchmark(lambda: model.transfer_bytes)

    kb = model.transfer_bytes / 1024
    rows = [
        f"one means set transfer: {kb:.1f} kB",
        f"epidemic-sum exchange (2 sets): {model.exchange_bytes() / 1024:.1f} kB",
        f"decryption exchange (4 sets): {model.decryption_exchange_bytes() / 1024:.1f} kB",
        f"transfer time at 1 Mb/s: {model.transfer_seconds():.2f} s",
    ]
    record_report(
        "fig5b_bandwidth",
        f"Fig 5(b): bandwidth for one set of {K} encrypted means ({KEY_BITS}-bit key)",
        rows,
    )

    record_json(
        "fig5b_bandwidth",
        {
            "k": K,
            "series_length": MEASURES,
            "key_bits": KEY_BITS,
            "means_set_kb": float(kb),
            "transfer_seconds_at_1mbps": float(model.transfer_seconds()),
        },
    )
    # Paper: "a hundredth of kilo-bytes per transfer", ~1 s at 1 Mb/s.
    # Exact kB depends on whether counts ride along (ours do): 50 × 21
    # ciphertexts × 256 B = 262.5 kB vs the paper's ~135 kB for 50 × 20 ×
    # 1024-bit ciphertext halves — same order of magnitude.
    assert 100 <= kb <= 400
    assert model.transfer_seconds() < 5.0


def test_fig5_crt_split_decrypt(keypair_1024):
    """CRT-split decryption vs the single-modexp reference (Fig. 5(a)
    "Decrypt" bar).  Interleaved best-of-rounds so transient CI stalls
    cannot flip the ratio; correctness (bit-identity) is asserted in
    tests/crypto, this bench tracks the speedup."""
    import time

    from repro.crypto.damgard_jurik import _decrypt_reference, decrypt, encrypt

    private = keypair_1024.private
    rng = random.Random(6)
    ciphertexts = [encrypt(keypair_1024.public, v, rng=rng) for v in range(20)]
    fast_best, slow_best = float("inf"), float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fast = [decrypt(private, c) for c in ciphertexts]
        mid = time.perf_counter()
        slow = [_decrypt_reference(private, c) for c in ciphertexts]
        end = time.perf_counter()
        assert fast == slow
        fast_best = min(fast_best, mid - start)
        slow_best = min(slow_best, end - mid)
    speedup = slow_best / fast_best
    rows = [
        f"reference decrypt: {slow_best / 20 * 1e3:.2f} ms/op",
        f"CRT-split decrypt: {fast_best / 20 * 1e3:.2f} ms/op",
        f"speedup: {speedup:.2f}x (expected ~3-4x at 1024 bits)",
    ]
    record_report(
        "fig5_crt_split",
        f"Fig 5(a) extension: CRT-split decryption, {KEY_BITS}-bit key",
        rows,
    )
    record_json(
        "fig5_crt_split",
        {
            "key_bits": KEY_BITS,
            "reference_seconds_per_op": float(slow_best / 20),
            "crt_seconds_per_op": float(fast_best / 20),
            "speedup": float(speedup),
        },
    )
    assert speedup > 1.5
