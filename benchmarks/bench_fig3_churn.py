"""Figure 3 — impact of churn.

(a) evolution of the pre-perturbation inertia under per-iteration churn
    {0, 0.1, 0.25, 0.5} for G_SMA on the CER-like workload — the four
    variants are submitted as one batch to the experiment service and
    executed concurrently (one worker process per churn rate), so this
    bench doubles as the service's sweep-workload exercise;
(b) relative error of the epidemic (encrypted-equivalent) sum after 100
    messages per participant, populations 1K → 1M, per-exchange churn
    {0.1, 0.25, 0.5}, all-ones data — twice: once on the cleartext
    push–pull simulator (the historical plane) and once on the
    full-protocol struct-of-arrays engine running Algorithm 2's exact
    delayed-division semantics (counters, ω-weights) at 10⁵–10⁶ nodes.
"""

from __future__ import annotations

import numpy as np

from conftest import record_json, record_report, record_runs
from repro.api import Experiment, RunSpec
from repro.core.results import ClusteringResult
from repro.gossip import PushPullSumSimulator, VectorizedEESum, VectorizedGossipEngine
from repro.service import run_batch

ITERATIONS = 10
CHURNS_QUALITY = (0.0, 0.1, 0.25, 0.5)
CHURNS_SUM = (0.1, 0.25, 0.5)
POPULATIONS = (1_000, 10_000, 100_000, 1_000_000)


def churn_spec(churn: float, max_iterations: int = ITERATIONS) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"fig3a-churn-{churn}",
        "plane": "quality",
        "seed": 33,
        "strategy": "G",
        "churn": churn,
        "dataset": {"kind": "cer",
                    "params": {"n_series": 30_000, "population_scale": 100,
                               "seed": 1}},
        "init": {"kind": "courbogen", "params": {"seed": 1}},
        "params": {"k": 50, "max_iterations": max_iterations, "epsilon": 0.69,
                   "theta": 0.0},
    })


def test_fig3a_churn_quality(benchmark, tmp_path):
    data = Experiment.from_spec(churn_spec(0.0)).context.dataset

    benchmark.pedantic(
        lambda: Experiment.from_spec(churn_spec(0.25, max_iterations=2)).run(),
        rounds=1,
        iterations=1,
    )

    # The sweep itself goes through the experiment service: one batch of
    # specs, drained by a process-per-job scheduler (records come back in
    # submit order, each a chiaroscuro-run/v1 dict from the job's worker).
    records = run_batch(
        [churn_spec(churn) for churn in CHURNS_QUALITY],
        root=tmp_path / "service-root",
        max_workers=len(CHURNS_QUALITY),
    )

    rows = [f"{'series':<14}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1))]
    curves = {}
    for churn, record in zip(CHURNS_QUALITY, records):
        pre = ClusteringResult.from_dict(record["result"]).pre_inertia_curve
        pre = pre + [pre[-1]] * (ITERATIONS - len(pre))
        curves[churn] = pre
        tag = "G_SMA" if churn == 0 else f"G_SMA c={churn}"
        rows.append(f"{tag:<14}" + "".join(f"{v:>9.1f}" for v in pre))
    record_report(
        "fig3a_churn_quality",
        "Fig 3(a) CER-like: pre-perturbation inertia under per-iteration churn",
        rows,
    )
    record_runs(
        "fig3a_churn_quality",
        records,
        extra={
            "population": data.population,
            "curves": {str(c): [float(v) for v in pre] for c, pre in curves.items()},
        },
    )

    # Paper: churn-enabled curves follow the churn-free one closely early on.
    for churn in (0.1, 0.25, 0.5):
        early_gap = np.abs(
            np.array(curves[churn][:4]) - np.array(curves[0.0][:4])
        ).mean()
        assert early_gap < 0.35 * np.mean(curves[0.0][:4])


def test_fig3b_churn_sum_error(benchmark):
    def run_config(population, churn, seed=0):
        sim = PushPullSumSimulator(population, churn=churn, seed=seed)
        while sim.mean_messages_per_node < 100.0:
            sim.run_cycle()
        return sim.max_relative_error()

    benchmark.pedantic(lambda: run_config(10_000, 0.25), rounds=1, iterations=1)

    rows = [f"{'population':>12}" + "".join(f"  churn={c:<10}" for c in CHURNS_SUM)]
    errors = {}
    for population in POPULATIONS:
        cells = []
        for churn in CHURNS_SUM:
            error = run_config(population, churn)
            errors[(population, churn)] = error
            cells.append(f"  {error:<16.3e}")
        rows.append(f"{population:>12}" + "".join(cells))
    record_report(
        "fig3b_churn_sum_error",
        "Fig 3(b): relative error of the epidemic sum, 100 messages/participant",
        rows,
    )
    record_json(
        "fig3b_churn_sum_error",
        {
            "populations": list(POPULATIONS),
            "errors": {f"{p},{c}": float(e) for (p, c), e in errors.items()},
        },
    )

    # Paper: at most a bit less than 0.1 % even at 50 % churn.
    assert all(e < 1e-3 for e in errors.values())
    # Higher churn → larger error at fixed message budget (tendency).
    assert errors[(100_000, 0.5)] > errors[(100_000, 0.1)]


def test_fig3b_full_protocol_churn(benchmark):
    """Fig 3(b), large-population mode: the *full-protocol* plane.

    Same sweep as the cleartext simulator, but through
    :class:`VectorizedEESum` — Algorithm 2's delayed-division semantics with
    shared counters and ω-weights — on the struct-of-arrays engine at
    10⁵–10⁶ nodes.  The paper's claim (≲ 0.1 % relative error after 100
    messages per participant even at 50 % churn) must hold on the exact
    protocol, not just its cleartext approximation.
    """
    populations = (100_000, 1_000_000)

    def run_config(population, churn, seed=0):
        engine = VectorizedGossipEngine(population, seed=seed, churn=churn)
        protocol = VectorizedEESum(np.ones((population, 1)))
        while engine.mean_exchanges_per_node < 100.0:
            engine.run_cycle(protocol)
        estimates = protocol.estimates()[:, 0]
        if np.isnan(estimates).any():
            return float("inf")
        return float(np.abs(estimates - population).max() / population)

    benchmark.pedantic(lambda: run_config(100_000, 0.25), rounds=1, iterations=1)

    rows = [f"{'population':>12}" + "".join(f"  churn={c:<10}" for c in CHURNS_SUM)]
    errors = {}
    for population in populations:
        cells = []
        for churn in CHURNS_SUM:
            error = run_config(population, churn)
            errors[(population, churn)] = error
            cells.append(f"  {error:<16.3e}")
        rows.append(f"{population:>12}" + "".join(cells))
    record_report(
        "fig3b_full_protocol_churn",
        "Fig 3(b) full-protocol plane: EESum relative error, 100 messages/participant",
        rows,
    )
    record_json(
        "fig3b_full_protocol_churn",
        {
            "plane": "vectorized-full-protocol",
            "populations": list(populations),
            "errors": {f"{p},{c}": float(e) for (p, c), e in errors.items()},
        },
    )

    assert all(e < 1e-3 for e in errors.values())
