"""Extension bench — perturbed EM (the Sec. 8 perspective).

Not a paper figure: the paper *names* EM as the next algorithm its
foundations support, and this bench quantifies that claim — the same
budget strategies, the same lost-component behaviour, the same
early-concentration payoff as Fig. 2, now on Gaussian-mixture likelihoods.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.core import GaussianMixtureState, perturbed_em
from repro.datasets import TimeSeriesSet
from repro.privacy import strategy_from_name


@pytest.fixture(scope="module")
def mixture_workload():
    rng = np.random.default_rng(14)
    centers = np.array(
        [[8.0, 8, 8, 30, 30, 30], [30, 30, 30, 8, 8, 8], [18, 18, 18, 18, 18, 18],
         [25, 10, 25, 10, 25, 10]]
    )
    values = np.concatenate([c + rng.normal(0, 1.5, (1500, 6)) for c in centers])
    data = TimeSeriesSet(
        np.clip(values, 0, 40), 0.0, 40.0, name="gmm", population_scale=500
    )
    initial = GaussianMixtureState(
        means=centers + rng.normal(0, 3.0, centers.shape),
        variances=np.full(len(centers), 9.0),
        weights=np.full(len(centers), 1 / len(centers)),
    )
    return data, initial


def test_extension_perturbed_em(benchmark, mixture_workload):
    data, initial = mixture_workload

    benchmark.pedantic(
        lambda: perturbed_em(
            data, initial, strategy_from_name("UF5", 0.69), max_iterations=2,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )

    rows = [f"{'strategy':<8}" + "".join(f"{i:>9d}" for i in range(1, 9))]
    finals = {}
    for label in ("G", "GF", "UF5", "UF10"):
        trace = perturbed_em(
            data, initial, strategy_from_name(label, 0.69), max_iterations=8,
            rng=np.random.default_rng(15),
        )
        ll = trace.log_likelihood
        ll = ll + [ll[-1]] * (8 - len(ll))
        finals[label] = trace
        rows.append(f"{label:<8}" + "".join(f"{v:>9.2f}" for v in ll))
    record_report(
        "extension_em",
        "Extension: perturbed EM average log-likelihood per iteration",
        rows,
    )

    record_json(
        "extension_em",
        {
            "population": data.population,
            "log_likelihood": {
                label: [float(v) for v in t.log_likelihood]
                for label, t in finals.items()
            },
        },
    )
    # The Chiaroscuro claims transfer: budget concentration improves early
    # likelihood, and every strategy stays bounded by its ε.
    g = finals["G"].log_likelihood
    assert g[min(2, len(g) - 1)] > g[0]  # early improvement under GREEDY
    assert finals["UF5"].iterations <= 5
