"""Figure 4 — internal latencies of the computation step.

(a) average messages per participant for the epidemic (encrypted) sum to
    reach absolute approximation errors {1, 0.1, 0.01, 0.001} over all-ones
    data, populations 1K → 1M, plus the min-id dissemination latency;
(b) average messages per peer for the epidemic decryption vs the key-share
    threshold (fraction of the population), with the linear-fit
    extrapolation the paper uses beyond its platform limit.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.gossip import (
    GossipEngine,
    TokenDecryption,
    VectorizedGossipEngine,
    VectorizedShareCollection,
    dissemination_cycles,
    fit_linear,
    messages_to_reach_error,
)

SUM_POPULATIONS = (1_000, 10_000, 100_000, 1_000_000)
TARGET_ERRORS = (1.0, 0.1, 0.01, 0.001)

DEC_POPULATIONS = (1_000, 4_000)
TAU_FRACTIONS = (0.001, 0.01, 0.05, 0.1)


def test_fig4a_epidemic_sum_latency(benchmark):
    benchmark.pedantic(
        lambda: messages_to_reach_error(10_000, 0.01), rounds=1, iterations=1
    )

    rows = [
        f"{'population':>12}"
        + "".join(f"  err≤{e:<10}" for e in TARGET_ERRORS)
        + f"  {'dissem.':<10}"
    ]
    table = {}
    for population in SUM_POPULATIONS:
        cells = []
        for error in TARGET_ERRORS:
            messages = messages_to_reach_error(population, error)
            table[(population, error)] = messages
            cells.append(f"  {messages:<14.1f}")
        dis_messages, _ = dissemination_cycles(population)
        cells.append(f"  {dis_messages:<10.1f}")
        rows.append(f"{population:>12}" + "".join(cells))
    record_report(
        "fig4a_sum_latency",
        "Fig 4(a): messages/participant for the epidemic sum + dissemination",
        rows,
    )
    record_json(
        "fig4a_sum_latency",
        {
            "populations": list(SUM_POPULATIONS),
            "messages": {f"{p},{e}": float(m) for (p, e), m in table.items()},
        },
    )

    # Paper shapes: under the hundred even at 1M / tightest error; growth
    # is logarithmic in the population.
    assert table[(1_000_000, 0.001)] < 100
    small, large = table[(1_000, 0.001)], table[(1_000_000, 0.001)]
    assert large < 3 * small  # log growth, nowhere near the 1000× ratio


def test_fig4b_epidemic_decryption_latency(benchmark):
    def run_config(population, tau_fraction, seed=0):
        tau = max(1, round(tau_fraction * population))
        engine = GossipEngine(population, seed=seed)
        protocol = TokenDecryption(threshold_count=tau)
        engine.setup(protocol)
        cycles = 0
        while protocol.fraction_done(engine.nodes) < 1.0 and cycles < 20 * tau + 200:
            engine.run_cycle(protocol)
            cycles += 1
        return engine.mean_exchanges_per_node

    benchmark.pedantic(lambda: run_config(1_000, 0.01), rounds=1, iterations=1)

    measured = {p: [] for p in DEC_POPULATIONS}
    for tau_fraction in TAU_FRACTIONS:
        for population in DEC_POPULATIONS:
            measured[population].append(run_config(population, tau_fraction))

    # The paper extrapolates the observed linearity beyond its platform
    # limit; messages scale with the *absolute* threshold count τ·pop, so
    # fit on the largest live population and predict 1M at each fraction.
    taus_live = [max(1, round(f * DEC_POPULATIONS[-1])) for f in TAU_FRACTIONS]
    fit = fit_linear(taus_live, measured[DEC_POPULATIONS[-1]])

    rows = [
        f"{'tau fraction':>14}"
        + "".join(f"  pop={p:<10}" for p in DEC_POPULATIONS)
        + f"  {'pop=1M (fit)':<14}"
    ]
    for i, tau_fraction in enumerate(TAU_FRACTIONS):
        cells = [f"  {measured[p][i]:<14.1f}" for p in DEC_POPULATIONS]
        cells.append(f"  {fit.predict(round(tau_fraction * 1_000_000)):<14.1f}")
        rows.append(f"{tau_fraction:>14}" + "".join(cells))
    rows.append(
        f"realistic case tau=0.01% of 1M (100 shares): "
        f"{fit.predict(100):.0f} messages/peer (paper: order of the hundred)"
    )
    record_report(
        "fig4b_decryption_latency",
        "Fig 4(b): messages/peer for epidemic decryption vs key-share threshold",
        rows,
    )

    record_json(
        "fig4b_decryption_latency",
        {
            "populations": list(DEC_POPULATIONS),
            "tau_fractions": list(TAU_FRACTIONS),
            "messages_per_peer": {
                str(p): [float(v) for v in series] for p, series in measured.items()
            },
            "fit_1m_realistic_tau100": float(fit.predict(100)),
        },
    )

    # Paper shape: latency linear in the threshold.
    for population in DEC_POPULATIONS:
        series = measured[population]
        assert series[0] < series[-1]
        taus = [max(1, round(f * population)) for f in TAU_FRACTIONS]
        fit = fit_linear(taus, series)
        # Linear fit explains the curve: mid-point prediction within 50 %.
        mid = fit.predict(taus[2])
        assert mid == pytest.approx(series[2], rel=0.5)
    # The paper's realistic case: τ = 0.01 % of 1M = 100 shares → messages
    # on the order of the hundred (predict from the 4K-pop linear fit).
    taus_4k = [max(1, round(f * 4_000)) for f in TAU_FRACTIONS]
    fit = fit_linear(taus_4k, measured[4_000])
    realistic = fit.predict(100)
    assert 20 <= realistic <= 500


def test_fig4b_decryption_large_population(benchmark):
    """Fig 4(b), large-population mode: collection latency at 10⁵–10⁶ peers.

    The object-engine sweep above stops at 4K nodes and extrapolates the
    linear trend, exactly as the paper did on its platform.  The
    struct-of-arrays plane removes the platform limit: it runs the
    replacement + mutual-share-application collection protocol directly at
    10⁵ and 10⁶ peers, turning the paper's extrapolated "order of the
    hundred messages" claim for the realistic case (τ = 0.01 % of 1M = 100
    shares) into a measurement.
    """

    def run_config(population, tau, seed=0):
        engine = VectorizedGossipEngine(population, seed=seed)
        protocol = VectorizedShareCollection(population, tau)
        cycles = 0
        while not protocol.all_done() and cycles < 20 * tau + 400:
            engine.run_cycle(protocol)
            cycles += 1
        return engine.mean_exchanges_per_node

    benchmark.pedantic(lambda: run_config(100_000, 100), rounds=1, iterations=1)

    configs = [(100_000, 10), (100_000, 100), (1_000_000, 100)]
    measured = {}
    rows = [f"{'population':>12}{'tau':>8}{'messages/peer':>16}"]
    for population, tau in configs:
        messages = run_config(population, tau)
        measured[(population, tau)] = messages
        rows.append(f"{population:>12}{tau:>8}{messages:>16.1f}")
    rows.append(
        "realistic case tau=0.01% of 1M (100 shares): "
        f"{measured[(1_000_000, 100)]:.0f} messages/peer measured "
        "(paper: order of the hundred, extrapolated)"
    )
    record_report(
        "fig4b_decryption_large_population",
        "Fig 4(b) large-population mode: epidemic decryption collection, measured",
        rows,
    )
    record_json(
        "fig4b_decryption_large_population",
        {
            "plane": "vectorized-full-protocol",
            "messages_per_peer": {
                f"{p},{tau}": float(m) for (p, tau), m in measured.items()
            },
        },
    )

    # The paper's extrapolated realistic case, now measured directly.
    assert 20 <= measured[(1_000_000, 100)] <= 500
    # Latency grows with the threshold at fixed population.
    assert measured[(100_000, 100)] > measured[(100_000, 10)]
