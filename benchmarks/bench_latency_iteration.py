"""Section 6.3.2 — total per-iteration latency composition.

The paper composes the measured gossip latencies (Fig. 4) with the local
costs (Fig. 5) into "a first iteration completing after around 26 mins and
a fifth one after around 10 mins" (NUMED, G_SMA, 60 % of centroids lost by
the fifth iteration).  This bench recomputes the composition from live
measurements of the same building blocks.
"""

from __future__ import annotations

import random

import pytest

from conftest import record_json, record_report
from repro.analysis import LatencyInputs, LocalCostModel, iteration_latency, measure_crypto_costs
from repro.crypto import generate_threshold_keypair
from repro.gossip import dissemination_cycles, messages_to_reach_error


def test_iteration_latency_composition(benchmark):
    keypair = generate_threshold_keypair(
        1024, n_shares=5, threshold=3, s=1, rng=random.Random(0)
    )
    model = LocalCostModel(keypair.public, k=50, series_length=20)

    # Live building blocks (scaled-down measurement, paper-sized model).
    sum_messages = messages_to_reach_error(100_000, 0.001)
    dis_messages, _ = dissemination_cycles(100_000)
    costs = measure_crypto_costs(keypair, k=10, series_length=20, repetitions=1)
    scale = 50 / 10  # linear in k (Sec. 6.1.2)

    inputs = LatencyInputs(
        sum_messages_per_node=sum_messages,
        dissemination_messages_per_node=dis_messages,
        decryption_messages_per_node=100.0,  # τ = 0.01 % of 1M (Fig. 4b)
        encrypt_seconds=costs["encrypt"].average * scale,
        add_seconds=costs["add"].average * scale,
        decrypt_seconds=costs["decrypt"].average * scale,
    )

    benchmark(lambda: iteration_latency(model, inputs))

    first = iteration_latency(model, inputs, alive_fraction=1.0)
    fifth = iteration_latency(model, inputs, alive_fraction=0.4)  # 60 % lost

    rows = [
        f"{'iteration':<12}{'messages/node':>16}{'transfer (min)':>16}{'compute (min)':>16}{'total (min)':>14}",
        (
            f"{'first':<12}{first.messages_per_node:>16.0f}"
            f"{first.transfer_seconds / 60:>16.1f}{first.compute_seconds / 60:>16.1f}"
            f"{first.total_minutes:>14.1f}"
        ),
        (
            f"{'fifth':<12}{fifth.messages_per_node:>16.0f}"
            f"{fifth.transfer_seconds / 60:>16.1f}{fifth.compute_seconds / 60:>16.1f}"
            f"{fifth.total_minutes:>14.1f}"
        ),
        "(paper: ~26 min first, ~10 min fifth — NUMED, G_SMA, 1M participants)",
    ]
    record_report(
        "sec632_iteration_latency",
        "Sec 6.3.2: per-iteration latency composition",
        rows,
    )
    record_json(
        "sec632_iteration_latency",
        {
            "population": 1_000_000,
            "key_bits": keypair.public.key_bits,
            "first_iteration_minutes": float(first.total_minutes),
            "fifth_iteration_minutes": float(fifth.total_minutes),
            "messages_per_node": float(first.messages_per_node),
            "encrypt_seconds": float(inputs.encrypt_seconds),
            "decrypt_seconds": float(inputs.decrypt_seconds),
        },
    )

    # Shape: a few hundred messages per node; tens of minutes; the fifth
    # iteration costs ~40 % of the first.
    assert 100 <= first.messages_per_node <= 1000
    assert 1 <= first.total_minutes <= 240
    assert fifth.total_seconds == pytest.approx(first.total_seconds * 0.4, rel=1e-6)
