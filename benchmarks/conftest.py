"""Benchmark-suite plumbing.

Every bench regenerates one of the paper's tables/figures and registers a
text rendition via :func:`record_report`; the tables are printed in the
pytest terminal summary (so they survive output capture) and written to
``benchmarks/out/<name>.txt`` for EXPERIMENTS.md.

Machine-readable telemetry rides along: :func:`record_json` writes
``benchmarks/out/BENCH_<name>.json`` with the bench's structured results
wrapped in a common envelope (git revision, python version, timestamp), so
the perf trajectory is trackable across PRs by diffing the JSON files.
Each file is *also* mirrored to ``BENCH_<name>.json`` at the repository
root — the copy that gets committed/uploaded, so the perf trajectory is
visible in the tree itself (and diffable between PRs) without digging
into CI artifacts.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import time

_REPORTS: list[tuple[str, list[str]]] = []
_OUT_DIR = pathlib.Path(__file__).parent / "out"
_REPO_ROOT = pathlib.Path(__file__).parent.parent


def record_report(name: str, title: str, lines: list[str]) -> None:
    """Register a figure reproduction for terminal display and save it."""
    _REPORTS.append((title, lines))
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(title + "\n" + "\n".join(lines) + "\n")


def _git_rev(short: bool = True) -> str:
    args = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        return subprocess.run(
            args,
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record_json(name: str, data: dict) -> None:
    """Write ``out/BENCH_<name>.json``: the bench's results + envelope.

    ``data`` is bench-specific (timings in seconds, populations, key sizes,
    measured tables); the envelope adds provenance so a stored file is
    self-describing.  Keys must be JSON-serializable — numpy scalars should
    be converted by the caller (``float``/``int``).

    The file is mirrored to the repository root (``BENCH_<name>.json``) so
    the cross-PR perf trajectory lives in the tree, not only in CI
    artifacts.
    """
    _OUT_DIR.mkdir(exist_ok=True)
    now = time.time()
    timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now))
    envelope = {
        "schema": "chiaroscuro-bench/v1",
        "bench": name,
        "git_rev": _git_rev(),
        "python": sys.version.split()[0],
        "timestamp": timestamp,
        # The ordering block the warehouse's bench-trajectory view keys
        # on: a numeric epoch (no ISO parsing, no filesystem mtimes) and
        # the full revision alongside the short one.  The legacy
        # top-level git_rev/timestamp stay for old readers.
        "provenance": {
            "git_rev": _git_rev(),
            "git_rev_full": _git_rev(short=False),
            "timestamp": timestamp,
            "unix_time": round(now, 3),
        },
        "data": data,
    }
    payload = json.dumps(envelope, indent=2) + "\n"
    (_OUT_DIR / f"BENCH_{name}.json").write_text(payload)
    (_REPO_ROOT / f"BENCH_{name}.json").write_text(payload)


def record_runs(name: str, runs: list[dict], extra: dict | None = None) -> None:
    """Write ``out/BENCH_<name>.json`` in the shared run-record schema.

    ``runs`` is a list of :func:`repro.api.run_record` dicts — one per
    experiment the bench executed (spec + per-iteration history +
    timings), so every BENCH file that runs experiments exposes the same
    ``chiaroscuro-run/v1`` shape and can be diffed across PRs with one
    tool.  ``extra`` carries bench-specific aggregates alongside.
    """
    payload = {"schema": "chiaroscuro-run/v1", "runs": runs}
    if extra:
        payload.update(extra)
    record_json(name, payload)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper figure reproductions")
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in lines:
            terminalreporter.write_line(line)
