"""Benchmark-suite plumbing.

Every bench regenerates one of the paper's tables/figures and registers a
text rendition via :func:`record_report`; the tables are printed in the
pytest terminal summary (so they survive output capture) and written to
``benchmarks/out/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

_REPORTS: list[tuple[str, list[str]]] = []
_OUT_DIR = pathlib.Path(__file__).parent / "out"


def record_report(name: str, title: str, lines: list[str]) -> None:
    """Register a figure reproduction for terminal display and save it."""
    _REPORTS.append((title, lines))
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(title + "\n" + "\n".join(lines) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper figure reproductions")
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in lines:
            terminalreporter.write_line(line)
