"""Ablation benches for the design choices DESIGN.md calls out.

1. **Delayed division (Alg. 2)** — the EESum scaling update rule vs the
   cleartext push–pull reference, on the same exchange schedule: identical
   estimates (this is what makes gossip possible under additive
   homomorphism at all), at a measured per-exchange crypto cost.
2. **Sensitivity calibration** — per-aggregate vs joint vs split modes of
   the (sum, count) perturbation on the CER-like quality run.
3. **Smoothing window** — SMA window sweep (0 %, 10 %, 20 %, 40 % of n).
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from conftest import record_json, record_report, record_runs
from repro.api import Experiment, RunSpec, run_record
from repro.crypto import FixedPointCodec, decrypt, encrypt, generate_keypair
from repro.gossip import EESum, EpidemicSum, GossipEngine


def test_ablation_eesum_vs_cleartext(benchmark):
    keypair = generate_keypair(256, s=2, rng=random.Random(0))
    codec = FixedPointCodec(keypair.public, fractional_bits=20)
    rng = random.Random(1)
    values = [float(i) - 8.0 for i in range(24)]
    initial_enc = {
        i: [encrypt(keypair.public, codec.encode(v), rng=rng)]
        for i, v in enumerate(values)
    }
    initial_clear = {i: np.array([v]) for i, v in enumerate(values)}

    def run_pair():
        engine = GossipEngine(24, seed=2)
        encrypted = EESum(keypair.public, initial_enc)
        cleartext = EpidemicSum(initial_clear)
        engine.setup(encrypted, cleartext)
        engine.run_cycles(12, encrypted, cleartext)
        return engine, encrypted, cleartext

    engine, encrypted, cleartext = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    diffs = []
    for node in engine.nodes:
        state = encrypted.state_of(node)
        clear = node.state["episum"]
        decoded = codec.decode(decrypt(keypair, state.ciphertexts[0]))
        diffs.append(abs(decoded / (2.0 ** state.count) - float(clear["sigma"][0])))
    rows = [
        f"nodes: 24, cycles: 12, max |encrypted − cleartext| = {max(diffs):.2e}",
        "(Alg. 2 delayed division is arithmetically exact, App. C.2.1)",
    ]
    record_report("ablation_eesum", "Ablation: EESum vs cleartext push–pull", rows)
    record_json(
        "ablation_eesum",
        {"nodes": 24, "cycles": 12, "key_bits": 256, "max_abs_diff": float(max(diffs))},
    )
    assert max(diffs) < 1e-3


def ablation_spec(mode: str = "per-aggregate",
                  smoothing_fraction: float = 0.2) -> RunSpec:
    """One CER ablation run; the sweep swaps the spec's options/params."""
    return RunSpec.from_dict({
        "name": f"ablation-{mode}-w{smoothing_fraction}",
        "plane": "quality",
        "seed": 10,
        "strategy": "G",
        "dataset": {"kind": "cer",
                    "params": {"n_series": 15_000, "population_scale": 200,
                               "seed": 9}},
        "init": {"kind": "courbogen", "params": {"seed": 9}},
        "params": {"k": 30, "max_iterations": 8, "epsilon": 0.69,
                   "smoothing_fraction": smoothing_fraction, "theta": 0.0},
        "options": {"sensitivity_mode": mode},
    })


@pytest.fixture(scope="module")
def quality_workload():
    context = Experiment.from_spec(ablation_spec()).context
    return context.dataset, context.initial_centroids


def test_ablation_sensitivity_modes(benchmark, quality_workload):
    data, _ = quality_workload
    records: list[dict] = []

    def run(mode):
        spec = ablation_spec(mode=mode)
        started = time.perf_counter()
        result = Experiment.from_spec(spec).run()
        records.append(run_record(
            spec, result, timings={"wall_seconds": time.perf_counter() - started}
        ))
        return result

    benchmark.pedantic(lambda: run("per-aggregate"), rounds=1, iterations=1)
    records.clear()  # drop the warm-up measurement

    rows = [f"{'mode':<16}{'best PRE':>12}{'final PRE':>12}{'final #cent':>12}"]
    results = {}
    for mode in ("per-aggregate", "joint", "split"):
        result = run(mode)
        results[mode] = result
        rows.append(
            f"{mode:<16}{min(result.pre_inertia_curve):>12.1f}"
            f"{result.pre_inertia_curve[-1]:>12.1f}{result.n_centroids_curve[-1]:>12d}"
        )
    record_report(
        "ablation_sensitivity",
        "Ablation: (sum, count) sensitivity calibration",
        rows,
    )
    record_runs(
        "ablation_sensitivity",
        records,
        extra={
            "population": data.population,
            "modes": {
                mode: {
                    "best_pre": float(min(r.pre_inertia_curve)),
                    "final_pre": float(r.pre_inertia_curve[-1]),
                    "final_centroids": int(r.n_centroids_curve[-1]),
                }
                for mode, r in results.items()
            },
        },
    )
    # Joint calibration adds count noise ∝ sum sensitivity → loses more
    # centroids than the per-aggregate reading.
    assert (
        results["joint"].n_centroids_curve[-1]
        <= results["per-aggregate"].n_centroids_curve[-1]
    )


def test_ablation_smoothing_window(benchmark, quality_workload):
    data, _ = quality_workload
    records: list[dict] = []
    # Window sizes via smoothing_fraction on the n = 24 CER series:
    # round(f·24) even-rounded gives 0, 2, 4, 8.
    fractions = {0: 0.0, 2: 2 / 24, 4: 4 / 24, 8: 8 / 24}
    assert {
        w: ablation_spec(smoothing_fraction=f).params.smoothing_window(24)
        for w, f in fractions.items()
    } == {0: 0, 2: 2, 4: 4, 8: 8}

    def run(window):
        spec = ablation_spec(smoothing_fraction=fractions[window]).replace(seed=11)
        started = time.perf_counter()
        result = Experiment.from_spec(spec).run()
        records.append(run_record(
            spec, result, timings={"wall_seconds": time.perf_counter() - started}
        ))
        return result

    benchmark.pedantic(lambda: run(4), rounds=1, iterations=1)
    records.clear()  # drop the warm-up measurement

    rows = [f"{'window':<10}{'mean PRE (it 5-8)':>20}"]
    tails = {}
    for window in (0, 2, 4, 8):
        result = run(window)
        tail = float(np.mean(result.pre_inertia_curve[4:]))
        tails[window] = tail
        rows.append(f"{window:<10}{tail:>20.1f}")
    rows.append("(Table 2 uses 20 % of n = window 4 for CER)")
    record_report(
        "ablation_smoothing",
        "Ablation: SMA window sweep (late-iteration inertia)",
        rows,
    )
    record_runs(
        "ablation_smoothing",
        records,
        extra={
            "population": data.population,
            "late_inertia_by_window": {str(w): float(v) for w, v in tails.items()},
        },
    )
    assert min(tails.values()) <= tails[0]  # some smoothing never hurts late
