"""Ablation benches for the design choices DESIGN.md calls out.

1. **Delayed division (Alg. 2)** — the EESum scaling update rule vs the
   cleartext push–pull reference, on the same exchange schedule: identical
   estimates (this is what makes gossip possible under additive
   homomorphism at all), at a measured per-exchange crypto cost.
2. **Sensitivity calibration** — per-aggregate vs joint vs split modes of
   the (sum, count) perturbation on the CER-like quality run.
3. **Smoothing window** — SMA window sweep (0 %, 10 %, 20 %, 40 % of n).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.core import PerturbationOptions, perturbed_kmeans
from repro.crypto import FixedPointCodec, decrypt, encrypt, generate_keypair
from repro.datasets import courbogen_like_centroids, generate_cer
from repro.gossip import EESum, EpidemicSum, GossipEngine
from repro.privacy import Greedy


def test_ablation_eesum_vs_cleartext(benchmark):
    keypair = generate_keypair(256, s=2, rng=random.Random(0))
    codec = FixedPointCodec(keypair.public, fractional_bits=20)
    rng = random.Random(1)
    values = [float(i) - 8.0 for i in range(24)]
    initial_enc = {
        i: [encrypt(keypair.public, codec.encode(v), rng=rng)]
        for i, v in enumerate(values)
    }
    initial_clear = {i: np.array([v]) for i, v in enumerate(values)}

    def run_pair():
        engine = GossipEngine(24, seed=2)
        encrypted = EESum(keypair.public, initial_enc)
        cleartext = EpidemicSum(initial_clear)
        engine.setup(encrypted, cleartext)
        engine.run_cycles(12, encrypted, cleartext)
        return engine, encrypted, cleartext

    engine, encrypted, cleartext = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    diffs = []
    for node in engine.nodes:
        state = encrypted.state_of(node)
        clear = node.state["episum"]
        decoded = codec.decode(decrypt(keypair, state.ciphertexts[0]))
        diffs.append(abs(decoded / (2.0 ** state.count) - float(clear["sigma"][0])))
    rows = [
        f"nodes: 24, cycles: 12, max |encrypted − cleartext| = {max(diffs):.2e}",
        "(Alg. 2 delayed division is arithmetically exact, App. C.2.1)",
    ]
    record_report("ablation_eesum", "Ablation: EESum vs cleartext push–pull", rows)
    record_json(
        "ablation_eesum",
        {"nodes": 24, "cycles": 12, "key_bits": 256, "max_abs_diff": float(max(diffs))},
    )
    assert max(diffs) < 1e-3


@pytest.fixture(scope="module")
def quality_workload():
    data = generate_cer(n_series=15_000, population_scale=200, seed=9)
    init = courbogen_like_centroids(30, np.random.default_rng(9))
    return data, init


def test_ablation_sensitivity_modes(benchmark, quality_workload):
    data, init = quality_workload

    def run(mode):
        return perturbed_kmeans(
            data, init, Greedy(0.69), max_iterations=8,
            options=PerturbationOptions(sensitivity_mode=mode),
            rng=np.random.default_rng(10),
        )

    benchmark.pedantic(lambda: run("per-aggregate"), rounds=1, iterations=1)

    rows = [f"{'mode':<16}{'best PRE':>12}{'final PRE':>12}{'final #cent':>12}"]
    results = {}
    for mode in ("per-aggregate", "joint", "split"):
        result = run(mode)
        results[mode] = result
        rows.append(
            f"{mode:<16}{min(result.pre_inertia_curve):>12.1f}"
            f"{result.pre_inertia_curve[-1]:>12.1f}{result.n_centroids_curve[-1]:>12d}"
        )
    record_report(
        "ablation_sensitivity",
        "Ablation: (sum, count) sensitivity calibration",
        rows,
    )
    record_json(
        "ablation_sensitivity",
        {
            "population": data.population,
            "modes": {
                mode: {
                    "best_pre": float(min(r.pre_inertia_curve)),
                    "final_pre": float(r.pre_inertia_curve[-1]),
                    "final_centroids": int(r.n_centroids_curve[-1]),
                }
                for mode, r in results.items()
            },
        },
    )
    # Joint calibration adds count noise ∝ sum sensitivity → loses more
    # centroids than the per-aggregate reading.
    assert (
        results["joint"].n_centroids_curve[-1]
        <= results["per-aggregate"].n_centroids_curve[-1]
    )


def test_ablation_smoothing_window(benchmark, quality_workload):
    data, init = quality_workload

    def run(window):
        return perturbed_kmeans(
            data, init, Greedy(0.69), max_iterations=8,
            smoothing_window=window,
            rng=np.random.default_rng(11),
        )

    benchmark.pedantic(lambda: run(4), rounds=1, iterations=1)

    rows = [f"{'window':<10}{'mean PRE (it 5-8)':>20}"]
    tails = {}
    for window in (0, 2, 4, 8):
        result = run(window)
        tail = float(np.mean(result.pre_inertia_curve[4:]))
        tails[window] = tail
        rows.append(f"{window:<10}{tail:>20.1f}")
    rows.append("(Table 2 uses 20 % of n = window 4 for CER)")
    record_report(
        "ablation_smoothing",
        "Ablation: SMA window sweep (late-iteration inertia)",
        rows,
    )
    record_json(
        "ablation_smoothing",
        {
            "population": data.population,
            "late_inertia_by_window": {str(w): float(v) for w, v in tails.items()},
        },
    )
    assert min(tails.values()) <= tails[0]  # some smoothing never hurts late
