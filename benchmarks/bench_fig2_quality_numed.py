"""Figure 2(b)/(d) — NUMED: inertia and surviving-centroid evolution.

Paper setting: 1.2M tumor-growth series × 20 weekly measures in [0, 50],
k = 50, initial centroids sampled uniformly from the (synthetic) series.
The paper plots only the SMA variants here because smoothing barely moves
NUMED (equally-distributed clusters) — we regenerate both and *verify* that
observation in the shape assertions.  Every run goes through the unified
API (one ``RunSpec`` per variant, pinned dataset/init seeds).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_report, record_runs
from repro.api import Experiment, RunSpec, run_record
from repro.clustering import dataset_inertia, lloyd_kmeans

N_SERIES = 24_000
SCALE = 50
K = 50
ITERATIONS = 10
SEEDS = (0, 1, 2)

STRATEGIES = [("UF10", True), ("UF5", True), ("G", True), ("GF", True)]


def spec_for(label: str, smoothing: bool, seed: int) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"fig2bd-numed-{label}{'-sma' if smoothing else ''}",
        "plane": "quality",
        "seed": 2000 + seed,
        "strategy": label,
        "dataset": {"kind": "numed",
                    "params": {"n_series": N_SERIES, "population_scale": SCALE,
                               "seed": 2}},
        "init": {"kind": "sample", "params": {"seed": 2}},
        "params": {"k": K, "max_iterations": ITERATIONS, "epsilon": 0.69,
                   "uf_iterations": 5, "use_smoothing": smoothing, "theta": 0.0},
    })


@pytest.fixture(scope="module")
def numed_workload():
    context = Experiment.from_spec(spec_for("G", True, 0)).context
    return context.dataset, context.initial_centroids


def _average_runs(label, smoothing, records):
    inertia = np.zeros(ITERATIONS)
    centroids = np.zeros(ITERATIONS)
    for seed in SEEDS:
        spec = spec_for(label, smoothing, seed)
        started = time.perf_counter()
        result = Experiment.from_spec(spec).run()
        records.append(run_record(
            spec, result, timings={"wall_seconds": time.perf_counter() - started}
        ))
        pre = result.pre_inertia_curve
        cnt = result.n_centroids_curve
        inertia += np.array(pre + [pre[-1]] * (ITERATIONS - len(pre)))
        centroids += np.array(cnt + [cnt[-1]] * (ITERATIONS - len(cnt)))
    return inertia / len(SEEDS), centroids / len(SEEDS)


def test_fig2b_fig2d_numed_quality(benchmark, numed_workload):
    data, init = numed_workload

    one_iteration = spec_for("G", True, 0).to_dict()
    one_iteration["params"]["max_iterations"] = 1
    benchmark.pedantic(
        lambda: Experiment.from_spec(RunSpec.from_dict(one_iteration)).run(),
        rounds=3,
        iterations=1,
    )

    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)
    full = dataset_inertia(data.values)

    rows_inertia = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'dataset':<12}" + "".join(f"{full:>9.1f}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9.1f}" for v in baseline.inertia),
    ]
    rows_centroids = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'initial':<12}" + "".join(f"{K:>9d}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9d}" for v in baseline.n_centroids),
    ]
    records: list[dict] = []
    curves = {}
    for label, smoothing in STRATEGIES:
        inertia, centroids = _average_runs(label, smoothing, records)
        tag = f"{label}_SMA" if smoothing else label
        curves[tag] = {
            "pre_inertia": [float(v) for v in inertia],
            "n_centroids": [float(v) for v in centroids],
        }
        rows_inertia.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in inertia))
        rows_centroids.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in centroids))

    record_report(
        "fig2b_numed_inertia",
        "Fig 2(b) NUMED-like: pre-perturbation intra-cluster inertia per iteration",
        rows_inertia,
    )
    record_report(
        "fig2d_numed_centroids",
        "Fig 2(d) NUMED-like: number of centroids per iteration",
        rows_centroids,
    )

    record_runs(
        "fig2bd_numed_quality",
        records,
        extra={
            "population": data.population,
            "dataset_inertia": float(full),
            "baseline_inertia": [float(v) for v in baseline.inertia],
            "strategies": curves,
        },
    )
    # Paper observation: smoothing barely changes NUMED (uniform clusters).
    scratch: list[dict] = []  # assertion re-runs; don't double-record them
    with_sma, _ = _average_runs("G", True, scratch)
    without, _ = _average_runs("G", False, scratch)
    early_gap = abs(with_sma[:5] - without[:5]).mean()
    assert early_gap < 0.25 * with_sma[:5].mean()
