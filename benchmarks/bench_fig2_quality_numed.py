"""Figure 2(b)/(d) — NUMED: inertia and surviving-centroid evolution.

Paper setting: 1.2M tumor-growth series × 20 weekly measures in [0, 50],
k = 50, initial centroids sampled uniformly from the (synthetic) series.
The paper plots only the SMA variants here because smoothing barely moves
NUMED (equally-distributed clusters) — we regenerate both and *verify* that
observation in the shape assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.clustering import dataset_inertia, lloyd_kmeans, sample_init
from repro.core import PerturbationOptions, perturbed_kmeans
from repro.datasets import generate_numed
from repro.privacy import strategy_from_name

N_SERIES = 24_000
SCALE = 50
K = 50
ITERATIONS = 10
SEEDS = (0, 1, 2)

STRATEGIES = [("UF10", True), ("UF5", True), ("G", True), ("GF", True)]


@pytest.fixture(scope="module")
def numed_workload():
    data = generate_numed(n_series=N_SERIES, population_scale=SCALE, seed=2)
    init = sample_init(data.values, K, np.random.default_rng(2))
    return data, init


def _average_runs(data, init, label, smoothing):
    inertia = np.zeros(ITERATIONS)
    centroids = np.zeros(ITERATIONS)
    for seed in SEEDS:
        result = perturbed_kmeans(
            data, init, strategy_from_name(label, 0.69, uf_iterations=5),
            max_iterations=ITERATIONS,
            options=PerturbationOptions(smoothing=smoothing),
            rng=np.random.default_rng(2000 + seed),
        )
        pre = result.pre_inertia_curve
        cnt = result.n_centroids_curve
        inertia += np.array(pre + [pre[-1]] * (ITERATIONS - len(pre)))
        centroids += np.array(cnt + [cnt[-1]] * (ITERATIONS - len(cnt)))
    return inertia / len(SEEDS), centroids / len(SEEDS)


def test_fig2b_fig2d_numed_quality(benchmark, numed_workload):
    data, init = numed_workload

    benchmark.pedantic(
        lambda: perturbed_kmeans(
            data, init, strategy_from_name("G", 0.69), max_iterations=1,
            rng=np.random.default_rng(0),
        ),
        rounds=3,
        iterations=1,
    )

    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)
    full = dataset_inertia(data.values)

    rows_inertia = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'dataset':<12}" + "".join(f"{full:>9.1f}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9.1f}" for v in baseline.inertia),
    ]
    rows_centroids = [
        f"{'series':<12}" + "".join(f"{i:>9d}" for i in range(1, ITERATIONS + 1)),
        f"{'initial':<12}" + "".join(f"{K:>9d}" for _ in range(ITERATIONS)),
        f"{'no-perturb':<12}" + "".join(f"{v:>9d}" for v in baseline.n_centroids),
    ]
    curves = {}
    for label, smoothing in STRATEGIES:
        inertia, centroids = _average_runs(data, init, label, smoothing)
        tag = f"{label}_SMA" if smoothing else label
        curves[tag] = {
            "pre_inertia": [float(v) for v in inertia],
            "n_centroids": [float(v) for v in centroids],
        }
        rows_inertia.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in inertia))
        rows_centroids.append(f"{tag:<12}" + "".join(f"{v:>9.1f}" for v in centroids))

    record_report(
        "fig2b_numed_inertia",
        "Fig 2(b) NUMED-like: pre-perturbation intra-cluster inertia per iteration",
        rows_inertia,
    )
    record_report(
        "fig2d_numed_centroids",
        "Fig 2(d) NUMED-like: number of centroids per iteration",
        rows_centroids,
    )

    record_json(
        "fig2bd_numed_quality",
        {
            "population": data.population,
            "dataset_inertia": float(full),
            "baseline_inertia": [float(v) for v in baseline.inertia],
            "strategies": curves,
        },
    )
    # Paper observation: smoothing barely changes NUMED (uniform clusters).
    with_sma, _ = _average_runs(data, init, "G", True)
    without, _ = _average_runs(data, init, "G", False)
    early_gap = abs(with_sma[:5] - without[:5]).mean()
    assert early_gap < 0.25 * with_sma[:5].mean()
