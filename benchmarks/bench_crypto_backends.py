"""Bigint backend comparison — python vs gmpy2 across 1024/2048-bit keys.

The pluggable arithmetic kernel (:mod:`repro.crypto.bigint`) claims two
things: the gmpy2 fast path makes the computation-step crypto several
times faster, and backend choice never changes a single bit of output.
This bench measures the first and asserts the second, emitting
``BENCH_crypto_backends.json`` (both under ``out/`` and mirrored at the
repo root) so the python↔gmpy2 gap is tracked across PRs.

Workload per (key size, backend): the Fig. 5(a) computation-step shape —
encrypt one set of means, homomorphically add two sets, threshold-decrypt
the result (τ partial decryptions + Straus-combined Lagrange
recombination per ciphertext) — via :func:`measure_crypto_costs`, which
runs the exact protocol code paths.

gmpy2 is a soft dependency: when it is absent (the default CI leg), the
python path is still measured and the record says
``"gmpy2": null`` / ``"speedup": null`` — the file stays emitted and
diffable either way.
"""

from __future__ import annotations

import random

from conftest import record_json, record_report
from repro.analysis import measure_crypto_costs
from repro.crypto import bigint, encrypt, generate_threshold_keypair
from repro.crypto.threshold import combine_partial_decryptions, partial_decrypt

#: Per-key-size workload: k means × (series_length + 1) ciphertexts.  Sized
#: so the pure-python leg stays tens of seconds (2048-bit pure-python
#: modexps cost ~100 ms each).
WORKLOADS = {
    1024: {"k": 6, "series_length": 9, "repetitions": 1},
    2048: {"k": 3, "series_length": 5, "repetitions": 1},
}

OPS = ("encrypt", "add", "decrypt")


def _keypair(bits: int):
    return generate_threshold_keypair(
        bits, n_shares=5, threshold=3, s=1, rng=random.Random(0)
    )


def _measure(keypair, backend: str, workload: dict) -> dict:
    with bigint.use_backend(backend):
        costs = measure_crypto_costs(keypair, rng=random.Random(7), **workload)
    return {op: float(costs[op].average) for op in OPS}


def _identity_probe(keypair, backend: str) -> tuple[list[int], list[int], int]:
    """Ciphertexts, partial decryptions and combined plaintext, all seeded —
    compared across backends bit for bit."""
    with bigint.use_backend(backend):
        ciphertexts = [
            encrypt(keypair.public, 1_000_003 * (i + 1), rng=random.Random(100 + i))
            for i in range(4)
        ]
        partials = {
            share.index: partial_decrypt(keypair.context, share, ciphertexts[0])
            for share in keypair.shares[:3]
        }
        combined = combine_partial_decryptions(keypair.context, partials)
    return ciphertexts, sorted(partials.values()), combined


def test_crypto_backend_comparison():
    backends = bigint.available_backends()
    results: dict[str, dict] = {}
    rows: list[str] = [
        f"{'key bits':<10}{'backend':<10}"
        + "".join(f"{op + ' (s)':>14}" for op in OPS)
        + f"{'total':>12}"
    ]

    for bits, workload in WORKLOADS.items():
        keypair = _keypair(bits)
        per_backend: dict[str, dict | None] = {"python": None, "gmpy2": None}
        for backend in backends:
            seconds = _measure(keypair, backend, workload)
            seconds["computation_step"] = sum(seconds[op] for op in OPS)
            per_backend[backend] = seconds
            rows.append(
                f"{bits:<10}{backend:<10}"
                + "".join(f"{seconds[op]:>14.3f}" for op in OPS)
                + f"{seconds['computation_step']:>12.3f}"
            )

        speedup = None
        if per_backend["gmpy2"] is not None:
            speedup = {
                op: per_backend["python"][op] / max(per_backend["gmpy2"][op], 1e-12)
                for op in (*OPS, "computation_step")
            }
            rows.append(
                f"{bits:<10}{'speedup':<10}"
                + "".join(f"{speedup[op]:>14.1f}" for op in OPS)
                + f"{speedup['computation_step']:>12.1f}"
            )
            # The tentpole acceptance: ≥3× on the computation step with
            # gmpy2 at 1024-bit (2048-bit gains are larger still).
            if bits == 1024:
                assert speedup["computation_step"] >= 3.0, speedup

        identical = True
        probes = [_identity_probe(keypair, backend) for backend in backends]
        identical = all(probe == probes[0] for probe in probes)
        assert identical, "backend choice changed a crypto output bit"

        results[str(bits)] = {
            "workload": dict(workload),
            "ciphertexts": workload["k"] * (workload["series_length"] + 1),
            "seconds": per_backend,
            "speedup": speedup,
            "bit_identical_across_backends": identical,
        }

    rows.append(
        "backends available: "
        + ", ".join(backends)
        + ("" if "gmpy2" in backends else "  (gmpy2 absent: soft dependency)")
    )
    record_report(
        "crypto_backends",
        "Bigint kernel: python vs gmpy2 computation-step costs",
        rows,
    )
    record_json(
        "crypto_backends",
        {
            "backends_available": list(backends),
            "ops": list(OPS),
            "key_sizes": results,
        },
    )
