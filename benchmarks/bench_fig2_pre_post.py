"""Figure 2(e)/(f) — lowest pre-perturbation inertia (PRE) per strategy and
the corresponding post-perturbation inertia without re-assignment (POST),
aberrant centroids removed, for both workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import record_json, record_report
from repro.clustering import lloyd_kmeans, sample_init
from repro.core import perturbed_kmeans
from repro.datasets import courbogen_like_centroids, generate_cer, generate_numed
from repro.privacy import strategy_from_name

ITERATIONS = 10
LABELS = ["UF10", "UF5", "G", "GF"]


def _pre_post_rows(data, init, tag):
    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)
    rows = [f"{'strategy':<12}{'PRE':>10}{'POST':>10}"]
    rows.append(f"{'no-perturb':<12}{min(baseline.inertia):>10.1f}{min(baseline.inertia):>10.1f}")
    pre_values = {}
    for label in LABELS:
        result = perturbed_kmeans(
            data, init, strategy_from_name(label, 0.69, uf_iterations=5),
            max_iterations=ITERATIONS, rng=np.random.default_rng(42),
        )
        best = result.best_iteration()
        rows.append(f"{label + '_SMA':<12}{best.pre_inertia:>10.1f}{best.post_inertia:>10.1f}")
        pre_values[label] = (best.pre_inertia, best.post_inertia)
    return rows, min(baseline.inertia), pre_values


@pytest.mark.parametrize(
    "name, figure",
    [("cer", "Fig 2(e) CER-like"), ("numed", "Fig 2(f) NUMED-like")],
)
def test_fig2ef_pre_post(benchmark, name, figure):
    if name == "cer":
        data = generate_cer(n_series=30_000, population_scale=100, seed=1)
        init = courbogen_like_centroids(50, np.random.default_rng(1))
    else:
        data = generate_numed(n_series=24_000, population_scale=50, seed=2)
        init = sample_init(data.values, 50, np.random.default_rng(2))

    rows, result = [], {}

    def run():
        nonlocal rows, result
        rows, baseline_best, result = _pre_post_rows(data, init, name)
        return baseline_best

    baseline_best = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        f"fig2ef_{name}_pre_post",
        f"{figure}: lowest PRE inertia and corresponding POST inertia",
        rows,
    )

    record_json(
        f"fig2ef_{name}_pre_post",
        {
            "workload": name,
            "population": data.population,
            "baseline_best_inertia": float(baseline_best),
            "strategies": {
                label: {"pre": float(pre), "post": float(post)}
                for label, (pre, post) in result.items()
            },
        },
    )
    for label, (pre, post) in result.items():
        assert post >= pre * 0.99  # POST never beats PRE (noise only hurts)
        assert pre < baseline_best * 3  # the best iteration stays comparable
