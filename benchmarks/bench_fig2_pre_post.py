"""Figure 2(e)/(f) — lowest pre-perturbation inertia (PRE) per strategy and
the corresponding post-perturbation inertia without re-assignment (POST),
aberrant centroids removed, for both workloads.  Runs go through the
unified API (one ``RunSpec`` per strategy/workload pair).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_report, record_runs
from repro.api import Experiment, RunSpec, run_record
from repro.clustering import lloyd_kmeans

ITERATIONS = 10
LABELS = ["UF10", "UF5", "G", "GF"]

DATASETS = {
    "cer": {"kind": "cer",
            "params": {"n_series": 30_000, "population_scale": 100, "seed": 1}},
    "numed": {"kind": "numed",
              "params": {"n_series": 24_000, "population_scale": 50, "seed": 2}},
}
INITS = {
    "cer": {"kind": "courbogen", "params": {"seed": 1}},
    "numed": {"kind": "sample", "params": {"seed": 2}},
}


def spec_for(workload: str, label: str) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"fig2ef-{workload}-{label}",
        "plane": "quality",
        "seed": 42,
        "strategy": label,
        "dataset": DATASETS[workload],
        "init": INITS[workload],
        "params": {"k": 50, "max_iterations": ITERATIONS, "epsilon": 0.69,
                   "uf_iterations": 5, "theta": 0.0},
    })


def _pre_post_rows(workload, records):
    context = Experiment.from_spec(spec_for(workload, "G")).context
    data, init = context.dataset, context.initial_centroids
    baseline = lloyd_kmeans(data.values, init, max_iterations=ITERATIONS, threshold=0.0)
    rows = [f"{'strategy':<12}{'PRE':>10}{'POST':>10}"]
    rows.append(f"{'no-perturb':<12}{min(baseline.inertia):>10.1f}{min(baseline.inertia):>10.1f}")
    pre_values = {}
    for label in LABELS:
        spec = spec_for(workload, label)
        started = time.perf_counter()
        result = Experiment.from_spec(spec).run()
        records.append(run_record(
            spec, result, timings={"wall_seconds": time.perf_counter() - started}
        ))
        best = result.best_iteration()
        rows.append(f"{label + '_SMA':<12}{best.pre_inertia:>10.1f}{best.post_inertia:>10.1f}")
        pre_values[label] = (best.pre_inertia, best.post_inertia)
    return rows, min(baseline.inertia), pre_values, data


@pytest.mark.parametrize(
    "name, figure",
    [("cer", "Fig 2(e) CER-like"), ("numed", "Fig 2(f) NUMED-like")],
)
def test_fig2ef_pre_post(benchmark, name, figure):
    records: list[dict] = []
    rows, result = [], {}

    def run():
        nonlocal rows, result
        records.clear()
        rows, baseline_best, result, data = _pre_post_rows(name, records)
        return baseline_best, data

    (baseline_best, data) = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        f"fig2ef_{name}_pre_post",
        f"{figure}: lowest PRE inertia and corresponding POST inertia",
        rows,
    )

    record_runs(
        f"fig2ef_{name}_pre_post",
        records,
        extra={
            "workload": name,
            "population": data.population,
            "baseline_best_inertia": float(baseline_best),
            "strategies": {
                label: {"pre": float(pre), "post": float(post)}
                for label, (pre, post) in result.items()
            },
        },
    )
    for label, (pre, post) in result.items():
        assert post >= pre * 0.99  # POST never beats PRE (noise only hurts)
        assert pre < baseline_best * 3  # the best iteration stays comparable
