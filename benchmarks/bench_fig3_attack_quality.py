"""Quality under attack — the Fig. 3 axis extended to hostile deployments.

The paper studies robustness to *benign* faults (Fig. 3: uniform churn);
this bench runs the same quality workload under the fault plane's hostile
deployments — four fault classes, each at a mild and a severe intensity —
and records what the attacks cost in clustering quality and what the
Sec. 4.4 countermeasures detect:

* the **vectorized grid** (CER-like workload, 6 000 devices, k = 20) is
  submitted as one batch to the experiment service — the attack-grid
  sweep pattern ``RunSpec.faults`` exists for — covering ``network``,
  ``byzantine`` (tamper) and ``churn-storm`` at two intensities each,
  plus the fault-free baseline;
* the **collusion leg** runs on the object plane (24 devices, genuine
  Damgård–Jurik threshold keys) so the coalition audit is *empirical*:
  mild is c = τ − 1 (decryption attempt must fail), severe is c = τ
  (must succeed), each verdict checked against the App. B.3 analysis.
"""

from __future__ import annotations

from conftest import record_report, record_runs
from repro.api import Experiment, FaultDetected, RunAborted, RunSpec, run_record
from repro.core.results import ClusteringResult
from repro.service import JobStore, read_events, run_batch

ITERATIONS = 6

#: The vectorized attack grid: fault class → (intensity → faults block).
GRID = {
    "network": {
        "mild": [{"kind": "network", "params": {"loss": 0.1}}],
        "severe": [{"kind": "network",
                    "params": {"loss": 0.4, "duplicate": 0.1,
                               "delay": 0.2, "max_delay": 3}}],
    },
    "byzantine": {
        "mild": [{"kind": "byzantine",
                  "params": {"fraction": 0.02, "mode": "tamper",
                             "scale": 0.2}}],
        "severe": [{"kind": "byzantine",
                    "params": {"fraction": 0.2, "mode": "tamper",
                               "scale": 1.0}}],
    },
    "churn-storm": {
        "mild": [{"kind": "churn-storm",
                  "params": {"rate": 0.05, "magnitude": 0.1,
                             "duration": 3}}],
        "severe": [{"kind": "churn-storm",
                    "params": {"rate": 0.25, "magnitude": 0.4,
                               "duration": 6}}],
    },
}

#: The object-plane collusion leg: intensity → coalition size, with τ = 3.
COLLUSION = {"mild": 2, "severe": 3}


def grid_spec(name: str, faults: list) -> RunSpec:
    d = {
        "name": f"attack-{name}",
        "plane": "vectorized",
        "seed": 37,
        "strategy": f"UF{ITERATIONS}",
        "dataset": {"kind": "cer",
                    "params": {"n_series": 6_000, "population_scale": 50}},
        "init": {"kind": "courbogen"},
        "params": {"k": 20, "max_iterations": ITERATIONS, "epsilon": 0.69,
                   "theta": 0.0},
    }
    if faults:
        d["faults"] = faults
    return RunSpec.from_dict(d)


def collusion_spec(intensity: str, collusions: int) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"attack-collusion-{intensity}",
        "plane": "object",
        "seed": 37,
        "strategy": "UF2",
        "dataset": {"kind": "points2d",
                    "params": {"n_clusters": 4, "points_per_cluster": 6,
                               "duplications": 1}},
        "init": {"kind": "sample"},
        "params": {"k": 4, "max_iterations": 2, "exchanges": 12,
                   "tau_fraction": 0.13, "epsilon": 2000.0, "key_bits": 256,
                   "expansion_s": 2, "theta": 0.0},
        "faults": [{"kind": "collusion",
                    "params": {"collusions": collusions}}],
    })


def test_attack_quality_grid(benchmark, tmp_path):
    specs = [grid_spec("baseline", [])]
    labels = ["baseline"]
    for fault_class, intensities in GRID.items():
        for intensity, faults in intensities.items():
            specs.append(grid_spec(f"{fault_class}-{intensity}", faults))
            labels.append(f"{fault_class}-{intensity}")

    benchmark.pedantic(
        lambda: Experiment.from_spec(specs[1]).run(), rounds=1, iterations=1
    )

    # The grid goes through the experiment service: one batch, drained by
    # the process-per-job scheduler; detections are read back from each
    # job's NDJSON event bus.
    root = tmp_path / "service-root"
    records = run_batch(specs, root, max_workers=2)
    store = JobStore(root)
    events_by_name = {}
    for job in store.jobs():
        events_by_name[job.spec["name"]] = read_events(
            store.events_path(job.job_id)
        )

    summary = {}
    for label, record in zip(labels, records):
        result = ClusteringResult.from_dict(record["result"])
        events = events_by_name[f"attack-{label}"]
        detections = [e for e in events if e["type"] == "fault_detected"]
        summary[label] = {
            "pre_inertia_curve": [float(v) for v in result.pre_inertia_curve],
            "final_pre_inertia": float(result.pre_inertia_curve[-1]),
            "iterations": len(result.history),
            "detections": len(detections),
            "detectors": sorted({e["detector"] for e in detections}),
            "aborted": any(e["type"] == "run_aborted" for e in events),
        }

    # ---- the collusion leg (object plane, genuine threshold keys) ------
    collusion_runs = []
    for intensity, collusions in COLLUSION.items():
        spec = collusion_spec(intensity, collusions)
        events = list(Experiment.from_spec(spec).run_iter())
        audit = next(
            e for e in events
            if isinstance(e, FaultDetected) and e.detector == "coalition-audit"
        )
        aborted = any(isinstance(e, RunAborted) for e in events)
        result = events[-1].result
        collusion_runs.append(run_record(spec, result))
        summary[f"collusion-{intensity}"] = {
            "final_pre_inertia": float(result.pre_inertia_curve[-1]),
            "iterations": len(result.history),
            "detections": 1,
            "detectors": ["coalition-audit"],
            "aborted": aborted,
            "audit": dict(audit.detail),
        }

    baseline = summary["baseline"]["final_pre_inertia"]
    rows = [f"{'deployment':<22}{'final pre-inertia':>18}{'vs base':>9}"
            f"{'iters':>7}{'detections':>12}  detectors"]
    for label, entry in summary.items():
        # The collusion leg is a different (object-plane) workload; its
        # inertia is not comparable against the cer-grid baseline.
        if label.startswith("collusion"):
            ratio = "      -"
        else:
            ratio = f"{entry['final_pre_inertia'] / baseline:>9.2f}" \
                if baseline else f"{1.0:>9.2f}"
        flag = " ABORTED" if entry["aborted"] else ""
        rows.append(
            f"{label:<22}{entry['final_pre_inertia']:>18.1f}{ratio:>9}"
            f"{entry['iterations']:>7d}{entry['detections']:>12d}  "
            f"{','.join(entry['detectors']) or '-'}{flag}"
        )
    record_report(
        "fig3_attack_quality",
        "Quality under attack: 4 fault classes x 2 intensities vs baseline",
        rows,
    )
    record_runs(
        "fig3_attack_quality",
        records + collusion_runs,
        extra={"summary": summary},
    )

    # Every deployment produced a full trace (no attack crashed the run).
    for label, entry in summary.items():
        assert entry["iterations"] >= 1, label

    # Attacks were *live*: the severe byzantine grid tripped the
    # cross-check, storms were observed, and the network rows raised no
    # false attack signals.
    assert "decryption-cross-check" in summary["byzantine-severe"]["detectors"]
    assert summary["churn-storm-mild"]["detections"] >= 1
    assert summary["network-mild"]["detections"] == 0
    assert summary["network-severe"]["detections"] == 0

    # The coalition audits validate App. B.3 empirically: below τ the
    # attempted decryption fails, at τ it succeeds — and neither verdict
    # contradicts the analysis (a mismatch would have aborted the run).
    mild, severe = summary["collusion-mild"], summary["collusion-severe"]
    assert mild["audit"]["empirical_decryption"] is False
    assert mild["audit"]["key_compromised"] is False
    assert severe["audit"]["empirical_decryption"] is True
    assert severe["audit"]["key_compromised"] is True
    assert not mild["aborted"] and not severe["aborted"]

    # Mild attacks cost bounded quality: within 2x of the baseline's
    # final pre-perturbation inertia (severe rows are recorded, not
    # bounded — that *is* the measurement).
    for label in ("network-mild", "byzantine-mild", "churn-storm-mild"):
        assert summary[label]["final_pre_inertia"] <= 2.0 * baseline, label
