"""Registries and the ``@register_*`` decorator extension path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    DATASETS,
    INITIALIZERS,
    PLANES,
    STRATEGIES,
    Registry,
    register_dataset,
    resolve_strategy,
)
from repro.core import ChiaroscuroParams
from repro.datasets import TimeSeriesSet
from repro.privacy import Greedy, GreedyFloor, UniformFast


class TestRegistry:
    def test_builtin_keys_registered(self):
        assert DATASETS.keys() == ["cer", "numed", "points2d", "timeseries"]
        assert set(PLANES.keys()) == {
            "quality",
            "object",
            "vectorized",
            "vectorized-crypto",
        }
        assert set(STRATEGIES.keys()) == {"G", "GF", "UF"}
        assert {"courbogen", "sample", "matrix"} <= set(INITIALIZERS.keys())

    def test_unknown_key_lists_registered(self):
        with pytest.raises(KeyError, match="cer.*numed"):
            DATASETS.get("nope")

    def test_duplicate_key_rejected(self):
        registry = Registry("thing")
        registry.register("a", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", object())

    def test_same_object_reregistration_is_idempotent(self):
        registry = Registry("thing")
        marker = object()
        registry.register("a", marker)
        registry.register("a", marker)  # no error
        assert registry.get("a") is marker

    def test_invalid_key_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ValueError, match="invalid"):
            registry.register("white space", object())

    def test_decorator_returns_target_and_registers(self):
        @register_dataset("registry-test-constant")
        def build(seed, **params):
            return TimeSeriesSet(np.zeros((4, 3)) + 1.0, 0.0, 2.0)

        try:
            assert "registry-test-constant" in DATASETS
            assert DATASETS.get("registry-test-constant") is build
            assert DATASETS.get("registry-test-constant")(seed=0).t == 4
        finally:
            DATASETS._items.pop("registry-test-constant")


class TestStrategyResolution:
    PARAMS = ChiaroscuroParams(epsilon=0.8, floor_size=3, uf_iterations=7)

    def test_greedy(self):
        strategy = resolve_strategy("G", self.PARAMS)
        assert isinstance(strategy, Greedy)
        assert strategy.epsilon == 0.8

    def test_greedy_floor_reads_floor_size(self):
        strategy = resolve_strategy("GF", self.PARAMS)
        assert isinstance(strategy, GreedyFloor)
        assert strategy.floor_size == 3

    def test_uf_default_bound_from_params(self):
        strategy = resolve_strategy("UF", self.PARAMS)
        assert isinstance(strategy, UniformFast)
        assert strategy.n_iterations == 7

    def test_uf_parameterized_label(self):
        assert resolve_strategy("UF10", self.PARAMS).n_iterations == 10
        assert resolve_strategy("uf3", self.PARAMS).n_iterations == 3

    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="registered"):
            resolve_strategy("Z", self.PARAMS)
