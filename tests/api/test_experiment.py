"""The ``Experiment`` facade: plane dispatch, streaming events, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Experiment,
    IterationCompleted,
    RunCompleted,
    RunSpec,
    RunStarted,
    run_environment,
    run_record,
)
from repro.core import ChiaroscuroRun, ClusteringResult, perturbed_kmeans
from repro.core.perturbed_kmeans import PerturbationOptions


def quality_spec(**overrides) -> RunSpec:
    d = {
        "plane": "quality",
        "seed": 9,
        "strategy": "UF3",
        "dataset": {"kind": "cer",
                    "params": {"n_series": 300, "population_scale": 100}},
        "init": {"kind": "courbogen"},
        "params": {"k": 4, "max_iterations": 5, "epsilon": 0.69, "theta": 0.0},
    }
    d.update(overrides)
    return RunSpec.from_dict(d)


def toy_spec_dict(toy_dataset, toy_initial_centroids) -> dict:
    """One spec, three planes: the toy workload carried inline."""
    return {
        "name": "three-planes",
        "seed": 3,
        "strategy": "UF2",
        "dataset": {"kind": "timeseries",
                    "params": {"values": toy_dataset.values.tolist(),
                               "dmin": 0.0, "dmax": 60.0, "name": "toy"}},
        "init": {"kind": "matrix",
                 "params": {"values": toy_initial_centroids.tolist()}},
        "params": {"k": 3, "max_iterations": 2, "exchanges": 12,
                   "tau_fraction": 0.13, "epsilon": 2000.0, "key_bits": 256,
                   "expansion_s": 2, "use_smoothing": False, "theta": 0.0},
    }


class TestFacadeEquivalence:
    def test_quality_plane_matches_direct_call(self):
        """The facade adds wiring, not semantics: same seeds → same trace."""
        spec = quality_spec()
        via_api = Experiment.from_spec(spec).run()

        context = Experiment.from_spec(spec).context
        direct = perturbed_kmeans(
            context.dataset,
            context.initial_centroids,
            context.strategy,
            max_iterations=spec.params.max_iterations,
            theta=spec.params.theta,
            smoothing_window=spec.params.smoothing_window(context.dataset.n),
            options=PerturbationOptions(smoothing=spec.params.use_smoothing),
            rng=np.random.default_rng(spec.seed + 1),
        )
        assert via_api.iterations == direct.iterations == 3  # UF3 bound
        assert np.array_equal(via_api.centroids, direct.centroids)
        for a, b in zip(via_api.history, direct.history):
            assert np.array_equal(a.centroids, b.centroids)
            assert a.pre_inertia == b.pre_inertia

    def test_vectorized_plane_matches_direct_run(self):
        spec = quality_spec(plane="vectorized", seed=5)
        via_api = Experiment.from_spec(spec).run()

        context = Experiment.from_spec(spec).context
        run = ChiaroscuroRun(
            context.dataset, context.strategy, spec.params,
            context.initial_centroids, seed=spec.seed,
        )
        direct, _ = run.run()
        assert via_api.iterations == direct.iterations
        assert np.array_equal(via_api.centroids, direct.centroids)


class TestOneSpecThreePlanes:
    def test_same_spec_drives_all_three_planes(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        base = toy_spec_dict(toy_dataset, toy_initial_centroids)
        results = {}
        for plane in ("quality", "object", "vectorized"):
            spec = RunSpec.from_dict({**base, "plane": plane})
            # the keypair shortcut only matters on the object plane; the
            # others ignore it — the *spec* is identical modulo "plane"
            experiment = Experiment.from_spec(spec, keypair=threshold_keypair_s2)
            results[plane] = experiment.run()

        for plane, result in results.items():
            assert isinstance(result, ClusteringResult), plane
            assert result.iterations >= 1, plane
            assert result.history[0].n_centroids >= 1, plane
        # ε = 2000 on 24 well-separated devices: every plane recovers the
        # three clusters' means to within a loose tolerance of each other.
        for plane in ("object", "vectorized"):
            assert results[plane].centroids.shape == (3, 6), plane


class TestEvents:
    def test_event_stream_shape(self):
        events = list(Experiment.from_spec(quality_spec()).run_iter())
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunCompleted)
        iteration_events = [e for e in events if isinstance(e, IterationCompleted)]
        assert [e.iteration for e in iteration_events] == [1, 2, 3]
        assert events[0].label == "UF3_SMA"
        assert events[0].population == 300 * 100
        assert events[-1].reason == "budget"  # UF3 bound < max_iterations 5

    def test_iteration_events_carry_budget_accounting(self):
        events = [
            e for e in Experiment.from_spec(quality_spec()).run_iter()
            if isinstance(e, IterationCompleted)
        ]
        spent = [e.epsilon_spent_total for e in events]
        assert spent == sorted(spent)
        assert spent[-1] == pytest.approx(0.69)
        assert events[-1].epsilon_remaining == pytest.approx(0.0)
        assert all(e.active_series == 300 for e in events)  # no churn

    def test_run_started_surfaces_crypto_environment(self):
        events = list(Experiment.from_spec(quality_spec()).run_iter())
        started = events[0]
        assert started.crypto_backend == "serial"
        # Resolved, never "auto" — records which arithmetic actually ran.
        assert started.bigint_backend in ("python", "gmpy2")
        assert started.key_bits == 0  # quality plane builds no ciphertexts

    def test_run_record_carries_environment_block(self):
        spec = quality_spec()
        result = Experiment.from_spec(spec).run()
        record = run_record(spec, result)
        assert record["environment"] == run_environment(spec)
        assert record["environment"]["bigint_backend"] in ("python", "gmpy2")
        assert record["environment"]["crypto_backend"] == "serial"
        assert record["environment"]["key_bits"] == 0

    def test_object_plane_environment_reports_key_bits(self):
        spec = quality_spec(plane="object",
                            params={"k": 4, "max_iterations": 5,
                                    "epsilon": 0.69, "theta": 0.0,
                                    "key_bits": 256,
                                    "protocol_plane": "object"})
        assert run_environment(spec)["key_bits"] == 256

    def test_early_stop_by_breaking(self):
        seen = []
        for event in Experiment.from_spec(quality_spec()).run_iter():
            if isinstance(event, IterationCompleted):
                seen.append(event.iteration)
                if event.iteration == 1:
                    break  # consumer stops; generator cleanup must not raise
        assert seen == [1]

    def test_vectorized_events_carry_gossip_counters(self):
        spec = quality_spec(plane="vectorized")
        events = [
            e for e in Experiment.from_spec(spec).run_iter()
            if isinstance(e, IterationCompleted)
        ]
        assert events
        assert all(e.exchanges_per_node > spec.params.exchanges for e in events)
        assert all(e.agreement is not None for e in events)

    def test_cycle_hook_observes_gossip_progress(self):
        spec = quality_spec(plane="vectorized")
        cycles = []
        Experiment.from_spec(spec).run(cycle_hook=lambda i, n: cycles.append((i, n)))
        assert len(cycles) > 2 * spec.params.exchanges  # EESum + dis + collection
        assert all(n <= 300 for _, n in cycles)

    def test_run_reason_converged(self):
        spec = quality_spec(
            strategy="G",
            params={"k": 4, "max_iterations": 8, "epsilon": 1e6, "theta": 1e3},
        )
        events = list(Experiment.from_spec(spec).run_iter())
        assert events[-1].reason == "converged"
        assert events[-1].result.converged


class TestOptionsForwarding:
    def test_quality_options_reach_perturbation(self):
        base = quality_spec()
        joint = quality_spec(options={"sensitivity_mode": "joint"})
        a = Experiment.from_spec(base).run()
        b = Experiment.from_spec(joint).run()
        # same seed, different calibration → different noise draws
        assert not np.array_equal(a.centroids, b.centroids)

    def test_unknown_quality_option_rejected(self):
        spec = quality_spec(options={"sensitivity_mode": "nope"})
        with pytest.raises(ValueError, match="sensitivity_mode"):
            Experiment.from_spec(spec).run()
