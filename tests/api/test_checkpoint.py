"""Checkpoint/resume: kill-and-resume must be bit-identical to an
uninterrupted seeded run (the acceptance criterion of the checkpoint
subsystem), on both checkpointable planes."""

from __future__ import annotations

import concurrent.futures
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import (
    Checkpoint,
    CheckpointSaved,
    CheckpointStore,
    Experiment,
    RunCompleted,
    RunSpec,
)


def spec_for(plane: str = "quality", seed: int = 13) -> RunSpec:
    return RunSpec.from_dict({
        "plane": plane,
        "seed": seed,
        "strategy": "G",
        "dataset": {"kind": "cer",
                    "params": {"n_series": 250, "population_scale": 100}},
        "init": {"kind": "courbogen"},
        # ε = 50: generous enough that clusters survive all 5 iterations on
        # both planes at this 250-node test scale (bit-identity is about
        # RNG-stream equality, not the paper's privacy calibration)
        "params": {"k": 4, "max_iterations": 5, "epsilon": 50.0,
                   "exchanges": 10, "theta": 0.0},
    })


def run_interrupted(spec, directory, kill_after: int):
    """Drive run_iter and abandon it after ``kill_after`` checkpoints."""
    saved = 0
    for event in Experiment.from_spec(spec).run_iter(checkpoint_dir=directory):
        if isinstance(event, CheckpointSaved):
            saved += 1
            if saved >= kill_after:
                return  # the "kill": generator is simply dropped


def _save_many(args):
    """Worker for the concurrent-save test (module-level: picklable)."""
    directory, worker = args
    store = CheckpointStore(directory)
    for iteration in range(1, 9):
        store.save(Checkpoint(
            spec={"worker": worker}, plane="quality", iteration=iteration,
            centroids=[[float(worker)]], epsilon_spent=0.0, rng_state={},
        ))
    return worker


def assert_bit_identical(a, b):
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert np.array_equal(a.centroids, b.centroids)
    for x, y in zip(a.history, b.history):
        assert x.iteration == y.iteration
        assert x.pre_inertia == y.pre_inertia
        assert x.post_inertia == y.post_inertia
        assert x.n_centroids == y.n_centroids
        assert x.epsilon_spent == y.epsilon_spent
        assert np.array_equal(x.centroids, y.centroids)


class TestKillAndResume:
    @pytest.mark.parametrize("plane", ["quality", "vectorized"])
    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_resume_bit_identical(self, tmp_path, plane, kill_after):
        spec = spec_for(plane)
        uninterrupted = Experiment.from_spec(spec).run()
        assert uninterrupted.iterations == 5

        directory = str(tmp_path / f"{plane}-{kill_after}")
        run_interrupted(spec, directory, kill_after)
        assert len(CheckpointStore(directory).iterations()) == kill_after

        resumed = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert_bit_identical(resumed, uninterrupted)

    def test_resume_with_churn_bit_identical(self, tmp_path):
        spec = spec_for("quality").replace(churn=0.25)
        uninterrupted = Experiment.from_spec(spec).run()
        directory = str(tmp_path / "churn")
        run_interrupted(spec, directory, 2)
        resumed = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert_bit_identical(resumed, uninterrupted)

    def test_resume_past_completion_is_a_no_op(self, tmp_path):
        spec = spec_for("quality")
        directory = str(tmp_path / "done")
        full = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        again = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert_bit_identical(again, full)

    def test_resume_after_convergence_does_not_iterate_further(self, tmp_path):
        spec = spec_for("quality").replace(
            params=spec_for("quality").params.__class__(
                k=4, max_iterations=8, epsilon=1e6, theta=1e3, exchanges=10
            )
        )
        directory = str(tmp_path / "conv")
        full = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert full.converged
        resumed = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert_bit_identical(resumed, full)


class TestCheckpointHygiene:
    def test_checkpoint_json_round_trip(self, tmp_path):
        spec = spec_for("quality")
        directory = str(tmp_path / "rt")
        run_interrupted(spec, directory, 2)
        store = CheckpointStore(directory)
        checkpoint = store.latest()
        assert checkpoint.iteration == 2
        assert checkpoint.spec == spec.to_dict()
        again = Checkpoint.from_json(checkpoint.to_json())
        assert again == checkpoint

    def test_spec_mismatch_refuses_resume(self, tmp_path):
        directory = str(tmp_path / "mismatch")
        run_interrupted(spec_for("quality", seed=13), directory, 1)
        other = spec_for("quality", seed=14)
        with pytest.raises(ValueError, match="different spec"):
            Experiment.from_spec(other).run(checkpoint_dir=directory)

    def test_resume_under_different_bigint_backend(self, tmp_path):
        """The kernel is a result-neutral speed knob: switching it between
        interruption and resume must not trip the spec-identity check, and
        the resumed run stays bit-identical."""
        spec = spec_for("quality")
        assert spec.params.bigint_backend == "auto"
        directory = str(tmp_path / "kernel-swap")
        run_interrupted(spec, directory, 2)
        swapped_dict = spec.to_dict()
        swapped_dict["params"]["bigint_backend"] = "python"
        swapped = RunSpec.from_dict(swapped_dict)
        resumed = Experiment.from_spec(swapped).run(checkpoint_dir=directory)
        assert_bit_identical(resumed, Experiment.from_spec(spec).run())

    def test_resume_checkpoint_written_before_bigint_knob_existed(self, tmp_path):
        """Pre-PR checkpoints (params dict without 'bigint_backend') must
        keep resuming."""
        import json

        spec = spec_for("quality")
        directory = str(tmp_path / "pre-knob")
        run_interrupted(spec, directory, 2)
        store = CheckpointStore(directory)
        # Age the newest checkpoint in place: drop the knob from its spec.
        path = max(store.directory.glob("checkpoint_*.json"))
        payload = json.loads(path.read_text())
        del payload["spec"]["params"]["bigint_backend"]
        path.write_text(json.dumps(payload))
        resumed = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert_bit_identical(resumed, Experiment.from_spec(spec).run())

    def test_no_resume_flag_restarts(self, tmp_path):
        spec = spec_for("quality")
        directory = str(tmp_path / "restart")
        run_interrupted(spec, directory, 1)
        fresh = Experiment.from_spec(spec).run(checkpoint_dir=directory, resume=False)
        assert_bit_identical(fresh, Experiment.from_spec(spec).run())

    def test_object_plane_rejects_checkpointing(self, tmp_path):
        spec = RunSpec.from_dict({
            **spec_for("quality").to_dict(), "plane": "object",
        })
        with pytest.raises(ValueError, match="does not support checkpoint"):
            list(Experiment.from_spec(spec).run_iter(
                checkpoint_dir=str(tmp_path / "obj")
            ))

    def test_save_leaves_no_tmp_behind(self, tmp_path):
        spec = spec_for("quality")
        directory = tmp_path / "tidy"
        run_interrupted(spec, str(directory), 2)
        assert not list(directory.glob("*.tmp"))

    def test_init_sweeps_stale_tmps(self, tmp_path):
        """A kill mid-write leaves a tmp; the next store construction in a
        fresh process must sweep it (the writer pid is dead)."""
        directory = tmp_path / "stale"
        directory.mkdir()
        # A dead writer: a subprocess that exits before we look at its pid.
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(proc.stdout)
        stale = directory / f"checkpoint_000003.json.{dead_pid}.tmp"
        stale.write_text("{torn")
        legacy = directory / "checkpoint_000004.json.tmp"  # pre-fix naming
        legacy.write_text("{torn")
        CheckpointStore(directory)
        assert not stale.exists() and not legacy.exists()

    def test_init_keeps_live_writers_tmp(self, tmp_path):
        """A tmp owned by a live process (another run sharing the
        directory, mid-write) must survive the only-stale sweep."""
        directory = tmp_path / "live"
        directory.mkdir()
        live = directory / f"checkpoint_000001.json.{os.getpid()}.tmp"
        live.write_text("mid-write")
        CheckpointStore(directory)
        assert live.exists()
        CheckpointStore(directory).clear()  # clear sweeps unconditionally
        assert not live.exists()

    def test_tmp_name_is_per_process_unique(self, tmp_path):
        """Two processes sharing a directory must not race on one tmp
        path: the name embeds the writer's pid."""
        store = CheckpointStore(tmp_path / "pid")
        checkpoint = Checkpoint(
            spec={}, plane="quality", iteration=1, centroids=[[0.0]],
            epsilon_spent=0.0, rng_state={},
        )
        seen = []
        original_replace = os.replace

        def spy(src, dst):
            seen.append(str(src))
            return original_replace(src, dst)

        os.replace = spy
        try:
            store.save(checkpoint)
        finally:
            os.replace = original_replace
        assert seen and f".{os.getpid()}.tmp" in seen[0]

    def test_concurrent_saves_from_processes(self, tmp_path):
        """Many processes hammering one directory: every final checkpoint
        file parses (no torn writes, no cross-process tmp clobbering)."""
        directory = str(tmp_path / "concurrent")
        with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(
                _save_many, [(directory, worker) for worker in range(4)]
            ))
        store = CheckpointStore(directory)
        assert store.iterations() == list(range(1, 9))
        for iteration in store.iterations():
            loaded = Checkpoint.from_json(
                store.path_for(iteration).read_text()
            )
            assert loaded.iteration == iteration
        assert not list(store.directory.glob("*.tmp"))

    def test_rng_state_survives_json_exactly(self, tmp_path):
        """PCG64 state ints are 128-bit; JSON must carry them exactly."""
        spec = spec_for("quality")
        directory = str(tmp_path / "state")
        run_interrupted(spec, directory, 1)
        checkpoint = CheckpointStore(directory).latest()
        state = checkpoint.rng_state
        assert state["bit_generator"] == "PCG64"
        rng = np.random.default_rng(0)
        rng.bit_generator.state = state  # restoring must be lossless
        assert rng.bit_generator.state["state"] == state["state"]
