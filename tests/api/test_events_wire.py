"""Wire-format coverage for the run-event stream.

Every member of the ``RunEvent`` union must survive
``event_to_dict`` → NDJSON → warehouse ingestion.  The union itself is
enumerated via ``typing.get_args`` so a future event type added without
a wire mapping (or without a sample here) fails loudly instead of being
silently dropped from the telemetry plane.
"""

from __future__ import annotations

import json
import pathlib
import typing

import numpy as np
import pytest

from repro.api import (
    CheckpointSaved,
    FaultDetected,
    IterationCompleted,
    RunAborted,
    RunCompleted,
    RunEvent,
    RunStarted,
    event_to_dict,
)
from repro.core.results import ClusteringResult, IterationStats
from repro.service import append_ndjson, read_events
from repro.warehouse import Ingester, connect


def _stats(iteration: int = 1) -> IterationStats:
    return IterationStats(
        iteration=iteration,
        pre_inertia=12.5,
        post_inertia=11.0,
        n_centroids=3,
        epsilon_spent=0.25,
        centroids=np.zeros((3, 4)),
    )


SAMPLES: dict[type, RunEvent] = {
    RunStarted: RunStarted(
        spec=None,
        label="G_SMA",
        dataset_name="cer",
        t=100,
        n=24,
        population=10_000,
        sum_sensitivity=2.0,
        resumed_iteration=0,
        crypto_backend="serial",
        bigint_backend="python",
        key_bits=256,
    ),
    IterationCompleted: IterationCompleted(
        stats=_stats(),
        epsilon_spent_total=0.25,
        epsilon_remaining=0.75,
        active_series=98,
        agreement=0.5,
        exchanges_per_node=3.0,
        crypto_ms=118.25,
    ),
    CheckpointSaved: CheckpointSaved(
        iteration=1, path=pathlib.Path("/tmp/ckpt/iter_001.json")
    ),
    FaultDetected: FaultDetected(
        iteration=2,
        fault="byzantine",
        detector="decryption-cross-check",
        participants=(4, 9),
        detail={"bad_sums": 1},
    ),
    RunAborted: RunAborted(
        iteration=2, fault="collusion", reason="key compromised",
        epsilon_charged=0.5,
    ),
    RunCompleted: RunCompleted(
        result=ClusteringResult(
            centroids=np.zeros((3, 4)),
            history=[_stats(1), _stats(2)],
            converged=True,
            strategy="G",
        ),
        reason="converged",
    ),
}

EVENT_TYPES = typing.get_args(RunEvent)


def test_samples_cover_the_whole_union():
    """Adding a new RunEvent member forces a sample (and mapping) here."""
    assert set(SAMPLES) == set(EVENT_TYPES)


@pytest.mark.parametrize(
    "event_type", EVENT_TYPES, ids=lambda t: t.__name__
)
def test_wire_dict_round_trips_through_ndjson(event_type, tmp_path):
    wire = event_to_dict(SAMPLES[event_type])
    assert isinstance(wire["type"], str) and wire["type"]
    path = tmp_path / "events.ndjson"
    append_ndjson(path, wire)
    assert read_events(path) == [json.loads(json.dumps(wire))] == [wire]


@pytest.mark.parametrize(
    "event_type", EVENT_TYPES, ids=lambda t: t.__name__
)
def test_every_event_kind_lands_in_the_warehouse(event_type, tmp_path):
    """No event kind is silently dropped by ingestion: each wire line
    becomes exactly one row in the events table."""
    wire = dict(event_to_dict(SAMPLES[event_type]))
    wire.update({"job": "j1", "seq": 7, "ts": 1.5})
    path = tmp_path / "events.ndjson"
    append_ndjson(path, wire)

    con = connect(tmp_path / "wh.db")
    ingester = Ingester(con)
    ingester.ingest_events_file(path, job_id="j1")
    con.commit()
    row = con.execute("SELECT * FROM events").fetchone()
    assert row is not None, f"{wire['type']} dropped by ingestion"
    assert row["event_key"] == "j1:7"
    assert row["type"] == wire["type"]
    assert json.loads(row["payload"]) == wire
    con.close()


def test_fault_detected_round_trip_preserves_evidence():
    wire = event_to_dict(SAMPLES[FaultDetected])
    assert wire["participants"] == [4, 9]
    assert wire["detail"] == {"bad_sums": 1}
    assert json.loads(json.dumps(wire)) == wire


def test_run_aborted_carries_the_charged_budget():
    wire = event_to_dict(SAMPLES[RunAborted])
    assert wire == {
        "type": "run_aborted",
        "iteration": 2,
        "fault": "collusion",
        "reason": "key compromised",
        "epsilon_charged": 0.5,
    }


def test_checkpoint_saved_path_is_a_plain_string():
    wire = event_to_dict(SAMPLES[CheckpointSaved])
    assert wire["path"] == "/tmp/ckpt/iter_001.json"
    assert isinstance(wire["path"], str)


def test_iteration_completed_carries_crypto_ms():
    wire = event_to_dict(SAMPLES[IterationCompleted])
    assert wire["crypto_ms"] == 118.25
    # Planes without real ciphertexts leave the field unset → None on the
    # wire, so latency consumers can tell "no crypto" from "0 ms".
    bare = event_to_dict(
        IterationCompleted(
            stats=_stats(), epsilon_spent_total=0.25, epsilon_remaining=0.75
        )
    )
    assert bare["crypto_ms"] is None


def test_non_event_rejected():
    with pytest.raises(TypeError, match="not a run event"):
        event_to_dict(object())
