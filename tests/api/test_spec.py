"""``RunSpec`` validation and JSON round-trips (spec → dict → JSON → spec)."""

from __future__ import annotations

import json

import pytest

from repro.api import DATASETS, PLANES, DatasetSpec, InitSpec, RunSpec
from repro.cli import build_parser
from repro.core import ChiaroscuroParams

BASE = {
    "plane": "quality",
    "seed": 7,
    "strategy": "G",
    "dataset": {"kind": "cer", "params": {"n_series": 100}},
    "init": {"kind": "courbogen"},
    "params": {"k": 5, "epsilon": 0.69},
}

INIT_FOR_DATASET = {
    "cer": {"kind": "courbogen"},
    "numed": {"kind": "sample"},
    "points2d": {"kind": "sample"},
    "timeseries": {"kind": "matrix",
                   "params": {"values": [[1.0, 2.0], [3.0, 4.0]]}},
}
DATASET_PARAMS = {
    "cer": {"n_series": 100},
    "numed": {"n_series": 100},
    "points2d": {"n_clusters": 4, "points_per_cluster": 10},
    "timeseries": {"values": [[0.0, 1.0], [2.0, 3.0], [1.0, 1.0]],
                   "dmin": 0.0, "dmax": 4.0},
}


def spec_dict(**overrides) -> dict:
    d = json.loads(json.dumps(BASE))
    d.update(overrides)
    return d


class TestRoundTrip:
    @pytest.mark.parametrize("plane", sorted(PLANES.keys()))
    def test_round_trip_every_plane(self, plane):
        spec = RunSpec.from_dict(spec_dict(plane=plane))
        assert spec.plane == plane
        assert RunSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("kind", sorted(DATASETS.keys()))
    def test_round_trip_every_dataset(self, kind):
        spec = RunSpec.from_dict(spec_dict(
            dataset={"kind": kind, "params": DATASET_PARAMS[kind]},
            init=INIT_FOR_DATASET[kind],
            params={"k": 2 if kind == "timeseries" else 5, "epsilon": 0.69},
        ))
        assert RunSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("strategy", ["G", "GF", "UF", "UF5", "UF10"])
    def test_round_trip_every_strategy(self, strategy):
        spec = RunSpec.from_dict(spec_dict(strategy=strategy))
        roundtripped = RunSpec.from_json(spec.to_json())
        assert roundtripped == spec
        assert roundtripped.strategy == strategy

    def test_round_trip_preserves_full_params_sheet(self):
        spec = RunSpec.from_dict(spec_dict(params={
            "k": 9, "epsilon": 1.5, "max_iterations": 3, "exchanges": 17,
            "tau_fraction": 0.25, "smoothing_fraction": 0.1,
            "use_smoothing": False, "floor_size": 2, "theta": 0.01,
        }))
        again = RunSpec.from_json(spec.to_json())
        assert again.params == spec.params
        assert isinstance(again.params, ChiaroscuroParams)

    def test_save_and_load(self, tmp_path):
        spec = RunSpec.from_dict(spec_dict(name="disk-trip", churn=0.1))
        path = spec.save(tmp_path / "spec.json")
        assert RunSpec.load(path) == spec

    def test_tuple_params_normalize_to_lists(self):
        a = DatasetSpec(kind="cer", params={"values": (1, 2, 3)})
        b = DatasetSpec(kind="cer", params={"values": [1, 2, 3]})
        assert a == b


class TestPlanePivot:
    def test_same_spec_modulo_plane(self):
        base = RunSpec.from_dict(spec_dict())
        vectorized = base.with_plane("vectorized")
        assert vectorized.params.protocol_plane == "vectorized"
        # everything but the plane/protocol_plane fields is unchanged
        a, b = base.to_dict(), vectorized.to_dict()
        a["plane"] = b["plane"] = "X"
        a["params"]["protocol_plane"] = b["params"]["protocol_plane"] = "X"
        assert a == b

    def test_inconsistent_protocol_plane_rejected(self):
        with pytest.raises(ValueError, match="protocol_plane"):
            RunSpec(
                dataset=DatasetSpec("cer"),
                init=InitSpec("courbogen"),
                params=ChiaroscuroParams(protocol_plane="object"),
                plane="vectorized",
            )


class TestValidation:
    def test_unknown_plane(self):
        with pytest.raises(ValueError, match="unknown plane"):
            RunSpec.from_dict(spec_dict(plane="gpu"))

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            RunSpec.from_dict(spec_dict(dataset={"kind": "nope"}))

    def test_unknown_initializer(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            RunSpec.from_dict(spec_dict(init={"kind": "nope"}))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            RunSpec.from_dict(spec_dict(strategy="Z9"))

    def test_bad_params_key(self):
        with pytest.raises(ValueError, match="params"):
            RunSpec.from_dict(spec_dict(params={"k": 5, "warp_speed": 9}))

    def test_churn_range(self):
        with pytest.raises(ValueError, match="churn"):
            RunSpec.from_dict(spec_dict(churn=1.0))

    def test_typoed_options_key_rejected(self):
        with pytest.raises(ValueError, match="sensitivty_mode"):
            RunSpec.from_dict(spec_dict(options={"sensitivty_mode": "joint"}))

    def test_known_options_keys_accepted_on_any_plane(self):
        # quality-plane keys stay valid on a protocol plane so one spec
        # can pivot planes; the plane simply ignores them
        spec = RunSpec.from_dict(spec_dict(
            plane="vectorized", options={"sensitivity_mode": "joint"}
        ))
        assert spec.options == {"sensitivity_mode": "joint"}

    def test_default_strategy_from_params(self):
        d = spec_dict()
        del d["strategy"]
        d["params"]["budget_strategy"] = "GF"
        assert RunSpec.from_dict(d).strategy == "GF"


class TestFromCliArgs:
    def _args(self, *argv):
        return build_parser().parse_args(["cluster", *argv])

    def test_defaults_map_to_quality_plane(self):
        spec = RunSpec.from_cli_args(self._args())
        assert spec.plane == "quality"
        assert spec.dataset.kind == "cer"
        assert spec.dataset.params == {"n_series": 10_000, "population_scale": 100}
        assert spec.init.kind == "courbogen"
        assert spec.strategy == "G"
        assert spec.params.theta == 0.0  # Fig. 2 setting: no convergence test
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_flags_map_through(self):
        spec = RunSpec.from_cli_args(self._args(
            "--dataset", "numed", "--series", "500", "--scale", "10",
            "--k", "7", "--strategy", "uf4", "--epsilon", "1.2",
            "--iterations", "6", "--no-smoothing", "--churn", "0.2",
            "--seed", "11", "--plane", "vectorized",
        ))
        assert spec.dataset.params == {"n_series": 500, "population_scale": 10}
        assert spec.init.kind == "sample"
        assert spec.params.k == 7
        assert spec.strategy == "UF4"
        assert spec.params.epsilon == 1.2
        assert spec.params.use_smoothing is False
        assert spec.churn == 0.2
        assert spec.seed == 11
        assert spec.plane == "vectorized"
        assert spec.params.protocol_plane == "vectorized"

    def test_timeseries_needs_spec_file(self):
        with pytest.raises(ValueError, match="--spec"):
            RunSpec.from_cli_args(self._args("--dataset", "timeseries"))
