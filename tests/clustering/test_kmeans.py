"""Tests for the Lloyd k-means baseline."""

import numpy as np
import pytest

from repro.clustering import compute_means, lloyd_kmeans, sample_init


def three_blob_data(seed=0, per=40):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    return (
        np.concatenate([c + rng.normal(0, 0.5, (per, 2)) for c in centers]),
        centers,
    )


class TestComputeMeans:
    def test_means_and_counts(self):
        series = np.array([[1.0, 1.0], [3.0, 3.0], [10.0, 10.0]])
        labels = np.array([0, 0, 1])
        means, counts = compute_means(series, labels, 3)
        assert np.allclose(means[0], [2.0, 2.0])
        assert np.allclose(means[1], [10.0, 10.0])
        assert np.isnan(means[2]).all()  # empty cluster
        assert counts.tolist() == [2.0, 1.0, 0.0]


class TestLloyd:
    def test_recovers_blobs(self):
        series, centers = three_blob_data()
        init = centers + 1.5
        trace = lloyd_kmeans(series, init, max_iterations=10)
        final = trace.centroids[-1]
        for center in centers:
            assert np.min(np.linalg.norm(final - center, axis=1)) < 0.5

    def test_inertia_monotone_nonincreasing(self):
        series, _ = three_blob_data(seed=1)
        rng = np.random.default_rng(2)
        init = sample_init(series, 5, rng)
        trace = lloyd_kmeans(series, init, max_iterations=15)
        for a, b in zip(trace.inertia, trace.inertia[1:]):
            assert b <= a + 1e-9

    def test_convergence_flag(self):
        series, centers = three_blob_data(seed=3)
        trace = lloyd_kmeans(series, centers, max_iterations=20, threshold=1e-6)
        assert trace.converged
        assert trace.iterations < 20

    def test_iteration_cap(self):
        series, centers = three_blob_data(seed=4)
        trace = lloyd_kmeans(series, centers + 5.0, max_iterations=2, threshold=0.0)
        assert trace.iterations == 2
        assert not trace.converged

    def test_empty_clusters_dropped(self):
        series, _ = three_blob_data(seed=5)
        # One centroid far away from all data never gets members.
        init = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [500.0, 500.0]])
        trace = lloyd_kmeans(series, init, max_iterations=3)
        assert trace.n_centroids[-1] == 3

    def test_trace_records_history(self):
        series, centers = three_blob_data(seed=6)
        trace = lloyd_kmeans(series, centers, max_iterations=4, threshold=0.0)
        assert len(trace.inertia) == len(trace.n_centroids) == len(trace.centroids)
