"""Tests for centroid initialization strategies."""

import numpy as np
import pytest

from repro.clustering import kmeanspp_init, sample_init, template_init, uniform_init


class TestSampleInit:
    def test_picks_from_data(self):
        rng = np.random.default_rng(0)
        series = np.arange(20.0).reshape(10, 2)
        init = sample_init(series, 4, rng)
        assert init.shape == (4, 2)
        for row in init:
            assert any(np.allclose(row, s) for s in series)

    def test_distinct_rows(self):
        rng = np.random.default_rng(1)
        series = np.arange(40.0).reshape(20, 2)
        init = sample_init(series, 20, rng)
        assert len(np.unique(init, axis=0)) == 20

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            sample_init(np.zeros((3, 2)), 4, np.random.default_rng(0))

    def test_copy_not_view(self):
        rng = np.random.default_rng(2)
        series = np.ones((5, 2))
        init = sample_init(series, 2, rng)
        init[0, 0] = 99.0
        assert series[0, 0] == 1.0


class TestUniformInit:
    def test_range(self):
        init = uniform_init(50, 6, -2.0, 3.0, np.random.default_rng(3))
        assert init.shape == (50, 6)
        assert init.min() >= -2.0 and init.max() <= 3.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_init(3, 4, 1.0, 1.0, np.random.default_rng(0))


class TestTemplateInit:
    def test_delegates_to_generator(self):
        def generator(k, rng):
            return np.tile(np.arange(4.0), (k, 1))

        init = template_init(5, generator, np.random.default_rng(4))
        assert init.shape == (5, 4)

    def test_wrong_count_rejected(self):
        def bad(k, rng):
            return np.zeros((k + 1, 3))

        with pytest.raises(ValueError):
            template_init(2, bad, np.random.default_rng(0))


class TestKMeansPP:
    def test_spreads_centroids(self):
        """k-means++ on two far blobs picks one centroid in each."""
        rng = np.random.default_rng(5)
        blob_a = rng.normal(0, 0.1, (50, 2))
        blob_b = rng.normal(100, 0.1, (50, 2))
        series = np.concatenate([blob_a, blob_b])
        init = kmeanspp_init(series, 2, np.random.default_rng(6))
        assert abs(init[0, 0] - init[1, 0]) > 50

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            kmeanspp_init(np.zeros((2, 2)), 3, np.random.default_rng(0))
