"""Tests for the DTW extension."""

import numpy as np
import pytest

from repro.clustering import (
    dba_mean,
    dtw_assign,
    dtw_assign_reference,
    dtw_distance,
    dtw_pairwise,
    dtw_path,
    lb_keogh,
)
from repro.clustering.dtw import _cost_matrix, _cost_matrix_reference


class TestDTWDistance:
    def test_identical_series(self):
        s = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(s, s) == 0.0

    def test_shifted_series_cheaper_than_euclidean(self):
        """DTW absorbs a time shift that Euclidean distance punishes."""
        a = np.array([0, 0, 1, 5, 1, 0, 0, 0], dtype=float)
        b = np.array([0, 0, 0, 1, 5, 1, 0, 0], dtype=float)
        euclid = float(np.linalg.norm(a - b))
        assert dtw_distance(a, b) < euclid

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=10), rng.normal(size=12)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_window_constrains(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=15), rng.normal(size=15)
        unconstrained = dtw_distance(a, b)
        banded = dtw_distance(a, b, window=1)
        assert banded >= unconstrained - 1e-12

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((2, 2)), np.zeros(4))


class TestDTWPath:
    def test_path_endpoints_and_monotone(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=8), rng.normal(size=6)
        path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (7, 5)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1 and 0 <= j2 - j1 <= 1

    def test_path_cost_matches_distance(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=7), rng.normal(size=7)
        path = dtw_path(a, b)
        cost = sum((a[i] - b[j]) ** 2 for i, j in path)
        assert np.sqrt(cost) == pytest.approx(dtw_distance(a, b))


class TestDTWClustering:
    def test_assignment(self):
        flat = np.zeros(10)
        peak = np.concatenate([np.zeros(4), [5.0, 5.0], np.zeros(4)])
        series = np.array([flat + 0.1, peak * 1.1, flat - 0.1, np.roll(peak, 1)])
        centroids = np.array([flat, peak])
        labels = dtw_assign(series, centroids)
        assert labels.tolist() == [0, 1, 0, 1]

    def test_dba_converges_toward_members(self):
        rng = np.random.default_rng(4)
        template = np.sin(np.linspace(0, 2 * np.pi, 16))
        members = np.array([np.roll(template, s) + rng.normal(0, 0.05, 16) for s in (-1, 0, 1)])
        barycenter = dba_mean(members, initial=template * 0.5, iterations=4)
        before = np.mean([dtw_distance(template * 0.5, m) for m in members])
        after = np.mean([dtw_distance(barycenter, m) for m in members])
        assert after < before

    def test_dba_empty_set(self):
        initial = np.ones(5)
        assert np.allclose(dba_mean(np.empty((0, 5)), initial), initial)


class TestWavefrontEquivalence:
    """The vectorized anti-diagonal DP must match the per-cell loop exactly."""

    @pytest.mark.parametrize(
        "n,m,window",
        [(8, 8, None), (13, 9, None), (9, 13, 3), (16, 16, 2), (5, 5, 0), (24, 24, 5)],
    )
    def test_cost_matrix_matches_reference(self, n, m, window):
        rng = np.random.default_rng(n * 100 + m)
        a, b = rng.normal(size=n), rng.normal(size=m)
        vectorized = _cost_matrix(a, b, window)
        reference = _cost_matrix_reference(a, b, window)
        assert np.array_equal(vectorized, reference)

    @pytest.mark.parametrize("window", [None, 3])
    def test_pairwise_matches_per_pair_distances(self, window):
        rng = np.random.default_rng(7)
        series = rng.normal(size=(25, 12))
        centroids = rng.normal(size=(4, 12))
        batched = dtw_pairwise(series, centroids, window)
        for i, s in enumerate(series):
            for j, c in enumerate(centroids):
                assert batched[i, j] == pytest.approx(dtw_distance(s, c, window))

    def test_pairwise_unequal_lengths(self):
        rng = np.random.default_rng(8)
        series = rng.normal(size=(10, 14))
        centroids = rng.normal(size=(3, 9))
        batched = dtw_pairwise(series, centroids)
        for i, s in enumerate(series):
            for j, c in enumerate(centroids):
                assert batched[i, j] == pytest.approx(dtw_distance(s, c))

    @pytest.mark.parametrize("window", [None, 2])
    def test_assign_matches_reference(self, window):
        rng = np.random.default_rng(9)
        series = rng.normal(size=(30, 10))
        centroids = rng.normal(size=(5, 10))
        assert np.array_equal(
            dtw_assign(series, centroids, window),
            dtw_assign_reference(series, centroids, window),
        )

    def test_pairwise_chunking_invariant(self):
        rng = np.random.default_rng(10)
        series = rng.normal(size=(33, 8))
        centroids = rng.normal(size=(3, 8))
        assert np.array_equal(
            dtw_pairwise(series, centroids, chunk_size=7),
            dtw_pairwise(series, centroids, chunk_size=2048),
        )


class TestLBKeoghPruning:
    @pytest.mark.parametrize("window", [None, 0, 1, 3])
    def test_lb_is_a_lower_bound(self, window):
        rng = np.random.default_rng(11)
        series = rng.normal(size=(25, 12))
        centroids = rng.normal(size=(4, 12))
        bounds = lb_keogh(series, centroids, window)
        exact = dtw_pairwise(series, centroids, window)
        assert (bounds <= exact + 1e-9).all()

    @pytest.mark.parametrize("window", [None, 2])
    def test_pruned_assign_exact_vs_reference(self, window):
        """The acceptance test: pruning never changes an assignment."""
        rng = np.random.default_rng(12)
        # Clustered data (pruning actually fires) plus uniform noise rows
        # (near-ties stress the tie-breaking).
        centers = rng.normal(scale=4.0, size=(6, 9))
        series = np.concatenate(
            [
                centers[rng.integers(0, 6, size=40)] + rng.normal(size=(40, 9)),
                rng.uniform(-1, 1, size=(10, 9)),
            ]
        )
        centroids = centers + rng.normal(scale=0.1, size=centers.shape)
        expected = dtw_assign_reference(series, centroids, window)
        assert np.array_equal(dtw_assign(series, centroids, window), expected)
        assert np.array_equal(
            dtw_assign(series, centroids, window, prune=False), expected
        )

    def test_near_tie_ulp_noise_not_mispruned(self):
        """Regression: a centroid perturbed by 1e-13 produces DTW distances
        equal up to ulps, and the *computed* LB can land above the computed
        distance — the slack in the pruning gate must keep the lower-index
        candidate evaluated."""
        rng = np.random.default_rng(1)
        for trial in range(302):
            series = rng.normal(size=(20, 12))
            c0 = rng.normal(size=12)
            centroids = np.stack([c0 + 1e-13 * rng.normal(size=12), c0])
            if trial < 40:  # broad sweep over windows on the early trials
                for window in (0, 1, None):
                    assert np.array_equal(
                        dtw_assign(series, centroids, window),
                        dtw_assign_reference(series, centroids, window),
                    )
        # Trial 301 of this stream is a found counterexample for a slackless
        # gate (computed LB lands ulps above the computed distance): row 6
        # was assigned centroid 1 instead of the tie-broken 0.
        assert np.array_equal(
            dtw_assign(series, centroids, 0),
            dtw_assign_reference(series, centroids, 0),
        )

    def test_duplicate_centroids_tie_break_to_lowest_index(self):
        rng = np.random.default_rng(13)
        series = rng.normal(size=(12, 7))
        one = rng.normal(size=7)
        centroids = np.stack([one + 5.0, one, one])  # indices 1 and 2 tie
        assert np.array_equal(
            dtw_assign(series, centroids),
            dtw_assign_reference(series, centroids),
        )

    def test_unequal_lengths_fall_back_unpruned(self):
        rng = np.random.default_rng(14)
        series = rng.normal(size=(9, 10))
        centroids = rng.normal(size=(3, 8))
        assert np.array_equal(
            dtw_assign(series, centroids),
            dtw_assign_reference(series, centroids),
        )
        with pytest.raises(ValueError):
            lb_keogh(series, centroids)
