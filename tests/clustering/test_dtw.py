"""Tests for the DTW extension."""

import numpy as np
import pytest

from repro.clustering import dba_mean, dtw_assign, dtw_distance, dtw_path


class TestDTWDistance:
    def test_identical_series(self):
        s = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(s, s) == 0.0

    def test_shifted_series_cheaper_than_euclidean(self):
        """DTW absorbs a time shift that Euclidean distance punishes."""
        a = np.array([0, 0, 1, 5, 1, 0, 0, 0], dtype=float)
        b = np.array([0, 0, 0, 1, 5, 1, 0, 0], dtype=float)
        euclid = float(np.linalg.norm(a - b))
        assert dtw_distance(a, b) < euclid

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=10), rng.normal(size=12)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_window_constrains(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=15), rng.normal(size=15)
        unconstrained = dtw_distance(a, b)
        banded = dtw_distance(a, b, window=1)
        assert banded >= unconstrained - 1e-12

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((2, 2)), np.zeros(4))


class TestDTWPath:
    def test_path_endpoints_and_monotone(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=8), rng.normal(size=6)
        path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (7, 5)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1 and 0 <= j2 - j1 <= 1

    def test_path_cost_matches_distance(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=7), rng.normal(size=7)
        path = dtw_path(a, b)
        cost = sum((a[i] - b[j]) ** 2 for i, j in path)
        assert np.sqrt(cost) == pytest.approx(dtw_distance(a, b))


class TestDTWClustering:
    def test_assignment(self):
        flat = np.zeros(10)
        peak = np.concatenate([np.zeros(4), [5.0, 5.0], np.zeros(4)])
        series = np.array([flat + 0.1, peak * 1.1, flat - 0.1, np.roll(peak, 1)])
        centroids = np.array([flat, peak])
        labels = dtw_assign(series, centroids)
        assert labels.tolist() == [0, 1, 0, 1]

    def test_dba_converges_toward_members(self):
        rng = np.random.default_rng(4)
        template = np.sin(np.linspace(0, 2 * np.pi, 16))
        members = np.array([np.roll(template, s) + rng.normal(0, 0.05, 16) for s in (-1, 0, 1)])
        barycenter = dba_mean(members, initial=template * 0.5, iterations=4)
        before = np.mean([dtw_distance(template * 0.5, m) for m in members])
        after = np.mean([dtw_distance(barycenter, m) for m in members])
        assert after < before

    def test_dba_empty_set(self):
        initial = np.ones(5)
        assert np.allclose(dba_mean(np.empty((0, 5)), initial), initial)
