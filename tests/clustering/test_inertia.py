"""Tests for the Definition 1 inertia metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering import (
    assign_to_closest,
    compute_means,
    dataset_inertia,
    inertia_report,
    inter_inertia,
    intra_inertia,
)


def _true_means_setup(seed=0, t=60, n=4, k=3):
    rng = np.random.default_rng(seed)
    series = rng.normal(size=(t, n)) + rng.integers(0, k, t)[:, None] * 10.0
    centroids = rng.normal(size=(k, n))
    labels = assign_to_closest(series, centroids)
    means, _ = compute_means(series, labels, k)
    return series, np.nan_to_num(means), labels


class TestIntra:
    def test_zero_for_perfect_fit(self):
        series = np.array([[1.0, 2.0], [1.0, 2.0]])
        centroids = np.array([[1.0, 2.0]])
        labels = np.array([0, 0])
        assert intra_inertia(series, centroids, labels) == 0.0

    def test_hand_computed(self):
        series = np.array([[0.0], [2.0], [10.0]])
        centroids = np.array([[1.0], [10.0]])
        labels = np.array([0, 0, 1])
        # ((0-1)² + (2-1)² + 0) / 3
        assert intra_inertia(series, centroids, labels) == pytest.approx(2 / 3)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            intra_inertia(np.zeros((2, 2)), np.zeros((1, 2)), np.array([0, 5]))


class TestHuygensDecomposition:
    """q_intra + q_inter == q_dataset when centroids are the true means."""

    def test_decomposition(self):
        series, means, labels = _true_means_setup()
        total = intra_inertia(series, means, labels) + inter_inertia(
            series, means, labels
        )
        assert total == pytest.approx(dataset_inertia(series))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_decomposition_property(self, seed):
        series, means, labels = _true_means_setup(seed=seed)
        total = intra_inertia(series, means, labels) + inter_inertia(
            series, means, labels
        )
        assert total == pytest.approx(dataset_inertia(series), rel=1e-9)

    def test_decomposition_fails_for_wrong_centroids(self):
        """With non-mean centroids, intra is *larger* (bias-variance)."""
        series, means, labels = _true_means_setup(seed=3)
        shifted = means + 1.0
        assert intra_inertia(series, shifted, labels) > intra_inertia(
            series, means, labels
        )


class TestReport:
    def test_keys(self):
        series, means, labels = _true_means_setup(seed=4)
        report = inertia_report(series, means, labels)
        assert set(report) == {"intra", "inter", "dataset"}

    def test_dataset_inertia_constant(self):
        series, _, _ = _true_means_setup(seed=5)
        assert dataset_inertia(series) == pytest.approx(
            dataset_inertia(series[::-1].copy())
        )
