"""Tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering import assign_to_closest, pairwise_sq_euclidean, squared_euclidean


class TestSquaredEuclidean:
    def test_known_value(self):
        assert squared_euclidean([0, 0], [3, 4]) == pytest.approx(25.0)

    def test_zero_distance(self):
        assert squared_euclidean([1.5, -2.5], [1.5, -2.5]) == 0.0

    def test_symmetry(self):
        a, b = np.array([1.0, 2.0, 3.0]), np.array([-1.0, 0.5, 2.0])
        assert squared_euclidean(a, b) == pytest.approx(squared_euclidean(b, a))


class TestPairwise:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=(20, 6))
        centroids = rng.normal(size=(4, 6))
        fast = pairwise_sq_euclidean(series, centroids)
        naive = np.array(
            [[squared_euclidean(s, c) for c in centroids] for s in series]
        )
        assert np.allclose(fast, naive)

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=(50, 3)) * 1e6  # stress the expansion formula
        distances = pairwise_sq_euclidean(series, series[:5])
        assert (distances >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(
        series=hnp.arrays(
            np.float64, (7, 4), elements=st.floats(-100, 100, allow_nan=False)
        ),
        centroids=hnp.arrays(
            np.float64, (3, 4), elements=st.floats(-100, 100, allow_nan=False)
        ),
    )
    def test_pairwise_property(self, series, centroids):
        fast = pairwise_sq_euclidean(series, centroids)
        naive = ((series[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(fast, naive, atol=1e-6)


class TestAssignment:
    def test_obvious_assignment(self):
        series = np.array([[0.0, 0.0], [10.0, 10.0]])
        centroids = np.array([[0.5, 0.5], [9.0, 9.0]])
        assert assign_to_closest(series, centroids).tolist() == [0, 1]

    def test_chunked_equals_unchunked(self):
        rng = np.random.default_rng(2)
        series = rng.normal(size=(1000, 5))
        centroids = rng.normal(size=(7, 5))
        small = assign_to_closest(series, centroids, chunk_size=64)
        big = assign_to_closest(series, centroids, chunk_size=10**6)
        assert (small == big).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            assign_to_closest(np.zeros((3, 2)), np.zeros((2, 5)))
        with pytest.raises(ValueError):
            assign_to_closest(np.zeros(3), np.zeros((2, 3)))
