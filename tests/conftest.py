"""Shared fixtures: session-scoped key material (key generation dominates
test runtime otherwise) and small canonical datasets."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.crypto import generate_keypair, generate_threshold_keypair
from repro.datasets import TimeSeriesSet


@pytest.fixture(scope="session")
def keypair128():
    """A 256-bit-modulus (2×128-bit safe primes) s=1 keypair."""
    return generate_keypair(256, s=1, rng=random.Random(11))


@pytest.fixture(scope="session")
def keypair_s2():
    """Same modulus with Damgård–Jurik expansion s=2."""
    return generate_keypair(256, s=2, rng=random.Random(12))


@pytest.fixture(scope="session")
def threshold_keypair():
    """Threshold keypair: 9 shares, any 3 decrypt."""
    return generate_threshold_keypair(
        256, n_shares=9, threshold=3, s=1, rng=random.Random(13)
    )


@pytest.fixture(scope="session")
def threshold_keypair_s2():
    """Threshold keypair with s=2 (used by the protocol tests)."""
    return generate_threshold_keypair(
        256, n_shares=24, threshold=3, s=2, rng=random.Random(14)
    )


@pytest.fixture()
def crypto_rng():
    return random.Random(99)


@pytest.fixture()
def np_rng():
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def toy_dataset() -> TimeSeriesSet:
    """24 series in 3 well-separated clusters of 8, length 6, range [0, 60]."""
    rng = np.random.default_rng(5)
    base = np.array(
        [[5, 5, 5, 40, 40, 40], [40, 40, 40, 5, 5, 5], [20, 20, 20, 20, 20, 20]],
        dtype=float,
    )
    values = np.clip(np.repeat(base, 8, axis=0) + rng.normal(0, 1, (24, 6)), 0, 60)
    return TimeSeriesSet(values, dmin=0.0, dmax=60.0, name="toy")


@pytest.fixture(scope="session")
def toy_initial_centroids() -> np.ndarray:
    return np.array(
        [
            [10.0, 10, 10, 30, 30, 30],
            [30, 30, 30, 10, 10, 10],
            [22, 18, 22, 18, 22, 18],
        ]
    )
