"""Tests for the signed fixed-point codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import FixedPointCodec


class TestRoundTrip:
    def test_positive(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        assert codec.decode(codec.encode(3.25)) == pytest.approx(3.25)

    def test_negative(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        assert codec.decode(codec.encode(-7.125)) == pytest.approx(-7.125)

    def test_zero(self, keypair128):
        codec = FixedPointCodec(keypair128.public)
        assert codec.decode(codec.encode(0.0)) == 0.0

    def test_resolution(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=32)
        value = 0.123456789
        assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=2**-31)

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_roundtrip_property(self, keypair128, value):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=2**-23)


class TestAdditivity:
    def test_sum_of_encodings(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        pub = keypair128.public
        total = (codec.encode(-3.5) + codec.encode(1.25) + codec.encode(10.0)) % pub.n_s
        assert codec.decode(total) == pytest.approx(7.75)

    def test_extra_shift_delayed_division(self, keypair128):
        """Decoding after the EESum 2^j scaling divides back correctly."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        pub = keypair128.public
        scaled = codec.encode(-5.5) * 16 % pub.n_s
        assert codec.decode(scaled, extra_shift=4) == pytest.approx(-5.5)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        b=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    def test_additivity_property(self, keypair128, a, b):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        total = (codec.encode(a) + codec.encode(b)) % keypair128.public.n_s
        assert codec.decode(total) == pytest.approx(a + b, abs=2**-22)


class TestCapacity:
    def test_capacity_ok(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        codec.check_capacity(max_abs_value=100.0, population=1000, exchanges=40)

    def test_capacity_overflow_detected(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=48)
        with pytest.raises(ValueError, match="plaintext space too small"):
            codec.check_capacity(max_abs_value=1e9, population=10**9, exchanges=200)

    def test_s2_extends_capacity(self, keypair_s2):
        codec = FixedPointCodec(keypair_s2.public, fractional_bits=48)
        codec.check_capacity(max_abs_value=1e9, population=10**9, exchanges=200)
