"""Tests for the signed fixed-point codec and the packed-slot codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import FixedPointCodec, PackedCodec


class TestRoundTrip:
    def test_positive(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        assert codec.decode(codec.encode(3.25)) == pytest.approx(3.25)

    def test_negative(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        assert codec.decode(codec.encode(-7.125)) == pytest.approx(-7.125)

    def test_zero(self, keypair128):
        codec = FixedPointCodec(keypair128.public)
        assert codec.decode(codec.encode(0.0)) == 0.0

    def test_resolution(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=32)
        value = 0.123456789
        assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=2**-31)

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_roundtrip_property(self, keypair128, value):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=2**-23)


class TestAdditivity:
    def test_sum_of_encodings(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        pub = keypair128.public
        total = (codec.encode(-3.5) + codec.encode(1.25) + codec.encode(10.0)) % pub.n_s
        assert codec.decode(total) == pytest.approx(7.75)

    def test_extra_shift_delayed_division(self, keypair128):
        """Decoding after the EESum 2^j scaling divides back correctly."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        pub = keypair128.public
        scaled = codec.encode(-5.5) * 16 % pub.n_s
        assert codec.decode(scaled, extra_shift=4) == pytest.approx(-5.5)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        b=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    def test_additivity_property(self, keypair128, a, b):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        total = (codec.encode(a) + codec.encode(b)) % keypair128.public.n_s
        assert codec.decode(total) == pytest.approx(a + b, abs=2**-22)


class TestCapacity:
    def test_capacity_ok(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        codec.check_capacity(max_abs_value=100.0, population=1000, exchanges=40)

    def test_capacity_overflow_detected(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=48)
        with pytest.raises(ValueError, match="plaintext space too small"):
            codec.check_capacity(max_abs_value=1e9, population=10**9, exchanges=200)

    def test_s2_extends_capacity(self, keypair_s2):
        codec = FixedPointCodec(keypair_s2.public, fractional_bits=48)
        codec.check_capacity(max_abs_value=1e9, population=10**9, exchanges=200)


@pytest.fixture()
def packed(keypair128):
    """16 fractional bits, values < 2^8, room for a 2^12 coefficient mass."""
    return PackedCodec(
        keypair128.public, fractional_bits=16, value_bits=24, accumulation_bits=12
    )


class TestPackedRoundTrip:
    def test_exact_on_grid(self, packed):
        """Values on the fixed-point grid round-trip exactly — not approximately."""
        values = [1.5, -2.25, 100.0, -127.875, 0.0, 42.0625]
        assert packed.unpack(packed.pack(values), len(values)) == values

    def test_multiple_plaintexts(self, packed):
        values = [float(i) - 20.0 for i in range(3 * packed.slots + 1)]
        plaintexts = packed.pack(values)
        assert len(plaintexts) == packed.packed_length(len(values)) == 4
        assert packed.unpack(plaintexts, len(values)) == values

    def test_empty(self, packed):
        assert packed.pack([]) == []
        assert packed.unpack([], 0) == []

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-255.0, max_value=255.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_roundtrip_property(self, keypair128, values):
        codec = PackedCodec(
            keypair128.public, fractional_bits=16, value_bits=24, accumulation_bits=12
        )
        grid = [round(v * codec.scale) / codec.scale for v in values]
        assert codec.unpack(codec.pack(grid), len(grid)) == grid

    def test_value_exceeding_slot_raises(self, packed):
        with pytest.raises(ValueError, match="slot capacity"):
            packed.pack([300.0])  # |f| = 300·2^16 ≥ 2^24

    def test_unpack_integers_exact(self, packed):
        values = [3.5, -3.5]
        ints = packed.unpack_integers(packed.pack(values), 2)
        assert ints == [round(3.5 * packed.scale), -round(3.5 * packed.scale)]


class TestPackedAccumulation:
    def test_homomorphic_sum_with_bias_multiplier(self, packed):
        """Plaintext-level additivity: slot-wise sums decode exactly once the
        accumulated bias mass is subtracted."""
        n_s = packed.public.n_s
        a = packed.pack([1.25, -7.5, 3.0])
        b = packed.pack([-0.75, 2.5, 40.0])
        summed = [(x + y) % n_s for x, y in zip(a, b)]
        assert packed.unpack(summed, 3, bias_multiplier=2) == [0.5, -5.0, 43.0]

    def test_scaled_sum_matches_scalar_codec(self, packed, keypair128):
        """EESum-style coefficients: 4·x + 2·y decodes identically on both
        codecs (same signed fixed-point integer)."""
        scalar = FixedPointCodec(keypair128.public, fractional_bits=16)
        n_s = keypair128.public.n_s
        x, y = -3.125, 10.5
        packed_sum = [
            (4 * p + 2 * q) % n_s
            for p, q in zip(packed.pack([x]), packed.pack([y]))
        ]
        scalar_sum = (4 * scalar.encode(x) + 2 * scalar.encode(y)) % n_s
        assert packed.unpack(packed_sum, 1, bias_multiplier=6) == [
            scalar.decode(scalar_sum)
        ]

    def test_overflowing_mass_detected(self, packed):
        """The decode-time soundness gate refuses an unsound unpack."""
        plaintexts = packed.pack([1.0])
        with pytest.raises(ValueError, match="coefficient mass"):
            packed.unpack(plaintexts, 1, bias_multiplier=1 << 13)

    def test_extra_shift(self, packed):
        n_s = packed.public.n_s
        scaled = [(p * 8) % n_s for p in packed.pack([-5.5])]
        assert packed.unpack(scaled, 1, bias_multiplier=8, extra_shift=3) == [-5.5]


class TestPackedPlanning:
    def test_plan_fits_capacity(self, keypair128):
        codec = PackedCodec.plan(
            keypair128.public,
            fractional_bits=16,
            max_abs_value=100.0,
            population=50,
            exchanges=30,
            terms=2,
        )
        assert codec.slots >= 1
        # planned accumulation covers the declared coefficient mass
        assert 2 * codec.bias * (50 * 2 * (1 << 30)) <= 1 << codec.slot_bits

    def test_plan_rejects_impossible(self, keypair128):
        with pytest.raises(ValueError, match="plaintext space too small"):
            PackedCodec.plan(
                keypair128.public,
                fractional_bits=16,
                max_abs_value=100.0,
                population=10**6,
                exchanges=400,
            )

    def test_packs_several_slots_at_modest_accumulation(self, keypair128):
        codec = PackedCodec.plan(
            keypair128.public,
            fractional_bits=16,
            max_abs_value=100.0,
            population=1,
            exchanges=1,
            terms=2,
        )
        assert codec.slots >= 4  # a 255-bit plaintext carries several slots

    def test_invalid_parameters(self, keypair128):
        with pytest.raises(ValueError):
            PackedCodec(keypair128.public, fractional_bits=16, value_bits=10)
        with pytest.raises(ValueError):
            PackedCodec(
                keypair128.public,
                fractional_bits=16,
                value_bits=200,
                accumulation_bits=100,
            )  # slot wider than the plaintext


class TestQuantizeToGrid:
    """quantize_to_grid is the grid contract between the mock-homomorphic
    plane and the real codec: it must equal encode→decode elementwise."""

    def test_matches_codec_roundtrip(self, keypair128):
        import numpy as np

        from repro.crypto import FixedPointCodec, quantize_to_grid

        codec = FixedPointCodec(keypair128.public, fractional_bits=24)
        rng = np.random.default_rng(5)
        values = rng.uniform(-50.0, 50.0, size=200)
        gridded = quantize_to_grid(values, 24)
        roundtripped = np.array([codec.decode(codec.encode(v)) for v in values])
        assert np.array_equal(gridded, roundtripped)
