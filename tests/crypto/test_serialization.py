"""Tests for the wire serialization layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    ciphertext_from_bytes,
    ciphertext_to_bytes,
    decrypt,
    encrypt,
    means_payload_from_bytes,
    means_payload_to_bytes,
    public_key_from_bytes,
    public_key_to_bytes,
)


class TestCiphertextWire:
    def test_roundtrip(self, keypair128, crypto_rng):
        pub = keypair128.public
        c = encrypt(pub, 123456, rng=crypto_rng)
        payload = ciphertext_to_bytes(pub, c)
        assert len(payload) == pub.ciphertext_bytes
        assert ciphertext_from_bytes(pub, payload) == c

    def test_fixed_width_independent_of_value(self, keypair128, crypto_rng):
        """Constant wire width — traffic must not leak plaintext magnitude."""
        pub = keypair128.public
        small = ciphertext_to_bytes(pub, encrypt(pub, 0, rng=crypto_rng))
        large = ciphertext_to_bytes(pub, encrypt(pub, pub.n_s - 1, rng=crypto_rng))
        assert len(small) == len(large)

    def test_out_of_range_rejected(self, keypair128):
        pub = keypair128.public
        with pytest.raises(ValueError):
            ciphertext_to_bytes(pub, pub.n_s1)
        with pytest.raises(ValueError):
            ciphertext_to_bytes(pub, -1)

    def test_wrong_width_rejected(self, keypair128):
        with pytest.raises(ValueError):
            ciphertext_from_bytes(keypair128.public, b"\x01\x02")

    @settings(max_examples=25, deadline=None)
    @given(value=st.integers(min_value=0, max_value=2**64))
    def test_decrypts_after_wire_roundtrip(self, keypair128, value):
        pub = keypair128.public
        c = encrypt(pub, value, rng=random.Random(value))
        wired = ciphertext_from_bytes(pub, ciphertext_to_bytes(pub, c))
        assert decrypt(keypair128, wired) == value


class TestPublicKeyWire:
    def test_roundtrip(self, keypair128):
        pub = keypair128.public
        back = public_key_from_bytes(public_key_to_bytes(pub))
        assert back.n == pub.n and back.s == pub.s

    def test_s2_roundtrip(self, keypair_s2):
        pub = keypair_s2.public
        back = public_key_from_bytes(public_key_to_bytes(pub))
        assert back.n == pub.n and back.s == 2


class TestMeansPayload:
    def test_roundtrip(self, keypair128, crypto_rng):
        pub = keypair128.public
        k, n = 3, 4
        ciphertexts = [
            encrypt(pub, i, rng=crypto_rng) for i in range(k * (n + 1))
        ]
        payload = means_payload_to_bytes(pub, ciphertexts, k=k, omega=7, counter=12)
        back, k2, omega, counter = means_payload_from_bytes(pub, payload)
        assert back == ciphertexts
        assert (k2, omega, counter) == (k, 7, 12)

    def test_size_matches_cost_model(self, keypair128, crypto_rng):
        """The wire payload ≈ the Fig. 5(b) accounting plus a 20-byte header."""
        from repro.analysis import means_set_bytes

        pub = keypair128.public
        k, n = 5, 8
        ciphertexts = [encrypt(pub, 1, rng=crypto_rng) for _ in range(k * (n + 1))]
        payload = means_payload_to_bytes(pub, ciphertexts, k=k, omega=1, counter=0)
        assert len(payload) == means_set_bytes(pub, k, n) + 20

    def test_truncated_body_rejected(self, keypair128, crypto_rng):
        pub = keypair128.public
        ciphertexts = [encrypt(pub, 1, rng=crypto_rng) for _ in range(4)]
        payload = means_payload_to_bytes(pub, ciphertexts, k=2, omega=1, counter=0)
        with pytest.raises(ValueError):
            means_payload_from_bytes(pub, payload[:-1])

    def test_bad_k_rejected(self, keypair128, crypto_rng):
        pub = keypair128.public
        ciphertexts = [encrypt(pub, 1, rng=crypto_rng) for _ in range(5)]
        with pytest.raises(ValueError):
            means_payload_to_bytes(pub, ciphertexts, k=2, omega=1, counter=0)
