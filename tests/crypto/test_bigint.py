"""Tests for the pluggable bigint kernel (:mod:`repro.crypto.bigint`).

Two layers:

* kernel unit tests — every primitive against its naive counterpart on the
  always-available python backend;
* cross-backend property tests — random 512-bit keys/plaintexts/scalars
  asserting *bit-identical* ciphertexts, homomorphic sums, scalar
  multiplications and threshold decryptions between the ``python`` and
  ``gmpy2`` backends.  The gmpy2 leg auto-skips when the package is absent
  (the soft-dependency boundary under test in CI's default leg).
"""

import math
import pickle
import random

import pytest

from repro.crypto import bigint
from repro.crypto.backend import SerialBackend
from repro.crypto.damgard_jurik import (
    FastEncryptor,
    decrypt,
    encrypt,
    generate_keypair,
    homomorphic_add,
    homomorphic_scalar_mul,
)
from repro.crypto.numtheory import FixedBaseTable, modinv
from repro.crypto.threshold import (
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
)

GMPY2 = "gmpy2" in bigint.available_backends()
needs_gmpy2 = pytest.mark.skipif(
    not GMPY2, reason="gmpy2 not installed (python backend is the default)"
)

M = (1 << 607) - 1  # a Mersenne prime: every nonzero value is invertible


class TestSelection:
    def test_python_always_available(self):
        assert "python" in bigint.available_backends()
        assert bigint.resolve_backend("python") == "python"

    def test_active_is_concrete(self):
        assert bigint.active_backend() in ("python", "gmpy2")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown bigint backend"):
            bigint.resolve_backend("fft")

    def test_env_var_drives_auto(self, monkeypatch):
        monkeypatch.setenv(bigint.BACKEND_ENV, "python")
        assert bigint.resolve_backend("auto") == "python"
        monkeypatch.setenv(bigint.BACKEND_ENV, "nonsense")
        with pytest.raises(ValueError, match="unknown bigint backend"):
            bigint.resolve_backend("auto")

    def test_explicit_name_overrides_env(self, monkeypatch):
        monkeypatch.setenv(bigint.BACKEND_ENV, "python")
        assert bigint.resolve_backend("python") == "python"

    def test_gmpy2_request_without_package_is_loud(self):
        if GMPY2:
            assert bigint.resolve_backend("gmpy2") == "gmpy2"
        else:
            with pytest.raises(ValueError, match="not installed"):
                bigint.resolve_backend("gmpy2")

    def test_use_backend_restores(self):
        before = bigint.active_backend()
        with bigint.use_backend("python") as name:
            assert name == "python" == bigint.active_backend()
        assert bigint.active_backend() == before


class TestKernelPrimitives:
    def test_powmod_matches_builtin(self):
        rng = random.Random(0)
        for _ in range(10):
            b, e = rng.getrandbits(512), rng.getrandbits(256)
            assert bigint.powmod(b, e, M) == pow(b, e, M)

    def test_powmod_negative_exponent(self):
        assert bigint.powmod(3, -5, M) == pow(3, -5, M)

    def test_powmod_non_invertible_raises(self):
        with pytest.raises(ValueError):
            bigint.powmod(6, -1, 9)

    def test_powmod_batch(self):
        rng = random.Random(1)
        bases = [rng.getrandbits(512) for _ in range(17)]
        e = rng.getrandbits(300)
        assert bigint.powmod_batch(bases, e, M) == [pow(b, e, M) for b in bases]
        assert bigint.powmod_batch([], e, M) == []

    def test_invert_matches_modinv(self):
        rng = random.Random(2)
        for _ in range(10):
            v = rng.randrange(1, M)
            assert bigint.invert(v, M) == modinv(v, M) == pow(v, -1, M)

    def test_invert_batch_montgomery_trick(self):
        rng = random.Random(3)
        values = [rng.randrange(1, M) for _ in range(33)]
        assert bigint.invert_batch(values, M) == [modinv(v, M) for v in values]

    def test_invert_batch_edge_cases(self):
        assert bigint.invert_batch([], M) == []
        assert bigint.invert_batch([42], M) == [modinv(42, M)]
        with pytest.raises(ValueError):
            bigint.invert_batch([5, 6, 7], 9)  # gcd(6, 9) != 1

    def test_mulmod_reduce(self):
        rng = random.Random(4)
        values = [rng.getrandbits(600) for _ in range(21)]
        assert bigint.mulmod_reduce(values, M) == math.prod(values) % M
        assert bigint.mulmod_reduce([], M) == 1

    @pytest.mark.parametrize("count", [1, 2, 4, 5, 9, 13])
    def test_multi_powmod_matches_product_of_pows(self, count):
        """Counts straddle the Straus group size (4) on both sides."""
        rng = random.Random(count)
        bases = [rng.getrandbits(512) for _ in range(count)]
        exps = [rng.randrange(-(1 << 300), 1 << 300) for _ in range(count)]
        expected = 1
        for b, e in zip(bases, exps):
            expected = expected * pow(b, e, M) % M
        assert bigint.multi_powmod(bases, exps, M) == expected

    def test_multi_powmod_edge_cases(self):
        assert bigint.multi_powmod([], [], M) == 1
        assert bigint.multi_powmod([7, 11], [0, 0], M) == 1
        assert bigint.multi_powmod([7], [5], M) == pow(7, 5, M)
        with pytest.raises(ValueError):
            bigint.multi_powmod([1, 2], [3], M)


def _random_key_material(seed: int):
    """A 512-bit keypair plus threshold twin (deterministic per seed)."""
    private = generate_keypair(512, rng=random.Random(seed))
    threshold = generate_threshold_keypair(
        512, n_shares=7, threshold=4, rng=random.Random(seed)
    )
    return private, threshold


@needs_gmpy2
class TestCrossBackendIdentity:
    """Bit-identical crypto outputs between the python and gmpy2 kernels."""

    def _both(self, fn):
        with bigint.use_backend("python"):
            py = fn()
        with bigint.use_backend("gmpy2"):
            gm = fn()
        return py, gm

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kernel_primitives_identical(self, seed):
        rng = random.Random(seed)
        bases = [rng.getrandbits(512) for _ in range(9)]
        exps = [rng.randrange(-(1 << 256), 1 << 256) for _ in range(9)]
        e = rng.getrandbits(512)
        for fn in (
            lambda: bigint.powmod(bases[0], e, M),
            lambda: bigint.powmod_batch(bases, e, M),
            lambda: bigint.invert_batch(bases, M),
            lambda: bigint.mulmod_reduce(bases, M),
            lambda: bigint.multi_powmod(bases, exps, M),
        ):
            py, gm = self._both(fn)
            assert py == gm

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_ciphertexts_bit_identical(self, seed):
        private, _ = _random_key_material(seed)
        public = private.public
        rng = random.Random(seed)
        plaintexts = [rng.randrange(public.n_s) for _ in range(5)]
        py, gm = self._both(
            lambda: [
                encrypt(public, m, rng=random.Random(1000 + i))
                for i, m in enumerate(plaintexts)
            ]
        )
        assert py == gm
        for c, m in zip(py, plaintexts):
            assert decrypt(private, c) == m

    @pytest.mark.parametrize("seed", [20, 21])
    def test_fast_encryptor_and_backend_batches_identical(self, seed):
        private, _ = _random_key_material(seed)
        public = private.public
        plaintexts = [i * 7919 for i in range(12)]

        def batch():
            encryptor = FastEncryptor(public, random.Random(seed))
            backend = SerialBackend(encryptor)
            return backend.encrypt_batch(public, plaintexts, random.Random(seed))

        py, gm = self._both(batch)
        assert py == gm
        assert [decrypt(private, c) for c in py] == plaintexts

    @pytest.mark.parametrize("seed", [30, 31])
    def test_homomorphic_sum_and_scalar_mul_identical(self, seed):
        private, _ = _random_key_material(seed)
        public = private.public
        rng = random.Random(seed)
        a, b = rng.randrange(1 << 64), rng.randrange(1 << 64)
        scalar = rng.randrange(-(1 << 32), 1 << 32)
        c1 = encrypt(public, a, rng=random.Random(seed + 1))
        c2 = encrypt(public, b, rng=random.Random(seed + 2))

        py, gm = self._both(
            lambda: (
                homomorphic_add(public, c1, c2),
                homomorphic_scalar_mul(public, c1, scalar),
            )
        )
        assert py == gm
        assert decrypt(private, py[0]) == a + b
        assert decrypt(private, py[1]) == a * scalar % public.n_s

    @pytest.mark.parametrize("seed", [40, 41])
    def test_threshold_decryption_identical(self, seed):
        _, keypair = _random_key_material(seed)
        rng = random.Random(seed)
        value = rng.randrange(1 << 80)
        ciphertext = encrypt(keypair.public, value, rng=random.Random(seed + 1))
        subset = random.Random(seed + 2).sample(keypair.shares, 4)

        def run():
            partials = {
                s.index: partial_decrypt(keypair.context, s, ciphertext)
                for s in subset
            }
            return partials, combine_partial_decryptions(keypair.context, partials)

        (py_partials, py_value), (gm_partials, gm_value) = self._both(run)
        assert py_partials == gm_partials
        assert py_value == gm_value == value

    def test_fixed_base_table_identical_and_cache_swaps(self):
        table = FixedBaseTable(3, M, 256)
        e = random.Random(50).getrandbits(256)
        py, gm = self._both(lambda: table.pow(e))
        assert py == gm == pow(3, e, M)

    def test_decrypt_crt_identical(self):
        private, _ = _random_key_material(60)
        c = encrypt(private.public, 123456789, rng=random.Random(61))
        py, gm = self._both(lambda: decrypt(private, c))
        assert py == gm == 123456789


class TestRunScopedSelection:
    def test_explicit_run_kernel_does_not_leak_into_process_global(self):
        """A spec'd bigint_backend is scoped to the run (construction and
        iteration), never a lasting process-global mutation."""
        import numpy as np

        from repro.core import ChiaroscuroRun
        from repro.core.config import ChiaroscuroParams
        from repro.datasets.timeseries import TimeSeriesSet
        from repro.privacy.budget import Greedy

        before = bigint.active_backend()
        rng = np.random.default_rng(0)
        ds = TimeSeriesSet(
            values=rng.uniform(0, 2, size=(6, 4)), dmin=0, dmax=2, name="toy"
        )
        params = ChiaroscuroParams(
            k=2, max_iterations=1, theta=0.0, view_size=2, exchanges=3,
            key_bits=256, epsilon=1e6, bigint_backend="python",
        )
        run = ChiaroscuroRun(
            ds, Greedy(1e6), params, ds.values[:2].copy(), key_bits=256, seed=0
        )
        assert run.bigint_backend == "python"
        assert bigint.active_backend() == before  # untouched by __init__
        list(run.run_iter())
        assert bigint.active_backend() == before  # restored after the run

    def test_powmod_batch_error_type_matches_contract(self):
        with pytest.raises(ValueError):
            bigint.powmod_batch([4], -1, 8)

    def test_interleaved_streamed_runs_restore_between_yields(self):
        """Per-iteration kernel scoping: at every suspension point of a
        streamed run the process-global selection is restored, so two
        interleaved runs (possibly on different kernels) never see each
        other's choice and nothing leaks after exhaustion."""
        import numpy as np

        from repro.core import ChiaroscuroRun
        from repro.core.config import ChiaroscuroParams
        from repro.datasets.timeseries import TimeSeriesSet
        from repro.privacy.budget import Greedy

        before = bigint.active_backend()
        rng = np.random.default_rng(1)
        ds = TimeSeriesSet(
            values=rng.uniform(0, 2, size=(6, 4)), dmin=0, dmax=2, name="toy"
        )
        kernels = ("python", "gmpy2") if GMPY2 else ("python", "python")

        def start(kernel):
            params = ChiaroscuroParams(
                k=2, max_iterations=2, theta=0.0, view_size=2, exchanges=3,
                key_bits=256, epsilon=1e6, bigint_backend=kernel,
            )
            run = ChiaroscuroRun(
                ds, Greedy(1e6), params, ds.values[:2].copy(),
                key_bits=256, seed=0,
            )
            return run.run_iter()

        g1, g2 = start(kernels[0]), start(kernels[1])
        next(g1)
        assert bigint.active_backend() == before  # restored at the yield
        next(g2)
        assert bigint.active_backend() == before
        for g in (g1, g2):
            for _ in g:
                pass
        assert bigint.active_backend() == before


class TestFixedBaseTablePickle:
    def test_pickle_drops_native_cache_and_still_evaluates(self):
        table = FixedBaseTable(5, M, 128)
        clone = pickle.loads(pickle.dumps(table))
        e = random.Random(70).getrandbits(128)
        assert clone.pow(e) == table.pow(e) == pow(5, e, M)
