"""Unit + property tests for the Damgård–Jurik scheme."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    decrypt,
    dlog_1_plus_n,
    encrypt,
    encrypt_zero_pool,
    generate_keypair,
    homomorphic_add,
    homomorphic_scalar_mul,
    powers_of_g,
)


class TestRoundTrip:
    def test_zero(self, keypair128, crypto_rng):
        c = encrypt(keypair128.public, 0, rng=crypto_rng)
        assert decrypt(keypair128, c) == 0

    def test_small_values(self, keypair128, crypto_rng):
        for value in (1, 2, 255, 10**9):
            c = encrypt(keypair128.public, value, rng=crypto_rng)
            assert decrypt(keypair128, c) == value

    def test_max_plaintext(self, keypair128, crypto_rng):
        top = keypair128.public.n_s - 1
        c = encrypt(keypair128.public, top, rng=crypto_rng)
        assert decrypt(keypair128, c) == top

    def test_s2_large_plaintext(self, keypair_s2, crypto_rng):
        value = 2**300 + 12345  # needs the expanded plaintext space
        c = encrypt(keypair_s2.public, value, rng=crypto_rng)
        assert decrypt(keypair_s2, c) == value

    def test_semantic_security_not_deterministic(self, keypair128, crypto_rng):
        c1 = encrypt(keypair128.public, 42, rng=crypto_rng)
        c2 = encrypt(keypair128.public, 42, rng=crypto_rng)
        assert c1 != c2
        assert decrypt(keypair128, c1) == decrypt(keypair128, c2) == 42


class TestHomomorphism:
    def test_addition(self, keypair128, crypto_rng):
        pub = keypair128.public
        c = homomorphic_add(
            pub,
            encrypt(pub, 1234, rng=crypto_rng),
            encrypt(pub, 8765, rng=crypto_rng),
        )
        assert decrypt(keypair128, c) == 9999

    def test_addition_wraps_modulo(self, keypair128, crypto_rng):
        pub = keypair128.public
        a = pub.n_s - 1
        c = homomorphic_add(
            pub, encrypt(pub, a, rng=crypto_rng), encrypt(pub, 2, rng=crypto_rng)
        )
        assert decrypt(keypair128, c) == 1

    def test_scalar_mul(self, keypair128, crypto_rng):
        pub = keypair128.public
        c = homomorphic_scalar_mul(pub, encrypt(pub, 321, rng=crypto_rng), 1000)
        assert decrypt(keypair128, c) == 321000

    def test_scalar_mul_negative(self, keypair128, crypto_rng):
        pub = keypair128.public
        c = homomorphic_scalar_mul(pub, encrypt(pub, 5, rng=crypto_rng), -3)
        assert decrypt(keypair128, c) == (-15) % pub.n_s

    def test_scalar_mul_power_of_two(self, keypair128, crypto_rng):
        """The EESum scaling operation: multiply by 2^j."""
        pub = keypair128.public
        c = encrypt(pub, 7, rng=crypto_rng)
        for j in (1, 5, 16):
            assert decrypt(keypair128, homomorphic_scalar_mul(pub, c, 1 << j)) == 7 << j

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=0, max_value=2**64), b=st.integers(min_value=0, max_value=2**64))
    def test_addition_law_property(self, keypair128, a, b):
        pub = keypair128.public
        rng = random.Random(a ^ b)
        c = homomorphic_add(
            pub, encrypt(pub, a, rng=rng), encrypt(pub, b, rng=rng)
        )
        assert decrypt(keypair128, c) == (a + b) % pub.n_s

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=0, max_value=2**48), k=st.integers(min_value=-1000, max_value=1000))
    def test_scalar_law_property(self, keypair128, a, k):
        pub = keypair128.public
        rng = random.Random(a * 31 + k)
        c = homomorphic_scalar_mul(pub, encrypt(pub, a, rng=rng), k)
        if k == 0:
            assert decrypt(keypair128, c) == 0
        else:
            assert decrypt(keypair128, c) == (a * k) % pub.n_s


class TestInternals:
    def test_powers_of_g_matches_pow(self, keypair128):
        pub = keypair128.public
        for a in (0, 1, 7, 123456789, pub.n_s - 1):
            assert powers_of_g(pub, a) == pow(pub.g, a, pub.n_s1)

    def test_powers_of_g_matches_pow_s2(self, keypair_s2):
        pub = keypair_s2.public
        for a in (0, 1, 2**200 + 5):
            assert powers_of_g(pub, a) == pow(pub.g, a, pub.n_s1)

    def test_dlog_inverts_powers(self, keypair_s2):
        pub = keypair_s2.public
        for a in (0, 1, 17, 2**150, pub.n_s - 2):
            assert dlog_1_plus_n(pub, powers_of_g(pub, a)) == a

    def test_zero_pool(self, keypair128, crypto_rng):
        pub = keypair128.public
        pool = encrypt_zero_pool(pub, 3, crypto_rng)
        assert len(pool) == 3
        for randomizer in pool:
            c = encrypt(pub, 77, randomizer=randomizer)
            assert decrypt(keypair128, c) == 77


class TestKeyGeneration:
    def test_distinct_primes_required(self):
        assert generate_keypair(128, rng=random.Random(0)).p != generate_keypair(
            128, rng=random.Random(0)
        ).q

    def test_fresh_generation_small(self):
        kp = generate_keypair(64, use_fixtures=False, rng=random.Random(4))
        c = encrypt(kp.public, 99, rng=random.Random(5))
        assert decrypt(kp, c) == 99

    def test_d_is_crt_exponent(self, keypair128):
        pub = keypair128.public
        lam = (keypair128.p - 1) * (keypair128.q - 1) // __import__("math").gcd(
            keypair128.p - 1, keypair128.q - 1
        )
        assert keypair128.d % lam == 0
        assert keypair128.d % pub.n_s == 1


class TestCRTSplitDecryption:
    """decrypt() is CRT-split; it must be bit-identical to the reference
    single-modexp path, and measurably faster."""

    def test_bit_identical_s1(self, keypair128, crypto_rng):
        from repro.crypto.damgard_jurik import _decrypt_reference

        pub = keypair128.public
        values = [0, 1, 2**20 + 7, pub.n_s - 1, pub.n_s // 2 + 3]
        for value in values:
            c = encrypt(pub, value, rng=crypto_rng)
            assert decrypt(keypair128, c) == _decrypt_reference(keypair128, c) == value

    def test_bit_identical_s2(self, keypair_s2, crypto_rng):
        from repro.crypto.damgard_jurik import _decrypt_reference

        pub = keypair_s2.public
        for value in (0, 2**300 + 12345, pub.n_s - 1):
            c = encrypt(pub, value, rng=crypto_rng)
            assert decrypt(keypair_s2, c) == _decrypt_reference(keypair_s2, c) == value

    def test_bit_identical_after_homomorphic_ops(self, keypair128, crypto_rng):
        from repro.crypto.damgard_jurik import _decrypt_reference

        pub = keypair128.public
        c = homomorphic_scalar_mul(
            pub,
            homomorphic_add(
                pub,
                encrypt(pub, 12345, rng=crypto_rng),
                encrypt(pub, 67890, rng=crypto_rng),
            ),
            1 << 16,
        )
        assert decrypt(keypair128, c) == _decrypt_reference(keypair128, c)

    def test_bit_identical_at_1024_bits(self, crypto_rng):
        """The production key size; the timing claim itself lives in
        ``benchmarks/bench_fig5_local_costs.py`` (wall-clock assertions do
        not belong in a correctness suite)."""
        from repro.crypto.damgard_jurik import _decrypt_reference

        keypair = generate_keypair(1024, s=1, rng=random.Random(5))
        for value in (0, 1, 2**512 + 99):
            c = encrypt(keypair.public, value, rng=crypto_rng)
            assert decrypt(keypair, c) == _decrypt_reference(keypair, c) == value
