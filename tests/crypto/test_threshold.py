"""Tests for non-interactive threshold decryption."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    combine_partial_decryptions,
    combine_partial_decryptions_batch,
    decrypt,
    encrypt,
    generate_threshold_keypair,
    homomorphic_add,
    partial_decrypt,
)


class TestThresholdDecryption:
    def test_exact_threshold(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        c = encrypt(tk.public, 424242, rng=crypto_rng)
        partials = {
            s.index: partial_decrypt(tk.context, s, c) for s in tk.shares[:3]
        }
        assert combine_partial_decryptions(tk.context, partials) == 424242

    def test_any_share_subset(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        c = encrypt(tk.public, 777, rng=crypto_rng)
        for picks in ([0, 4, 8], [1, 2, 3], [2, 5, 7]):
            partials = {
                tk.shares[i].index: partial_decrypt(tk.context, tk.shares[i], c)
                for i in picks
            }
            assert combine_partial_decryptions(tk.context, partials) == 777

    def test_extra_shares_ignored(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        c = encrypt(tk.public, 31337, rng=crypto_rng)
        partials = {
            s.index: partial_decrypt(tk.context, s, c) for s in tk.shares[:5]
        }
        assert combine_partial_decryptions(tk.context, partials) == 31337

    def test_below_threshold_raises(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        c = encrypt(tk.public, 1, rng=crypto_rng)
        partials = {
            s.index: partial_decrypt(tk.context, s, c) for s in tk.shares[:2]
        }
        with pytest.raises(ValueError):
            combine_partial_decryptions(tk.context, partials)

    def test_matches_plain_private_key(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        c = encrypt(tk.public, 2024, rng=crypto_rng)
        assert decrypt(tk.private, c) == 2024

    def test_homomorphic_then_threshold(self, threshold_keypair, crypto_rng):
        """The Chiaroscuro pattern: aggregate first, threshold-decrypt after."""
        tk = threshold_keypair
        total = 0
        c = encrypt(tk.public, 0, rng=crypto_rng)
        for value in (10, 200, 3000, 40000):
            total += value
            c = homomorphic_add(
                tk.public, c, encrypt(tk.public, value, rng=crypto_rng)
            )
        partials = {
            s.index: partial_decrypt(tk.context, s, c) for s in tk.shares[3:6]
        }
        assert combine_partial_decryptions(tk.context, partials) == total

    def test_s2_threshold(self, threshold_keypair_s2, crypto_rng):
        tk = threshold_keypair_s2
        value = 2**300 + 99
        c = encrypt(tk.public, value, rng=crypto_rng)
        partials = {
            s.index: partial_decrypt(tk.context, s, c)
            for s in (tk.shares[0], tk.shares[10], tk.shares[23])
        }
        assert combine_partial_decryptions(tk.context, partials) == value

    @settings(max_examples=10, deadline=None)
    @given(value=st.integers(min_value=0, max_value=2**64), seed=st.integers(0, 2**31))
    def test_threshold_roundtrip_property(self, threshold_keypair, value, seed):
        tk = threshold_keypair
        rng = random.Random(seed)
        c = encrypt(tk.public, value, rng=rng)
        picked = rng.sample(tk.shares, tk.context.threshold)
        partials = {s.index: partial_decrypt(tk.context, s, c) for s in picked}
        assert combine_partial_decryptions(tk.context, partials) == value


class TestBatchCombination:
    """The fused batch combiner used by the vectorized-crypto plane."""

    def _column_partials(self, tk, ciphertexts, shares):
        return {
            s.index: [partial_decrypt(tk.context, s, c) for c in ciphertexts]
            for s in shares
        }

    def test_batch_matches_scalar_map(self, threshold_keypair, crypto_rng):
        """Bit-identical to mapping the scalar combiner over the batch —
        the Montgomery batch inversion is an optimization, not a change."""
        tk = threshold_keypair
        values = [0, 1, 31337, 2**40 + 5, tk.public.n_s - 1]
        cts = [encrypt(tk.public, v, rng=crypto_rng) for v in values]
        partials = self._column_partials(tk, cts, tk.shares[:3])
        batch = combine_partial_decryptions_batch(tk.context, partials)
        assert batch == values
        scalar = [
            combine_partial_decryptions(
                tk.context, {i: column[j] for i, column in partials.items()}
            )
            for j in range(len(cts))
        ]
        assert batch == scalar

    def test_extra_shares_ignored(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        cts = [encrypt(tk.public, v, rng=crypto_rng) for v in (7, 8)]
        partials = self._column_partials(tk, cts, tk.shares[:5])
        assert combine_partial_decryptions_batch(tk.context, partials) == [7, 8]

    def test_below_threshold_raises(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        cts = [encrypt(tk.public, 9, rng=crypto_rng)]
        partials = self._column_partials(tk, cts, tk.shares[:2])
        with pytest.raises(ValueError, match="distinct partial"):
            combine_partial_decryptions_batch(tk.context, partials)

    def test_misaligned_columns_raise(self, threshold_keypair, crypto_rng):
        tk = threshold_keypair
        cts = [encrypt(tk.public, v, rng=crypto_rng) for v in (1, 2)]
        partials = self._column_partials(tk, cts, tk.shares[:3])
        partials[tk.shares[0].index].pop()
        with pytest.raises(ValueError, match="equally long"):
            combine_partial_decryptions_batch(tk.context, partials)

    def test_empty_batch(self, threshold_keypair):
        tk = threshold_keypair
        partials = {s.index: [] for s in tk.shares[:3]}
        assert combine_partial_decryptions_batch(tk.context, partials) == []


class TestKeyDealing:
    def test_context_parameters(self, threshold_keypair):
        ctx = threshold_keypair.context
        assert ctx.n_shares == 9
        assert ctx.threshold == 3
        import math

        assert ctx.delta == math.factorial(9)

    def test_share_indices_unique(self, threshold_keypair):
        indices = [s.index for s in threshold_keypair.shares]
        assert len(set(indices)) == len(indices)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            generate_threshold_keypair(256, n_shares=3, threshold=5)
