"""Tests for key containers and the ciphertext-size accounting."""

import math

import pytest

from repro.crypto import PublicKey, ThresholdContext
from repro.crypto.paillier import decrypt, encrypt, generate_keypair


class TestPublicKey:
    def test_g_is_n_plus_one(self):
        pub = PublicKey(n=77, s=1)
        assert pub.g == 78

    def test_moduli(self):
        pub = PublicKey(n=77, s=2)
        assert pub.n_s == 77**2
        assert pub.n_s1 == 77**3

    def test_key_bits(self, keypair128):
        assert keypair128.public.key_bits in (255, 256)

    def test_ciphertext_bytes_s1(self, keypair128):
        # s = 1 → ciphertexts live mod n², about twice the key size.
        expected = (keypair128.public.n_s1.bit_length() + 7) // 8
        assert keypair128.public.ciphertext_bytes == expected
        assert 60 <= keypair128.public.ciphertext_bytes <= 66

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            PublicKey(n=77, s=0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            PublicKey(n=2)


class TestThresholdContext:
    def test_delta(self, keypair128):
        ctx = ThresholdContext(public=keypair128.public, n_shares=6, threshold=2)
        assert ctx.delta == math.factorial(6)

    def test_invalid_threshold(self, keypair128):
        with pytest.raises(ValueError):
            ThresholdContext(public=keypair128.public, n_shares=2, threshold=3)


class TestPaillierFacade:
    def test_roundtrip(self, crypto_rng):
        kp = generate_keypair(128, rng=crypto_rng)
        assert decrypt(kp, encrypt(kp.public, 12345, rng=crypto_rng)) == 12345

    def test_facade_rejects_s2(self, keypair_s2, crypto_rng):
        with pytest.raises(ValueError):
            encrypt(keypair_s2.public, 1, rng=crypto_rng)
