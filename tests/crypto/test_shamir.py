"""Tests for Shamir sharing and integer Lagrange coefficients."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import lagrange_at_zero, reconstruct_at_zero, share_secret


MODULUS = (2**89 - 1) * (2**61 - 1)  # composite, like n^s·m


class TestSharing:
    def test_share_count_and_indices(self):
        shares = share_secret(123, MODULUS, 7, 3, random.Random(0))
        assert [s.index for s in shares] == list(range(1, 8))

    def test_reconstruct_exact_threshold(self):
        secret = 987654321
        delta = math.factorial(7)
        shares = share_secret(secret, MODULUS, 7, 3, random.Random(1))
        got = reconstruct_at_zero(shares[:3], delta, MODULUS)
        assert got == delta * secret % MODULUS

    def test_reconstruct_any_subset(self):
        secret = 42
        delta = math.factorial(6)
        shares = share_secret(secret, MODULUS, 6, 4, random.Random(2))
        for subset in ([0, 1, 2, 3], [2, 3, 4, 5], [0, 2, 4, 5]):
            got = reconstruct_at_zero([shares[i] for i in subset], delta, MODULUS)
            assert got == delta * secret % MODULUS

    def test_fewer_than_threshold_differs(self):
        """τ−1 shares interpolate to a wrong value (no information)."""
        secret = 5555
        delta = math.factorial(5)
        shares = share_secret(secret, MODULUS, 5, 3, random.Random(3))
        got = reconstruct_at_zero(shares[:2], delta, MODULUS)
        assert got != delta * secret % MODULUS

    def test_duplicate_indices_rejected(self):
        shares = share_secret(1, MODULUS, 4, 2, random.Random(4))
        with pytest.raises(ValueError):
            reconstruct_at_zero([shares[0], shares[0]], math.factorial(4), MODULUS)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            share_secret(1, MODULUS, 3, 4, random.Random(0))

    @settings(max_examples=25, deadline=None)
    @given(
        secret=st.integers(min_value=0, max_value=MODULUS - 1),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_reconstruction_property(self, secret, seed):
        rng = random.Random(seed)
        n, t = 8, 4
        delta = math.factorial(n)
        shares = share_secret(secret, MODULUS, n, t, rng)
        picked = rng.sample(shares, t)
        assert reconstruct_at_zero(picked, delta, MODULUS) == delta * secret % MODULUS


class TestLagrange:
    def test_integrality(self):
        delta = math.factorial(9)
        coefficients = lagrange_at_zero([2, 5, 9], delta)
        assert all(isinstance(v, int) for v in coefficients.values())

    def test_interpolates_constant(self):
        """Σ λ_i · f(i) == Δ·f(0) for a degree-(τ−1) polynomial over Q."""
        delta = math.factorial(5)
        indices = [1, 3, 5]
        poly = lambda x: 7 + 3 * x + 2 * x * x  # degree 2, τ = 3
        coefficients = lagrange_at_zero(indices, delta)
        total = sum(coefficients[i] * poly(i) for i in indices)
        assert total == delta * poly(0)

    def test_wrong_delta_detected(self):
        with pytest.raises(ValueError):
            lagrange_at_zero([1, 2, 7], delta=1)
